// End-to-end test of the sharded leader tier: a 4-shard logical task
// and a single-leader control serve the same crowd over real HTTP, and
// must agree on every count the protocol promises — total checkins
// applied, merged iteration, and the crowd statistics of Eq. (14) —
// while the merged iteration observed by a concurrent poller never
// moves backwards. This is the test the CI "sharded tier e2e" step runs
// by name.
package crowdml_test

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	crowdml "github.com/crowdml/crowdml"
)

const (
	shardedClasses = 2
	shardedDim     = 8
	shardedCrowd   = 12 // devices
	shardedRounds  = 5  // checkins per device
)

func shardedConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(shardedClasses, shardedDim),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 1}, 0),
	}
}

// driveShardedCrowd runs the full device protocol for the crowd against
// one server (sharded or not): register, then rounds of checkout →
// checkin with the checkout's version echoed back — concurrently, so
// the race detector sees the whole stack under load.
func driveShardedCrowd(t *testing.T, baseURL, taskID string) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, shardedCrowd)
	for d := 0; d < shardedCrowd; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			deviceID := fmt.Sprintf("device-%05d", d)
			cl := crowdml.NewHTTPClient(baseURL, nil).WithTask(taskID)
			token, err := cl.Register(ctx, deviceID, "join")
			if err != nil {
				errs <- fmt.Errorf("%s register: %w", deviceID, err)
				return
			}
			for r := 0; r < shardedRounds; r++ {
				co, err := cl.Checkout(ctx, deviceID, token)
				if err != nil {
					errs <- fmt.Errorf("%s checkout: %w", deviceID, err)
					return
				}
				grad := make([]float64, shardedClasses*shardedDim)
				grad[d%len(grad)] = 0.5
				req := &crowdml.CheckinRequest{
					Grad:        grad,
					NumSamples:  2,
					ErrCount:    1,
					LabelCounts: []int{1, 1},
					Version:     co.Version,
				}
				if err := cl.Checkin(ctx, deviceID, token, req); err != nil {
					errs <- fmt.Errorf("%s checkin: %w", deviceID, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShardedTierMatchesSingleLeader is the tier's equivalence proof:
// the same crowd against a 4-shard task and a single-leader control
// produces identical checkin totals and crowd statistics, and a poller
// watching the sharded stats during the run never observes the merged
// iteration decrease.
func TestShardedTierMatchesSingleLeader(t *testing.T) {
	ctx := context.Background()

	// Control: one plain leader task.
	ctlHub := crowdml.NewHub()
	if _, err := ctlHub.CreateTask(ctx, "act", shardedConfig()); err != nil {
		t.Fatal(err)
	}
	ctlSrv := httptest.NewServer(crowdml.NewHTTPHandler(ctlHub, "join"))
	defer ctlSrv.Close()

	// Subject: the same logical task sharded 4 ways, merging fast enough
	// for the poller to see intermediate views.
	shHub := crowdml.NewHub()
	g, err := crowdml.NewShardedTask(ctx, shHub, "act",
		func(int) crowdml.ServerConfig { return shardedConfig() },
		crowdml.WithShards(4), crowdml.WithShardMergeInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	shSrv := httptest.NewServer(crowdml.NewHTTPHandler(shHub, "join"))
	defer shSrv.Close()

	// Concurrent poller: merged iteration must be monotone.
	pollDone := make(chan struct{})
	stopPoll := make(chan struct{})
	go func() {
		defer close(pollDone)
		cl := crowdml.NewHTTPClient(shSrv.URL, nil).WithTask("act")
		last := -1
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			st, err := cl.Stats(ctx)
			if err != nil {
				t.Errorf("poll stats: %v", err)
				return
			}
			if st.Iteration < last {
				t.Errorf("merged iteration went backwards: %d → %d", last, st.Iteration)
				return
			}
			last = st.Iteration
			time.Sleep(time.Millisecond)
		}
	}()

	driveShardedCrowd(t, ctlSrv.URL, "act")
	driveShardedCrowd(t, shSrv.URL, "act")
	close(stopPoll)
	<-pollDone

	// Publish the final view, then compare the two servers' stats.
	g.Merge()
	const want = shardedCrowd * shardedRounds
	ctlStats, err := crowdml.NewHTTPClient(ctlSrv.URL, nil).WithTask("act").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	shStats, err := crowdml.NewHTTPClient(shSrv.URL, nil).WithTask("act").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctlStats.Iteration != want {
		t.Errorf("control iteration = %d, want %d", ctlStats.Iteration, want)
	}
	if shStats.Iteration != want {
		t.Errorf("sharded merged iteration = %d, want %d", shStats.Iteration, want)
	}
	if shStats.Shards != 4 || ctlStats.Shards != 0 {
		t.Errorf("shards fields = (%d,%d), want (4,0)", shStats.Shards, ctlStats.Shards)
	}
	// Every member iteration sums to the same total the control applied.
	memberSum := 0
	for _, mt := range g.Members() {
		memberSum += mt.Server().Iteration()
	}
	if memberSum != want {
		t.Errorf("Σ member iterations = %d, want %d", memberSum, want)
	}
	// Eq. (14) statistics compose exactly: summed raw counters give the
	// same estimates the single leader computed.
	if ctlStats.ErrorEstimate == nil || shStats.ErrorEstimate == nil {
		t.Fatalf("missing error estimates: control=%v sharded=%v", ctlStats.ErrorEstimate, shStats.ErrorEstimate)
	}
	if math.Abs(*ctlStats.ErrorEstimate-*shStats.ErrorEstimate) > 1e-12 {
		t.Errorf("error estimates diverge: control=%g sharded=%g", *ctlStats.ErrorEstimate, *shStats.ErrorEstimate)
	}
	for k := range ctlStats.PriorEstimate {
		if math.Abs(ctlStats.PriorEstimate[k]-shStats.PriorEstimate[k]) > 1e-12 {
			t.Errorf("prior estimates diverge at %d: control=%v sharded=%v",
				k, ctlStats.PriorEstimate, shStats.PriorEstimate)
		}
	}

	// The checkout a device sees is the merged view: version = Σ shards.
	cl := crowdml.NewHTTPClient(shSrv.URL, nil).WithTask("act")
	token, err := cl.Register(ctx, "device-final", "join")
	if err != nil {
		t.Fatal(err)
	}
	co, err := cl.Checkout(ctx, "device-final", token)
	if err != nil {
		t.Fatal(err)
	}
	if co.Version != want {
		t.Errorf("merged checkout version = %d, want %d", co.Version, want)
	}
	if len(co.Params) != shardedClasses*shardedDim {
		t.Errorf("merged checkout params len = %d", len(co.Params))
	}

	// Healthz aggregates the tier into one row with per-shard sub-rows
	// whose iterations sum to the total.
	hr, err := crowdml.NewHTTPClient(shSrv.URL, nil).Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || len(hr.Tasks) != 1 {
		t.Fatalf("sharded healthz = %+v", hr)
	}
	row := hr.Tasks[0]
	if row.ID != "act" || row.Role != "sharded" || !row.Ready || len(row.Shards) != 4 {
		t.Fatalf("sharded health row = %+v", row)
	}
	rowSum := 0
	for _, sr := range row.Shards {
		rowSum += sr.Iteration
	}
	if rowSum != want {
		t.Errorf("Σ shard health iterations = %d, want %d", rowSum, want)
	}

	// The listing shows the logical task only — members stay hidden.
	tasks, err := crowdml.NewHTTPClient(shSrv.URL, nil).Tasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].ID != "act" || tasks[0].Shards != 4 {
		t.Fatalf("sharded listing = %+v, want only act with 4 shards", tasks)
	}
}

// TestShardedMetricsExposition scrapes a sharded deployment's
// /v1/metrics over real HTTP: the exposition must lint clean and carry
// the router series next to every member's per-task series.
func TestShardedMetricsExposition(t *testing.T) {
	ctx := context.Background()
	reg := crowdml.NewMetricsRegistry()
	h := crowdml.NewHub()
	g, err := crowdml.NewShardedTask(ctx, h, "act",
		func(int) crowdml.ServerConfig { return shardedConfig() },
		crowdml.WithShards(2),
		crowdml.WithShardMergeInterval(5*time.Millisecond),
		crowdml.WithShardMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	srv := httptest.NewServer(crowdml.NewHTTPHandlerWithMetrics(h, "join", reg))
	defer srv.Close()

	driveShardedCrowd(t, srv.URL, "act")
	g.Merge()

	body := scrapeMetrics(t, srv.URL)
	wantSeries(t, "sharded", body,
		// Router-layer sharding series.
		`crowdml_shard_routed_requests_total{task="act",shard="0",op="checkin"}`,
		`crowdml_shard_routed_requests_total{task="act",shard="1",op="checkout"}`,
		`crowdml_shard_routed_requests_total{task="act",shard="0",op="register"}`,
		`crowdml_shard_merges_total{task="act"}`,
		`crowdml_shard_merge_seconds_bucket`,
		`crowdml_shard_merge_staleness_iterations{task="act"}`,
		// Member tasks keep their ordinary per-task series, labeled with
		// their member IDs.
		`crowdml_checkins_applied_total{task="act.shard-0"}`,
		`crowdml_checkins_applied_total{task="act.shard-1"}`,
		// And the transport counts the task-scoped routes.
		`crowdml_http_requests_total`,
	)
}
