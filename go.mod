module github.com/crowdml/crowdml

go 1.23.0
