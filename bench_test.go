// Benchmark harness for the paper's evaluation.
//
// Figure benches (BenchmarkFig3…BenchmarkFig9) regenerate each figure of
// Section V / Appendix D at a reduced scale and report the headline errors
// as custom metrics (err/* = final test error of the named curve), so
// `go test -bench Fig -benchmem` both times the harness and re-verifies
// the paper's orderings. Run cmd/crowdml-bench for paper-scale tables.
//
// Micro benches (BenchmarkDevice*, BenchmarkServer*, BenchmarkComm*)
// quantify the per-device and per-server costs analyzed in Section IV-B:
// gradient computation per sample, Laplace noise per minibatch, the O(C·D)
// server update, and the b/2 communication reduction.
//
// Ablation benches (BenchmarkAblation*) cover the design choices listed in
// DESIGN.md §5.
package crowdml_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/experiments"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
	"github.com/crowdml/crowdml/internal/scenario"
	"github.com/crowdml/crowdml/internal/sim"
	"github.com/crowdml/crowdml/internal/simnet"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
	"github.com/crowdml/crowdml/internal/wirecodec"
)

// benchCfg is the reduced scale used by the figure benches.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.02, Trials: 1, Seed: 17, EvalPoints: 10}
}

// benchFigure runs one figure per iteration and reports each curve's final
// error as a custom metric.
func benchFigure(b *testing.B, run func(experiments.Config) (*experiments.Figure, error)) {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range fig.Curves {
		b.ReportMetric(c.Final(), "err/"+sanitizeMetric(c.Name))
	}
}

func sanitizeMetric(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '=', r == '-', r == '.':
			out = append(out, r)
		case r == ' ', r == ',', r == '(', r == ')':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig3 regenerates Fig. 3 (activity recognition, learning-rate
// sweep on the real framework stack).
func BenchmarkFig3(b *testing.B) { benchFigure(b, experiments.Fig3) }

// BenchmarkFig4 regenerates Fig. 4 (central vs crowd vs decentralized,
// digit task, no privacy or delay).
func BenchmarkFig4(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5 regenerates Fig. 5 (privacy ε⁻¹=0.1, minibatch sweep,
// digit task).
func BenchmarkFig5(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Fig. 6 (delay sweep under privacy, digit task).
func BenchmarkFig6(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7 regenerates Fig. 7 (Fig. 4 on the object task).
func BenchmarkFig7(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkFig8 regenerates Fig. 8 (Fig. 5 on the object task).
func BenchmarkFig8(b *testing.B) { benchFigure(b, experiments.Fig8) }

// BenchmarkFig9 regenerates Fig. 9 (Fig. 6 on the object task).
func BenchmarkFig9(b *testing.B) { benchFigure(b, experiments.Fig9) }

// ---- Section IV-B micro-benchmarks ----

// mnistShape is the digit task's parameter shape (C=10, D=50).
const (
	mnistClasses = 10
	mnistDim     = 50
)

func randomSample(r *rng.RNG) model.Sample {
	x := make([]float64, mnistDim)
	for i := range x {
		x[i] = r.Uniform(-1, 1)
	}
	linalg.NormalizeL1(x)
	return model.Sample{X: x, Y: r.Intn(mnistClasses)}
}

// BenchmarkDeviceGradientPerSample measures the per-sample gradient cost on
// a device (Section IV-B1: "computation of a gradient per sample").
func BenchmarkDeviceGradientPerSample(b *testing.B) {
	r := rng.New(1)
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	w := model.NewParams(m)
	g := model.NewParams(m)
	s := randomSample(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Zero()
		m.AddGradient(w, g, s)
	}
}

// BenchmarkDeviceLaplacePerMinibatch measures the Laplace-noise generation
// per minibatch (Section IV-B1: "generation of Laplace random noise per
// minibatch").
func BenchmarkDeviceLaplacePerMinibatch(b *testing.B) {
	r := rng.New(2)
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	g := model.NewParams(m)
	eps := privacy.FromInv(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		privacy.PerturbGradient(g, 20, 4, eps, r)
	}
}

// BenchmarkServerUpdate measures the server's per-checkin cost — the O(C·D)
// SGD update that keeps the server load minimal (Section IV-B1).
func BenchmarkServerUpdate(b *testing.B) {
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	w := model.NewParams(m)
	g := model.NewParams(m)
	u := &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Update(w, g, i+1)
	}
}

// BenchmarkServerCheckinFullPath measures the full authenticated checkin
// path through the real server (Algorithm 2, Server Routine 2).
func BenchmarkServerCheckinFullPath(b *testing.B) {
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	srv, err := core.NewServer(core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	req := &core.CheckinRequest{
		Grad:        make([]float64, mnistClasses*mnistDim),
		NumSamples:  20,
		LabelCounts: make([]int, mnistClasses),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Checkin(ctx, "bench", token, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckoutParallel measures concurrent checkout throughput on one
// task — the portal-scale read path (Section IV-B1: a million-device portal
// is read-mostly). Checkouts are served from an immutable parameter
// snapshot, so throughput should scale with GOMAXPROCS instead of
// plateauing on a shared server lock.
func BenchmarkCheckoutParallel(b *testing.B) {
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	srv, err := core.NewServer(core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := srv.Checkout(ctx, "bench", token); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// newCheckoutBenchServer builds the mnist-shaped server every checkout
// micro-bench reads from, with one registered device.
func newCheckoutBenchServer(b *testing.B) (*core.Server, string) {
	b.Helper()
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	srv, err := core.NewServer(core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	token, err := srv.RegisterDevice(context.Background(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	return srv, token
}

// BenchmarkCheckoutBinary measures the binary full-frame checkout path:
// CheckoutDelta's zero-copy snapshot view encoded into a reused frame
// buffer — the per-request server cost behind "Accept: binary" without a
// delta base. Against BenchmarkCheckoutParallel's per-call parameter
// copy, the steady-state allocation drops to the response-struct noise.
func BenchmarkCheckoutBinary(b *testing.B) {
	srv, token := newCheckoutBenchServer(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var buf []byte
		for pb.Next() {
			d, err := srv.CheckoutDelta(ctx, "bench", token, -1)
			if err != nil {
				b.Error(err)
				return
			}
			buf = wirecodec.AppendCheckout(buf[:0], d.Params, d.Version, d.Done, d.Since, d.Indices, d.Values, false)
		}
	})
}

// BenchmarkCheckoutDelta measures the steady-state delta poll — the wire
// protocol's headline: a device that already holds the current iteration
// asks ?since=current and is answered with an empty ~40-byte delta frame
// instead of the full C·D float64 vector. Benchgate pins this B/op at a
// fraction of BenchmarkCheckoutParallel's full-copy cost.
func BenchmarkCheckoutDelta(b *testing.B) {
	srv, token := newCheckoutBenchServer(b)
	ctx := context.Background()
	// Advance the model a few iterations so the poll runs against a
	// populated ring, like a live leader's.
	req := &core.CheckinRequest{
		Grad:        make([]float64, mnistClasses*mnistDim),
		NumSamples:  20,
		LabelCounts: make([]int, mnistClasses),
	}
	for i := range req.Grad {
		req.Grad[i] = 0.01
	}
	for i := 0; i < 8; i++ {
		if err := srv.Checkin(ctx, "bench", token, req); err != nil {
			b.Fatal(err)
		}
	}
	since := srv.Iteration()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var buf []byte
		for pb.Next() {
			d, err := srv.CheckoutDelta(ctx, "bench", token, since)
			if err != nil {
				b.Error(err)
				return
			}
			buf = wirecodec.AppendCheckout(buf[:0], d.Params, d.Version, d.Done, d.Since, d.Indices, d.Values, false)
		}
	})
}

// BenchmarkCheckinBinary measures the binary checkin ingest: decoding
// one pre-encoded gradient frame plus the batched server apply — the
// server-side twin of a device POSTing Content-Type binary.
func BenchmarkCheckinBinary(b *testing.B) {
	srv, token := newCheckoutBenchServer(b)
	ctx := context.Background()
	grad := make([]float64, mnistClasses*mnistDim)
	for i := range grad {
		grad[i] = 0.01
	}
	frame := wirecodec.AppendCheckin(nil, grad, 0, 20, 0, make([]int, mnistClasses), false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := wirecodec.Decode(frame)
		if err != nil {
			b.Fatal(err)
		}
		req := &core.CheckinRequest{
			Grad:        fr.Values,
			NumSamples:  fr.NumSamples,
			ErrCount:    fr.ErrCount,
			LabelCounts: fr.LabelCounts,
		}
		if err := srv.Checkin(ctx, "bench", token, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckinBatched measures concurrent checkin throughput against a
// single task — the write path where the batched applier groups queued
// gradient deltas under one lock acquisition instead of serializing every
// device on its own lock round-trip.
func BenchmarkCheckinBatched(b *testing.B) {
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	srv, err := core.NewServer(core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker owns its request buffers: Checkin is synchronous, so
		// the server is done with them when the call returns.
		req := &core.CheckinRequest{
			Grad:        make([]float64, mnistClasses*mnistDim),
			NumSamples:  20,
			LabelCounts: make([]int, mnistClasses),
		}
		for pb.Next() {
			if err := srv.Checkin(ctx, "bench", token, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCheckoutInstrumented is BenchmarkCheckoutParallel with the
// operational telemetry registry wired in — the proof that the
// lock-free checkout snapshot path stays within the benchgate envelope
// with instrumentation enabled (one counter add plus one histogram
// observation per checkout).
func BenchmarkCheckoutInstrumented(b *testing.B) {
	m := model.NewLogisticRegression(mnistClasses, mnistDim)
	srv, err := core.NewServer(core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
		Metrics: core.NewServerMetrics(telemetry.NewRegistry(), "bench"),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := srv.Checkout(ctx, "bench", token); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMetricsHotPath isolates the telemetry primitives themselves:
// one counter increment plus one histogram observation per iteration
// under parallel load — the exact per-request cost the instrumented
// server paths add.
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_ops_total", "Ops.", telemetry.L("task", "bench"))
	h := reg.Histogram("bench_op_seconds", "Latency.", telemetry.DurationBuckets,
		telemetry.L("task", "bench"))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0
		for pb.Next() {
			c.Inc()
			h.Observe(v)
			v += 1e-5
			if v > 5 {
				v = 0
			}
		}
	})
}

// BenchmarkCheckinJournaled is BenchmarkCheckinBatched with the
// durability layer on: the task runs on a hub with a file-backed Store,
// so every applied checkin is write-ahead journaled (on the batch
// leader, outside the parameter lock) before it is acknowledged, and the
// asynchronous checkpointer snapshots in the background. The delta
// against BenchmarkCheckinBatched is the WAL overhead benchgate guards.
func BenchmarkCheckinJournaled(b *testing.B) {
	ctx := context.Background()
	fs, err := crowdml.NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	h := crowdml.NewHub()
	task, err := h.CreateTask(ctx, "bench", crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(mnistClasses, mnistDim),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 1}, 0),
	}, crowdml.WithStore(fs),
		crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 4096}))
	if err != nil {
		b.Fatal(err)
	}
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := &core.CheckinRequest{
			Grad:        make([]float64, mnistClasses*mnistDim),
			NumSamples:  20,
			LabelCounts: make([]int, mnistClasses),
		}
		for pb.Next() {
			if err := srv.Checkin(ctx, "bench", token, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := h.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCheckinJournaledSyncBatch is BenchmarkCheckinJournaled with
// group-commit fsync (SyncBatch): the batch leader fsyncs once per
// applied batch before its acknowledgments. The delta against
// BenchmarkCheckinJournaled is the price of power-loss durability —
// which shrinks per checkin as concurrency (batch size) rises; that
// amortization is the point of group commit. Not in the CI gate: fsync
// latency is a property of the runner's storage, not of this code.
func BenchmarkCheckinJournaledSyncBatch(b *testing.B) {
	ctx := context.Background()
	fs, err := crowdml.NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	h := crowdml.NewHub()
	task, err := h.CreateTask(ctx, "bench", crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(mnistClasses, mnistDim),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 1}, 0),
	}, crowdml.WithStore(fs),
		crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 4096}),
		crowdml.WithSyncPolicy(crowdml.SyncBatch))
	if err != nil {
		b.Fatal(err)
	}
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := &core.CheckinRequest{
			Grad:        make([]float64, mnistClasses*mnistDim),
			NumSamples:  20,
			LabelCounts: make([]int, mnistClasses),
		}
		for pb.Next() {
			if err := srv.Checkin(ctx, "bench", token, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := h.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalTailRestore measures the restore-path journal read as
// checkpoint history accumulates: the store holds `checkpoints` sealed
// segments (one per past checkpoint-and-rotate cycle) plus a short live
// tail, and each op opens a cursor after the latest checkpoint's
// iteration and streams the tail — exactly what a task restart does.
// The cursor probes only each trailing segment's first record and never
// materializes the history, so ns/op AND B/op must stay ~flat as the
// checkpoint count grows; this is the benchmark that keeps the
// streaming read's bounded memory from silently regressing (benchgate
// gates its B/op in CI).
func BenchmarkJournalTailRestore(b *testing.B) {
	const perSegment, tailLen = 32, 8
	grad := make([]float64, 30)
	for i := range grad {
		grad[i] = 0.125 * float64(i)
	}
	for _, checkpoints := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("checkpoints=%d", checkpoints), func(b *testing.B) {
			ctx := context.Background()
			fs, err := crowdml.NewFileStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			j, err := fs.OpenJournal(ctx)
			if err != nil {
				b.Fatal(err)
			}
			iter := 0
			appendN := func(n int) {
				for i := 0; i < n; i++ {
					iter++
					err := j.Append(ctx, crowdml.JournalEntry{
						DeviceID: "d1", Iteration: iter, NumSamples: 5,
						Grad: grad, LabelCounts: []int{3, 2},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			for c := 0; c < checkpoints; c++ {
				appendN(perSegment)
				if err := j.Rotate(ctx); err != nil {
					b.Fatal(err)
				}
			}
			appendN(tailLen)
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			covered := checkpoints * perSegment
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur, err := fs.OpenCursor(ctx, covered)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					if _, err := cur.Next(); err != nil {
						break // io.EOF ends the stream
					}
					n++
				}
				if err := cur.Close(); err != nil {
					b.Fatal(err)
				}
				if n != tailLen {
					b.Fatalf("restore read %d entries, want the %d-entry tail", n, tailLen)
				}
			}
		})
	}
}

// BenchmarkFollowerReplay measures the follower's apply path: decoding
// one entry of a shipped journal feed (the JSONL wire format the leader
// streams) and replaying it into the local replica as its own Replay
// call — exactly what internal/replica does per entry while tailing, so
// ns/op bounds how fast a follower drains a backlog and B/op keeps the
// per-entry decode from growing a hidden buffer (benchgate gates it in
// CI). The feed is pre-encoded with 512 entries; re-bootstrapping a
// fresh replica at each feed end happens off-timer.
func BenchmarkFollowerReplay(b *testing.B) {
	const entries = 512
	grad := make([]float64, mnistClasses*mnistDim)
	for i := range grad {
		grad[i] = 0.001 * float64(i%17)
	}
	var feed bytes.Buffer
	fw := store.NewFeedWriter(&feed)
	for i := 1; i <= entries; i++ {
		err := fw.WriteEntry(store.JournalEntry{
			DeviceID: "d1", Iteration: i, NumSamples: 20,
			Grad: grad, LabelCounts: []int{5, 5, 5, 5, 0, 0, 0, 0, 0, 0},
			Version: i - 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := fw.WriteEOS(entries); err != nil {
		b.Fatal(err)
	}
	wire := feed.Bytes()
	newReplica := func() *core.Server {
		srv, err := core.NewServer(core.ServerConfig{
			Model:   model.NewLogisticRegression(mnistClasses, mnistDim),
			Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
		})
		if err != nil {
			b.Fatal(err)
		}
		return srv
	}
	srv := newReplica()
	fr := store.NewFeedReader(bytes.NewReader(wire))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := fr.Next()
		if err == io.EOF {
			b.StopTimer()
			if srv.Iteration() != entries || fr.LeaderIteration() != entries {
				b.Fatalf("replayed to %d (leader %d), want %d", srv.Iteration(), fr.LeaderIteration(), entries)
			}
			srv = newReplica()
			fr = store.NewFeedReader(bytes.NewReader(wire))
			b.StartTimer()
			e, err = fr.Next()
		}
		if err != nil {
			b.Fatal(err)
		}
		_, err = srv.Replay(core.ReplaySlice([]core.ReplayRecord{{
			DeviceID:  e.DeviceID,
			Iteration: e.Iteration,
			Req: &core.CheckinRequest{
				Grad:        e.Grad,
				NumSamples:  e.NumSamples,
				ErrCount:    e.ErrCount,
				LabelCounts: e.LabelCounts,
				Version:     e.Version,
			},
		}}))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Sharded leader tier (internal/shard) ----

// shardBenchConfig is the model the sharded checkin bench runs: a
// dimension large enough that the serialized O(C·D) parameter update —
// the cost partitioning is meant to parallelize — dominates the
// per-checkin bookkeeping.
func shardBenchConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(mnistClasses, 2000),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 1}, 0),
	}
}

// BenchmarkShardedCheckinParallel measures concurrent checkin throughput
// through the shard router at 1 vs 4 member leaders. Each worker keeps
// affinity to one pre-registered device (so routing is stable and no
// tokens rotate mid-run), and the merger is parked on a long interval so
// the numbers isolate the write path. With one shard every update
// serializes on a single member's applier; with four, the dominating
// O(C·D) work spreads over four independent appliers — so the throughput
// ratio between the two sub-benches approaches min(4, GOMAXPROCS, cores)
// on a multi-core runner, while a single-core runner measures pure
// routing overhead instead (there is no second core to spread onto).
func BenchmarkShardedCheckinParallel(b *testing.B) {
	const benchShardDevices = 64
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ctx := context.Background()
			h := crowdml.NewHub()
			g, err := crowdml.NewShardedTask(ctx, h, "bench",
				func(int) crowdml.ServerConfig { return shardBenchConfig() },
				crowdml.WithShards(shards),
				crowdml.WithShardMergeInterval(time.Hour))
			if err != nil {
				b.Fatal(err)
			}
			devices := make([]string, benchShardDevices)
			tokens := make([]string, benchShardDevices)
			for i := range devices {
				devices[i] = fmt.Sprintf("bench-%03d", i)
				if tokens[i], err = g.Register(ctx, devices[i]); err != nil {
					b.Fatal(err)
				}
			}
			classes, dim := g.Members()[0].Server().ModelShape()
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)-1) % benchShardDevices
				req := &core.CheckinRequest{
					Grad:        make([]float64, classes*dim),
					NumSamples:  20,
					LabelCounts: make([]int, classes),
				}
				for pb.Next() {
					if err := g.Checkin(ctx, devices[i], tokens[i], req); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			g.Stop()
			if err := h.Close(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRouterCheckout measures the merged checkout read path on a
// 4-shard group: authenticate against the owning member, then one
// atomic load of the published merged view plus the per-caller copy.
// It runs the same model shape as BenchmarkCheckoutParallel so the two
// are directly comparable: the router adds a hash and a pointer load,
// never a lock, so benchgate holds it to the same envelope as the
// single-leader read.
func BenchmarkRouterCheckout(b *testing.B) {
	ctx := context.Background()
	h := crowdml.NewHub()
	g, err := crowdml.NewShardedTask(ctx, h, "bench",
		func(int) crowdml.ServerConfig {
			return crowdml.ServerConfig{
				Model:   crowdml.NewLogisticRegression(mnistClasses, mnistDim),
				Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 1}, 0),
			}
		},
		crowdml.WithShards(4),
		crowdml.WithShardMergeInterval(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	token, err := g.Register(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.Checkout(ctx, "bench", token); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	g.Stop()
	if err := h.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCommPayloadBytes reports the JSON checkin payload size per
// sample for b ∈ {1, 20}: the b-fold communication reduction of
// Section IV-B2 (each checkin carries one gradient regardless of b).
func BenchmarkCommPayloadBytes(b *testing.B) {
	for _, batch := range []int{1, 20} {
		b.Run(fmt.Sprintf("b=%d", batch), func(b *testing.B) {
			req := &core.CheckinRequest{
				Grad:        make([]float64, mnistClasses*mnistDim),
				NumSamples:  batch,
				LabelCounts: make([]int, mnistClasses),
			}
			var payload []byte
			var err error
			for i := 0; i < b.N; i++ {
				payload, err = json.Marshal(req)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(payload))/float64(batch), "bytes/sample")
		})
	}
}

// ---- Ablation benches (DESIGN.md §5) ----

func ablationTask(b *testing.B) (*dataset.Dataset, model.Model) {
	b.Helper()
	ds, err := dataset.MNISTLike(2000, 600, 23)
	if err != nil {
		b.Fatal(err)
	}
	return ds, model.NewLogisticRegression(ds.Classes, ds.Dim)
}

func runAblation(b *testing.B, cfg sim.CrowdConfig) {
	b.Helper()
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunCrowd(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final = res.Curve.Final()
	}
	b.ReportMetric(final, "finalerr")
}

// BenchmarkAblationMinibatch sweeps b under the Fig. 5 privacy level —
// the noise/latency trade-off of Eq. (13).
func BenchmarkAblationMinibatch(b *testing.B) {
	ds, m := ablationTask(b)
	for _, batch := range []int{1, 5, 10, 20, 50} {
		b.Run(fmt.Sprintf("b=%d", batch), func(b *testing.B) {
			runAblation(b, sim.CrowdConfig{
				Model: m, Train: ds.Train, Test: ds.Test,
				Devices: 50, Minibatch: batch,
				Schedule: optimizer.InvSqrt{C: experiments.DefaultRate},
				Budget:   privacy.Budget{Gradient: privacy.FromInv(0.1)},
				Passes:   3, EvalSubset: 300, Seed: 5,
			})
		})
	}
}

// BenchmarkAblationSchedule compares the Eq. (5) schedule against a
// constant rate and the AdaGrad updater of Remark 3.
func BenchmarkAblationSchedule(b *testing.B) {
	ds, m := ablationTask(b)
	base := sim.CrowdConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 50, Minibatch: 1,
		Passes: 3, EvalSubset: 300, Seed: 5,
	}
	b.Run("invsqrt", func(b *testing.B) {
		cfg := base
		cfg.Schedule = optimizer.InvSqrt{C: experiments.DefaultRate}
		runAblation(b, cfg)
	})
	b.Run("constant", func(b *testing.B) {
		cfg := base
		cfg.Schedule = optimizer.Constant{C: 5}
		runAblation(b, cfg)
	})
	b.Run("invt", func(b *testing.B) {
		cfg := base
		cfg.Schedule = optimizer.InvT{C: 200}
		runAblation(b, cfg)
	})
	b.Run("adagrad", func(b *testing.B) {
		cfg := base
		cfg.Schedule = optimizer.InvSqrt{C: 1} // unused by custom updater
		cfg.Updater = &optimizer.AdaGrad{Eta: 0.3}
		runAblation(b, cfg)
	})
}

// BenchmarkAblationProjection toggles the Π_W projection of Eq. (3).
func BenchmarkAblationProjection(b *testing.B) {
	ds, m := ablationTask(b)
	for _, radius := range []float64{0, 5, 50} {
		b.Run(fmt.Sprintf("R=%g", radius), func(b *testing.B) {
			runAblation(b, sim.CrowdConfig{
				Model: m, Train: ds.Train, Test: ds.Test,
				Devices: 50, Minibatch: 1,
				Schedule: optimizer.InvSqrt{C: experiments.DefaultRate},
				Radius:   radius,
				Passes:   3, EvalSubset: 300, Seed: 5,
			})
		})
	}
}

// BenchmarkAblationBudgetSplit compares spending everything on the
// gradient against also sanitizing the progress counters (Appendix B
// Remark 1: the counters do not feed learning, so their budget should not
// change the error).
func BenchmarkAblationBudgetSplit(b *testing.B) {
	ds, m := ablationTask(b)
	budgets := map[string]privacy.Budget{
		"gradient-only": {Gradient: privacy.FromInv(0.1)},
		"with-counters": {
			Gradient:   privacy.FromInv(0.1),
			ErrCount:   privacy.Eps(0.01),
			LabelCount: privacy.Eps(0.001),
		},
	}
	for name, budget := range budgets {
		b.Run(name, func(b *testing.B) {
			runAblation(b, sim.CrowdConfig{
				Model: m, Train: ds.Train, Test: ds.Test,
				Devices: 50, Minibatch: 20,
				Schedule: optimizer.InvSqrt{C: experiments.DefaultRate},
				Budget:   budgets[name],
				Passes:   3, EvalSubset: 300, Seed: 5,
			})
			_ = budget
		})
	}
}

// BenchmarkAblationStale compares applying stale gradients (the paper's
// behaviour, backed by the delayed-SGD convergence results it cites)
// against dropping them at the server.
func BenchmarkAblationStale(b *testing.B) {
	ds, m := ablationTask(b)
	for _, drop := range []int{0, 10} {
		name := "apply-stale"
		if drop > 0 {
			name = fmt.Sprintf("drop-over-%d", drop)
		}
		b.Run(name, func(b *testing.B) {
			runAblation(b, sim.CrowdConfig{
				Model: m, Train: ds.Train, Test: ds.Test,
				Devices: 50, Minibatch: 1,
				Schedule:           optimizer.InvSqrt{C: experiments.DefaultRate},
				Delay:              simnet.Uniform{Max: 100},
				StaleDropThreshold: drop,
				Passes:             3, EvalSubset: 300, Seed: 5,
			})
		})
	}
}

// BenchmarkScenarioThroughput measures one scenario-harness flush cycle
// — real HTTP checkout, local gradient + DP sanitization, real HTTP
// checkin — against a single-leader stack, i.e. checkins/sec of the
// deterministic harness's hot path with the virtual clock factored out.
func BenchmarkScenarioThroughput(b *testing.B) {
	bench, err := scenario.NewBench(scenario.Spec{
		Name: "bench", Topology: scenario.TopologySingle,
		Devices: 64, Samples: 1, Classes: 3, Dim: 10,
		TrainSize: 640, TestSize: 64,
		LearningRate: 8, Seed: 42,
		Privacy: scenario.PrivacySpec{GradientEpsInv: 0.05, CountEpsInv: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bench.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Step(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	checkins := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(checkins, "checkins/sec")
}
