package crowdml_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/rng"
)

// flakyTransport drops a deterministic fraction of checkouts and checkins —
// the network-outage injection for the Remark 1 resilience test.
type flakyTransport struct {
	inner    crowdml.Transport
	r        *rng.RNG
	dropRate float64
	drops    int
}

var errInjected = errors.New("injected network failure")

func (f *flakyTransport) Checkout(ctx context.Context, id, token string) (*crowdml.CheckoutResponse, error) {
	if f.r.Float64() < f.dropRate {
		f.drops++
		return nil, errInjected
	}
	return f.inner.Checkout(ctx, id, token)
}

func (f *flakyTransport) Checkin(ctx context.Context, id, token string, req *crowdml.CheckinRequest) error {
	if f.r.Float64() < f.dropRate {
		f.drops++
		return errInjected
	}
	return f.inner.Checkin(ctx, id, token, req)
}

// TestIntegrationFailureInjection verifies the paper's Remark 1: checkout
// and checkin failures are non-critical — the device retains samples and
// the crowd still learns once connectivity returns.
func TestIntegrationFailureInjection(t *testing.T) {
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	server, err := crowdml.NewServer(crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	token, _ := server.RegisterDevice(ctx, "flaky-phone")
	flaky := &flakyTransport{
		inner: crowdml.NewLoopback(server), r: rng.New(1), dropRate: 0.4,
	}
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: "flaky-phone", Token: token, Model: m,
		Transport: flaky, Minibatch: 2, MaxBuffer: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := activity.NewGenerator(2)
	delivered := 0
	for i := 0; i < 300; i++ {
		s, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		err = device.AddSample(ctx, s)
		switch {
		case err == nil:
			delivered++
		case errors.Is(err, errInjected):
			// Expected: buffered samples are retained for retry.
		case errors.Is(err, crowdml.ErrBufferFull):
			// Long outage streaks can fill the buffer; also acceptable.
		default:
			t.Fatalf("sample %d: unexpected error %v", i, err)
		}
	}
	if flaky.drops == 0 {
		t.Fatal("injection did not fire")
	}
	st, _ := server.DeviceStats("flaky-phone")
	// Despite 40% drop rate, the overwhelming majority of samples must
	// eventually arrive (each failure only defers delivery).
	if st.Samples < 200 {
		t.Errorf("server received %d samples of 300 with %d injected failures",
			st.Samples, flaky.drops)
	}
	if est, ok := server.ErrEstimate(); !ok || est > 0.6 {
		t.Errorf("learning did not progress under failures: est=%v ok=%v", est, ok)
	}
}

// TestIntegrationStoppingOverHTTP drives a full HTTP deployment to the
// ρ stopping criterion and verifies devices observe Done.
func TestIntegrationStoppingOverHTTP(t *testing.T) {
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	hub := crowdml.NewHub()
	ctx := context.Background()
	task, err := hub.CreateTask(ctx, "stopping", crowdml.ServerConfig{
		Model:             m,
		Updater:           crowdml.NewSGD(crowdml.InvSqrt{C: 20}, 0),
		TargetError:       0.2,
		MinSamplesForStop: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	server := task.Server()
	ts := httptest.NewServer(crowdml.NewHTTPHandler(hub, "key"))
	defer ts.Close()
	// The task-scoped route and the legacy alias are the same task.
	client := crowdml.NewHTTPClient(ts.URL, nil).WithTask("stopping")
	token, err := client.Register(ctx, "p1", "key")
	if err != nil {
		t.Fatal(err)
	}
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: "p1", Token: token, Model: m, Transport: client, Minibatch: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := activity.NewGenerator(4)
	stopped := false
	for i := 0; i < 3000; i++ {
		s, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := device.AddSample(ctx, s); errors.Is(err, crowdml.ErrStopped) {
			stopped = true
			break
		} else if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
	if !stopped {
		est, _ := server.ErrEstimate()
		t.Fatalf("server never reached target error (est=%v after %d iterations)",
			est, server.Iteration())
	}
	if !device.Done() {
		t.Error("device should have latched Done")
	}
	if !server.Stopped() {
		t.Error("server should report stopped")
	}
}

// TestIntegrationConcurrentHTTPCrowd runs a concurrent crowd of HTTP
// devices with privacy enabled and checks the learned model generalizes.
func TestIntegrationConcurrentHTTPCrowd(t *testing.T) {
	const devices = 8
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	hub := crowdml.NewHub()
	task, err := hub.CreateTask(context.Background(), "crowd", crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	server := task.Server()
	ts := httptest.NewServer(crowdml.NewHTTPHandler(hub, "key"))
	defer ts.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			client := crowdml.NewHTTPClient(ts.URL, nil)
			id := string(rune('a' + i))
			token, err := client.Register(ctx, id, "key")
			if err != nil {
				errCh <- err
				return
			}
			device, err := crowdml.NewDevice(crowdml.DeviceConfig{
				ID: id, Token: token, Model: m, Transport: client,
				Minibatch: 5,
				Budget:    crowdml.Budget{Gradient: crowdml.Eps(100)},
				Seed:      uint64(i + 1),
			})
			if err != nil {
				errCh <- err
				return
			}
			gen := activity.NewGenerator(uint64(10 + i))
			for n := 0; n < 100; n++ {
				s, err := gen.Next()
				if err != nil {
					errCh <- err
					return
				}
				if err := device.AddSample(ctx, s); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := server.Iteration(); got != devices*100/5 {
		t.Errorf("iterations = %d, want %d", got, devices*100/5)
	}
	// Evaluate the learned model on fresh data.
	gen := activity.NewGenerator(999)
	test, err := gen.Stream(300)
	if err != nil {
		t.Fatal(err)
	}
	testErr := metrics.TestError(asInternalModel(m), server.Params(), test)
	if testErr > 0.2 {
		t.Errorf("crowd-learned activity model test error = %v, want < 0.2", testErr)
	}
}

// asInternalModel converts the public Model alias back to the internal
// interface (they are the same type; this keeps the call sites readable).
func asInternalModel(m crowdml.Model) model.Model { return m }

// TestIntegrationMultiTaskHub is the headline v1 scenario: ONE server
// process hosts two concurrent learning tasks over HTTP. Device crowds
// drive each task through its task-scoped /v1/tasks/{id}/ routes (one
// crowd uses the legacy /v1/* aliases, which must keep addressing the
// default task), the tasks learn independently, and the /v1/tasks
// listing reflects both.
func TestIntegrationMultiTaskHub(t *testing.T) {
	const (
		devicesPerTask = 4
		perDevice      = 60
		minibatch      = 5
	)
	ctx := context.Background()
	hub := crowdml.NewHub()
	models := map[string]crowdml.Model{
		"activity-logreg": crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim),
		"activity-svm":    crowdml.NewLinearSVM(activity.NumClasses, activity.FeatureDim),
	}
	for id, m := range models {
		opts := []crowdml.TaskOption{}
		if id == "activity-logreg" {
			opts = append(opts, crowdml.AsDefaultTask())
		}
		if _, err := hub.CreateTask(ctx, id, crowdml.ServerConfig{
			Model:   m,
			Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
		}, opts...); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(crowdml.NewHTTPHandler(hub, "key"))
	defer ts.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 2*devicesPerTask)
	for taskID, m := range models {
		for i := 0; i < devicesPerTask; i++ {
			wg.Add(1)
			go func(taskID string, m crowdml.Model, i int) {
				defer wg.Done()
				client := crowdml.NewHTTPClient(ts.URL, nil)
				// One device of the default task exercises the legacy
				// alias paths; everyone else is task-scoped.
				if !(taskID == "activity-logreg" && i == 0) {
					client = client.WithTask(taskID)
				}
				id := fmt.Sprintf("%s-dev-%d", taskID, i)
				token, err := client.Register(ctx, id, "key")
				if err != nil {
					errCh <- fmt.Errorf("%s register: %w", id, err)
					return
				}
				device, err := crowdml.NewDevice(crowdml.DeviceConfig{
					ID: id, Token: token, Model: m,
					Transport: client, Minibatch: minibatch,
					Seed: uint64(i + 1),
				})
				if err != nil {
					errCh <- err
					return
				}
				gen := activity.NewGenerator(uint64(50 + i))
				sent, err := device.Run(ctx, gen, perDevice)
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", id, err)
					return
				}
				if sent != perDevice {
					errCh <- fmt.Errorf("%s sent %d of %d samples", id, sent, perDevice)
					return
				}
				errCh <- nil
			}(taskID, m, i)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Both tasks advanced independently and by the full amount — the
	// legacy-alias device must have landed on the default task.
	wantIter := devicesPerTask * perDevice / minibatch
	for id := range models {
		task, ok := hub.Task(id)
		if !ok {
			t.Fatalf("task %s missing", id)
		}
		if got := task.Server().Iteration(); got != wantIter {
			t.Errorf("task %s iterations = %d, want %d", id, got, wantIter)
		}
	}

	// The portal-facing listing sees both tasks, with the default marked.
	summaries, err := crowdml.NewHTTPClient(ts.URL, nil).Tasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("task listing has %d entries, want 2", len(summaries))
	}
	for _, s := range summaries {
		if s.Iteration != wantIter {
			t.Errorf("listing %s iteration = %d, want %d", s.ID, s.Iteration, wantIter)
		}
		if s.Default != (s.ID == "activity-logreg") {
			t.Errorf("listing %s default flag = %v", s.ID, s.Default)
		}
	}
}
