// End-to-end leader-hint retry tests: a device whose write lands on a
// read-only surface — a follower replica, or a sharded member in the
// follower role — receives a 409 carrying the owning leader's base URL,
// and following that hint ONCE must complete the write. This is the
// client-side retry discipline the scenario harness (and any production
// device) implements; the tests pin that one hop is always enough.
package crowdml_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	crowdml "github.com/crowdml/crowdml"
)

// registerFollowingHint registers a device against entry, following
// leader hints; it returns the token, the client that finally succeeded
// and the number of redirect hops taken.
func registerFollowingHint(t *testing.T, entry *crowdml.HTTPClient, deviceID, key string) (string, *crowdml.HTTPClient, int) {
	t.Helper()
	ctx := context.Background()
	client := entry
	for hops := 0; hops <= 3; {
		token, err := client.Register(ctx, deviceID, key)
		if err == nil {
			return token, client, hops
		}
		hint, ok := crowdml.LeaderHint(err)
		if !ok {
			t.Fatalf("register %s: %v (no leader hint)", deviceID, err)
		}
		var lhe *crowdml.LeaderHintError
		if !errors.As(err, &lhe) || !errors.Is(err, crowdml.ErrReadOnlyReplica) {
			t.Fatalf("hinted error has wrong shape: %v", err)
		}
		client = crowdml.NewHTTPClient(hint, nil).WithTask(entry.TaskID())
		hops++
	}
	t.Fatalf("register %s: hint chain did not terminate", deviceID)
	return "", nil, 0
}

// TestLeaderHintRetryFromFollower: registration and checkin against a
// follower replica each succeed after exactly one hop to the hinted
// leader.
func TestLeaderHintRetryFromFollower(t *testing.T) {
	ctx := context.Background()
	leaderHub := crowdml.NewHub()
	if _, err := leaderHub.CreateTask(ctx, "act", repServerConfig()); err != nil {
		t.Fatal(err)
	}
	defer leaderHub.Close(ctx)
	leaderSrv := httptest.NewServer(crowdml.NewHTTPHandler(leaderHub, "join"))
	defer leaderSrv.Close()

	followerHub := crowdml.NewHub()
	if _, err := followerHub.CreateTask(ctx, "act", repServerConfig(),
		crowdml.AsReplicaOf(leaderSrv.URL)); err != nil {
		t.Fatal(err)
	}
	defer followerHub.Close(ctx)
	followerSrv := httptest.NewServer(crowdml.NewHTTPHandler(followerHub, "join"))
	defer followerSrv.Close()

	entry := crowdml.NewHTTPClient(followerSrv.URL, nil).WithTask("act")
	token, leaderClient, hops := registerFollowingHint(t, entry, "phone-1", "join")
	if hops != 1 {
		t.Fatalf("registration took %d hops, want exactly 1", hops)
	}

	// The write path from the device's perspective: a checkin sent to the
	// follower is hinted away, and the single retry lands.
	co, err := leaderClient.Checkout(ctx, "phone-1", token)
	if err != nil {
		t.Fatal(err)
	}
	req := &crowdml.CheckinRequest{
		Grad:        make([]float64, repClasses*repDim),
		NumSamples:  1,
		ErrCount:    0,
		LabelCounts: []int{1, 0, 0},
		Version:     co.Version,
	}
	err = entry.Checkin(ctx, "phone-1", token, req)
	hint, ok := crowdml.LeaderHint(err)
	if !ok {
		t.Fatalf("follower checkin err = %v, want leader hint", err)
	}
	if hint != leaderSrv.URL {
		t.Fatalf("hint = %q, want %q", hint, leaderSrv.URL)
	}
	retry := crowdml.NewHTTPClient(hint, nil).WithTask("act")
	if err := retry.Checkin(ctx, "phone-1", token, req); err != nil {
		t.Fatalf("hinted checkin retry failed: %v", err)
	}
}

// TestLeaderHintRetryFromShardedMember: a write routed to a sharded
// member in the follower role is hinted to that shard's leader, and one
// hop completes it there.
func TestLeaderHintRetryFromShardedMember(t *testing.T) {
	ctx := context.Background()

	// The shard-0 leader: a plain hub hosting "act" as a normal task.
	leaderHub := crowdml.NewHub()
	if _, err := leaderHub.CreateTask(ctx, "act", repServerConfig()); err != nil {
		t.Fatal(err)
	}
	defer leaderHub.Close(ctx)
	leaderSrv := httptest.NewServer(crowdml.NewHTTPHandler(leaderHub, "join"))
	defer leaderSrv.Close()

	// The sharded front-end: member 0 follows the leader above, member 1
	// is an ordinary leader member.
	routerHub := crowdml.NewHub()
	g, err := crowdml.NewShardedTask(ctx, routerHub, "act",
		func(int) crowdml.ServerConfig { return repServerConfig() },
		crowdml.WithShards(2),
		crowdml.WithShardMemberTaskOptions(func(k int, memberID string) []crowdml.TaskOption {
			if k == 0 {
				return []crowdml.TaskOption{crowdml.AsReplicaOf(leaderSrv.URL)}
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close(ctx)
	defer routerHub.Close(ctx)
	routerSrv := httptest.NewServer(crowdml.NewHTTPHandler(routerHub, "join"))
	defer routerSrv.Close()

	entry := crowdml.NewHTTPClient(routerSrv.URL, nil).WithTask("act")

	// device-002 hashes to shard 0 (the follower member): its
	// registration must take exactly one hop to the shard leader.
	token, leaderClient, hops := registerFollowingHint(t, entry, "device-002", "join")
	if hops != 1 {
		t.Fatalf("sharded registration took %d hops, want exactly 1", hops)
	}

	// Same discipline on the checkin write path through the router.
	co, err := leaderClient.Checkout(ctx, "device-002", token)
	if err != nil {
		t.Fatal(err)
	}
	req := &crowdml.CheckinRequest{
		Grad:        make([]float64, repClasses*repDim),
		NumSamples:  1,
		ErrCount:    0,
		LabelCounts: []int{0, 1, 0},
		Version:     co.Version,
	}
	err = entry.Checkin(ctx, "device-002", token, req)
	hint, ok := crowdml.LeaderHint(err)
	if !ok {
		t.Fatalf("routed checkin err = %v, want leader hint", err)
	}
	if hint != leaderSrv.URL {
		t.Fatalf("hint = %q, want %q", hint, leaderSrv.URL)
	}
	retry := crowdml.NewHTTPClient(hint, nil).WithTask("act")
	if err := retry.Checkin(ctx, "device-002", token, req); err != nil {
		t.Fatalf("hinted checkin retry failed: %v", err)
	}

	// A device on the leader-role member stays hint-free: zero hops.
	if _, _, hops := registerFollowingHint(t, entry, "device-001", "join"); hops != 0 {
		t.Errorf("leader-member registration took %d hops, want 0", hops)
	}
}
