// Command crowdml-bench regenerates the figures of the paper's evaluation
// (Figs. 3–9; Figs. 7–9 are the Appendix D object-recognition repeats) and
// prints each as an aligned text table. With -server it instead load-tests
// a live Crowd-ML server over HTTP, measuring checkin throughput against
// one hosted task; with -durability it measures the cost of write-ahead
// journaling on an in-process crowd (the same task run store-less, then
// with a file-backed WAL + asynchronous checkpoints).
//
// Examples:
//
//	crowdml-bench -fig fig4                 # one figure, paper scale
//	crowdml-bench -fig all -scale 0.05      # everything, 5% scale (fast)
//	crowdml-bench -fig fig5 -trials 10      # the paper's 10-trial protocol
//	crowdml-bench -server http://localhost:8080 -task activity \
//	    -enroll-key join -devices 16 -samples 200   # HTTP load bench
//	crowdml-bench -durability -devices 16 -samples 400   # WAL overhead
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
	"github.com/crowdml/crowdml/internal/experiments"
	"github.com/crowdml/crowdml/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		fig    = flag.String("fig", "all", "what to run: fig3..fig9, all, an ablation id, or ablations")
		scale  = flag.Float64("scale", 1.0, "experiment scale (1.0 = paper size)")
		trials = flag.Int("trials", 1, "randomized trials per curve (paper: 10)")
		seed   = flag.Uint64("seed", 42, "base random seed")
		points = flag.Int("points", 50, "test-error measurements per curve")
		outDir = flag.String("o", "", "also write one <figure>.csv per figure into this directory")

		serverURL  = flag.String("server", "", "load-bench a live server at this base URL instead of regenerating figures")
		durability = flag.Bool("durability", false, "measure in-process checkin throughput with the write-ahead journal off vs on, then exit")
		taskID     = flag.String("task", "", "task ID to bench against (empty: the server's default task)")
		enrollKey  = flag.String("enroll-key", "", "enrollment key for the load bench")
		devices    = flag.Int("devices", 8, "concurrent devices in the load bench")
		samples    = flag.Int("samples", 200, "samples per device in the load bench")
		minibatch  = flag.Int("minibatch", 5, "minibatch size b in the load bench")
		checkouts  = flag.Int("checkouts", 0, "after the checkin run, also measure this many checkouts per device (the portal-scale read path; 0 skips)")
		wire       = flag.String("wire", "json", "wire format for the load bench's checkout/checkin traffic: json, binary or binary-delta")
	)
	flag.Parse()

	wireFormat, err := crowdml.ParseWireFormat(*wire)
	if err != nil {
		return err
	}

	if *durability {
		return durabilityBench(*devices, *samples, *minibatch)
	}
	if *serverURL != "" {
		return loadBench(*serverURL, *taskID, *enrollKey, *devices, *samples, *minibatch, *checkouts, wireFormat)
	}

	cfg := experiments.Config{
		Scale: *scale, Trials: *trials, Seed: *seed, EvalPoints: *points,
	}

	ids := []string{*fig}
	switch *fig {
	case "all":
		ids = ids[:0]
		for id := range experiments.All {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	case "ablations":
		ids = ids[:0]
		for id := range experiments.Ablations {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	for _, id := range ids {
		runner, ok := experiments.All[id]
		if !ok {
			runner, ok = experiments.Ablations[id]
		}
		if !ok {
			return fmt.Errorf("unknown figure %q (want fig3..fig9, all, an ablation id, or ablations)", id)
		}
		start := time.Now()
		result, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := experiments.Render(os.Stdout, result); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeCSVFile(*outDir, id, result); err != nil {
				return err
			}
		}
		fmt.Printf("   (%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// loadBench drives a concurrent crowd of HTTP devices against one task
// of a live server and reports end-to-end checkin throughput (served by
// the batched applier) plus, with -checkouts, checkout throughput (the
// lock-free snapshot read path). The target task's parameter shape is
// read from the /v1/tasks listing, so any hosted task can be benched
// (activity-shaped tasks get the realistic accelerometer stream, others
// a synthetic one).
func loadBench(serverURL, taskID, enrollKey string, devices, samples, minibatch, checkouts int, wire crowdml.WireFormat) error {
	if enrollKey == "" {
		return fmt.Errorf("the load bench needs -enroll-key to enroll its devices")
	}
	ctx := context.Background()
	// benchClient builds one device's task-bound client speaking the
	// selected wire format.
	benchClient := func() *crowdml.HTTPClient {
		client := crowdml.NewHTTPClient(serverURL, nil)
		if taskID != "" {
			client = client.WithTask(taskID)
		}
		if wire != crowdml.WireJSON {
			client = client.WithWire(wire)
		}
		return client
	}
	listing, err := crowdml.NewHTTPClient(serverURL, nil).Tasks(ctx)
	if err != nil {
		return fmt.Errorf("fetch task listing: %w", err)
	}
	var summary *crowdml.TaskSummary
	for i := range listing {
		if taskID == "" && listing[i].Default || listing[i].ID == taskID {
			summary = &listing[i]
			break
		}
	}
	if summary == nil {
		return fmt.Errorf("task %q not found in the server's /v1/tasks listing", taskID)
	}
	// Shape-compatible gradients are all the server checks, so a logreg
	// device model of the right shape can bench any task.
	m := crowdml.NewLogisticRegression(summary.Classes, summary.Dim)
	activityShaped := summary.Classes == activity.NumClasses && summary.Dim == activity.FeatureDim
	fmt.Printf("load bench: %d devices × %d samples (b=%d, wire=%s) against %s task %s (C=%d D=%d)\n",
		devices, samples, minibatch, wire, serverURL, summary.ID, summary.Classes, summary.Dim)

	var wg sync.WaitGroup
	errs := make(chan error, 2*devices)
	checkins := make(chan int, devices)
	tokens := make([]string, devices)
	start := time.Now()
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := benchClient()
			id := fmt.Sprintf("bench-%03d", i)
			token, err := client.Register(ctx, id, enrollKey)
			if err != nil {
				errs <- fmt.Errorf("%s enroll: %w", id, err)
				return
			}
			tokens[i] = token
			device, err := crowdml.NewDevice(crowdml.DeviceConfig{
				ID: id, Token: token, Model: m,
				Transport: client, Minibatch: minibatch,
				Seed: uint64(i + 1),
			})
			if err != nil {
				errs <- err
				return
			}
			var src crowdml.SampleSource = activity.NewGenerator(uint64(1000 + i))
			if !activityShaped {
				src = &randomSource{
					r: rng.New(uint64(1000 + i)), classes: summary.Classes, dim: summary.Dim,
				}
			}
			if _, err := device.Run(ctx, src, samples); err != nil {
				errs <- fmt.Errorf("%s: %w", id, err)
				return
			}
			checkins <- device.Checkins()
		}(i)
	}
	wg.Wait()
	close(checkins)
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}
	total := 0
	for n := range checkins {
		total += n
	}
	fmt.Printf("  %d checkins in %v — %.0f checkins/s, %.0f samples/s\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(),
		float64(total*minibatch)/elapsed.Seconds())

	if checkouts > 0 {
		// Read-path phase: every device hammers checkout concurrently —
		// served server-side from the immutable parameter snapshot, so
		// this measures transport + JSON cost, not lock contention.
		start = time.Now()
		for i := 0; i < devices; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				client := benchClient()
				id := fmt.Sprintf("bench-%03d", i)
				for n := 0; n < checkouts; n++ {
					if _, err := client.Checkout(ctx, id, tokens[i]); err != nil {
						errs <- fmt.Errorf("%s checkout: %w", id, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed = time.Since(start)
		select {
		case err := <-errs:
			return err
		default:
		}
		fmt.Printf("  %d checkouts in %v — %.0f checkouts/s\n",
			devices*checkouts, elapsed.Round(time.Millisecond),
			float64(devices*checkouts)/elapsed.Seconds())
	}
	return nil
}

// durabilityBench measures what the durability layer costs the write
// path: the same in-process crowd (loopback transport, activity-shaped
// task) runs store-less, then with a file-backed write-ahead journal
// plus asynchronous checkpoints (fsync off — process-crash durability),
// then again with group-commit fsync (SyncBatch — power-loss
// durability), and the phase reports each throughput and its overhead
// over the store-less baseline. The journal append and the per-batch
// fsync both run on the batch leader outside the parameter lock, so
// this measures the honest per-checkin durability cost — the fsync-off
// number is what benchgate guards via BenchmarkCheckinJournaled. That
// phase also ends with an audit scan: the whole journal is streamed
// back through a cursor under allocation tracking, reporting B/op (and
// B per entry) so the read path's bounded memory is measurable, not
// just asserted.
func durabilityBench(devices, samples, minibatch int) error {
	ctx := context.Background()
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)

	run := func(st crowdml.Store, policy crowdml.SyncPolicy) (checkins int, elapsed time.Duration, err error) {
		h := crowdml.NewHub()
		opts := []crowdml.TaskOption{}
		if st != nil {
			opts = append(opts,
				crowdml.WithStore(st),
				// A count policy keeps the checkpointer busy during the run
				// instead of idling behind a one-minute timer.
				crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 256}),
				crowdml.WithSyncPolicy(policy))
		}
		task, err := h.CreateTask(ctx, "bench", crowdml.ServerConfig{
			Model:   m,
			Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
		}, opts...)
		if err != nil {
			return 0, 0, err
		}
		var wg sync.WaitGroup
		errs := make(chan error, devices)
		counts := make(chan int, devices)
		start := time.Now()
		for i := 0; i < devices; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				id := fmt.Sprintf("bench-%03d", i)
				token, err := task.Server().RegisterDevice(ctx, id)
				if err != nil {
					errs <- err
					return
				}
				device, err := crowdml.NewDevice(crowdml.DeviceConfig{
					ID: id, Token: token, Model: m,
					Transport: crowdml.NewLoopback(task.Server()),
					Minibatch: minibatch,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := device.Run(ctx, activity.NewGenerator(uint64(1000+i)), samples); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				counts <- device.Checkins()
			}(i)
		}
		wg.Wait()
		elapsed = time.Since(start)
		close(counts)
		select {
		case err := <-errs:
			return 0, 0, err
		default:
		}
		for n := range counts {
			checkins += n
		}
		if err := h.Close(ctx); err != nil {
			return 0, 0, fmt.Errorf("flush: %w", err)
		}
		return checkins, elapsed, nil
	}

	fmt.Printf("durability bench: %d devices × %d samples (b=%d), in-process loopback\n",
		devices, samples, minibatch)
	baseN, baseT, err := run(nil, crowdml.SyncNone)
	if err != nil {
		return err
	}
	baseRate := float64(baseN) / baseT.Seconds()
	fmt.Printf("  store-less:      %d checkins in %v — %.0f checkins/s\n",
		baseN, baseT.Round(time.Millisecond), baseRate)

	walPhase := func(label string, policy crowdml.SyncPolicy, note string, withAuditScan bool) error {
		dir, err := os.MkdirTemp("", "crowdml-durability-bench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fs, err := crowdml.NewFileStore(dir)
		if err != nil {
			return err
		}
		walN, walT, err := run(fs, policy)
		if err != nil {
			return err
		}
		walRate := float64(walN) / walT.Seconds()
		fmt.Printf("  %s %d checkins in %v — %.0f checkins/s\n",
			label, walN, walT.Round(time.Millisecond), walRate)
		if walRate > 0 {
			fmt.Printf("    overhead vs store-less: %.1f%% (%s)\n",
				(baseRate/walRate-1)*100, note)
		}
		// Verify the WAL invariant and the rotation bookkeeping: every
		// acknowledged checkin has exactly one entry across the segment
		// chain, and the AfterN checkpoints sealed segments along the way.
		// The verification streams the journal through a cursor — the
		// audit path holds one decoded entry at a time.
		entries, err := countJournal(fs)
		if err != nil {
			return fmt.Errorf("verify journal: %w", err)
		}
		if entries != walN {
			return fmt.Errorf("journal has %d entries for %d acknowledged checkins", entries, walN)
		}
		segs, err := fs.Segments(ctx)
		if err != nil {
			return fmt.Errorf("list segments: %w", err)
		}
		fmt.Printf("    journal verified: %d entries across %d segment(s), one entry per acknowledged checkin\n",
			entries, len(segs))
		if withAuditScan {
			if err := auditScan(fs, entries); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walPhase("journaled:      ", crowdml.SyncNone,
		"fsync off: every acknowledged checkin survives a process crash", true); err != nil {
		return err
	}
	return walPhase("journaled+fsync:", crowdml.SyncBatch,
		"group-commit fsync: acknowledged checkins survive power loss", false)
}

// countJournal streams the full journal through a cursor, counting the
// entries — the audit read, with O(one entry) resident memory.
func countJournal(st crowdml.Store) (int, error) {
	cur, err := st.OpenCursor(context.Background(), 0)
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	n := 0
	for {
		if _, err := cur.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		n++
	}
}

// auditScan is the -durability bench's streaming-read phase: it runs
// the full audit scan under testing.Benchmark with allocation tracking
// and reports B/op — total and per streamed entry. The per-entry figure
// is the one to watch: it stays flat however many segments (checkpoint
// cycles) the journal has accumulated, because the cursor never
// materializes more than one decoded entry, where a slice-based read
// would retain the entire decoded history at once.
func auditScan(st crowdml.Store, entries int) error {
	var scanErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := countJournal(st)
			if err != nil {
				scanErr = err
				b.FailNow()
			}
			if n != entries {
				scanErr = fmt.Errorf("audit scan saw %d entries, want %d", n, entries)
				b.FailNow()
			}
		}
	})
	if scanErr != nil {
		return fmt.Errorf("audit scan: %w", scanErr)
	}
	perEntry := 0.0
	if entries > 0 {
		perEntry = float64(res.AllocedBytesPerOp()) / float64(entries)
	}
	fmt.Printf("    audit scan:     %d entries streamed in %v — %d B/op total, %.0f B per entry (resident memory is O(one entry))\n",
		entries, time.Duration(res.NsPerOp()).Round(time.Microsecond), res.AllocedBytesPerOp(), perEntry)
	return nil
}

// randomSource generates L1-normalized random samples of an arbitrary
// task shape for load-benching non-activity tasks.
type randomSource struct {
	r            *rng.RNG
	classes, dim int
}

func (s *randomSource) Next() (crowdml.Sample, error) {
	x := make([]float64, s.dim)
	for i := range x {
		x[i] = s.r.Uniform(-1, 1)
	}
	crowdml.NormalizeL1(x)
	return crowdml.Sample{X: x, Y: s.r.Intn(s.classes)}, nil
}

// writeCSVFile writes one figure's curves as <dir>/<id>.csv.
func writeCSVFile(dir, id string, fig *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return fmt.Errorf("create csv: %w", err)
	}
	if err := experiments.WriteCSV(f, fig); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
