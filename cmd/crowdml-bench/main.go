// Command crowdml-bench regenerates the figures of the paper's evaluation
// (Figs. 3–9; Figs. 7–9 are the Appendix D object-recognition repeats) and
// prints each as an aligned text table.
//
// Examples:
//
//	crowdml-bench -fig fig4                 # one figure, paper scale
//	crowdml-bench -fig all -scale 0.05      # everything, 5% scale (fast)
//	crowdml-bench -fig fig5 -trials 10      # the paper's 10-trial protocol
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/crowdml/crowdml/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		fig    = flag.String("fig", "all", "what to run: fig3..fig9, all, an ablation id, or ablations")
		scale  = flag.Float64("scale", 1.0, "experiment scale (1.0 = paper size)")
		trials = flag.Int("trials", 1, "randomized trials per curve (paper: 10)")
		seed   = flag.Uint64("seed", 42, "base random seed")
		points = flag.Int("points", 50, "test-error measurements per curve")
		outDir = flag.String("o", "", "also write one <figure>.csv per figure into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale: *scale, Trials: *trials, Seed: *seed, EvalPoints: *points,
	}

	ids := []string{*fig}
	switch *fig {
	case "all":
		ids = ids[:0]
		for id := range experiments.All {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	case "ablations":
		ids = ids[:0]
		for id := range experiments.Ablations {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	for _, id := range ids {
		runner, ok := experiments.All[id]
		if !ok {
			runner, ok = experiments.Ablations[id]
		}
		if !ok {
			return fmt.Errorf("unknown figure %q (want fig3..fig9, all, an ablation id, or ablations)", id)
		}
		start := time.Now()
		result, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := experiments.Render(os.Stdout, result); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeCSVFile(*outDir, id, result); err != nil {
				return err
			}
		}
		fmt.Printf("   (%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeCSVFile writes one figure's curves as <dir>/<id>.csv.
func writeCSVFile(dir, id string, fig *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return fmt.Errorf("create csv: %w", err)
	}
	if err := experiments.WriteCSV(f, fig); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
