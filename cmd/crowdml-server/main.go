// Command crowdml-server runs a Crowd-ML learning server over HTTP — the
// central component of the paper's prototype (Section V-A, there an
// Apache/MySQL/Django deployment). One process hosts any number of
// crowd-learning tasks on a shared Hub and serves:
//
//   - /v1/tasks — the task listing (the portal index, as JSON);
//   - /v1/tasks/{id}/checkout, /v1/tasks/{id}/checkin — the device
//     protocol of Algorithm 2, per task;
//   - /v1/tasks/{id}/stats — differentially private progress statistics;
//   - /v1/tasks/{id}/register — device enrollment, guarded by -enroll-key;
//   - /v1/checkout, /v1/checkin, /v1/stats, /v1/register — legacy
//     single-task aliases bound to the default task;
//   - /portal/ — the public multi-task Web portal with live DP statistics.
//
// Tasks come either from the single-task flags (-classes, -dim, …) or
// from a -tasks JSON file hosting many at once:
//
//	[
//	  {"id": "activity", "name": "Activity recognition", "model": "logreg",
//	   "classes": 3, "dim": 64, "rate": 10, "labels": ["still","walking","vehicle"]},
//	  {"id": "gestures", "model": "svm", "classes": 5, "dim": 32, "rate": 5}
//	]
//
// With -state-dir, every task checkpoints its learning state to its own
// subdirectory and resumes from the latest checkpoint on restart (the
// MySQL durability role in the original prototype).
//
// Example: a 3-class activity-recognition task over 64-bin FFT features:
//
//	crowdml-server -addr :8080 -classes 3 -dim 64 -rate 10 \
//	    -enroll-key join -state-dir /var/lib/crowdml
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	crowdml "github.com/crowdml/crowdml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// taskSpec is one task entry of the -tasks JSON file (also synthesized
// from the single-task flags when -tasks is not given).
type taskSpec struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Model       string   `json:"model"` // logreg (default) or svm
	Classes     int      `json:"classes"`
	Dim         int      `json:"dim"`
	Rate        float64  `json:"rate"`   // c in η(t)=c/√t; default 10
	Radius      float64  `json:"radius"` // projection-ball radius (0 off)
	Tmax        int      `json:"tmax"`
	TargetError float64  `json:"targetError"`
	Labels      []string `json:"labels"`
	Objective   string   `json:"objective"`
	SensorData  string   `json:"sensorData"`
	Default     bool     `json:"default"`
	// Batched-checkin tuning (0 = server defaults): how many queued
	// checkins one batch leader applies per parameter-lock acquisition,
	// how deep the bounded pending queue is before checkins block, and
	// how many milliseconds a leader lingers to fill a partial batch.
	CheckinBatch   int `json:"checkinBatch"`
	CheckinQueue   int `json:"checkinQueue"`
	CheckinFlushMs int `json:"checkinFlushMs"`
	// checkinFlush carries the -checkin-flush flag at full resolution for
	// the single-task path (unexported: the JSON path uses the
	// millisecond field above).
	checkinFlush time.Duration
}

// flushInterval resolves the spec's flush setting, preferring the
// full-resolution flag value over the integer-millisecond JSON field so
// sub-millisecond flags are not truncated to "apply immediately".
func (s taskSpec) flushInterval() time.Duration {
	if s.checkinFlush > 0 {
		return s.checkinFlush
	}
	return time.Duration(s.CheckinFlushMs) * time.Millisecond
}

// taskState bundles a running task with its persistence handles.
type taskState struct {
	task    *crowdml.Task
	fs      *crowdml.FileStore
	journal *crowdml.Journal
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		tasksFile  = flag.String("tasks", "", "JSON file describing the hosted tasks (overrides the single-task flags)")
		taskID     = flag.String("task", "default", "task ID for the single-task flags")
		classes    = flag.Int("classes", 3, "number of classes C")
		dim        = flag.Int("dim", 64, "feature dimensionality D")
		modelName  = flag.String("model", "logreg", "model: logreg or svm")
		rate       = flag.Float64("rate", 10, "learning-rate constant c in η(t)=c/√t")
		radius     = flag.Float64("radius", 0, "projection-ball radius R (0 disables)")
		tmax       = flag.Int("tmax", 0, "maximum iterations Tmax (0 = unbounded)")
		rho        = flag.Float64("target-error", 0, "stop when error estimate ≤ ρ (0 disables)")
		enrollKey  = flag.String("enroll-key", "", "enrollment key; empty disables self-enrollment")
		devices    = flag.Int("preregister", 0, "pre-register this many devices on the default task and print their tokens")
		stateDir   = flag.String("state-dir", "", "checkpoint directory, one subdirectory per task (empty disables persistence)")
		saveEvery  = flag.Duration("checkpoint-every", time.Minute, "checkpoint interval with -state-dir")
		taskName   = flag.String("task-name", "Crowd-ML task", "task name shown on the portal (single-task flags)")
		taskLabels = flag.String("task-labels", "", "comma-separated class names for the portal (single-task flags)")

		checkinBatch = flag.Int("checkin-batch", 0, "max checkins applied per lock acquisition (0 = server default)")
		checkinQueue = flag.Int("checkin-queue", 0, "bounded pending-checkin queue depth (0 = server default)")
		checkinFlush = flag.Duration("checkin-flush", 0, "how long a batch leader lingers to fill a partial batch (0 = apply immediately)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	specs := []taskSpec{{
		ID: *taskID, Name: *taskName, Model: *modelName,
		Classes: *classes, Dim: *dim, Rate: *rate, Radius: *radius,
		Tmax: *tmax, TargetError: *rho, Default: true,
		CheckinBatch: *checkinBatch, CheckinQueue: *checkinQueue,
		checkinFlush: *checkinFlush,
	}}
	if *taskLabels != "" {
		specs[0].Labels = strings.Split(*taskLabels, ",")
	}
	if *tasksFile != "" {
		payload, err := os.ReadFile(*tasksFile)
		if err != nil {
			return fmt.Errorf("read -tasks: %w", err)
		}
		// Fresh slice: Unmarshal into the flag-built one would leak the
		// flag defaults into JSON entries that omit those fields.
		specs = nil
		if err := json.Unmarshal(payload, &specs); err != nil {
			return fmt.Errorf("parse -tasks: %w", err)
		}
		if len(specs) == 0 {
			return errors.New("-tasks file defines no tasks")
		}
	}

	h := crowdml.NewHub()
	var states []*taskState
	for _, spec := range specs {
		st, err := createTask(ctx, h, spec, *stateDir)
		if err != nil {
			return err
		}
		states = append(states, st)
	}

	// Periodic checkpoints for every persistent task, plus a final save on
	// shutdown.
	saveAll := func(ctx context.Context) {
		for _, st := range states {
			if st.fs == nil {
				continue
			}
			if err := st.fs.Save(ctx, st.task.Server().ExportState(), time.Now()); err != nil {
				log.Printf("task %s: checkpoint failed: %v", st.task.ID(), err)
			}
		}
	}
	checkpointsDone := make(chan struct{})
	if *stateDir != "" {
		go func() {
			defer close(checkpointsDone)
			ticker := time.NewTicker(*saveEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					saveAll(ctx)
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		close(checkpointsDone)
	}
	defer func() {
		stop() // unblock the checkpoint goroutine on early error returns
		<-checkpointsDone
		if *stateDir != "" {
			// Final checkpoint. This runs after httpServer.Shutdown has
			// drained in-flight requests, so checkins applied during the
			// drain are included. The serving context is gone — use a
			// fresh one with a short deadline.
			flushCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			saveAll(flushCtx)
			cancel()
		}
		for _, st := range states {
			if st.journal != nil {
				st.journal.Close()
			}
		}
	}()

	for i := 0; i < *devices; i++ {
		task, ok := h.DefaultTask()
		if !ok {
			return errors.New("-preregister needs a default task")
		}
		id := fmt.Sprintf("device-%03d", i)
		token, err := task.Server().RegisterDevice(ctx, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "registered %s token=%s on task %s\n", id, token, task.ID())
	}

	mux := http.NewServeMux()
	mux.Handle("/", crowdml.NewHTTPHandler(h, *enrollKey))
	mux.Handle("/portal/", http.StripPrefix("/portal", crowdml.NewPortalIndex(h)))
	mux.Handle("/portal", http.RedirectHandler("/portal/", http.StatusMovedPermanently))

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	log.Printf("crowdml-server: hosting %d task(s) on %s (portal at /portal/)", h.Len(), *addr)
	for _, t := range h.Tasks() {
		log.Printf("  task %s: %s", t.ID(), t.Info().Algorithm)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpServer.Shutdown(shutdownCtx)
	}
}

// createTask builds one task from its spec: model, updater, optional
// per-task persistence (checkpoint restore + checkin journal), and the
// hub registration.
func createTask(ctx context.Context, h *crowdml.Hub, spec taskSpec, stateDir string) (*taskState, error) {
	// Validate the ID before it is used as an on-disk directory name —
	// hub.CreateTask would reject it too, but only after the state dir
	// and journal had been created at a possibly escaped path.
	if !crowdml.ValidTaskID(spec.ID) {
		return nil, fmt.Errorf("task %q: %w", spec.ID, crowdml.ErrBadTaskID)
	}
	if spec.Rate == 0 {
		spec.Rate = 10
	}
	if spec.Classes < 2 || spec.Dim < 1 {
		return nil, fmt.Errorf("task %s: invalid shape classes=%d dim=%d (want classes ≥ 2, dim ≥ 1)",
			spec.ID, spec.Classes, spec.Dim)
	}
	var m crowdml.Model
	switch spec.Model {
	case "logreg", "":
		m = crowdml.NewLogisticRegression(spec.Classes, spec.Dim)
	case "svm":
		m = crowdml.NewLinearSVM(spec.Classes, spec.Dim)
	default:
		return nil, fmt.Errorf("task %s: unknown model %q (want logreg or svm)", spec.ID, spec.Model)
	}
	cfg := crowdml.ServerConfig{
		Model:                m,
		Updater:              crowdml.NewSGD(crowdml.InvSqrt{C: spec.Rate}, spec.Radius),
		Tmax:                 spec.Tmax,
		TargetError:          spec.TargetError,
		CheckinBatchSize:     spec.CheckinBatch,
		CheckinQueueDepth:    spec.CheckinQueue,
		CheckinFlushInterval: spec.flushInterval(),
	}

	st := &taskState{}
	if stateDir != "" {
		fs, err := crowdml.NewFileStore(filepath.Join(stateDir, spec.ID))
		if err != nil {
			return nil, err
		}
		journal, err := fs.OpenJournal(ctx)
		if err != nil {
			return nil, err
		}
		st.fs, st.journal = fs, journal
		cfg.OnCheckin = func(ctx context.Context, deviceID string, iteration int, req *crowdml.CheckinRequest) {
			var norm1 float64
			for _, v := range req.Grad {
				if v < 0 {
					norm1 -= v
				} else {
					norm1 += v
				}
			}
			entry := crowdml.JournalEntry{
				AtUnixMillis: time.Now().UnixMilli(),
				DeviceID:     deviceID,
				Iteration:    iteration,
				NumSamples:   req.NumSamples,
				ErrCount:     req.ErrCount,
				GradNorm1:    norm1,
			}
			// The hook runs outside the server's parameter lock (the batch
			// leader invokes it after releasing the critical section), so a
			// slow disk here never blocks checkouts or stats reads — later
			// checkins queue behind it. Entries still arrive in iteration
			// order: hooks are invoked sequentially by the single active
			// leader. The checkin is already applied to the model at
			// this point, so the audit record must be written even if the
			// device's request context has since been cancelled.
			if err := st.journal.Append(context.WithoutCancel(ctx), entry); err != nil {
				log.Printf("task %s: journal append failed: %v", spec.ID, err)
			}
		}
	}

	labels := spec.Labels
	if len(labels) == 0 {
		for k := 0; k < spec.Classes; k++ {
			labels = append(labels, fmt.Sprintf("class %d", k))
		}
	}
	name := spec.Name
	if name == "" {
		name = spec.ID
	}
	objective := spec.Objective
	if objective == "" {
		objective = "Collectively learn a shared classifier from device data with local differential privacy."
	}
	sensorData := spec.SensorData
	if sensorData == "" {
		sensorData = "Device-local features; only noise-sanitized gradients and counters ever leave a device."
	}
	opts := []crowdml.TaskOption{crowdml.WithTaskInfo(crowdml.TaskInfo{
		Name:       name,
		Objective:  objective,
		SensorData: sensorData,
		Labels:     labels,
		Algorithm:  fmt.Sprintf("%s via privacy-preserving distributed SGD (η(t)=%g/√t)", m.Name(), spec.Rate),
	})}
	if spec.Default {
		opts = append(opts, crowdml.AsDefaultTask())
	}
	task, err := h.CreateTask(ctx, spec.ID, cfg, opts...)
	if err != nil {
		return nil, err
	}
	st.task = task

	if st.fs != nil {
		cp, err := st.fs.Load(ctx)
		switch {
		case err == nil:
			if err := task.Server().ImportState(cp.State); err != nil {
				return nil, fmt.Errorf("task %s: restore checkpoint: %w", spec.ID, err)
			}
			log.Printf("task %s: restored checkpoint at iteration %d", spec.ID, cp.State.Iteration)
		case errors.Is(err, crowdml.ErrNoCheckpoint):
			log.Printf("task %s: no checkpoint; starting fresh", spec.ID)
		default:
			return nil, err
		}
	}
	return st, nil
}
