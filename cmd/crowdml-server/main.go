// Command crowdml-server runs a Crowd-ML learning server over HTTP — the
// central component of the paper's prototype (Section V-A, there an
// Apache/MySQL/Django deployment). One process hosts any number of
// crowd-learning tasks on a shared Hub and serves:
//
//   - /v1/tasks — the task listing (the portal index, as JSON);
//   - /v1/tasks/{id}/checkout, /v1/tasks/{id}/checkin — the device
//     protocol of Algorithm 2, per task;
//   - /v1/tasks/{id}/stats — differentially private progress statistics;
//   - /v1/tasks/{id}/register — device enrollment, guarded by -enroll-key;
//   - /v1/tasks/{id}/journal, /v1/tasks/{id}/checkpoint — the WAL-
//     shipping replication feed (and remote-audit endpoint) of a durable
//     task: the streamed journal plus the latest bootstrap checkpoint;
//   - /v1/healthz — per-task readiness, including follower replication
//     state and lag;
//   - /v1/metrics — operational telemetry in Prometheus text format
//     (checkin/checkout throughput and latency, journal and checkpoint
//     durability counters, per-route HTTP totals, replica lag);
//     -metrics=false disables the instrumentation and the endpoint;
//   - /v1/checkout, /v1/checkin, /v1/stats, /v1/register — legacy
//     single-task aliases bound to the default task;
//   - /portal/ — the public multi-task Web portal with live DP statistics.
//
// Tasks come either from the single-task flags (-classes, -dim, …) or
// from a -tasks JSON file hosting many at once:
//
//	[
//	  {"id": "activity", "name": "Activity recognition", "model": "logreg",
//	   "classes": 3, "dim": 64, "rate": 10, "labels": ["still","walking","vehicle"]},
//	  {"id": "gestures", "model": "svm", "classes": 5, "dim": 32, "rate": 5}
//	]
//
// With -state-dir, every task is durable (the MySQL role in the original
// prototype): each applied checkin is write-ahead journaled into the
// task's subdirectory before it is acknowledged, the hub checkpoints
// asynchronously every -checkpoint-every — rotating the journal onto a
// fresh segment after each snapshot, so restarts replay only the live
// tail — and a restarted server resumes each task on the exact
// pre-crash iteration and parameters (latest checkpoint + journal-tail
// replay). -sync picks the journal fsync policy (none/batch/every;
// "batch" group-commits one fsync per applied batch for power-loss
// durability), and -retention (keep/prune/archive, JSON "retention")
// decides whether sealed journal segments the latest checkpoint covers
// accumulate as the audit trail, are deleted, or are moved aside to
// -archive-dir. All of that is hub-managed — CreateTask(WithStore,
// WithCheckpointPolicy, WithSyncPolicy, WithRetention) on the way in,
// Hub.Close on the way out.
//
// With -follow <leader-url> (or a per-task "follow" field in the -tasks
// file), the process instead runs its tasks as read-only follower
// replicas: each bootstraps from the leader's latest checkpoint, tails
// the leader's journal feed (re-bootstrapping if leader retention pruned
// past its position), serves checkouts and stats locally — vouching
// unknown device credentials against the leader once, then caching them
// — and rejects writes with 409 plus an X-Crowdml-Leader hint.
//
// With -shards N (or a per-task "shards" field), a task is split across
// N member leader tasks ("{id}.shard-{k}", each durable in its own
// per-member store under -state-dir) behind a routing front-end mounted
// at the logical ID: writes go to the member owning the device (stable
// hash of the device ID), merged checkouts and stats serve a
// periodically rebuilt checkin-count-weighted average ("mergeEveryMs" /
// -merge-every tunes the cadence). Devices use the same
// /v1/tasks/{id}/ routes either way; /v1/healthz reports one aggregated
// row with per-shard sub-rows. See docs/SHARDING.md.
//
// Example: a 3-class activity-recognition task over 64-bin FFT features,
// plus a read replica on another host:
//
//	crowdml-server -addr :8080 -classes 3 -dim 64 -rate 10 \
//	    -enroll-key join -state-dir /var/lib/crowdml
//	crowdml-server -addr :8081 -classes 3 -dim 64 \
//	    -follow http://leader.example:8080
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	crowdml "github.com/crowdml/crowdml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// taskSpec is one task entry of the -tasks JSON file (also synthesized
// from the single-task flags when -tasks is not given).
type taskSpec struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Model       string   `json:"model"` // logreg (default) or svm
	Classes     int      `json:"classes"`
	Dim         int      `json:"dim"`
	Rate        float64  `json:"rate"`   // c in η(t)=c/√t; default 10
	Radius      float64  `json:"radius"` // projection-ball radius (0 off)
	Tmax        int      `json:"tmax"`
	TargetError float64  `json:"targetError"`
	Labels      []string `json:"labels"`
	Objective   string   `json:"objective"`
	SensorData  string   `json:"sensorData"`
	Default     bool     `json:"default"`
	// Batched-checkin tuning (0 = server defaults): how many queued
	// checkins one batch leader applies per parameter-lock acquisition,
	// how deep the bounded pending queue is before checkins block, and
	// how many milliseconds a leader lingers to fill a partial batch.
	CheckinBatch   int `json:"checkinBatch"`
	CheckinQueue   int `json:"checkinQueue"`
	CheckinFlushMs int `json:"checkinFlushMs"`
	// CheckpointAfterN adds a count trigger to the task's checkpoint
	// policy: snapshot once this many checkins accumulated since the
	// last one (0 = timer only).
	CheckpointAfterN int `json:"checkpointAfterN"`
	// SyncPolicy selects the journal fsync policy with -state-dir:
	// "none" (default; OS-flushed, process-crash durability), "batch"
	// (group-commit fsync once per applied batch — power-loss
	// durability at amortized cost), or "every" (fsync per append).
	SyncPolicy string `json:"syncPolicy"`
	// Retention selects the sealed-segment retention policy with
	// -state-dir: "keep" (default; sealed segments accumulate forever
	// as the audit trail), "prune" (delete segments the latest
	// checkpoint fully covers), or "archive" (move covered segments
	// into ArchiveDir — or <state-dir>/<task-id>/archive when unset —
	// keeping the audit trail out of the recovery path).
	Retention string `json:"retention"`
	// ArchiveDir overrides where "archive" retention moves this task's
	// covered segments.
	ArchiveDir string `json:"archiveDir"`
	// Follow turns this task into a read-only follower replica of the
	// same task ID on the leader at this base URL: it bootstraps from the
	// leader's checkpoint, tails the leader's journal feed, serves
	// checkouts and stats locally, and rejects writes with a leader hint.
	// The -follow flag supplies a process-wide default. Follower tasks
	// are never durable locally (a dead follower re-bootstraps from its
	// leader), so -state-dir is ignored for them.
	Follow string `json:"follow"`
	// Shards splits the task across this many member leader tasks
	// ("{id}.shard-{k}", each with its own WAL/checkpoint lineage under
	// -state-dir) behind a routing front-end: writes go to the member
	// owning the device, merged reads are served from a periodically
	// rebuilt weighted average. 0 (the default) hosts a plain
	// single-leader task. Incompatible with "follow".
	Shards int `json:"shards"`
	// MergeEveryMs sets a sharded task's merger cadence in milliseconds
	// (0 = the library default).
	MergeEveryMs int `json:"mergeEveryMs"`
	// checkinFlush and mergeEvery carry the -checkin-flush and
	// -merge-every flags at full resolution for the single-task path
	// (unexported: the JSON path uses the millisecond fields above).
	checkinFlush time.Duration
	mergeEvery   time.Duration
}

// parseSyncPolicy maps the -sync flag / syncPolicy JSON field onto a
// crowdml.SyncPolicy ("every" accepts "always" as an alias).
func parseSyncPolicy(s string) (crowdml.SyncPolicy, error) {
	switch s {
	case "", "none":
		return crowdml.SyncNone, nil
	case "batch":
		return crowdml.SyncBatch, nil
	case "every", "always":
		return crowdml.SyncEvery, nil
	}
	return crowdml.SyncNone, fmt.Errorf("unknown sync policy %q (want none, batch or every)", s)
}

// parseRetention maps the -retention flag / retention JSON field onto a
// crowdml.RetentionPolicy. archiveDir is the task's resolved archive
// destination, used only by the "archive" mode.
func parseRetention(s, archiveDir string) (crowdml.RetentionPolicy, error) {
	switch s {
	case "", "keep":
		return crowdml.KeepAll, nil
	case "prune":
		return crowdml.PruneCovered, nil
	case "archive":
		return crowdml.ArchiveCovered(archiveDir), nil
	}
	return crowdml.KeepAll, fmt.Errorf("unknown retention policy %q (want keep, prune or archive)", s)
}

// flushInterval resolves the spec's flush setting, preferring the
// full-resolution flag value over the integer-millisecond JSON field so
// sub-millisecond flags are not truncated to "apply immediately".
func (s taskSpec) flushInterval() time.Duration {
	if s.checkinFlush > 0 {
		return s.checkinFlush
	}
	return time.Duration(s.CheckinFlushMs) * time.Millisecond
}

// mergeInterval resolves the sharded merger cadence the same way (0
// lets the library default apply).
func (s taskSpec) mergeInterval() time.Duration {
	if s.mergeEvery > 0 {
		return s.mergeEvery
	}
	return time.Duration(s.MergeEveryMs) * time.Millisecond
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		tasksFile  = flag.String("tasks", "", "JSON file describing the hosted tasks (overrides the single-task flags)")
		taskID     = flag.String("task", "default", "task ID for the single-task flags")
		classes    = flag.Int("classes", 3, "number of classes C")
		dim        = flag.Int("dim", 64, "feature dimensionality D")
		modelName  = flag.String("model", "logreg", "model: logreg or svm")
		rate       = flag.Float64("rate", 10, "learning-rate constant c in η(t)=c/√t")
		radius     = flag.Float64("radius", 0, "projection-ball radius R (0 disables)")
		tmax       = flag.Int("tmax", 0, "maximum iterations Tmax (0 = unbounded)")
		rho        = flag.Float64("target-error", 0, "stop when error estimate ≤ ρ (0 disables)")
		enrollKey  = flag.String("enroll-key", "", "enrollment key; empty disables self-enrollment")
		devices    = flag.Int("preregister", 0, "pre-register this many devices on the default task and print their tokens")
		stateDir   = flag.String("state-dir", "", "durability directory, one store per task (empty disables persistence)")
		saveEvery  = flag.Duration("checkpoint-every", time.Minute, "asynchronous checkpoint interval with -state-dir")
		syncMode   = flag.String("sync", "none", "journal fsync policy with -state-dir: none, batch (group-commit per applied batch), or every")
		retention  = flag.String("retention", "keep", "sealed-segment retention with -state-dir: keep, prune (delete checkpoint-covered segments), or archive (move them to -archive-dir)")
		archiveDir = flag.String("archive-dir", "", "where -retention archive moves covered segments (default <state-dir>/<task-id>/archive)")
		taskName   = flag.String("task-name", "Crowd-ML task", "task name shown on the portal (single-task flags)")
		taskLabels = flag.String("task-labels", "", "comma-separated class names for the portal (single-task flags)")

		checkinBatch = flag.Int("checkin-batch", 0, "max checkins applied per lock acquisition (0 = server default)")
		checkinQueue = flag.Int("checkin-queue", 0, "bounded pending-checkin queue depth (0 = server default)")
		checkinFlush = flag.Duration("checkin-flush", 0, "how long a batch leader lingers to fill a partial batch (0 = apply immediately)")

		follow     = flag.String("follow", "", "run as a follower replica of the leader at this base URL (per-task override: the tasks file's \"follow\" field)")
		followPoll = flag.Duration("follow-poll", 250*time.Millisecond, "how often a caught-up follower re-polls the leader's journal feed")

		shards     = flag.Int("shards", 0, "split the single-task-flags task across this many member leaders behind a routing front-end (0 = plain task; per-task: the tasks file's \"shards\" field)")
		mergeEvery = flag.Duration("merge-every", 0, "sharded merger cadence (0 = library default; per-task: \"mergeEveryMs\")")

		metricsOn = flag.Bool("metrics", true, "instrument all layers and serve Prometheus telemetry on /v1/metrics")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	specs := []taskSpec{{
		ID: *taskID, Name: *taskName, Model: *modelName,
		Classes: *classes, Dim: *dim, Rate: *rate, Radius: *radius,
		Tmax: *tmax, TargetError: *rho, Default: true,
		CheckinBatch: *checkinBatch, CheckinQueue: *checkinQueue,
		checkinFlush: *checkinFlush, SyncPolicy: *syncMode,
		Retention: *retention, ArchiveDir: *archiveDir,
		Shards: *shards, mergeEvery: *mergeEvery,
	}}
	if *taskLabels != "" {
		specs[0].Labels = strings.Split(*taskLabels, ",")
	}
	if *tasksFile != "" {
		payload, err := os.ReadFile(*tasksFile)
		if err != nil {
			return fmt.Errorf("read -tasks: %w", err)
		}
		// Fresh slice: Unmarshal into the flag-built one would leak the
		// flag defaults into JSON entries that omit those fields.
		specs = nil
		if err := json.Unmarshal(payload, &specs); err != nil {
			return fmt.Errorf("parse -tasks: %w", err)
		}
		if len(specs) == 0 {
			return errors.New("-tasks file defines no tasks")
		}
	}

	h := crowdml.NewHub()
	// One registry spans every task and layer; nil (with -metrics=false)
	// switches all instrumentation off at a single-branch cost per op.
	var reg *crowdml.MetricsRegistry
	if *metricsOn {
		reg = crowdml.NewMetricsRegistry()
	}
	var replicators []*crowdml.Replicator
	// Follower shutdown: stop every replication loop before durability is
	// flushed, whatever path run() exits through.
	defer func() {
		for _, r := range replicators {
			r.Stop()
		}
	}()
	var (
		groups []*crowdml.ShardedTask
		// defaultGroup is the sharded task that the "default" spec named,
		// so -preregister can enroll through its router (a sharded logical
		// task is not a hub task and cannot be the hub default).
		defaultGroup *crowdml.ShardedTask
	)
	// Sharded shutdown: stop every merger goroutine; the members flush
	// like any durable task when the hub closes.
	defer func() {
		for _, g := range groups {
			g.Stop()
		}
	}()
	for _, spec := range specs {
		if spec.Follow == "" {
			spec.Follow = *follow
		}
		if spec.Shards > 0 {
			g, err := createShardedTask(ctx, h, spec, *stateDir, *saveEvery, reg)
			if err != nil {
				flushHub(h)
				return err
			}
			groups = append(groups, g)
			if spec.Default {
				defaultGroup = g
			}
			continue
		}
		r, err := createTask(ctx, h, spec, *stateDir, *saveEvery, *followPoll, reg)
		if err != nil {
			flushHub(h)
			return err
		}
		if r != nil {
			r.Start(ctx)
			replicators = append(replicators, r)
		}
	}
	// Durability shutdown: flush a final checkpoint and close the journal
	// for every task, whatever path run() exits through. The normal path
	// flushes explicitly (inside the shutdown deadline) first; this defer
	// then finds everything already closed and is a no-op.
	defer flushHub(h)

	for i := 0; i < *devices; i++ {
		id := fmt.Sprintf("device-%03d", i)
		if defaultGroup != nil {
			// The router places the credential on the device's owning shard.
			token, err := defaultGroup.Register(ctx, id)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stdout, "registered %s token=%s on task %s (shard %s)\n",
				id, token, defaultGroup.LogicalID(), defaultGroup.RouteDevice(id))
			continue
		}
		task, ok := h.DefaultTask()
		if !ok {
			return errors.New("-preregister needs a default task")
		}
		token, err := task.Server().RegisterDevice(ctx, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "registered %s token=%s on task %s\n", id, token, task.ID())
	}

	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/", crowdml.NewHTTPHandlerWithMetrics(h, *enrollKey, reg))
	} else {
		mux.Handle("/", crowdml.NewHTTPHandler(h, *enrollKey))
	}
	mux.Handle("/portal/", http.StripPrefix("/portal", crowdml.NewPortalIndex(h)))
	mux.Handle("/portal", http.RedirectHandler("/portal/", http.StatusMovedPermanently))

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	log.Printf("crowdml-server: hosting %d task(s) on %s (portal at /portal/)", h.Len(), *addr)
	for _, t := range h.Tasks() {
		log.Printf("  task %s: %s", t.ID(), t.Info().Algorithm)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		// Drain in-flight HTTP requests (checkins applied during the drain
		// are journaled by their own requests), then flush every task's
		// durability under its OWN deadline — a slow client exhausting the
		// drain budget must not leave the final checkpoints to run (and
		// fail) against an already-dead context.
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpServer.Shutdown(drainCtx)
		flushHub(h)
		return err
	}
}

// flushHub closes hub durability (final checkpoint + journal close per
// task) under its own fresh deadline, logging each task's flush error
// instead of dropping it.
func flushHub(h *crowdml.Hub) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := h.Close(ctx)
	if err == nil {
		return
	}
	// Hub.Close joins one error per failing task; log them one line each.
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range joined.Unwrap() {
			log.Printf("durability flush: %v", e)
		}
		return
	}
	log.Printf("durability flush: %v", err)
}

// specConfig builds one task's server configuration and portal info
// from its spec. Every call returns a FRESH config — updaters are
// stateful, so the sharded path calls this once per member.
func specConfig(spec taskSpec) (crowdml.ServerConfig, crowdml.TaskInfo, error) {
	var info crowdml.TaskInfo
	// Validate the ID before it is used as an on-disk directory name —
	// hub.CreateTask would reject it too, but only after the state dir
	// had been created at a possibly escaped path.
	if !crowdml.ValidTaskID(spec.ID) {
		return crowdml.ServerConfig{}, info, fmt.Errorf("task %q: %w", spec.ID, crowdml.ErrBadTaskID)
	}
	if spec.Rate == 0 {
		spec.Rate = 10
	}
	if spec.Classes < 2 || spec.Dim < 1 {
		return crowdml.ServerConfig{}, info, fmt.Errorf("task %s: invalid shape classes=%d dim=%d (want classes ≥ 2, dim ≥ 1)",
			spec.ID, spec.Classes, spec.Dim)
	}
	var m crowdml.Model
	switch spec.Model {
	case "logreg", "":
		m = crowdml.NewLogisticRegression(spec.Classes, spec.Dim)
	case "svm":
		m = crowdml.NewLinearSVM(spec.Classes, spec.Dim)
	default:
		return crowdml.ServerConfig{}, info, fmt.Errorf("task %s: unknown model %q (want logreg or svm)", spec.ID, spec.Model)
	}
	cfg := crowdml.ServerConfig{
		Model:                m,
		Updater:              crowdml.NewSGD(crowdml.InvSqrt{C: spec.Rate}, spec.Radius),
		Tmax:                 spec.Tmax,
		TargetError:          spec.TargetError,
		CheckinBatchSize:     spec.CheckinBatch,
		CheckinQueueDepth:    spec.CheckinQueue,
		CheckinFlushInterval: spec.flushInterval(),
	}

	labels := spec.Labels
	if len(labels) == 0 {
		for k := 0; k < spec.Classes; k++ {
			labels = append(labels, fmt.Sprintf("class %d", k))
		}
	}
	name := spec.Name
	if name == "" {
		name = spec.ID
	}
	objective := spec.Objective
	if objective == "" {
		objective = "Collectively learn a shared classifier from device data with local differential privacy."
	}
	sensorData := spec.SensorData
	if sensorData == "" {
		sensorData = "Device-local features; only noise-sanitized gradients and counters ever leave a device."
	}
	info = crowdml.TaskInfo{
		Name:       name,
		Objective:  objective,
		SensorData: sensorData,
		Labels:     labels,
		Algorithm:  fmt.Sprintf("%s via privacy-preserving distributed SGD (η(t)=%g/√t)", m.Name(), spec.Rate),
	}
	return cfg, info, nil
}

// createShardedTask builds one sharded logical task: N member leaders
// ("{id}.shard-{k}") behind a routing front-end mounted under the
// spec's ID. With a state directory every member is durable in its own
// per-member store, so a restarted server resumes each shard's lineage.
func createShardedTask(ctx context.Context, h *crowdml.Hub, spec taskSpec, stateDir string, saveEvery time.Duration, reg *crowdml.MetricsRegistry) (*crowdml.ShardedTask, error) {
	if spec.Follow != "" {
		return nil, fmt.Errorf("task %s: a sharded task cannot follow a leader (replicate per member instead)", spec.ID)
	}
	// Validates the spec (and yields the shared portal info) before any
	// member exists.
	_, info, err := specConfig(spec)
	if err != nil {
		return nil, err
	}
	opts := []crowdml.ShardOption{
		crowdml.WithShards(spec.Shards),
		crowdml.WithShardInfo(info),
	}
	if d := spec.mergeInterval(); d > 0 {
		opts = append(opts, crowdml.WithShardMergeInterval(d))
	}
	if reg != nil {
		opts = append(opts, crowdml.WithShardMetrics(reg))
	}
	if stateDir != "" {
		sync, err := parseSyncPolicy(spec.SyncPolicy)
		if err != nil {
			return nil, fmt.Errorf("task %s: %w", spec.ID, err)
		}
		root, err := crowdml.NewFileRoot(stateDir)
		if err != nil {
			return nil, err
		}
		opts = append(opts,
			crowdml.WithShardStores(root),
			crowdml.WithShardTaskOptions(
				crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{
					Every:  saveEvery,
					AfterN: spec.CheckpointAfterN,
				}),
				crowdml.WithSyncPolicy(sync)))
		// Retention resolves per member: each archive destination lives
		// inside that member's own store directory.
		retSpec := spec
		opts = append(opts, crowdml.WithShardMemberTaskOptions(
			func(k int, memberID string) []crowdml.TaskOption {
				adir := retSpec.ArchiveDir
				if adir == "" {
					adir = filepath.Join(stateDir, memberID, "archive")
				} else {
					adir = filepath.Join(retSpec.ArchiveDir, memberID)
				}
				ret, err := parseRetention(retSpec.Retention, adir)
				if err != nil {
					// Surfaced below: an invalid mode fails the throwaway
					// parse too.
					ret = crowdml.KeepAll
				}
				return []crowdml.TaskOption{crowdml.WithRetention(ret)}
			}))
		if _, err := parseRetention(spec.Retention, ""); err != nil {
			return nil, fmt.Errorf("task %s: %w", spec.ID, err)
		}
	}
	g, err := crowdml.NewShardedTask(ctx, h, spec.ID, func(int) crowdml.ServerConfig {
		cfg, _, _ := specConfig(spec)
		return cfg
	}, opts...)
	if err != nil {
		return nil, err
	}
	resumed := 0
	for _, mt := range g.Members() {
		resumed += mt.Server().Iteration()
	}
	if stateDir != "" && resumed > 0 {
		log.Printf("task %s: %d shards resumed at merged iteration %d", spec.ID, spec.Shards, resumed)
	} else {
		log.Printf("task %s: sharded across %d member leaders (map v%d)", spec.ID, spec.Shards, g.MapVersion())
	}
	return g, nil
}

// createTask builds one task from its spec and registers it on the hub;
// with a state directory the task is durable (write-ahead journal +
// asynchronous checkpoints) and resumes any persisted state. A spec with
// a Follow URL instead becomes a read-only follower replica; the
// returned Replicator (nil for leader tasks) is ready to Start. A
// non-nil reg instruments the task (core hot paths, durability, and —
// for followers — the replication loop) into the shared registry.
func createTask(ctx context.Context, h *crowdml.Hub, spec taskSpec, stateDir string, saveEvery, followPoll time.Duration, reg *crowdml.MetricsRegistry) (*crowdml.Replicator, error) {
	cfg, info, err := specConfig(spec)
	if err != nil {
		return nil, err
	}
	opts := []crowdml.TaskOption{crowdml.WithTaskInfo(info)}
	if spec.Default {
		opts = append(opts, crowdml.AsDefaultTask())
	}
	if reg != nil {
		opts = append(opts, crowdml.WithMetrics(reg))
	}
	if spec.Follow != "" {
		// Follower replica: no local store (re-bootstrap covers a dead
		// follower), leader-vouched auth for devices checking out here,
		// and a replication runtime tailing the leader's journal feed.
		if stateDir != "" {
			log.Printf("task %s: follower of %s; -state-dir ignored", spec.ID, spec.Follow)
		}
		feed := crowdml.NewHTTPClient(spec.Follow, nil).
			WithTask(spec.ID).
			WithRetry(crowdml.RetryPolicy{})
		cfg.AuthFallback = feed.AuthProbe
		opts = append(opts, crowdml.AsReplicaOf(spec.Follow))
		task, err := h.CreateTask(ctx, spec.ID, cfg, opts...)
		if err != nil {
			return nil, err
		}
		r, err := crowdml.NewReplicator(crowdml.ReplicaConfig{
			Task:         task,
			Feed:         feed,
			PollInterval: followPoll,
			Logf:         log.Printf,
			Metrics:      reg,
		})
		if err != nil {
			return nil, err
		}
		log.Printf("task %s: following %s", spec.ID, spec.Follow)
		return r, nil
	}
	var fs *crowdml.FileStore
	if stateDir != "" {
		sync, err := parseSyncPolicy(spec.SyncPolicy)
		if err != nil {
			return nil, fmt.Errorf("task %s: %w", spec.ID, err)
		}
		// The default archive destination lives INSIDE the task's store
		// directory (Segments skips subdirectories), so archived history
		// travels with the store in backups without ever being mistaken
		// for another task by a root listing.
		adir := spec.ArchiveDir
		if adir == "" {
			adir = filepath.Join(stateDir, spec.ID, "archive")
		}
		ret, err := parseRetention(spec.Retention, adir)
		if err != nil {
			return nil, fmt.Errorf("task %s: %w", spec.ID, err)
		}
		fs, err = crowdml.NewFileStore(filepath.Join(stateDir, spec.ID))
		if err != nil {
			return nil, err
		}
		opts = append(opts,
			crowdml.WithStore(fs),
			crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{
				Every:  saveEvery,
				AfterN: spec.CheckpointAfterN,
			}),
			crowdml.WithSyncPolicy(sync),
			crowdml.WithRetention(ret))
	}
	task, err := h.CreateTask(ctx, spec.ID, cfg, opts...)
	if err != nil {
		return nil, err
	}
	if fs != nil {
		// Iteration alone can't tell "fresh" from "restored at iteration
		// 0" (a clean shutdown before any checkin still checkpoints); the
		// store's existence probe avoids re-decoding the checkpoint the
		// restore path just loaded.
		hasCP, _ := fs.HasCheckpoint(ctx)
		if hasCP || task.Server().Iteration() > 0 {
			log.Printf("task %s: resumed at iteration %d", spec.ID, task.Server().Iteration())
		} else {
			log.Printf("task %s: no persisted state; starting fresh", spec.ID)
		}
	}
	return nil, nil
}
