// Command crowdml-server runs a Crowd-ML learning server over HTTP — the
// central component of the paper's prototype (Section V-A, there an
// Apache/MySQL/Django deployment). It serves:
//
//   - /v1/checkout, /v1/checkin — the device protocol of Algorithm 2;
//   - /v1/stats — differentially private progress statistics (JSON);
//   - /v1/register — device enrollment, guarded by -enroll-key;
//   - /portal — the public task page with live DP statistics.
//
// With -state-dir, the server checkpoints its learning state to disk and
// resumes from the latest checkpoint on restart (the MySQL durability role
// in the original prototype).
//
// Example: a 3-class activity-recognition task over 64-bin FFT features:
//
//	crowdml-server -addr :8080 -classes 3 -dim 64 -rate 10 \
//	    -enroll-key join -state-dir /var/lib/crowdml
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	crowdml "github.com/crowdml/crowdml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		classes    = flag.Int("classes", 3, "number of classes C")
		dim        = flag.Int("dim", 64, "feature dimensionality D")
		modelName  = flag.String("model", "logreg", "model: logreg or svm")
		rate       = flag.Float64("rate", 10, "learning-rate constant c in η(t)=c/√t")
		radius     = flag.Float64("radius", 0, "projection-ball radius R (0 disables)")
		tmax       = flag.Int("tmax", 0, "maximum iterations Tmax (0 = unbounded)")
		rho        = flag.Float64("target-error", 0, "stop when error estimate ≤ ρ (0 disables)")
		enrollKey  = flag.String("enroll-key", "", "enrollment key; empty disables self-enrollment")
		devices    = flag.Int("preregister", 0, "pre-register this many devices and print their tokens")
		stateDir   = flag.String("state-dir", "", "checkpoint directory (empty disables persistence)")
		saveEvery  = flag.Duration("checkpoint-every", time.Minute, "checkpoint interval with -state-dir")
		taskName   = flag.String("task-name", "Crowd-ML task", "task name shown on the portal")
		taskLabels = flag.String("task-labels", "", "comma-separated class names for the portal")
	)
	flag.Parse()

	var m crowdml.Model
	switch *modelName {
	case "logreg":
		m = crowdml.NewLogisticRegression(*classes, *dim)
	case "svm":
		m = crowdml.NewLinearSVM(*classes, *dim)
	default:
		return fmt.Errorf("unknown model %q (want logreg or svm)", *modelName)
	}

	cfg := crowdml.ServerConfig{
		Model:       m,
		Updater:     crowdml.NewSGD(crowdml.InvSqrt{C: *rate}, *radius),
		Tmax:        *tmax,
		TargetError: *rho,
	}

	// Restore from checkpoints, journal checkins, and save periodically.
	stop := make(chan struct{})
	done := make(chan struct{})
	close(stop) // re-made below only when persistence is on
	close(done)
	var (
		fs      *crowdml.FileStore
		journal interface {
			Append(crowdml.JournalEntry) error
			Close() error
		}
	)
	if *stateDir != "" {
		var err error
		fs, err = crowdml.NewFileStore(*stateDir)
		if err != nil {
			return err
		}
		journal, err = fs.OpenJournal()
		if err != nil {
			return err
		}
		defer journal.Close()
		cfg.OnCheckin = func(deviceID string, iteration int, req *crowdml.CheckinRequest) {
			var norm1 float64
			for _, v := range req.Grad {
				if v < 0 {
					norm1 -= v
				} else {
					norm1 += v
				}
			}
			entry := crowdml.JournalEntry{
				AtUnixMillis: time.Now().UnixMilli(),
				DeviceID:     deviceID,
				Iteration:    iteration,
				NumSamples:   req.NumSamples,
				ErrCount:     req.ErrCount,
				GradNorm1:    norm1,
			}
			if err := journal.Append(entry); err != nil {
				log.Printf("journal append failed: %v", err)
			}
		}
	}

	server, err := crowdml.NewServer(cfg)
	if err != nil {
		return err
	}
	if fs != nil {
		cp, err := fs.Load()
		switch {
		case err == nil:
			if err := server.ImportState(cp.State); err != nil {
				return fmt.Errorf("restore checkpoint: %w", err)
			}
			log.Printf("restored checkpoint at iteration %d", cp.State.Iteration)
		case errors.Is(err, crowdml.ErrNoCheckpoint):
			log.Printf("no checkpoint in %s; starting fresh", *stateDir)
		default:
			return err
		}
		stop = make(chan struct{})
		done = make(chan struct{})
		go func() {
			defer close(done)
			ticker := time.NewTicker(*saveEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := fs.Save(server.ExportState(), time.Now()); err != nil {
						log.Printf("checkpoint failed: %v", err)
					}
				case <-stop:
					if err := fs.Save(server.ExportState(), time.Now()); err != nil {
						log.Printf("final checkpoint failed: %v", err)
					}
					return
				}
			}
		}()
		defer func() {
			close(stop)
			<-done
		}()
	}

	for i := 0; i < *devices; i++ {
		id := fmt.Sprintf("device-%03d", i)
		token, err := server.RegisterDevice(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "registered %s token=%s\n", id, token)
	}

	var labels []string
	if *taskLabels != "" {
		labels = strings.Split(*taskLabels, ",")
	} else {
		for k := 0; k < *classes; k++ {
			labels = append(labels, fmt.Sprintf("class %d", k))
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/", crowdml.NewHTTPHandler(server, *enrollKey))
	mux.Handle("/portal", crowdml.NewPortal(server, crowdml.TaskInfo{
		Name:       *taskName,
		Objective:  "Collectively learn a shared classifier from device data with local differential privacy.",
		SensorData: "Device-local features; only noise-sanitized gradients and counters ever leave a device.",
		Labels:     labels,
		Algorithm:  fmt.Sprintf("%s via privacy-preserving distributed SGD (η(t)=%g/√t)", m.Name(), *rate),
	}))

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("crowdml-server: %s model, C=%d D=%d, listening on %s (portal at /portal)",
		*modelName, *classes, *dim, *addr)
	return httpServer.ListenAndServe()
}
