// Command crowdml-device simulates one smart device participating in a
// Crowd-ML task over HTTP: it enrolls with the server, generates activity-
// recognition samples from the synthetic accelerometer simulator
// (Section V-B's pipeline: 20 Hz tri-axial accelerometer → |a| over 3.2 s
// windows → 64-bin FFT → L1 normalization), sanitizes its contributions
// with local differential privacy, and streams them until the server stops
// the task or the sample budget is exhausted.
//
// Example:
//
//	crowdml-device -server http://localhost:8080 -id phone-1 \
//	    -enroll-key join -samples 300 -minibatch 1 -eps-inv 0.1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		serverURL = flag.String("server", "http://localhost:8080", "server base URL")
		id        = flag.String("id", "phone-1", "device ID")
		enrollKey = flag.String("enroll-key", "", "enrollment key (empty: use -token)")
		token     = flag.String("token", "", "pre-registered auth token")
		samples   = flag.Int("samples", 300, "number of samples to contribute")
		minibatch = flag.Int("minibatch", 1, "minibatch size b")
		epsInv    = flag.Float64("eps-inv", 0, "privacy level ε⁻¹ for gradients (0 = off)")
		interval  = flag.Duration("interval", 0, "delay between samples (0 = as fast as possible)")
		seed      = flag.Uint64("seed", 0, "sensor-simulation seed (default: derived from id)")
	)
	flag.Parse()

	ctx := context.Background()
	client := crowdml.NewHTTPClient(*serverURL, nil)
	authToken := *token
	if authToken == "" {
		if *enrollKey == "" {
			return errors.New("either -token or -enroll-key is required")
		}
		var err error
		authToken, err = client.Register(ctx, *id, *enrollKey)
		if err != nil {
			return fmt.Errorf("enroll: %w", err)
		}
		log.Printf("%s: enrolled", *id)
	}

	s := *seed
	if s == 0 {
		for _, c := range *id {
			s = s*131 + uint64(c)
		}
	}
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: *id, Token: authToken, Model: m,
		Transport: client,
		Minibatch: *minibatch,
		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(*epsInv)},
		Seed:      s,
	})
	if err != nil {
		return err
	}

	gen := activity.NewGenerator(s)
	sent := 0
	for sent < *samples {
		sample, err := gen.Next()
		if err != nil {
			return err
		}
		err = device.AddSample(ctx, sample)
		switch {
		case errors.Is(err, crowdml.ErrStopped):
			log.Printf("%s: server reports task complete after %d samples", *id, sent)
			return nil
		case errors.Is(err, crowdml.ErrBufferFull):
			log.Printf("%s: buffer full, backing off", *id)
			time.Sleep(time.Second)
			continue
		case err != nil:
			// Communication failures are non-critical (paper Remark 1):
			// the sample stays buffered and the flush retries later.
			log.Printf("%s: transient: %v", *id, err)
		}
		sent++
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	log.Printf("%s: contributed %d samples in %d checkins", *id, sent, device.Checkins())
	return nil
}
