// Command crowdml-device simulates one smart device participating in a
// Crowd-ML task over HTTP: it enrolls with the server, generates activity-
// recognition samples from the synthetic accelerometer simulator
// (Section V-B's pipeline: 20 Hz tri-axial accelerometer → |a| over 3.2 s
// windows → 64-bin FFT → L1 normalization), sanitizes its contributions
// with local differential privacy, and streams them until the server stops
// the task or the sample budget is exhausted.
//
// With -task, the device joins that task on a multi-task server via the
// task-scoped /v1/tasks/{id}/ routes; without it, the server's default
// task via the legacy /v1/* paths.
//
// Example:
//
//	crowdml-device -server http://localhost:8080 -task activity -id phone-1 \
//	    -enroll-key join -samples 300 -minibatch 1 -eps-inv 0.1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		serverURL = flag.String("server", "http://localhost:8080", "server base URL")
		taskID    = flag.String("task", "", "task ID to join (empty: the server's default task)")
		id        = flag.String("id", "phone-1", "device ID")
		enrollKey = flag.String("enroll-key", "", "enrollment key (empty: use -token)")
		token     = flag.String("token", "", "pre-registered auth token")
		samples   = flag.Int("samples", 300, "number of samples to contribute")
		minibatch = flag.Int("minibatch", 1, "minibatch size b")
		epsInv    = flag.Float64("eps-inv", 0, "privacy level ε⁻¹ for gradients (0 = off)")
		interval  = flag.Duration("interval", 0, "delay between samples (0 = as fast as possible)")
		seed      = flag.Uint64("seed", 0, "sensor-simulation seed (default: derived from id)")
		wire      = flag.String("wire", "json", "wire format for checkout/checkin: json, binary or binary-delta")
	)
	flag.Parse()

	wireFormat, err := crowdml.ParseWireFormat(*wire)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := crowdml.NewHTTPClient(*serverURL, nil)
	if *taskID != "" {
		client = client.WithTask(*taskID)
	}
	if wireFormat != crowdml.WireJSON {
		client = client.WithWire(wireFormat)
	}
	authToken := *token
	if authToken == "" {
		if *enrollKey == "" {
			return errors.New("either -token or -enroll-key is required")
		}
		var err error
		authToken, err = client.Register(ctx, *id, *enrollKey)
		if err != nil {
			return fmt.Errorf("enroll: %w", err)
		}
		log.Printf("%s: enrolled", *id)
	}

	s := *seed
	if s == 0 {
		for _, c := range *id {
			s = s*131 + uint64(c)
		}
	}
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: *id, Token: authToken, Model: m,
		Transport: client,
		Minibatch: *minibatch,
		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(*epsInv)},
		Seed:      s,
	})
	if err != nil {
		return err
	}

	gen := activity.NewGenerator(s)
	var src crowdml.SampleSource = gen
	if *interval > 0 {
		src = &pacedSource{inner: gen, ctx: ctx, interval: *interval}
	}
	sent := 0
	for sent < *samples {
		n, err := device.Run(ctx, src, *samples-sent)
		sent += n
		switch {
		case errors.Is(err, context.Canceled):
			// Ctrl-C / SIGTERM: stand down cleanly.
			log.Printf("%s: interrupted after %d samples", *id, sent)
			return nil
		case errors.Is(err, crowdml.ErrTaskNotFound):
			// The task does not exist on this server: retrying cannot help.
			return err
		case errors.Is(err, crowdml.ErrBufferFull):
			log.Printf("%s: buffer full, backing off: %v", *id, err)
			select {
			case <-time.After(time.Second):
				continue
			case <-ctx.Done():
				log.Printf("%s: interrupted after %d samples", *id, sent)
				return nil
			}
		case err != nil:
			return err
		}
		break // Run finished: max reached, source drained, or task stopped.
	}
	if device.Done() {
		log.Printf("%s: server reports task complete after %d samples", *id, sent)
		return nil
	}
	log.Printf("%s: contributed %d samples in %d checkins", *id, sent, device.Checkins())
	return nil
}

// pacedSource throttles a sample source to the configured interval,
// mimicking a real sensor's sampling cadence.
type pacedSource struct {
	inner    crowdml.SampleSource
	ctx      context.Context
	interval time.Duration
	started  bool
}

func (p *pacedSource) Next() (crowdml.Sample, error) {
	if p.started {
		select {
		case <-time.After(p.interval):
		case <-p.ctx.Done():
			return crowdml.Sample{}, p.ctx.Err()
		}
	}
	p.started = true
	return p.inner.Next()
}
