// Command crowdml-scenario runs named or file-defined deterministic
// scenarios against the real Crowd-ML HTTP stack and writes a
// machine-readable JSON report: convergence curve, throughput, churn and
// rejection counts, and scraped /v1/metrics deltas.
//
// Examples:
//
//	crowdml-scenario -list                       # show built-in scenarios
//	crowdml-scenario -name churn-straggler-2k    # run a built-in
//	crowdml-scenario -file my-scenario.json -o report.json
//	crowdml-scenario -name byzantine-2k -seed 7 -workers 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/crowdml/crowdml/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		name    = flag.String("name", "", "built-in scenario to run (see -list)")
		file    = flag.String("file", "", "JSON scenario spec file to run instead of a built-in")
		list    = flag.Bool("list", false, "list built-in scenarios and exit")
		out     = flag.String("o", "", "write the JSON report here (default stdout)")
		seed    = flag.Uint64("seed", 0, "override the spec's seed (0 keeps it)")
		workers = flag.Int("workers", 0, "override the spec's worker count (0 keeps it; 1 = deterministic)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(scenario.BuiltinNames(), "\n"))
		return nil
	}

	var spec scenario.Spec
	switch {
	case *file != "":
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("parse %s: %w", *file, err)
		}
	case *name != "":
		s, ok := scenario.Builtin(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", *name)
		}
		spec = s
	default:
		return fmt.Errorf("one of -name or -file is required (or -list)")
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *workers != 0 {
		spec.Workers = *workers
	}

	rep, err := scenario.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
