package crowdml_test

import (
	"context"
	"fmt"
	"os"
	"time"

	crowdml "github.com/crowdml/crowdml"
)

// exampleConfig is the minimal deterministic task the examples share: a
// 2-class logistic regression with a constant-rate SGD updater.
func exampleConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(2, 3),
		Updater: crowdml.NewSGD(crowdml.Constant{C: 0.1}, 0),
	}
}

// exampleCheckin pushes one deterministic sanitized checkin.
func exampleCheckin(ctx context.Context, task *crowdml.Task, deviceID string) error {
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, deviceID)
	if err != nil {
		return err
	}
	co, err := srv.Checkout(ctx, deviceID, token)
	if err != nil {
		return err
	}
	return srv.Checkin(ctx, deviceID, token, &crowdml.CheckinRequest{
		Grad:        []float64{0.5, -0.25, 1, 0, 0.125, -1},
		NumSamples:  2,
		LabelCounts: []int{1, 1},
		Version:     co.Version,
	})
}

// ExampleOpenHub shows the whole durability lifecycle: create a durable
// task, absorb checkins, shut down cleanly, and reopen the process from
// its StoreRoot — the task resumes on its exact pre-shutdown iteration.
func ExampleOpenHub() {
	ctx := context.Background()
	root := crowdml.NewMemRoot() // production: crowdml.NewFileRoot("/var/lib/crowdml")

	configure := func(taskID string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
		return exampleConfig(), nil, nil // or crowdml.ErrSkipTask
	}

	// First boot: the root is empty, so OpenHub restores nothing and the
	// task is created explicitly.
	hub, err := crowdml.OpenHub(ctx, root, configure)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	st, _ := root.Open(ctx, "activity")
	task, err := hub.CreateTask(ctx, "activity", exampleConfig(), crowdml.WithStore(st))
	if err != nil {
		fmt.Println("create:", err)
		return
	}
	for _, device := range []string{"phone-1", "phone-2"} {
		if err := exampleCheckin(ctx, task, device); err != nil {
			fmt.Println("checkin:", err)
			return
		}
	}
	if err := hub.Close(ctx); err != nil { // final checkpoint + journal close
		fmt.Println("close:", err)
		return
	}

	// Restart: OpenHub rebuilds every persisted task from the root.
	hub, err = crowdml.OpenHub(ctx, root, configure)
	if err != nil {
		fmt.Println("reopen:", err)
		return
	}
	restored, _ := hub.Task("activity")
	fmt.Println("resumed at iteration", restored.Server().Iteration())
	if err := hub.Close(ctx); err != nil {
		fmt.Println("close:", err)
	}
	// Output: resumed at iteration 2
}

// ExampleWithCheckpointPolicy demonstrates the checkpoint → rotation
// coupling: once the AfterN trigger snapshots the state, the journal
// rotates onto a fresh segment, so a restart replays only the live tail.
func ExampleWithCheckpointPolicy() {
	ctx := context.Background()
	st := crowdml.NewMemStore()
	hub := crowdml.NewHub()
	task, err := hub.CreateTask(ctx, "activity", exampleConfig(),
		crowdml.WithStore(st),
		crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{
			Every:  time.Minute, // timer trigger
			AfterN: 2,           // count trigger; both coalesce
		}))
	if err != nil {
		fmt.Println("create:", err)
		return
	}
	for _, device := range []string{"phone-1", "phone-2"} {
		if err := exampleCheckin(ctx, task, device); err != nil {
			fmt.Println("checkin:", err)
			return
		}
	}
	// The checkpointer is asynchronous; wait for the AfterN snapshot's
	// rotation to land.
	for st.SegmentCount() < 2 {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("segments after the first checkpoint:", st.SegmentCount())
	if err := hub.Close(ctx); err != nil {
		fmt.Println("close:", err)
	}
	// Output: segments after the first checkpoint: 2
}

// ExampleWithSyncPolicy upgrades a file-backed task from process-crash
// durability (the default) to power-loss durability with group-commit
// fsync: the batch leader fsyncs the journal once per applied batch,
// before any of the batch's checkins are acknowledged.
func ExampleWithSyncPolicy() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "crowdml-example-")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)
	st, err := crowdml.NewFileStore(dir)
	if err != nil {
		fmt.Println("store:", err)
		return
	}
	hub := crowdml.NewHub()
	task, err := hub.CreateTask(ctx, "activity", exampleConfig(),
		crowdml.WithStore(st),
		crowdml.WithSyncPolicy(crowdml.SyncBatch)) // group-commit fsync
	if err != nil {
		fmt.Println("create:", err)
		return
	}
	if err := exampleCheckin(ctx, task, "phone-1"); err != nil {
		fmt.Println("checkin:", err)
		return
	}
	if err := hub.Close(ctx); err != nil {
		fmt.Println("close:", err)
		return
	}
	// Audit the journal back through a streaming cursor: entries arrive
	// one at a time (io.EOF ends the stream), so even a huge journal
	// costs one decoded entry of memory to scan.
	cur, err := st.OpenCursor(ctx, 0)
	if err != nil {
		fmt.Println("cursor:", err)
		return
	}
	defer cur.Close()
	n := 0
	for {
		if _, err := cur.Next(); err != nil {
			break // io.EOF: clean end of the journal
		}
		n++
	}
	fmt.Printf("%d checkin on stable storage before its acknowledgment\n", n)
	// Output: 1 checkin on stable storage before its acknowledgment
}

// ExampleWithRetention bounds a durable task's disk growth: with
// PruneCovered, every successful checkpoint-and-rotate cycle deletes
// the sealed segments the fresh checkpoint covers, so the journal
// shrinks back to its live segment instead of accumulating history
// forever (ArchiveCovered moves them aside instead, keeping the audit
// trail).
func ExampleWithRetention() {
	ctx := context.Background()
	st := crowdml.NewMemStore()
	hub := crowdml.NewHub()
	task, err := hub.CreateTask(ctx, "activity", exampleConfig(),
		crowdml.WithStore(st),
		crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 2}),
		crowdml.WithRetention(crowdml.PruneCovered))
	if err != nil {
		fmt.Println("create:", err)
		return
	}
	for _, device := range []string{"phone-1", "phone-2"} {
		if err := exampleCheckin(ctx, task, device); err != nil {
			fmt.Println("checkin:", err)
			return
		}
	}
	// The AfterN checkpoint seals the old segment and retention prunes
	// it; wait (bounded) for the asynchronous cycle to land. The cycle
	// is over when the chain is back to one segment whose sequence
	// number has advanced past the pruned one.
	for deadline := time.Now().Add(10 * time.Second); ; {
		segs, err := st.Segments(ctx)
		if err != nil {
			fmt.Println("segments:", err)
			return
		}
		if len(segs) == 1 && segs[0].Seq == 2 {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("prune cycle never landed:", segs)
			return
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("segments after the prune cycle: 1")
	if err := hub.Close(ctx); err != nil {
		fmt.Println("close:", err)
	}
	// Output: segments after the prune cycle: 1
}
