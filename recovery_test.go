// End-to-end crash-recovery test for the durability redesign: a crowd of
// devices runs against a journaled task, the server "crashes" without a
// final checkpoint, and OpenHub must reconstruct the exact pre-crash
// state — the same iteration counter, crowd totals and parameter vector
// a never-crashed control run produces. Zero acknowledged-checkin loss,
// on both shipped Store implementations.
package crowdml_test

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/rng"
)

const (
	recClasses   = 3
	recDim       = 6
	recDevices   = 4
	recPerDevice = 30
	recMinibatch = 5
)

func recServerConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(recClasses, recDim),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 5}, 0),
	}
}

// driveCrowd runs the deterministic workload: recDevices devices feed
// their samples round-robin, one sample per turn, so every run applies
// the identical checkin sequence (seeded devices, seeded sample streams,
// sequential submission — bit-identical SGD trajectories).
func driveCrowd(t *testing.T, task *crowdml.Task) {
	t.Helper()
	driveCrowdSeeded(t, task, 0)
}

// driveCrowdSeeded is driveCrowd with a seed offset, so multi-phase
// tests can run several distinct-but-deterministic workload waves.
func driveCrowdSeeded(t *testing.T, task *crowdml.Task, seedBase uint64) {
	t.Helper()
	ctx := context.Background()
	m := crowdml.NewLogisticRegression(recClasses, recDim)
	devices := make([]*crowdml.Device, recDevices)
	sources := make([]*rng.RNG, recDevices)
	for i := range devices {
		id := deviceID(i)
		token, err := task.Server().RegisterDevice(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		devices[i], err = crowdml.NewDevice(crowdml.DeviceConfig{
			ID: id, Token: token, Model: m,
			Transport: crowdml.NewLoopback(task.Server()),
			Minibatch: recMinibatch,
			Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.05)},
			Seed:      seedBase + uint64(i+1),
		})
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = rng.New(seedBase + uint64(100+i))
	}
	for n := 0; n < recPerDevice; n++ {
		for i, d := range devices {
			x := make([]float64, recDim)
			for k := range x {
				x[k] = sources[i].Uniform(-1, 1)
			}
			crowdml.NormalizeL1(x)
			if err := d.AddSample(ctx, crowdml.Sample{X: x, Y: sources[i].Intn(recClasses)}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func deviceID(i int) string {
	return string(rune('a'+i)) + "-device"
}

func TestCrashRecoveryMatchesUncrashedRun(t *testing.T) {
	ctx := context.Background()

	// Control: the same workload on a store-less task, never crashed.
	control := crowdml.NewHub()
	controlTask, err := control.CreateTask(ctx, "task", recServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveCrowd(t, controlTask)
	want := controlTask.Server().ExportState()
	wantCheckins := recDevices * (recPerDevice / recMinibatch)
	if want.Iteration != wantCheckins {
		t.Fatalf("control run applied %d checkins, expected %d", want.Iteration, wantCheckins)
	}

	roots := map[string]func(t *testing.T) (crowdml.StoreRoot, string){
		"MemStore": func(t *testing.T) (crowdml.StoreRoot, string) {
			return crowdml.NewMemRoot(), ""
		},
		"FileStore": func(t *testing.T) (crowdml.StoreRoot, string) {
			dir := t.TempDir()
			root, err := crowdml.NewFileRoot(dir)
			if err != nil {
				t.Fatal(err)
			}
			return root, dir
		},
	}
	for name, mkRoot := range roots {
		t.Run(name, func(t *testing.T) {
			root, dir := mkRoot(t)
			st, err := root.Open(ctx, "task")
			if err != nil {
				t.Fatal(err)
			}
			crashed := crowdml.NewHub()
			task, err := crashed.CreateTask(ctx, "task", recServerConfig(),
				crowdml.WithStore(st),
				// A count policy exercises mid-run async snapshots, so the
				// recovery path is genuinely snapshot + journal tail (and
				// journal-only when the checkpointer didn't get to run).
				crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 7}))
			if err != nil {
				t.Fatal(err)
			}
			driveCrowd(t, task)
			preCrash := task.Server().ExportState()

			// Crash: the hub is dropped with no Hub.Close, so no final
			// checkpoint covers the journal tail. On the file backend the
			// crash is simulated faithfully: the store tree is frozen by
			// copying it to a fresh root — a dead process's files stop
			// changing and the kernel releases its journal flock, which is
			// exactly what the copy gives us (the in-process "crashed" hub
			// still holds the original directory's lock) — and the live
			// journal segment is then torn mid-append the way a dying
			// process would leave it.
			if dir != "" {
				crashDir := t.TempDir()
				copyTree(t, dir, crashDir)
				tearLiveSegment(t, filepath.Join(crashDir, "task"))
				root, err = crowdml.NewFileRoot(crashDir)
				if err != nil {
					t.Fatal(err)
				}
			}

			reopened, err := crowdml.OpenHub(ctx, root, func(taskID string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
				return recServerConfig(), nil, nil
			})
			if err != nil {
				t.Fatalf("OpenHub: %v", err)
			}
			restoredTask, ok := reopened.Task("task")
			if !ok {
				t.Fatal("OpenHub did not restore the task")
			}
			got := restoredTask.Server().ExportState()

			// Zero acknowledged-checkin loss: the recovered state must be
			// EXACTLY the pre-crash state, which must be EXACTLY the
			// never-crashed control state — iteration counter, parameter
			// vector, crowd totals and per-device counters alike.
			if !reflect.DeepEqual(got, preCrash) {
				t.Errorf("recovered state != pre-crash state:\n got: %+v\nwant: %+v", got, preCrash)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state != uncrashed control state:\n got: %+v\nwant: %+v", got, want)
			}
			if got.Iteration != wantCheckins {
				t.Errorf("recovered iteration = %d, want %d", got.Iteration, wantCheckins)
			}

			// The restored task keeps learning AND journaling: new checkins
			// apply and survive a clean shutdown + second reopen.
			token, err := restoredTask.Server().RegisterDevice(ctx, "late-device")
			if err != nil {
				t.Fatal(err)
			}
			co, err := restoredTask.Server().Checkout(ctx, "late-device", token)
			if err != nil {
				t.Fatal(err)
			}
			req := &crowdml.CheckinRequest{
				Grad:        make([]float64, recClasses*recDim),
				NumSamples:  1,
				LabelCounts: make([]int, recClasses),
				Version:     co.Version,
			}
			req.Grad[0] = 0.25
			req.LabelCounts[0] = 1
			if err := restoredTask.Server().Checkin(ctx, "late-device", token, req); err != nil {
				t.Fatal(err)
			}
			if err := reopened.Close(ctx); err != nil {
				t.Fatalf("Close: %v", err)
			}
			again, err := crowdml.OpenHub(ctx, root, func(string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
				return recServerConfig(), nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			finalTask, _ := again.Task("task")
			if got := finalTask.Server().Iteration(); got != wantCheckins+1 {
				t.Errorf("after reopen iteration = %d, want %d", got, wantCheckins+1)
			}
			if _, ok := finalTask.Server().DeviceStats("late-device"); !ok {
				t.Error("post-recovery checkin lost its device counters")
			}
			if err := again.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// copyTree recursively copies a store root, skipping checkpoint temp
// files (a crash can leave one mid-write; recovery ignores them anyway).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		from, to := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(to, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, from, to)
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		payload, err := os.ReadFile(from)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(to, payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// tearLiveSegment appends half a record to the newest journal segment —
// the artifact a process dying mid-append leaves behind.
func tearLiveSegment(t *testing.T, storeDir string) {
	t.Helper()
	fs, err := crowdml.NewFileStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := fs.Segments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no journal segments to tear")
	}
	f, err := os.OpenFile(filepath.Join(storeDir, segs[len(segs)-1].Name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"deviceId":"torn","iterat`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenHubEmptyRoot: restoring from nothing yields an empty hub, not
// an error — first boot and restart share one code path.
func TestOpenHubEmptyRoot(t *testing.T) {
	ctx := context.Background()
	h, err := crowdml.OpenHub(ctx, crowdml.NewMemRoot(), func(string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
		t.Fatal("configure must not be called for an empty root")
		return crowdml.ServerConfig{}, nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d, want 0", h.Len())
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// countingStore wraps a Store and counts the journal records streamed
// through the cursors it opens — the restore path's actual read volume,
// which segmentation must bound by rotation cadence.
type countingStore struct {
	crowdml.Store
	tailRecords int
}

func (c *countingStore) OpenCursor(ctx context.Context, afterIteration int) (crowdml.JournalCursor, error) {
	cur, err := c.Store.OpenCursor(ctx, afterIteration)
	if err != nil {
		return nil, err
	}
	return &countingCursor{JournalCursor: cur, n: &c.tailRecords}, nil
}

type countingCursor struct {
	crowdml.JournalCursor
	n *int
}

func (c *countingCursor) Next() (crowdml.JournalEntry, error) {
	e, err := c.JournalCursor.Next()
	if err == nil {
		*c.n++
	}
	return e, err
}

// drainJournal streams a store's full journal into a slice — the
// test-only wrapper over the cursor audit scan.
func drainJournal(t *testing.T, st crowdml.Store) []crowdml.JournalEntry {
	t.Helper()
	cur, err := st.OpenCursor(context.Background(), 0)
	if err != nil {
		t.Fatalf("audit read: %v", err)
	}
	defer cur.Close()
	var out []crowdml.JournalEntry
	for {
		e, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("audit read: %v", err)
		}
		out = append(out, e)
	}
}

// TestRestartReplaysOnlyLiveSegmentTail is the segmentation acceptance
// test on both backends: after N checkpoints (each of which rotates the
// journal), a restart must read back only the live segment's few
// records — not the whole history — while a full cursor scan still
// serves every sealed segment as the audit trail.
func TestRestartReplaysOnlyLiveSegmentTail(t *testing.T) {
	const (
		waves    = 4 // checkpoints (and rotations) before the crash
		perWave  = 5 // checkins per wave == CheckpointPolicy.AfterN
		tailLen  = 3 // checkins after the last checkpoint
		totalN   = waves*perWave + tailLen
		coveredN = waves * perWave
	)
	ctx := context.Background()
	grad := func(i int) []float64 {
		g := make([]float64, recClasses*recDim)
		g[0], g[1] = float64(i)*0.25, -0.5
		return g
	}
	push := func(t *testing.T, srv *crowdml.Server, token string, from, n int) {
		t.Helper()
		for i := from; i < from+n; i++ {
			co, err := srv.Checkout(ctx, "d1", token)
			if err != nil {
				t.Fatal(err)
			}
			req := &crowdml.CheckinRequest{
				Grad: grad(i), NumSamples: 2, ErrCount: i % 2,
				LabelCounts: []int{1, 1, 0}, Version: co.Version,
			}
			if err := srv.Checkin(ctx, "d1", token, req); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor := func(t *testing.T, what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for " + what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	backends := map[string]func(t *testing.T) (st crowdml.Store, segments func() int, reopen func(t *testing.T) crowdml.Store){
		"MemStore": func(t *testing.T) (crowdml.Store, func() int, func(t *testing.T) crowdml.Store) {
			st := crowdml.NewMemStore()
			return st, st.SegmentCount, func(t *testing.T) crowdml.Store { return st }
		},
		"FileStore": func(t *testing.T) (crowdml.Store, func() int, func(t *testing.T) crowdml.Store) {
			dir := t.TempDir()
			st, err := crowdml.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			segments := func() int {
				segs, err := st.Segments(ctx)
				if err != nil {
					t.Fatal(err)
				}
				return len(segs)
			}
			reopen := func(t *testing.T) crowdml.Store {
				// Crash semantics: freeze the files and release the dead
				// process's flock by copying the tree (see copyTree).
				crashDir := t.TempDir()
				copyTree(t, dir, crashDir)
				st2, err := crowdml.NewFileStore(crashDir)
				if err != nil {
					t.Fatal(err)
				}
				return st2
			}
			return st, segments, reopen
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			st, segments, reopen := mk(t)
			h := crowdml.NewHub()
			task, err := h.CreateTask(ctx, "task", recServerConfig(),
				crowdml.WithStore(st),
				crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: perWave}))
			if err != nil {
				t.Fatal(err)
			}
			token, err := task.Server().RegisterDevice(ctx, "d1")
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < waves; w++ {
				push(t, task.Server(), token, w*perWave+1, perWave)
				// Each wave trips the AfterN checkpoint, whose success seals
				// the live segment; waiting for the new segment makes the
				// layout deterministic: wave w's records are sealed, the
				// next wave starts a fresh segment.
				waitFor(t, "checkpoint rotation", func() bool { return segments() == w+2 })
			}
			push(t, task.Server(), token, coveredN+1, tailLen) // the un-checkpointed tail
			preCrash := task.Server().ExportState()

			// Crash without Close; restore with a wrapper that counts what
			// the restore path actually reads.
			counting := &countingStore{Store: reopen(t)}
			h2 := crowdml.NewHub()
			restored, err := h2.CreateTask(ctx, "task", recServerConfig(), crowdml.WithStore(counting))
			if err != nil {
				t.Fatal(err)
			}
			got := restored.Server().ExportState()
			if !reflect.DeepEqual(got, preCrash) {
				t.Errorf("recovered state != pre-crash state:\n got: %+v\nwant: %+v", got, preCrash)
			}
			if got.Iteration != totalN {
				t.Errorf("recovered iteration = %d, want %d", got.Iteration, totalN)
			}
			// THE bound: restore read only the live segment's tail records,
			// not the coveredN records sealed behind the 4 checkpoints.
			if counting.tailRecords != tailLen {
				t.Errorf("restore read %d journal records, want only the %d-record live segment tail",
					counting.tailRecords, tailLen)
			}
			// Sealed segments remain the complete audit trail.
			audit := drainJournal(t, counting)
			if len(audit) != totalN {
				t.Fatalf("audit trail has %d entries, want %d", len(audit), totalN)
			}
			for i := range audit {
				if audit[i].Iteration != i+1 {
					t.Fatalf("audit entry %d has iteration %d", i, audit[i].Iteration)
				}
			}
			if err := h2.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func adaGradConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(recClasses, recDim),
		Updater: crowdml.NewAdaGrad(0.5, 0),
	}
}

// TestAdaGradCrashRecoveryBitExact: with the updater's accumulators
// riding in checkpoints (optimizer.StateExporter), recovery of an
// AdaGrad task is bit-exact against an uncrashed control run even when
// the restore is genuinely checkpoint + journal-tail — the imported
// accumulators must line up exactly with the replayed records.
func TestAdaGradCrashRecoveryBitExact(t *testing.T) {
	ctx := context.Background()

	// Control: two workload waves on a store-less task, never crashed.
	control := crowdml.NewHub()
	controlTask, err := control.CreateTask(ctx, "task", adaGradConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveCrowdSeeded(t, controlTask, 0)
	driveCrowdSeeded(t, controlTask, 5000)
	want := controlTask.Server().ExportState()
	if len(want.UpdaterState) != recClasses*recDim {
		t.Fatalf("control run exported %d updater-state coordinates, want %d",
			len(want.UpdaterState), recClasses*recDim)
	}

	for name, mkStore := range map[string]func(t *testing.T) (st crowdml.Store, reopen func(t *testing.T) crowdml.Store){
		"MemStore": func(t *testing.T) (crowdml.Store, func(t *testing.T) crowdml.Store) {
			st := crowdml.NewMemStore()
			return st, func(t *testing.T) crowdml.Store { return st }
		},
		"FileStore": func(t *testing.T) (crowdml.Store, func(t *testing.T) crowdml.Store) {
			dir := t.TempDir()
			st, err := crowdml.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			return st, func(t *testing.T) crowdml.Store {
				crashDir := t.TempDir()
				copyTree(t, dir, crashDir)
				st2, err := crowdml.NewFileStore(crashDir)
				if err != nil {
					t.Fatal(err)
				}
				return st2
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			st, reopen := mkStore(t)
			h := crowdml.NewHub()
			task, err := h.CreateTask(ctx, "task", adaGradConfig(),
				crowdml.WithStore(st),
				// No automatic trigger: the mid-run checkpoint below is the
				// only snapshot, so the restore is provably checkpoint (with
				// accumulators at the halfway state) + journal-tail replay.
				crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{Every: time.Hour}))
			if err != nil {
				t.Fatal(err)
			}
			driveCrowdSeeded(t, task, 0)
			if err := st.Save(ctx, task.Server().ExportState(), time.Now()); err != nil {
				t.Fatal(err)
			}
			driveCrowdSeeded(t, task, 5000) // the tail beyond the snapshot

			// Crash without Close; restore with a FRESH AdaGrad updater.
			restoreStore := reopen(t)
			cp, err := restoreStore.Load(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(cp.State.UpdaterState) != recClasses*recDim {
				t.Fatalf("checkpoint carries %d updater-state coordinates, want %d",
					len(cp.State.UpdaterState), recClasses*recDim)
			}
			h2 := crowdml.NewHub()
			restored, err := h2.CreateTask(ctx, "task", adaGradConfig(), crowdml.WithStore(restoreStore))
			if err != nil {
				t.Fatal(err)
			}
			got := restored.Server().ExportState()
			// reflect.DeepEqual on float64 slices is bitwise equality: the
			// parameters AND the recovered accumulators must match the
			// never-crashed control exactly.
			if !reflect.DeepEqual(got, want) {
				t.Errorf("recovered AdaGrad state != uncrashed control state:\n got: %+v\nwant: %+v", got, want)
			}
			if err := h2.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableTaskSurvivesCleanRestartLoop hammers the full lifecycle:
// run → Close → OpenHub, three generations, state strictly accumulating.
func TestDurableTaskSurvivesCleanRestartLoop(t *testing.T) {
	ctx := context.Background()
	root := crowdml.NewMemRoot()
	total := 0
	for gen := 0; gen < 3; gen++ {
		h, err := crowdml.OpenHub(ctx, root, func(string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
			return recServerConfig(), nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		task, ok := h.Task("task")
		if !ok {
			st, err := root.Open(ctx, "task")
			if err != nil {
				t.Fatal(err)
			}
			task, err = h.CreateTask(ctx, "task", recServerConfig(), crowdml.WithStore(st))
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := task.Server().Iteration(); got != total {
			t.Fatalf("generation %d starts at iteration %d, want %d", gen, got, total)
		}
		driveCrowd(t, task)
		total += recDevices * (recPerDevice / recMinibatch)
		if got := task.Server().Iteration(); got != total {
			t.Fatalf("generation %d ends at iteration %d, want %d", gen, got, total)
		}
		if err := h.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}
