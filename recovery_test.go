// End-to-end crash-recovery test for the durability redesign: a crowd of
// devices runs against a journaled task, the server "crashes" without a
// final checkpoint, and OpenHub must reconstruct the exact pre-crash
// state — the same iteration counter, crowd totals and parameter vector
// a never-crashed control run produces. Zero acknowledged-checkin loss,
// on both shipped Store implementations.
package crowdml_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/rng"
)

const (
	recClasses   = 3
	recDim       = 6
	recDevices   = 4
	recPerDevice = 30
	recMinibatch = 5
)

func recServerConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(recClasses, recDim),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 5}, 0),
	}
}

// driveCrowd runs the deterministic workload: recDevices devices feed
// their samples round-robin, one sample per turn, so every run applies
// the identical checkin sequence (seeded devices, seeded sample streams,
// sequential submission — bit-identical SGD trajectories).
func driveCrowd(t *testing.T, task *crowdml.Task) {
	t.Helper()
	ctx := context.Background()
	m := crowdml.NewLogisticRegression(recClasses, recDim)
	devices := make([]*crowdml.Device, recDevices)
	sources := make([]*rng.RNG, recDevices)
	for i := range devices {
		id := deviceID(i)
		token, err := task.Server().RegisterDevice(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		devices[i], err = crowdml.NewDevice(crowdml.DeviceConfig{
			ID: id, Token: token, Model: m,
			Transport: crowdml.NewLoopback(task.Server()),
			Minibatch: recMinibatch,
			Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.05)},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = rng.New(uint64(100 + i))
	}
	for n := 0; n < recPerDevice; n++ {
		for i, d := range devices {
			x := make([]float64, recDim)
			for k := range x {
				x[k] = sources[i].Uniform(-1, 1)
			}
			crowdml.NormalizeL1(x)
			if err := d.AddSample(ctx, crowdml.Sample{X: x, Y: sources[i].Intn(recClasses)}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func deviceID(i int) string {
	return string(rune('a'+i)) + "-device"
}

func TestCrashRecoveryMatchesUncrashedRun(t *testing.T) {
	ctx := context.Background()

	// Control: the same workload on a store-less task, never crashed.
	control := crowdml.NewHub()
	controlTask, err := control.CreateTask(ctx, "task", recServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveCrowd(t, controlTask)
	want := controlTask.Server().ExportState()
	wantCheckins := recDevices * (recPerDevice / recMinibatch)
	if want.Iteration != wantCheckins {
		t.Fatalf("control run applied %d checkins, expected %d", want.Iteration, wantCheckins)
	}

	roots := map[string]func(t *testing.T) (crowdml.StoreRoot, string){
		"MemStore": func(t *testing.T) (crowdml.StoreRoot, string) {
			return crowdml.NewMemRoot(), ""
		},
		"FileStore": func(t *testing.T) (crowdml.StoreRoot, string) {
			dir := t.TempDir()
			root, err := crowdml.NewFileRoot(dir)
			if err != nil {
				t.Fatal(err)
			}
			return root, dir
		},
	}
	for name, mkRoot := range roots {
		t.Run(name, func(t *testing.T) {
			root, dir := mkRoot(t)
			st, err := root.Open(ctx, "task")
			if err != nil {
				t.Fatal(err)
			}
			crashed := crowdml.NewHub()
			task, err := crashed.CreateTask(ctx, "task", recServerConfig(),
				crowdml.WithStore(st),
				// A count policy exercises mid-run async snapshots, so the
				// recovery path is genuinely snapshot + journal tail (and
				// journal-only when the checkpointer didn't get to run).
				crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 7}))
			if err != nil {
				t.Fatal(err)
			}
			driveCrowd(t, task)
			preCrash := task.Server().ExportState()

			// Crash: the hub is dropped with no Hub.Close, so no final
			// checkpoint covers the journal tail. On the file backend, also
			// tear the journal mid-append the way a dying process would.
			if dir != "" {
				journalPath := filepath.Join(dir, "task", "checkins.jsonl")
				f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString(`{"deviceId":"torn","iterat`); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			}

			reopened, err := crowdml.OpenHub(ctx, root, func(taskID string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
				return recServerConfig(), nil, nil
			})
			if err != nil {
				t.Fatalf("OpenHub: %v", err)
			}
			restoredTask, ok := reopened.Task("task")
			if !ok {
				t.Fatal("OpenHub did not restore the task")
			}
			got := restoredTask.Server().ExportState()

			// Zero acknowledged-checkin loss: the recovered state must be
			// EXACTLY the pre-crash state, which must be EXACTLY the
			// never-crashed control state — iteration counter, parameter
			// vector, crowd totals and per-device counters alike.
			if !reflect.DeepEqual(got, preCrash) {
				t.Errorf("recovered state != pre-crash state:\n got: %+v\nwant: %+v", got, preCrash)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state != uncrashed control state:\n got: %+v\nwant: %+v", got, want)
			}
			if got.Iteration != wantCheckins {
				t.Errorf("recovered iteration = %d, want %d", got.Iteration, wantCheckins)
			}

			// The restored task keeps learning AND journaling: new checkins
			// apply and survive a clean shutdown + second reopen.
			token, err := restoredTask.Server().RegisterDevice(ctx, "late-device")
			if err != nil {
				t.Fatal(err)
			}
			co, err := restoredTask.Server().Checkout(ctx, "late-device", token)
			if err != nil {
				t.Fatal(err)
			}
			req := &crowdml.CheckinRequest{
				Grad:        make([]float64, recClasses*recDim),
				NumSamples:  1,
				LabelCounts: make([]int, recClasses),
				Version:     co.Version,
			}
			req.Grad[0] = 0.25
			req.LabelCounts[0] = 1
			if err := restoredTask.Server().Checkin(ctx, "late-device", token, req); err != nil {
				t.Fatal(err)
			}
			if err := reopened.Close(ctx); err != nil {
				t.Fatalf("Close: %v", err)
			}
			again, err := crowdml.OpenHub(ctx, root, func(string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
				return recServerConfig(), nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			finalTask, _ := again.Task("task")
			if got := finalTask.Server().Iteration(); got != wantCheckins+1 {
				t.Errorf("after reopen iteration = %d, want %d", got, wantCheckins+1)
			}
			if _, ok := finalTask.Server().DeviceStats("late-device"); !ok {
				t.Error("post-recovery checkin lost its device counters")
			}
			if err := again.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenHubEmptyRoot: restoring from nothing yields an empty hub, not
// an error — first boot and restart share one code path.
func TestOpenHubEmptyRoot(t *testing.T) {
	ctx := context.Background()
	h, err := crowdml.OpenHub(ctx, crowdml.NewMemRoot(), func(string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
		t.Fatal("configure must not be called for an empty root")
		return crowdml.ServerConfig{}, nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d, want 0", h.Len())
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDurableTaskSurvivesCleanRestartLoop hammers the full lifecycle:
// run → Close → OpenHub, three generations, state strictly accumulating.
func TestDurableTaskSurvivesCleanRestartLoop(t *testing.T) {
	ctx := context.Background()
	root := crowdml.NewMemRoot()
	total := 0
	for gen := 0; gen < 3; gen++ {
		h, err := crowdml.OpenHub(ctx, root, func(string) (crowdml.ServerConfig, []crowdml.TaskOption, error) {
			return recServerConfig(), nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		task, ok := h.Task("task")
		if !ok {
			st, err := root.Open(ctx, "task")
			if err != nil {
				t.Fatal(err)
			}
			task, err = h.CreateTask(ctx, "task", recServerConfig(), crowdml.WithStore(st))
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := task.Server().Iteration(); got != total {
			t.Fatalf("generation %d starts at iteration %d, want %d", gen, got, total)
		}
		driveCrowd(t, task)
		total += recDevices * (recPerDevice / recMinibatch)
		if got := task.Server().Iteration(); got != total {
			t.Fatalf("generation %d ends at iteration %d, want %d", gen, got, total)
		}
		if err := h.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}
