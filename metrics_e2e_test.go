// End-to-end telemetry exposition test: a leader hub with a metrics
// registry serves a live crowd while a follower replica (with its own
// registry) tails its journal feed, and both roles' /v1/metrics
// endpoints are scraped over real HTTP. Each exposition must lint clean
// under internal/tools/promlint — the structural checks CI relies on —
// and carry the per-layer series the operations docs promise. This is
// the test the CI "metrics exposition scrape" step runs by name.
package crowdml_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/tools/promlint"
)

// scrapeMetrics GETs baseURL's /v1/metrics, asserts the Prometheus
// content type, lints the exposition, and returns the body.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		t.Fatalf("scrape %s/v1/metrics: %v", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape content type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read scrape body: %v", err)
	}
	probs, err := promlint.Lint(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("promlint: %v", err)
	}
	if len(probs) != 0 {
		t.Fatalf("%s/v1/metrics failed promlint:\n%v\n--- exposition ---\n%s", baseURL, probs, body)
	}
	return string(body)
}

// wantSeries asserts each name appears as a sample (not just a comment)
// in the exposition.
func wantSeries(t *testing.T, role, body string, names ...string) {
	t.Helper()
	for _, name := range names {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name) && !strings.HasPrefix(line, "#") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s exposition is missing series %s:\n%s", role, name, body)
		}
	}
}

func TestFollowerMetricsExposition(t *testing.T) {
	ctx := context.Background()

	// Leader: durable task with aggressive checkpoint+prune so the scrape
	// sees journal, checkpoint, rotation, and retention series move.
	leaderReg := crowdml.NewMetricsRegistry()
	leaderStore := crowdml.NewMemStore()
	leaderHub := crowdml.NewHub()
	leaderTask, err := leaderHub.CreateTask(ctx, "activity", repServerConfig(),
		crowdml.WithStore(leaderStore),
		crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 5}),
		crowdml.WithRetention(crowdml.PruneCovered),
		crowdml.WithMetrics(leaderReg))
	if err != nil {
		t.Fatal(err)
	}
	defer leaderHub.Close(ctx)
	leader := leaderTask.Server()
	leaderSrv := httptest.NewServer(crowdml.NewHTTPHandlerWithMetrics(leaderHub, "", leaderReg))
	defer leaderSrv.Close()
	leaderClient := crowdml.NewHTTPClient(leaderSrv.URL, nil).WithTask("activity")

	token, err := leader.RegisterDevice(ctx, "phone-1")
	if err != nil {
		t.Fatal(err)
	}

	// Follower: replica task with its OWN registry — a fleet scrape hits
	// each process separately, so each exposition must stand alone.
	followerReg := crowdml.NewMetricsRegistry()
	feed := leaderClient.WithRetry(crowdml.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond,
	})
	followerCfg := repServerConfig()
	followerCfg.AuthFallback = feed.AuthProbe
	followerHub := crowdml.NewHub()
	followerTask, err := followerHub.CreateTask(ctx, "activity", followerCfg,
		crowdml.AsReplicaOf(leaderSrv.URL),
		crowdml.WithMetrics(followerReg))
	if err != nil {
		t.Fatal(err)
	}
	followerSrv := httptest.NewServer(crowdml.NewHTTPHandlerWithMetrics(followerHub, "", followerReg))
	defer followerSrv.Close()

	rep, err := crowdml.NewReplicator(crowdml.ReplicaConfig{
		Task:         followerTask,
		Feed:         feed,
		PollInterval: 2 * time.Millisecond,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		Logf:         t.Logf,
		Metrics:      followerReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(ctx)
	defer rep.Stop()

	// Drive enough rounds to cycle checkpoint+prune at least twice, then
	// let the follower catch up so its replay counters have moved.
	repDrive(t, leaderClient, "phone-1", token, 12)
	waitCheckpointAt(t, leaderStore, 10)
	waitReplicaCaughtUp(t, leader, followerTask)
	if _, err := crowdml.NewHTTPClient(followerSrv.URL, nil).WithTask("activity").
		Checkout(ctx, "phone-1", token); err != nil {
		t.Fatalf("checkout from follower: %v", err)
	}

	// Leader exposition: every instrumented layer reports.
	leaderBody := scrapeMetrics(t, leaderSrv.URL)
	wantSeries(t, "leader", leaderBody,
		// core hot paths
		"crowdml_checkouts_total",
		"crowdml_checkout_seconds_bucket",
		"crowdml_checkins_applied_total",
		"crowdml_checkin_seconds_bucket",
		"crowdml_checkin_batch_size_bucket",
		// hub durability
		"crowdml_journal_appends_total",
		"crowdml_journal_rotations_total",
		"crowdml_journal_segments",
		"crowdml_retention_pruned_segments_total",
		"crowdml_checkpoint_saves_total",
		// transport
		"crowdml_http_requests_total",
		"crowdml_feed_entries_streamed_total",
	)

	// Follower exposition: replica-side series plus its own read path.
	followerBody := scrapeMetrics(t, followerSrv.URL)
	wantSeries(t, "follower", followerBody,
		"crowdml_replica_entries_replayed_total",
		"crowdml_replica_bootstraps_total",
		"crowdml_replica_lag_iterations",
		"crowdml_checkouts_total",
		"crowdml_http_requests_total",
	)

	// The follower never journals locally: its registry must not have
	// invented leader-only durability series.
	if strings.Contains(followerBody, "crowdml_journal_appends_total") {
		t.Errorf("follower exposition carries leader-only journal series:\n%s", followerBody)
	}

	// A second scrape after more traffic still lints clean and the
	// request counter now covers the scrape route itself.
	repDrive(t, leaderClient, "phone-1", token, 3)
	leaderBody = scrapeMetrics(t, leaderSrv.URL)
	if !strings.Contains(leaderBody, `route="GET /v1/metrics"`) {
		t.Errorf("leader exposition does not count its own scrape route:\n%s", leaderBody)
	}
}
