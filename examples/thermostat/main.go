// Smart thermostats — the paper's very first motivating application:
// "learning optimal settings of room temperatures for smart thermostats."
//
// A fleet of stationary thermostat devices collectively learns to predict
// each household's preferred temperature offset from context features
// (time-of-day encoding, occupancy, outdoor temperature), using the
// framework's ridge-regression model. Gradients are residual-clipped on the
// device (bounding DP sensitivity) and Laplace-sanitized before checkin, so
// no household's raw comfort profile ever leaves its thermostat.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/rng"
)

// Feature layout for the thermostat context vector (L1-normalized).
const (
	fBias = iota
	fSinHour
	fCosHour
	fOccupied
	fOutdoorCold
	numFeatures
)

// trueWeights is the population-level comfort model the fleet should
// recover: a baseline offset, a day/night cycle, a bump when occupied,
// and compensation when it is cold outside. Targets are offsets from 20 °C
// in units of 10 °C so they stay within the ±1 residual clip.
var trueWeights = []float64{0.05, 0.12, -0.08, 0.25, 0.18}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// contextSample draws one (context, preferred offset) observation for a
// household with individual taste noise.
func contextSample(r *rng.RNG) crowdml.Sample {
	hour := r.Uniform(0, 24)
	x := make([]float64, numFeatures)
	x[fBias] = 1
	x[fSinHour] = math.Sin(2 * math.Pi * hour / 24)
	x[fCosHour] = math.Cos(2 * math.Pi * hour / 24)
	if r.Float64() < 0.6 {
		x[fOccupied] = 1
	}
	outdoor := r.Uniform(-10, 30) // °C
	if outdoor < 10 {
		x[fOutdoorCold] = (10 - outdoor) / 20
	}
	var target float64
	for i, w := range trueWeights {
		target += w * x[i]
	}
	target += 0.02 * r.Gaussian() // household taste noise
	crowdml.NormalizeL1(x)
	// The model predicts from the normalized features, so scale the
	// target consistently with the same norm the device transmitted.
	return crowdml.Sample{X: x, T: target}
}

func run() error {
	const (
		thermostats = 20
		perDevice   = 400
		minibatch   = 10
	)
	m := crowdml.NewRidgeRegression(numFeatures, 1.0, 0.05)
	server, err := crowdml.NewServer(crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 2}, 0),
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	devices := make([]*crowdml.Device, thermostats)
	for i := range devices {
		id := fmt.Sprintf("thermostat-%02d", i)
		token, err := server.RegisterDevice(ctx, id)
		if err != nil {
			return err
		}
		devices[i], err = crowdml.NewDevice(crowdml.DeviceConfig{
			ID: id, Token: token, Model: m,
			Transport: crowdml.NewLoopback(server),
			Minibatch: minibatch,
			Budget:    crowdml.Budget{Gradient: crowdml.Eps(50)},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			return err
		}
	}

	streams := make([]*rng.RNG, thermostats)
	for i := range streams {
		streams[i] = rng.New(uint64(100 + i))
	}
	for round := 0; round < perDevice; round++ {
		for i, d := range devices {
			if err := d.AddSample(ctx, contextSample(streams[i])); err != nil {
				return fmt.Errorf("thermostat %d: %w", i, err)
			}
		}
	}

	// Evaluate the fleet model on fresh contexts: mean absolute error of
	// the predicted temperature offset, reported in °C.
	eval := rng.New(999)
	var mae float64
	const evalN = 2000
	w := server.Params()
	for i := 0; i < evalN; i++ {
		s := contextSample(eval)
		pred := 0.0
		for j, wj := range w.Row(0) {
			pred += wj * s.X[j]
		}
		mae += math.Abs(pred-s.T) * 10 // back to °C
	}
	mae /= evalN

	fmt.Printf("fleet of %d thermostats, %d private checkins\n",
		thermostats, server.Iteration())
	fmt.Printf("mean absolute prediction error: %.2f °C\n", mae)
	fmt.Println("\nlearned context weights (scaled) vs population truth:")
	names := []string{"baseline", "sin(hour)", "cos(hour)", "occupied", "outdoor-cold"}
	for j, name := range names {
		fmt.Printf("  %-13s learned %+.3f\n", name, w.At(0, j))
	}
	if mae > 1.0 {
		return fmt.Errorf("fleet model too inaccurate: MAE %.2f °C", mae)
	}
	fmt.Println("\nNo household's raw comfort data ever left its thermostat.")
	return nil
}
