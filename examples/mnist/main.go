// Digit recognition study — a scaled-down version of the paper's
// simulated-environment comparison (Section V-C, Figs. 4–5): centralized
// batch learning vs Crowd-ML vs decentralized learning on the MNIST-like
// task, first without privacy and then at ε⁻¹ = 0.1 with varying minibatch
// sizes. The tables printed here are the textual equivalents of the
// paper's plots.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/crowdml/crowdml/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 5% of paper scale runs in seconds while preserving every ordering.
	cfg := experiments.Config{Scale: 0.05, Trials: 2, Seed: 11, EvalPoints: 12}

	fmt.Println("=== Without privacy (Fig. 4 setup) ===")
	fig4, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	if err := experiments.Render(os.Stdout, fig4); err != nil {
		return err
	}

	fmt.Println("\n=== With privacy ε⁻¹ = 0.1 (Fig. 5 setup) ===")
	fig5, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	if err := experiments.Render(os.Stdout, fig5); err != nil {
		return err
	}

	fmt.Println("\nReading the tables: Crowd-ML matches the centralized batch")
	fmt.Println("learner without privacy, and under a fixed privacy level the")
	fmt.Println("b=20 minibatch beats every centralized alternative — the")
	fmt.Println("paper's headline result.")
	return nil
}
