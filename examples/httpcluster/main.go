// HTTP cluster — the networked prototype end to end on one machine, now
// multi-task: one server process hosts TWO crowd-learning tasks on a
// shared Hub (the paper's Section V-A portal lists many tasks devices
// can join), and a crowd of device processes (goroutines here, but each
// speaking real HTTP through the same client a separate process would
// use) enrolls into its task via the task-scoped /v1/tasks/{id}/ routes.
// One device deliberately uses the legacy /v1/* paths to show they keep
// working as aliases for the default task. The /v1/tasks listing is
// polled like the paper's Web portal index.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		devicesPerTask = 4
		perDevice      = 60
		enrollKey      = "demo-enroll-key"
	)
	ctx := context.Background()

	// One process, one hub, two independent learning tasks.
	hub := crowdml.NewHub()
	activityModel := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	if _, err := hub.CreateTask(ctx, "activity", crowdml.ServerConfig{
		Model:   activityModel,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
	}, crowdml.WithTaskInfo(crowdml.TaskInfo{
		Name:      "Activity recognition",
		Algorithm: "multiclass logistic regression via private distributed SGD",
		Labels:    activity.Names[:],
	}), crowdml.AsDefaultTask()); err != nil {
		return err
	}
	svmModel := crowdml.NewLinearSVM(activity.NumClasses, activity.FeatureDim)
	if _, err := hub.CreateTask(ctx, "activity-svm", crowdml.ServerConfig{
		Model:   svmModel,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 5}, 0),
	}, crowdml.WithTaskInfo(crowdml.TaskInfo{
		Name:      "Activity recognition (SVM)",
		Algorithm: "Crammer–Singer linear SVM via private distributed SGD",
		Labels:    activity.Names[:],
	})); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Handler:           crowdml.NewHTTPHandler(hub, enrollKey),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("server listening on %s, hosting %d tasks\n", baseURL, hub.Len())

	var wg sync.WaitGroup
	errs := make(chan error, 2*devicesPerTask)
	for _, spec := range []struct {
		taskID string
		model  crowdml.Model
	}{
		{"activity", activityModel},
		{"activity-svm", svmModel},
	} {
		for i := 0; i < devicesPerTask; i++ {
			wg.Add(1)
			go func(taskID string, m crowdml.Model, i int) {
				defer wg.Done()
				// Device 0 of the default task exercises the legacy /v1/*
				// alias paths; everyone else uses /v1/tasks/{id}/ routes.
				legacy := taskID == "activity" && i == 0
				errs <- runDevice(ctx, baseURL, taskID, legacy, m, enrollKey, i, perDevice)
			}(spec.taskID, spec.model, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	// Poll the task listing, portal-style, through the same client API.
	tasks, err := crowdml.NewHTTPClient(baseURL, nil).Tasks(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nportal task listing after %d device contributions:\n", 2*devicesPerTask*perDevice)
	for _, t := range tasks {
		marker := " "
		if t.Default {
			marker = "*"
		}
		line := fmt.Sprintf("%s %-22s iter=%4d", marker, t.ID, t.Iteration)
		if t.ErrorEstimate != nil {
			line += fmt.Sprintf("  online error=%.3f", *t.ErrorEstimate)
		}
		fmt.Println(line)
	}

	shutdownCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-serveErr // http.ErrServerClosed after a clean shutdown
	return nil
}

func runDevice(ctx context.Context, baseURL, taskID string, legacy bool, m crowdml.Model, enrollKey string, idx, samples int) error {
	id := fmt.Sprintf("%s-phone-%02d", taskID, idx)
	client := crowdml.NewHTTPClient(baseURL, nil)
	if !legacy {
		client = client.WithTask(taskID)
	}
	token, err := client.Register(ctx, id, enrollKey)
	if err != nil {
		return fmt.Errorf("%s enroll: %w", id, err)
	}
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: id, Token: token, Model: m,
		Transport: client,
		Minibatch: 5,
		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.1)},
		Seed:      uint64(idx + 1),
	})
	if err != nil {
		return err
	}
	sent, err := device.Run(ctx, activity.NewGenerator(uint64(100+idx)), samples)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Printf("  %s: %d samples in %d checkins\n", id, sent, device.Checkins())
	return nil
}
