// HTTP cluster — the networked prototype end to end on one machine: a
// Crowd-ML server listening on localhost, and a crowd of device processes
// (goroutines here, but each speaking real HTTP through the same client a
// separate process would use) enrolling with the enrollment key, streaming
// privately sanitized activity-recognition gradients, and driving the
// shared model. The server's public /v1/stats endpoint is polled like the
// paper's Web portal.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		devices   = 8
		perDevice = 60
		enrollKey = "demo-enroll-key"
	)
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	server, err := crowdml.NewServer(crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Handler:           crowdml.NewHTTPHandler(server, enrollKey),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("server listening on %s\n", baseURL)

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- runDevice(ctx, baseURL, enrollKey, i, perDevice)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	// Poll the public stats endpoint, portal-style.
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats struct {
		Iteration     int       `json:"iteration"`
		ErrorEstimate *float64  `json:"errorEstimate"`
		PriorEstimate []float64 `json:"priorEstimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("\nportal stats after %d device contributions:\n", devices*perDevice)
	fmt.Printf("  server iterations: %d\n", stats.Iteration)
	if stats.ErrorEstimate != nil {
		fmt.Printf("  online error:      %.3f\n", *stats.ErrorEstimate)
	}
	fmt.Printf("  activity prior:    %.2v\n", stats.PriorEstimate)

	shutdownCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-serveErr // http.ErrServerClosed after a clean shutdown
	return nil
}

func runDevice(ctx context.Context, baseURL, enrollKey string, idx, samples int) error {
	id := fmt.Sprintf("phone-%02d", idx)
	client := crowdml.NewHTTPClient(baseURL, nil)
	token, err := client.Register(ctx, id, enrollKey)
	if err != nil {
		return fmt.Errorf("%s enroll: %w", id, err)
	}
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: id, Token: token, Model: m,
		Transport: client,
		Minibatch: 5,
		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.1)},
		Seed:      uint64(idx + 1),
	})
	if err != nil {
		return err
	}
	gen := activity.NewGenerator(uint64(100 + idx))
	for n := 0; n < samples; n++ {
		s, err := gen.Next()
		if err != nil {
			return err
		}
		if err := device.AddSample(ctx, s); err != nil {
			return fmt.Errorf("%s sample %d: %w", id, n, err)
		}
	}
	fmt.Printf("  %s: %d samples in %d checkins\n", id, samples, device.Checkins())
	return nil
}
