// Robustness study — the paper's Remark 3 in action: "adaptive learning
// rates can be used in place of (5), which can provide a robustness to
// large gradients from outlying or malignant devices."
//
// A crowd of 100 devices learns the digit task while 10% of them are
// malignant and check in huge random gradients. The program compares the
// damage under the plain c/√t SGD server against the AdaGrad server, and
// also reports how well an optimal eavesdropper can distinguish neighboring
// minibatches from the sanitized traffic (the empirical side of Theorem 1).
package main

import (
	"fmt"
	"log"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/attack"
	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := dataset.MNISTLike(6000, 1500, 99)
	if err != nil {
		return err
	}
	m := model.NewLogisticRegression(ds.Classes, ds.Dim)

	fmt.Println("=== Model poisoning: 10% malignant devices, huge gradients ===")
	for _, tc := range []struct {
		name string
		mk   func() optimizer.Updater
	}{
		{name: "SGD c/sqrt(t)", mk: func() optimizer.Updater {
			return &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}}
		}},
		{name: "AdaGrad (Remark 3)", mk: func() optimizer.Updater {
			return &optimizer.AdaGrad{Eta: 0.5}
		}},
		{name: "SGD + clip(L1≤4)", mk: func() optimizer.Updater {
			// The server knows honest averaged gradients satisfy
			// ‖g̃‖₁ ≤ 2 plus bounded noise (Appendix A), so clipping at 4
			// leaves honest traffic untouched and caps attacker damage.
			return &optimizer.Clip{
				Inner:    &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}},
				MaxNorm1: 4,
			}
		}},
	} {
		for _, frac := range []float64{0, 0.1} {
			res, err := attack.RunPoisoning(attack.PoisonConfig{
				Model: m, Train: ds.Train, Test: ds.Test,
				Devices: 100, MaliciousFrac: frac,
				Strategy: attack.PoisonLargeGradient, Magnitude: 30,
				Updater: tc.mk(),
				Rounds:  12000, Seed: 3,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %-20s malicious=%3.0f%%  test error %.3f  (%d bad checkins)\n",
				tc.name, frac*100, res.TestError, res.MaliciousCheckins)
		}
	}

	fmt.Println("\n=== Eavesdropper distinguishing test (Theorem 1, empirically) ===")
	fmt.Println("optimal likelihood-ratio adversary vs the DP accuracy bound e^ε/(1+e^ε):")
	for _, epsInv := range []float64{1, 0.5, 0.1} {
		eps := crowdml.FromInv(epsInv)
		res, err := attack.RunDistinguish(attack.DistinguishConfig{
			Model: m, Eps: eps, Batch: 20, Rounds: 5000, Seed: 4,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  ε=%-4g  adversary accuracy %.3f  ≤  bound %.3f\n",
			float64(eps), res.Accuracy, res.Bound)
	}
	fmt.Println("\nThe adversary never exceeds its information-theoretic bound;")
	fmt.Println("AdaGrad dampens the poisoning that cripples plain SGD, and the")
	fmt.Println("sensitivity-aware server-side clip neutralizes it entirely.")
	return nil
}
