// Quickstart: the smallest complete Crowd-ML deployment. Five in-process
// devices learn a shared 2-class classifier from their local samples with
// local differential privacy (ε = 100 per contribution), and the program
// prints the server's running error estimate — the differentially private
// statistic the paper's Web portal would display.
package main

import (
	"context"
	"fmt"
	"log"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		devices   = 5
		perDevice = 200
		dim       = 8
	)
	// Host the learning task on a hub — the unit one server process can
	// hold many of (each addressable over HTTP as /v1/tasks/{id}/...).
	ctx := context.Background()
	m := crowdml.NewLogisticRegression(2, dim)
	hub := crowdml.NewHub()
	task, err := hub.CreateTask(ctx, "quickstart", crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
	})
	if err != nil {
		return err
	}
	server := task.Server()

	// Enroll devices; each gets its own auth token and privacy budget.
	devs := make([]*crowdml.Device, devices)
	for i := range devs {
		id := fmt.Sprintf("device-%d", i)
		token, err := server.RegisterDevice(ctx, id)
		if err != nil {
			return err
		}
		devs[i], err = crowdml.NewDevice(crowdml.DeviceConfig{
			ID: id, Token: token, Model: m,
			Transport: crowdml.NewLoopback(server),
			Minibatch: 4,
			Budget:    crowdml.Budget{Gradient: crowdml.Eps(100)},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			return err
		}
	}

	// Each device streams its own sensor-like data: two noisy clusters.
	r := rng.New(7)
	for round := 0; round < perDevice; round++ {
		for i, d := range devs {
			y := (round + i) % 2
			x := make([]float64, dim)
			for j := range x {
				x[j] = 0.1 * r.Gaussian()
			}
			x[y] += 1 // class signal in coordinate y
			crowdml.NormalizeL1(x)
			if err := d.AddSample(ctx, crowdml.Sample{X: x, Y: y}); err != nil {
				return fmt.Errorf("device %d: %w", i, err)
			}
		}
		if round%50 == 49 {
			if est, ok := server.ErrEstimate(); ok {
				fmt.Printf("after %4d samples/device: online error ≈ %.3f (iteration %d)\n",
					round+1, est, server.Iteration())
			}
		}
	}

	est, _ := server.ErrEstimate()
	prior, _ := server.PriorEstimate()
	fmt.Printf("\nfinal online error estimate: %.3f\n", est)
	fmt.Printf("estimated class prior:       [%.2f %.2f]\n", prior[0], prior[1])
	fmt.Printf("server iterations:           %d\n", server.Iteration())
	return nil
}
