// Activity recognition — the paper's real-environment demonstration
// (Section V-B / Fig. 3) end to end: seven simulated smartphones sample
// tri-axial accelerometers at 20 Hz, compute 64-bin FFT features over
// 3.2 s windows of acceleration magnitude, and collectively learn a
// 3-class activity classifier (Still / On Foot / In Vehicle) with local
// differential privacy. The program prints the time-averaged error curve
// Err(t), reproducing the shape of Fig. 3.
package main

import (
	"context"
	"fmt"
	"log"

	crowdml "github.com/crowdml/crowdml"
	"github.com/crowdml/crowdml/internal/activity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		phones       = 7
		totalSamples = 600
		rate         = 10.0 // c in η(t) = c/√t
		// Gradient privacy: ε_g = 50. Fig. 3 itself runs with privacy off
		// (ε⁻¹ = 0); this demo turns the mechanism on at a level where the
		// 3-class task still converges with b=5 minibatches. The L1-
		// normalized spectra make per-element gradients ~1/64 in scale, so
		// the tolerable noise is smaller than on the paper's raw features.
		epsInv    = 0.02
		minibatch = 5
	)
	m := crowdml.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	server, err := crowdml.NewServer(crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: rate}, 0),
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	gens := make([]*activity.Generator, phones)
	devs := make([]*crowdml.Device, phones)
	for i := range devs {
		id := fmt.Sprintf("phone-%d", i)
		token, err := server.RegisterDevice(ctx, id)
		if err != nil {
			return err
		}
		gens[i] = activity.NewGenerator(uint64(1000 + i))
		devs[i], err = crowdml.NewDevice(crowdml.DeviceConfig{
			ID: id, Token: token, Model: m,
			Transport: crowdml.NewLoopback(server),
			Minibatch: minibatch,
			// The counter budgets only affect the quality of the portal's
			// progress estimates, never the learning itself (Appendix B
			// Remark 1); with only ~600 samples in this demo they are set
			// high enough for the estimates to be readable.
			Budget: crowdml.Budget{
				Gradient:   crowdml.FromInv(epsInv),
				ErrCount:   crowdml.Eps(5),
				LabelCount: crowdml.Eps(5),
			},
			Seed: uint64(2000 + i),
		})
		if err != nil {
			return err
		}
	}
	total := crowdml.Budget{
		Gradient: crowdml.FromInv(epsInv), ErrCount: crowdml.Eps(5),
		LabelCount: crowdml.Eps(5),
	}.Total(activity.NumClasses)
	fmt.Printf("7 phones, 3 activities, per-checkin privacy ε = %.2f\n\n", float64(total))

	fmt.Println("samples  time-averaged error")
	for n := 1; n <= totalSamples; n++ {
		phone := (n - 1) % phones
		s, err := gens[phone].Next()
		if err != nil {
			return err
		}
		if err := devs[phone].AddSample(ctx, s); err != nil {
			return fmt.Errorf("phone %d: %w", phone, err)
		}
		if n%25 == 0 {
			if est, ok := server.ErrEstimate(); ok {
				fmt.Printf("%7d  %.3f\n", n, est)
			}
		}
	}

	prior, _ := server.PriorEstimate()
	fmt.Println("\nestimated activity distribution (differentially private):")
	for k, p := range prior {
		fmt.Printf("  %-10s %.2f\n", activity.Names[k], p)
	}
	return nil
}
