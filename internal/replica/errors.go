package replica

import "fmt"

// Error categories: every failure the replication runtime reports is
// tagged with the axis it failed on, so operators reading follower logs
// (and tests asserting on failure modes) can classify without parsing
// message text.
const (
	// CategoryNetwork: the leader could not be reached or the connection
	// died mid-stream — transient, retried under capped backoff.
	CategoryNetwork = "network"
	// CategoryProtocol: the leader answered, but with something the
	// follower cannot use (malformed frame, unexpected status).
	CategoryProtocol = "protocol"
	// CategoryState: applying leader state locally failed (checkpoint
	// import, replay validation) — usually a model-shape mismatch between
	// the follower's task configuration and the leader's.
	CategoryState = "state"
	// CategoryGap: the leader's retention pruned the journal range the
	// follower's cursor needs; recovery is a checkpoint re-bootstrap, not
	// a retry.
	CategoryGap = "gap"
)

// Error is the component-tagged error the replication runtime wraps
// every failure in: the fixed component ("replica"), the operation that
// failed, and the category above. It unwraps to the underlying cause, so
// errors.Is still matches the framework sentinels (core.ErrReplayGap,
// store.ErrFeedInterrupted, …) through it.
type Error struct {
	// Component identifying the subsystem; always "replica" here.
	Component string
	// Category is one of the Category* constants.
	Category string
	// Op names the failed operation ("bootstrap", "tail", "apply").
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s [%s]: %v", e.Component, e.Op, e.Category, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// errOf builds a tagged replication error.
func errOf(category, op string, err error) *Error {
	return &Error{Component: "replica", Category: category, Op: op, Err: err}
}
