package replica

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/transport"
)

func serverConfig() core.ServerConfig {
	return core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}
}

// newLeader hosts task "alpha" with a MemStore journal behind an HTTP
// server and returns its base URL, server, and store.
func newLeader(t *testing.T, opts ...hub.TaskOption) (string, *core.Server, *store.MemStore) {
	t.Helper()
	st := store.NewMemStore()
	h := hub.New()
	task, err := h.CreateTask(context.Background(), "alpha", serverConfig(),
		append([]hub.TaskOption{hub.WithStore(st)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(transport.NewHandler(h))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { h.Close(context.Background()) })
	return ts.URL, task.Server(), st
}

// newFollower creates a follower replica of the leader at baseURL and a
// Replicator driving it (not yet started).
func newFollower(t *testing.T, baseURL string) (*hub.Task, *Replicator) {
	t.Helper()
	h := hub.New()
	task, err := h.CreateTask(context.Background(), "alpha", serverConfig(),
		hub.AsReplicaOf(baseURL))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Task:         task,
		Feed:         transport.NewHTTPClient(baseURL, nil).WithTask("alpha"),
		PollInterval: 5 * time.Millisecond,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return task, r
}

func drive(t *testing.T, srv *core.Server, device string, n int) {
	t.Helper()
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, device)
	if err != nil && !errors.Is(err, core.ErrAuth) {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		req := &core.CheckinRequest{
			Grad:        []float64{0.1, -0.2, 0.3, -0.4},
			NumSamples:  3,
			ErrCount:    1,
			LabelCounts: []int{2, 1},
			Version:     srv.Iteration(),
		}
		if err := srv.Checkin(ctx, device, token, req); err != nil {
			t.Fatalf("checkin %d: %v", i, err)
		}
	}
}

// waitConverged polls until the follower has applied everything the
// leader has, with zero reported lag.
func waitConverged(t *testing.T, leader *core.Server, task *hub.Task) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lag, ok := task.ReplicationLag()
		if ok && lag == 0 && task.Server().Iteration() == leader.Iteration() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := task.ReplicaStatus()
	t.Fatalf("follower never converged: leader at %d, follower at %d, status %+v",
		leader.Iteration(), task.Server().Iteration(), st)
}

// requireSameState asserts leader and follower export bit-identical
// learning state: iteration, parameters, totals, per-device counters.
func requireSameState(t *testing.T, leader, follower *core.Server) {
	t.Helper()
	ls, fs := leader.ExportState(), follower.ExportState()
	if !reflect.DeepEqual(ls, fs) {
		t.Fatalf("replica diverged:\nleader   %+v\nfollower %+v", ls, fs)
	}
}

func TestReplicatorConvergesFromEmptyLeader(t *testing.T) {
	url, leader, _ := newLeader(t)
	drive(t, leader, "d1", 7)
	task, r := newFollower(t, url)
	r.Start(context.Background())
	defer r.Stop()
	waitConverged(t, leader, task)
	requireSameState(t, leader, task.Server())

	// Keep writing: the live tail must carry the new entries too.
	drive(t, leader, "d1", 5)
	waitConverged(t, leader, task)
	requireSameState(t, leader, task.Server())
}

func TestReplicatorBootstrapsFromCheckpoint(t *testing.T) {
	url, leader, st := newLeader(t,
		hub.WithCheckpointPolicy(hub.CheckpointPolicy{AfterN: 3}),
		hub.WithRetention(hub.PruneCovered))
	drive(t, leader, "d1", 9)
	waitCheckpointCovering(t, st, 3)

	task, r := newFollower(t, url)
	r.Start(context.Background())
	defer r.Stop()
	waitConverged(t, leader, task)
	requireSameState(t, leader, task.Server())
}

// waitCheckpointCovering polls until the store holds a checkpoint at or
// past the given iteration (the async checkpointer runs on its own
// goroutine).
func waitCheckpointCovering(t *testing.T, st *store.MemStore, iteration int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		cp, err := st.Load(context.Background())
		if err == nil && cp.State.Iteration >= iteration {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no checkpoint covering iteration %d appeared", iteration)
}

func TestReplicatorGapRebootstrap(t *testing.T) {
	url, leader, st := newLeader(t,
		hub.WithCheckpointPolicy(hub.CheckpointPolicy{AfterN: 2}),
		hub.WithRetention(hub.PruneCovered))
	drive(t, leader, "d1", 4)

	task, r := newFollower(t, url)
	r.Start(context.Background())
	waitConverged(t, leader, task)
	followerAt := task.Server().Iteration()

	// Disconnect the follower, then advance the leader far enough that
	// retention prunes the segments covering the follower's position.
	r.Stop()
	drive(t, leader, "d1", 10)
	waitCheckpointCovering(t, st, followerAt+2)
	waitPrunedPast(t, st, followerAt)

	// A fresh replicator on the same task resumes after=followerAt, hits
	// the retention gap, and must re-bootstrap from the checkpoint.
	_, r2 := newFollower2(t, task, url)
	r2.Start(context.Background())
	defer r2.Stop()
	waitConverged(t, leader, task)
	requireSameState(t, leader, task.Server())
}

// newFollower2 builds a replicator for an existing follower task.
func newFollower2(t *testing.T, task *hub.Task, baseURL string) (*hub.Task, *Replicator) {
	t.Helper()
	r, err := New(Config{
		Task:         task,
		Feed:         transport.NewHTTPClient(baseURL, nil).WithTask("alpha"),
		PollInterval: 5 * time.Millisecond,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return task, r
}

// waitPrunedPast polls until the journal's oldest retained entry is past
// the given iteration — i.e. a cursor positioned there has a gap.
func waitPrunedPast(t *testing.T, st *store.MemStore, iteration int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		cur, err := st.OpenCursor(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := cur.Next()
		cur.Close()
		// Either the oldest retained entry starts past the follower's
		// resume point, or retention emptied the journal outright.
		if (err == nil && e.Iteration > iteration+1) || errors.Is(err, io.EOF) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("retention never pruned past iteration %d", iteration)
}

func TestReplicatorRetriesThroughLeaderOutage(t *testing.T) {
	stHub := hub.New()
	leaderTask, err := stHub.CreateTask(context.Background(), "alpha", serverConfig(),
		hub.WithStore(store.NewMemStore()))
	if err != nil {
		t.Fatal(err)
	}
	leader := leaderTask.Server()
	inner := transport.NewHandler(stHub)
	var down atomic.Bool
	down.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "leader down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	drive(t, leader, "d1", 3)

	task, r := newFollower(t, ts.URL)
	r.Start(context.Background())
	defer r.Stop()

	// With the leader dark the follower must settle into retrying.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := task.ReplicaStatus()
		if st.State == hub.ReplicaRetrying && st.LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reported retrying, status %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Leader returns: the follower converges and clears the error.
	down.Store(false)
	waitConverged(t, leader, task)
	requireSameState(t, leader, task.Server())
	st, _ := task.ReplicaStatus()
	if st.State != hub.ReplicaTailing || st.LastError != "" {
		t.Errorf("recovered status %+v, want tailing with no error", st)
	}
}

func TestReplicatorStopTransitionsToStopped(t *testing.T) {
	url, leader, _ := newLeader(t)
	drive(t, leader, "d1", 2)
	task, r := newFollower(t, url)
	r.Start(context.Background())
	waitConverged(t, leader, task)
	r.Stop()
	if st, _ := task.ReplicaStatus(); st.State != hub.ReplicaStopped {
		t.Errorf("state after Stop = %q, want stopped", st.State)
	}
}

func TestNewValidation(t *testing.T) {
	h := hub.New()
	leaderTask, err := h.CreateTask(context.Background(), "lead", serverConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed := transport.NewHTTPClient("http://x", nil).WithTask("lead")
	if _, err := New(Config{Feed: feed}); err == nil {
		t.Error("nil Task accepted")
	}
	if _, err := New(Config{Task: leaderTask, Feed: feed}); err == nil {
		t.Error("non-replica task accepted")
	}
	rep, err := h.CreateTask(context.Background(), "rep", serverConfig(), hub.AsReplicaOf("http://x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Task: rep}); err == nil {
		t.Error("nil Feed accepted")
	}
	if _, err := New(Config{Task: rep, Feed: transport.NewHTTPClient("http://x", nil)}); err == nil {
		t.Error("task-unbound Feed accepted")
	}
}

func TestErrorTagging(t *testing.T) {
	base := errors.New("boom")
	e := errOf(CategoryNetwork, "tail", base)
	if !errors.Is(e, base) {
		t.Error("tagged error does not unwrap to its cause")
	}
	want := "replica: tail [network]: boom"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}
