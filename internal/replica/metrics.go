package replica

import (
	"github.com/crowdml/crowdml/internal/telemetry"
)

// replicaMetrics holds the pre-bound telemetry handles for one
// replicator. A nil *replicaMetrics (Config.Metrics unset) disables all
// of them; every handle is nil-safe.
//
// Metric names (all carry a task label):
//
//	crowdml_replica_entries_replayed_total  counter  journal entries applied locally
//	crowdml_replica_bootstraps_total        counter  checkpoint bootstraps (incl. gap-driven)
//	crowdml_replica_retries_total           counter  backoff retries after failures
//	crowdml_replica_lag_iterations          gauge    leader iteration minus local (mirrors healthz)
type replicaMetrics struct {
	entriesReplayed *telemetry.Counter
	bootstraps      *telemetry.Counter
	retries         *telemetry.Counter
	lag             *telemetry.Gauge
}

// newReplicaMetrics binds the replica series for one task; nil registry
// yields nil.
func newReplicaMetrics(reg *telemetry.Registry, task string) *replicaMetrics {
	if reg == nil {
		return nil
	}
	t := telemetry.L("task", task)
	return &replicaMetrics{
		entriesReplayed: reg.Counter("crowdml_replica_entries_replayed_total",
			"Leader journal entries replayed into the local replica.", t),
		bootstraps: reg.Counter("crowdml_replica_bootstraps_total",
			"Checkpoint bootstraps, including gap-driven re-bootstraps.", t),
		retries: reg.Counter("crowdml_replica_retries_total",
			"Backoff retries after replication failures.", t),
		lag: reg.Gauge("crowdml_replica_lag_iterations",
			"Replication lag: leader iteration minus local iteration at the last complete exchange (mirrors /v1/healthz).", t),
	}
}

// setLag records the lag after a complete exchange, clamped at zero the
// same way hub.Task.ReplicationLag clamps it (the leader counter in the
// EOS frame was sampled before our last applied entries).
func (m *replicaMetrics) setLag(leaderIteration, localIteration int) {
	if m == nil {
		return
	}
	lag := leaderIteration - localIteration
	if lag < 0 {
		lag = 0
	}
	m.lag.Set(float64(lag))
}
