// Package replica implements the follower side of WAL-shipping
// replication: a Replicator that keeps a read-only hub task bit-exact
// with its leader by bootstrapping from the leader's latest checkpoint
// and then tailing the leader's journal feed, applying each shipped
// entry through the same deterministic replay path crash recovery uses.
//
// The runtime is a three-state machine (mirrored on /v1/healthz):
//
//	bootstrapping ──ok──▶ tailing ──feed lost──▶ retrying ──┐
//	      ▲                  │                              │
//	      │            ErrReplayGap                    backoff, then
//	      └──────(retention pruned our range)◀──────── reconnect ──▶ tailing
//
// While tailing, the follower serves the read path (checkout, stats)
// from its local replica, trailing the leader by the replication lag the
// healthz endpoint reports; writes are rejected by the HTTP layer with a
// leader hint. A follower that falls behind leader retention — the gap —
// does not guess: it re-bootstraps from the leader's checkpoint, which by
// construction covers everything retention pruned.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
	"github.com/crowdml/crowdml/internal/transport"
)

// Config configures a Replicator.
type Config struct {
	// Task is the local follower task (created with hub.AsReplicaOf) the
	// replicator maintains. Required.
	Task *hub.Task
	// Feed is the HTTP client bound (WithTask) to the same task ID on the
	// leader; build it WithRetry so transient leader hiccups are absorbed
	// below the replication state machine. Required.
	Feed *transport.HTTPClient
	// PollInterval is how long the follower idles after draining the feed
	// to the leader's current end before re-polling. Default 250ms.
	PollInterval time.Duration
	// BackoffMin / BackoffMax bound the jittered exponential backoff
	// between reconnect attempts after a failure. Defaults 100ms / 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Logf, when set, receives one line per state transition and failure
	// (log.Printf-shaped). Nil discards.
	Logf func(format string, args ...any)
	// Metrics, if non-nil, receives the replica telemetry series
	// (entries replayed, bootstraps, retries, lag) under the task's ID.
	Metrics *telemetry.Registry
}

// Replicator drives one follower task: Start launches the
// bootstrap-and-tail loop in a goroutine, Stop shuts it down. It
// implements hub.ReplicaProbe (New binds it to the task), so the task's
// healthz row reflects its live state.
type Replicator struct {
	cfg  Config
	srv  *core.Server
	logf func(string, ...any)
	m    *replicaMetrics // nil disables replica telemetry

	status chan hub.ReplicaStatus // 1-buffered mailbox holding current telemetry

	cancel context.CancelFunc
	done   chan struct{}
}

var _ hub.ReplicaProbe = (*Replicator)(nil)

// New validates the configuration, binds the replicator to the task's
// health probe, and returns it ready to Start.
func New(cfg Config) (*Replicator, error) {
	if cfg.Task == nil {
		return nil, errors.New("replica: Config.Task is required")
	}
	if !cfg.Task.ReadOnly() {
		return nil, fmt.Errorf("replica: task %q is not a replica (create it with hub.AsReplicaOf)", cfg.Task.ID())
	}
	if cfg.Feed == nil {
		return nil, errors.New("replica: Config.Feed is required")
	}
	if cfg.Feed.TaskID() == "" {
		return nil, errors.New("replica: Config.Feed must be task-bound (WithTask)")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = 5 * time.Second
		if cfg.BackoffMax < cfg.BackoffMin {
			cfg.BackoffMax = cfg.BackoffMin
		}
	}
	r := &Replicator{
		cfg:    cfg,
		srv:    cfg.Task.Server(),
		logf:   cfg.Logf,
		m:      newReplicaMetrics(cfg.Metrics, cfg.Task.ID()),
		status: make(chan hub.ReplicaStatus, 1),
	}
	if r.logf == nil {
		r.logf = func(string, ...any) {}
	}
	r.status <- hub.ReplicaStatus{State: hub.ReplicaBootstrapping, LeaderURL: cfg.Task.LeaderURL()}
	cfg.Task.BindReplicaProbe(r)
	return r, nil
}

// ReplicaStatus implements hub.ReplicaProbe.
func (r *Replicator) ReplicaStatus() hub.ReplicaStatus {
	st := <-r.status
	r.status <- st
	return st
}

// update mutates the current telemetry through fn.
func (r *Replicator) update(fn func(*hub.ReplicaStatus)) {
	st := <-r.status
	fn(&st)
	r.status <- st
}

// Start launches Run in a goroutine. Stop (or cancelling ctx) ends it.
func (r *Replicator) Start(ctx context.Context) {
	ctx, r.cancel = context.WithCancel(ctx)
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		r.Run(ctx)
	}()
}

// Stop cancels a Started replicator and waits for its loop to exit.
func (r *Replicator) Stop() {
	if r.cancel == nil {
		return
	}
	r.cancel()
	<-r.done
}

// Run drives the bootstrap-and-tail loop until ctx is cancelled. It is
// exported for callers that manage their own goroutines; Start/Stop wrap
// it for everyone else.
func (r *Replicator) Run(ctx context.Context) {
	defer r.update(func(st *hub.ReplicaStatus) { st.State = hub.ReplicaStopped })
	backoff := r.cfg.BackoffMin
	needBootstrap := true
	for ctx.Err() == nil {
		if needBootstrap {
			r.update(func(st *hub.ReplicaStatus) { st.State = hub.ReplicaBootstrapping })
			if err := r.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				r.logf("replica[%s]: %v", r.cfg.Task.ID(), err)
				backoff = r.failWait(ctx, err, backoff)
				continue
			}
			needBootstrap = false
			if r.m != nil {
				r.m.bootstraps.Inc()
			}
			r.logf("replica[%s]: bootstrapped at iteration %d", r.cfg.Task.ID(), r.srv.Iteration())
		}
		err := r.tailOnce(ctx)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil:
			backoff = r.cfg.BackoffMin // a full clean exchange resets the budget
			r.idle(ctx)
		case errors.Is(err, core.ErrReplayGap):
			// Leader retention pruned past our position; the checkpoint
			// covers the pruned range by construction. Re-bootstrap now —
			// waiting would only grow the gap.
			r.logf("replica[%s]: %v; re-bootstrapping from checkpoint", r.cfg.Task.ID(), err)
			r.update(func(st *hub.ReplicaStatus) { st.LastError = err.Error() })
			needBootstrap = true
		default:
			r.logf("replica[%s]: %v", r.cfg.Task.ID(), err)
			backoff = r.failWait(ctx, err, backoff)
		}
	}
}

// bootstrap imports the leader's latest checkpoint. A leader with no
// checkpoint yet is only acceptable when the follower holds nothing
// either — both sides then start from iteration 0 and the journal tail
// carries everything; otherwise the feed has a hole nothing can fill.
func (r *Replicator) bootstrap(ctx context.Context) error {
	cp, err := r.cfg.Feed.FetchCheckpoint(ctx)
	if errors.Is(err, store.ErrNoCheckpoint) {
		return nil // tail from wherever we are (iteration 0 on first boot)
	}
	if err != nil {
		return errOf(CategoryNetwork, "bootstrap", err)
	}
	// An old checkpoint cannot help with a gap that starts past it:
	// applying it would rewind the replica only to hit the same gap
	// again. Skip the import and let the tail proceed from local state.
	if cp.State != nil && cp.State.Iteration <= r.srv.Iteration() {
		return nil
	}
	if err := r.srv.ImportState(cp.State); err != nil {
		return errOf(CategoryState, "bootstrap", err)
	}
	return nil
}

// tailOnce opens the journal feed after the locally applied iteration
// and applies entries until the stream ends. A nil return is one
// complete exchange: every shipped entry applied and the end-of-stream
// frame consumed (its leader iteration feeds the lag telemetry).
func (r *Replicator) tailOnce(ctx context.Context) error {
	after := r.srv.Iteration()
	feed, err := r.cfg.Feed.OpenJournalFeed(ctx, after)
	if err != nil {
		return errOf(CategoryNetwork, "tail", err)
	}
	defer feed.Close()
	applied := 0
	for {
		e, err := feed.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, store.ErrFeedInterrupted) {
			return errOf(CategoryNetwork, "tail", err)
		}
		if err != nil {
			return errOf(CategoryProtocol, "tail", err)
		}
		if !e.Replayable() {
			continue // v1 audit-only entry; the checkpoint covered it
		}
		n, err := r.apply(e)
		if err != nil {
			return err
		}
		applied++
		if r.m != nil && n > 0 {
			// Count entries Replay actually applied, not everything the
			// feed shipped: a segment-granular feed re-streams entries the
			// replica already holds, and Replay skips those silently.
			r.m.entriesReplayed.Inc()
		}
	}
	// A clean exchange that shipped nothing while the leader sits ahead
	// of us is a gap the stream itself cannot reveal: retention pruned
	// our whole missing range, so the cursor had no entry left to trip
	// ErrReplayGap on. (A cursor merely racing fresh appends looks the
	// same for one poll; re-bootstrapping then is harmless — the
	// checkpoint is at least as fresh as the entries we missed.)
	if applied == 0 && feed.LeaderIteration() > r.srv.Iteration() {
		return errOf(CategoryGap, "tail",
			fmt.Errorf("feed ended empty at leader iteration %d with replica at %d: %w",
				feed.LeaderIteration(), r.srv.Iteration(), core.ErrReplayGap))
	}
	r.m.setLag(feed.LeaderIteration(), r.srv.Iteration())
	r.update(func(st *hub.ReplicaStatus) {
		st.State = hub.ReplicaTailing
		st.LeaderIteration = feed.LeaderIteration()
		st.LastError = ""
	})
	return nil
}

// apply replays one shipped journal entry into the local server,
// returning how many records Replay applied (0 when the entry was
// already covered locally). Each entry is its own Replay call: the
// parameter lock is held per entry, not per stream, so local checkouts
// interleave freely with a live tail — and the feed's network reads
// never happen under the lock (Replay's source must not block).
func (r *Replicator) apply(e store.JournalEntry) (int, error) {
	n, err := r.srv.Replay(core.ReplaySlice([]core.ReplayRecord{{
		DeviceID:  e.DeviceID,
		Iteration: e.Iteration,
		Req: &core.CheckinRequest{
			Grad:        e.Grad,
			NumSamples:  e.NumSamples,
			ErrCount:    e.ErrCount,
			LabelCounts: e.LabelCounts,
			Version:     e.Version,
		},
	}}))
	if errors.Is(err, core.ErrReplayGap) {
		return n, errOf(CategoryGap, "apply", err)
	}
	if err != nil {
		return n, errOf(CategoryState, "apply", err)
	}
	return n, nil
}

// idle waits PollInterval (or cancellation) between caught-up polls.
func (r *Replicator) idle(ctx context.Context) {
	t := time.NewTimer(r.cfg.PollInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// failWait records a failure, sleeps the jittered backoff, and returns
// the next (doubled, capped) backoff.
func (r *Replicator) failWait(ctx context.Context, err error, backoff time.Duration) time.Duration {
	if r.m != nil {
		r.m.retries.Inc()
	}
	r.update(func(st *hub.ReplicaStatus) {
		st.State = hub.ReplicaRetrying
		st.LastError = err.Error()
	})
	// Full jitter into [backoff/2, backoff]: a fleet of followers losing
	// one leader must not reconnect in lockstep.
	half := backoff / 2
	t := time.NewTimer(half + rand.N(half+1))
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
	if backoff *= 2; backoff > r.cfg.BackoffMax {
		backoff = r.cfg.BackoffMax
	}
	return backoff
}
