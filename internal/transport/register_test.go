package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
)

func TestEnrollmentFlow(t *testing.T) {
	h, _ := newHandler(t)
	h.EnableEnrollment("sesame")
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	ctx := context.Background()

	token, err := client.Register(ctx, "phone-9", "sesame")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if token == "" {
		t.Fatal("empty token")
	}
	// Token must work for checkout.
	if _, err := client.Checkout(ctx, "phone-9", token); err != nil {
		t.Errorf("checkout with enrolled token: %v", err)
	}
}

func TestEnrollmentBadKey(t *testing.T) {
	h, _ := newHandler(t)
	h.EnableEnrollment("sesame")
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	if _, err := client.Register(context.Background(), "d", "wrong"); !errors.Is(err, core.ErrAuth) {
		t.Errorf("error = %v, want ErrAuth", err)
	}
}

func TestEnrollmentDisabledByDefault(t *testing.T) {
	h, _ := newHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	if _, err := client.Register(context.Background(), "d", "anything"); err == nil {
		t.Error("registration should fail when enrollment is disabled")
	}
}

func TestEnrollmentEmptyKeyIgnored(t *testing.T) {
	h, _ := newHandler(t)
	h.EnableEnrollment("")
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Post(ts.URL+PathRegister, "application/json", strings.NewReader(`{"deviceId":"d"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("empty enrollment key must not enable the endpoint")
	}
}

func TestEnrollmentValidation(t *testing.T) {
	h, _ := newHandler(t)
	h.EnableEnrollment("k")
	ts := httptest.NewServer(h)
	defer ts.Close()

	do := func(method, body string) int {
		req, _ := http.NewRequest(method, ts.URL+PathRegister, strings.NewReader(body))
		req.Header.Set(headerEnrollKey, "k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := do(http.MethodGet, ""); got != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", got)
	}
	if got := do(http.MethodPost, "{bad"); got != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", got)
	}
	if got := do(http.MethodPost, `{"deviceId":"  "}`); got != http.StatusBadRequest {
		t.Errorf("empty deviceId status = %d", got)
	}
}
