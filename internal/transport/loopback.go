// Package transport connects Crowd-ML devices to the server: an in-process
// loopback for simulations and embedded use, and an HTTP JSON transport
// reproducing the paper's networked prototype (Section V-A, where the
// original system used Apache/HTTPS; TLS termination is orthogonal and can
// be layered with net/http's TLS support).
package transport

import (
	"context"

	"github.com/crowdml/crowdml/internal/core"
)

// Loopback is a zero-overhead in-process Transport that calls the server
// directly. It is the transport used by the simulated experiments where
// network delay is modeled separately (package simnet).
type Loopback struct {
	server *core.Server
}

var _ core.Transport = (*Loopback)(nil)

// NewLoopback wraps a server in a Transport.
func NewLoopback(s *core.Server) *Loopback {
	return &Loopback{server: s}
}

// Checkout implements core.Transport.
func (l *Loopback) Checkout(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error) {
	return l.server.Checkout(ctx, deviceID, token)
}

// Checkin implements core.Transport.
func (l *Loopback) Checkin(ctx context.Context, deviceID, token string, req *core.CheckinRequest) error {
	return l.server.Checkin(ctx, deviceID, token, req)
}
