package transport

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/crowdml/crowdml/internal/core"
)

// PathRegister is the legacy enrollment endpoint, the programmatic
// equivalent of the paper's Web portal "join a crowd-learning task" flow
// (Section V-A). The task-scoped form is /v1/tasks/{task}/register.
const PathRegister = "/v1/register"

const headerEnrollKey = "X-Crowdml-Enroll-Key"

type registerRequest struct {
	DeviceID string `json:"deviceId"`
}

type registerResponse struct {
	Token string `json:"token"`
}

// EnableEnrollment adds the enrollment endpoints — PathRegister for the
// default task and /v1/tasks/{task}/register for each hosted task —
// guarded by the given enrollment key. Devices presenting the key
// receive an authentication token for checkout/checkin. An empty key
// leaves enrollment disabled (devices must be registered through the Go
// API).
func (h *Handler) EnableEnrollment(key string) {
	if key == "" {
		return
	}
	handle := func(w http.ResponseWriter, r *http.Request) {
		got := r.Header.Get(headerEnrollKey)
		if subtle.ConstantTimeCompare([]byte(got), []byte(key)) != 1 {
			writeError(w, fmt.Errorf("bad enrollment key: %w", core.ErrAuth))
			return
		}
		// Decode before resolving the target: a sharded task routes the
		// enrollment by the device ID in the body.
		var req registerRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("bad JSON: %v: %w", err, core.ErrBadCheckin))
			return
		}
		if strings.TrimSpace(req.DeviceID) == "" {
			writeError(w, fmt.Errorf("deviceId is required: %w", core.ErrBadCheckin))
			return
		}
		if rt, ok := h.router(r); ok {
			if h.rejectShardReadOnly(w, rt, req.DeviceID) {
				return
			}
			token, err := rt.Register(r.Context(), req.DeviceID)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, registerResponse{Token: token})
			return
		}
		t, ok := h.task(w, r)
		if !ok {
			return
		}
		if rejectReadOnly(w, t) {
			return
		}
		token, err := t.Server().RegisterDevice(r.Context(), req.DeviceID)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, registerResponse{Token: token})
	}
	h.mux.HandleFunc("POST "+PathRegister, handle)
	h.mux.HandleFunc("POST "+PathTasks+"/{task}/register", handle)
}

// Register enrolls a device over HTTP and returns its token. A client
// bound with WithTask enrolls into that task; otherwise the server's
// default task.
func (c *HTTPClient) Register(ctx context.Context, deviceID, enrollKey string) (string, error) {
	payload, err := json.Marshal(registerRequest{DeviceID: deviceID})
	if err != nil {
		return "", fmt.Errorf("transport: encode register: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.endpoint(PathRegister), strings.NewReader(string(payload)))
	if err != nil {
		return "", fmt.Errorf("transport: build register: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerEnrollKey, enrollKey)
	resp, err := c.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("transport: register: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return "", err
	}
	var out registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("transport: decode register: %w", err)
	}
	return out.Token, nil
}
