package transport

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// PathRegister is the enrollment endpoint, the programmatic equivalent of
// the paper's Web portal "join a crowd-learning task" flow (Section V-A).
const PathRegister = "/v1/register"

const headerEnrollKey = "X-Crowdml-Enroll-Key"

type registerRequest struct {
	DeviceID string `json:"deviceId"`
}

type registerResponse struct {
	Token string `json:"token"`
}

// EnableEnrollment adds the PathRegister endpoint to the handler, guarded
// by the given enrollment key. Devices presenting the key receive an
// authentication token for checkout/checkin. An empty key leaves
// enrollment disabled (devices must be registered through the Go API).
func (h *Handler) EnableEnrollment(key string) {
	if key == "" {
		return
	}
	h.mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		got := r.Header.Get(headerEnrollKey)
		if subtle.ConstantTimeCompare([]byte(got), []byte(key)) != 1 {
			http.Error(w, "bad enrollment key", http.StatusUnauthorized)
			return
		}
		var req registerRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if strings.TrimSpace(req.DeviceID) == "" {
			http.Error(w, "deviceId is required", http.StatusBadRequest)
			return
		}
		token, err := h.server.RegisterDevice(req.DeviceID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, registerResponse{Token: token})
	})
}

// Register enrolls a device over HTTP and returns its token.
func (c *HTTPClient) Register(ctx context.Context, deviceID, enrollKey string) (string, error) {
	payload, err := json.Marshal(registerRequest{DeviceID: deviceID})
	if err != nil {
		return "", fmt.Errorf("transport: encode register: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.baseURL+PathRegister, strings.NewReader(string(payload)))
	if err != nil {
		return "", fmt.Errorf("transport: build register: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerEnrollKey, enrollKey)
	resp, err := c.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("transport: register: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return "", err
	}
	var out registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("transport: decode register: %w", err)
	}
	return out.Token, nil
}
