package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/store"
)

// ErrNoFeed is returned (as a 404) for the journal and checkpoint feed
// endpoints of a task that has no durability store attached: there is no
// WAL to ship, so the task cannot lead replicas (nor serve remote
// audits).
var ErrNoFeed = errors.New("transport: task has no journal feed (no durability store attached)")

// headerLeader carries the leader base URL a follower hints back to
// clients whose writes it rejects (409): retry the same request there.
const headerLeader = "X-Crowdml-Leader"

// handleJournalFeed serves GET /v1/tasks/{task}/journal?after=N — the
// WAL-shipping feed and remote-audit endpoint. It streams every journal
// entry with Iteration > N (whole trailing segments, exactly what
// Store.OpenCursor yields, so entries at or below N may lead the stream
// and repliers skip them) as chunked JSONL, one entry per line, flushed
// per entry so a follower sees new entries without buffering delay, and
// terminates with an end-of-stream frame carrying the leader's current
// iteration counter. Memory is O(one entry) however long the journal is.
// A crash-torn live tail (ErrJournalTruncated) ends the stream cleanly —
// the torn record was never durable. A mid-stream cursor failure simply
// cuts the response without the EOS frame; the client's FeedReader
// reports ErrFeedInterrupted and the follower reconnects.
func (h *Handler) handleJournalFeed(w http.ResponseWriter, r *http.Request) {
	t, ok := h.task(w, r)
	if !ok {
		return
	}
	st := t.Store()
	if st == nil {
		writeError(w, fmt.Errorf("task %q: %w", t.ID(), ErrNoFeed))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("bad 'after' parameter %q (want a non-negative iteration): %w",
				v, core.ErrBadCheckin))
			return
		}
		after = n
	}
	cur, err := st.OpenCursor(r.Context(), after)
	if err != nil {
		writeError(w, fmt.Errorf("task %q: open journal cursor: %w", t.ID(), err))
		return
	}
	defer cur.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	fw := store.NewFeedWriter(w)
	streamed := h.feedEntriesCounter(t.ID())
	for {
		e, err := cur.Next()
		if errors.Is(err, io.EOF) || errors.Is(err, store.ErrJournalTruncated) {
			break
		}
		if err != nil {
			// Headers are long sent; ending without the EOS frame is the
			// in-band error signal (the reader reports ErrFeedInterrupted).
			return
		}
		if fw.WriteEntry(e) != nil {
			return // client gone
		}
		streamed.Inc()
		if rc.Flush() != nil {
			return
		}
	}
	if fw.WriteEOS(t.Server().Iteration()) == nil {
		_ = rc.Flush()
	}
}

// handleCheckpoint serves GET /v1/tasks/{task}/checkpoint — the latest
// snapshot of the task's learning state, the bootstrap artifact a
// follower starts from when journal retention has pruned the range its
// cursor would need. 204 No Content when the task has not checkpointed
// yet (a fresh follower then simply tails the journal from iteration 0).
func (h *Handler) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	t, ok := h.task(w, r)
	if !ok {
		return
	}
	st := t.Store()
	if st == nil {
		writeError(w, fmt.Errorf("task %q: %w", t.ID(), ErrNoFeed))
		return
	}
	cp, err := st.Load(r.Context())
	if errors.Is(err, store.ErrNoCheckpoint) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err != nil {
		writeError(w, fmt.Errorf("task %q: load checkpoint: %w", t.ID(), err))
		return
	}
	writeJSON(w, cp)
}

// JournalFeed is an open streaming read of a leader's journal feed — the
// follower side of one GET /v1/tasks/{task}/journal response. Next
// yields entries in stream order; io.EOF marks the complete response
// (LeaderIteration is then valid) and store.ErrFeedInterrupted a cut
// connection — resume by opening a new feed after the last applied
// iteration. Close must always be called.
type JournalFeed struct {
	body io.ReadCloser
	fr   *store.FeedReader
}

// Next returns the next journal entry from the feed.
func (f *JournalFeed) Next() (store.JournalEntry, error) { return f.fr.Next() }

// LeaderIteration reports the leader's iteration counter from the
// end-of-stream frame; meaningful only after Next returned io.EOF.
func (f *JournalFeed) LeaderIteration() int { return f.fr.LeaderIteration() }

// Close releases the underlying response body.
func (f *JournalFeed) Close() error { return f.body.Close() }

// OpenJournalFeed opens a streaming read of the bound task's journal on
// the server, starting after the given iteration. The client must be
// bound to a task with WithTask (the feed endpoints have no legacy
// default-task alias). Opening retries per the client's retry policy;
// mid-stream failures surface from Next instead.
func (c *HTTPClient) OpenJournalFeed(ctx context.Context, after int) (*JournalFeed, error) {
	if c.taskID == "" {
		return nil, errors.New("transport: journal feed needs a task-bound client (WithTask)")
	}
	u := c.baseURL + taskPath(c.taskID, "journal")
	if after > 0 {
		u += "?after=" + strconv.Itoa(after)
	}
	resp, err := c.doGET(ctx, u, nil)
	if err != nil {
		return nil, fmt.Errorf("transport: open journal feed: %w", err)
	}
	if err := checkStatus(resp); err != nil {
		resp.Body.Close()
		return nil, err
	}
	return &JournalFeed{body: resp.Body, fr: store.NewFeedReader(resp.Body)}, nil
}

// FetchCheckpoint retrieves the bound task's latest checkpoint from the
// server, or store.ErrNoCheckpoint when the task has not checkpointed
// yet. The client must be bound to a task with WithTask.
func (c *HTTPClient) FetchCheckpoint(ctx context.Context) (*store.Checkpoint, error) {
	if c.taskID == "" {
		return nil, errors.New("transport: checkpoint fetch needs a task-bound client (WithTask)")
	}
	resp, err := c.doGET(ctx, c.baseURL+taskPath(c.taskID, "checkpoint"), nil)
	if err != nil {
		return nil, fmt.Errorf("transport: fetch checkpoint: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, store.ErrNoCheckpoint
	}
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var cp store.Checkpoint
	if err := decodeJSON(resp.Body, &cp); err != nil {
		return nil, fmt.Errorf("transport: decode checkpoint: %w", err)
	}
	return &cp, nil
}

// AuthProbe verifies device credentials against the server without
// transferring parameters: a HEAD on the checkout endpoint, which
// authenticates exactly like a checkout but discards the body. nil means
// the server vouches for the credentials — this is the leader-side check
// behind a follower replica's core.ServerConfig.AuthFallback, paid once
// per unknown device and then cached locally.
func (c *HTTPClient) AuthProbe(ctx context.Context, deviceID, token string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.endpoint(PathCheckout), nil)
	if err != nil {
		return fmt.Errorf("transport: build auth probe: %w", err)
	}
	req.Header.Set(headerDeviceID, deviceID)
	req.Header.Set(headerToken, token)
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("transport: auth probe: %w", err)
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}
