package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
)

// HTTP endpoint paths served by Handler and used by HTTPClient. The
// task-scoped forms live under PathTasks ("/v1/tasks/{task}/checkout",
// …); the legacy single-task paths are aliases bound to the hub's
// default task.
const (
	PathTasks    = "/v1/tasks"
	PathCheckout = "/v1/checkout"
	PathCheckin  = "/v1/checkin"
	PathStats    = "/v1/stats"

	headerDeviceID = "X-Crowdml-Device"
	headerToken    = "X-Crowdml-Token"
)

// taskPath builds a task-scoped endpoint path, e.g.
// taskPath("activity", "checkout") → "/v1/tasks/activity/checkout".
func taskPath(taskID, endpoint string) string {
	return PathTasks + "/" + url.PathEscape(taskID) + "/" + endpoint
}

// ErrReadOnlyReplica is returned (as a 409, with the leader's base URL
// in the X-Crowdml-Leader header) when a write — checkin, register —
// hits a follower replica. The replica's state is owned by the
// replication runtime; clients should retry the write against the
// hinted leader.
var ErrReadOnlyReplica = errors.New("transport: task is a read-only replica; write to the leader")

// StatsResponse is the public progress view served at the stats
// endpoints — the differentially private statistics the paper's Web
// portal displays (error rates and label distributions, Section V-A).
// Every field is read lock-free from the server's atomic counters, so a
// crowd polling its portal never slows the learning hot path down.
type StatsResponse struct {
	TaskID        string    `json:"taskId"`
	Iteration     int       `json:"iteration"`
	Stopped       bool      `json:"stopped"`
	ErrorEstimate *float64  `json:"errorEstimate,omitempty"`
	PriorEstimate []float64 `json:"priorEstimate,omitempty"`
	// Shards is the shard count of a sharded logical task (0 for a
	// plain task); its Iteration is then the merged Σ over shards.
	Shards int `json:"shards,omitempty"`
}

// TaskSummary is one row of the GET /v1/tasks listing — the programmatic
// equivalent of the paper's portal task index.
type TaskSummary struct {
	ID            string   `json:"id"`
	Name          string   `json:"name"`
	Algorithm     string   `json:"algorithm,omitempty"`
	Labels        []string `json:"labels,omitempty"`
	Classes       int      `json:"classes"`
	Dim           int      `json:"dim"`
	Iteration     int      `json:"iteration"`
	Stopped       bool     `json:"stopped"`
	ErrorEstimate *float64 `json:"errorEstimate,omitempty"`
	Default       bool     `json:"default,omitempty"`
	// Shards is the shard count of a sharded logical task; plain tasks
	// omit it. Member tasks never appear in the listing.
	Shards int `json:"shards,omitempty"`
}

// errorResponse is the JSON error body every endpoint emits via
// writeError.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler adapts a hub.Hub to net/http: task-scoped device-protocol
// routes under /v1/tasks/{task}/, a /v1/tasks listing, and the legacy
// single-task /v1/* aliases bound to the hub's default task. All
// endpoints speak JSON; method mismatches get 405 with an Allow header
// (via net/http's method-aware patterns).
type Handler struct {
	hub *hub.Hub
	mux *http.ServeMux
	// metrics is the transport-layer instrumentation installed by
	// EnableMetrics; nil means requests are not counted.
	metrics *httpMetrics
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps a hub in an http.Handler.
func NewHandler(h *hub.Hub) *Handler {
	hd := &Handler{hub: h, mux: http.NewServeMux()}
	hd.mux.HandleFunc("GET "+PathTasks, hd.handleListTasks)
	hd.mux.HandleFunc("GET "+PathTasks+"/{task}/checkout", hd.handleCheckout)
	hd.mux.HandleFunc("POST "+PathTasks+"/{task}/checkin", hd.handleCheckin)
	hd.mux.HandleFunc("GET "+PathTasks+"/{task}/stats", hd.handleStats)
	hd.mux.HandleFunc("GET "+PathTasks+"/{task}/journal", hd.handleJournalFeed)
	hd.mux.HandleFunc("GET "+PathTasks+"/{task}/checkpoint", hd.handleCheckpoint)
	hd.mux.HandleFunc("GET "+PathHealthz, hd.handleHealthz)
	hd.mux.HandleFunc("GET "+PathCheckout, hd.handleCheckout)
	hd.mux.HandleFunc("POST "+PathCheckin, hd.handleCheckin)
	hd.mux.HandleFunc("GET "+PathStats, hd.handleStats)
	return hd
}

// ServeHTTP implements http.Handler. With EnableMetrics installed it
// counts every request by matched route pattern and status class; the
// ServeMux stamps the matched pattern onto the request in place, so it
// is readable here after dispatch without touching the route table.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.metrics == nil {
		h.mux.ServeHTTP(w, r)
		return
	}
	sw := &statusWriter{ResponseWriter: w}
	h.mux.ServeHTTP(sw, r)
	h.metrics.observe(r.Pattern, sw.status())
}

// task resolves the request's target task: the {task} path segment when
// present, the hub's default task on the legacy alias paths. A failed
// resolution writes the response itself and returns ok=false: 409 (the
// stopped-task status) for a task that existed and was closed — so
// remote devices stand down instead of retrying a 404 forever — and 404
// for a task that never existed.
func (h *Handler) task(w http.ResponseWriter, r *http.Request) (*hub.Task, bool) {
	id := r.PathValue("task")
	var (
		t  *hub.Task
		ok bool
	)
	if id == "" {
		if t, ok = h.hub.DefaultTask(); !ok {
			if h.hub.DefaultClosed() {
				writeError(w, fmt.Errorf("the default task has been closed: %w", core.ErrStopped))
			} else {
				writeError(w, fmt.Errorf("no default task: %w", hub.ErrTaskNotFound))
			}
			return nil, false
		}
	} else if t, ok = h.hub.Task(id); !ok {
		if rt, sharded := h.hub.ShardRouterFor(id); sharded {
			// A sharded logical task has no single server behind it. The
			// device-protocol handlers route through the router before ever
			// resolving here, so this is a lineage endpoint (journal,
			// checkpoint): those are per shard — address a member directly.
			writeError(w, fmt.Errorf("task %q is sharded; per-shard state lives on its members %v: %w",
				id, rt.MemberIDs(), ErrNoFeed))
		} else if h.hub.Closed(id) {
			writeError(w, fmt.Errorf("task %q has been closed: %w", id, core.ErrStopped))
		} else {
			writeError(w, fmt.Errorf("%q: %w", id, hub.ErrTaskNotFound))
		}
		return nil, false
	}
	return t, true
}

func (h *Handler) handleListTasks(w http.ResponseWriter, r *http.Request) {
	var defaultID string
	if t, ok := h.hub.DefaultTask(); ok {
		defaultID = t.ID()
	}
	out := make([]TaskSummary, 0, h.hub.Len())
	for _, t := range h.hub.Tasks() {
		if _, member := h.hub.ShardMemberOf(t.ID()); member {
			// Shard members are an implementation detail; the logical
			// task's row (appended below) represents them.
			continue
		}
		info := t.Info()
		classes, dim := t.Server().ModelShape()
		s := TaskSummary{
			ID:        t.ID(),
			Name:      info.Name,
			Algorithm: info.Algorithm,
			Labels:    info.Labels,
			Classes:   classes,
			Dim:       dim,
			Iteration: t.Server().Iteration(),
			Stopped:   t.Server().Stopped(),
			Default:   t.ID() == defaultID,
		}
		if est, ok := t.Server().ErrEstimate(); ok {
			s.ErrorEstimate = &est
		}
		out = append(out, s)
	}
	writeJSON(w, h.shardedSummaries(out))
}

// handleCheckout serves the parameter checkout. The underlying
// core.Server read is lock-free (immutable snapshot + sharded auth), so
// this endpoint scales with whatever concurrency net/http throws at it.
// Clients that sent "Accept: application/x-crowdml-bin" get binary
// frames (with ?since=N delta support); everyone else gets the original
// JSON body.
func (h *Handler) handleCheckout(w http.ResponseWriter, r *http.Request) {
	if rt, ok := h.router(r); ok {
		h.shardedCheckout(w, r, rt)
		return
	}
	t, ok := h.task(w, r)
	if !ok {
		return
	}
	if binary, compress := acceptsBinary(r); binary {
		h.serveBinaryCheckout(w, r, t.Server(), compress)
		return
	}
	resp, err := t.Server().Checkout(r.Context(),
		r.Header.Get(headerDeviceID), r.Header.Get(headerToken))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (h *Handler) handleCheckin(w http.ResponseWriter, r *http.Request) {
	if rt, ok := h.router(r); ok {
		h.shardedCheckin(w, r, rt)
		return
	}
	t, ok := h.task(w, r)
	if !ok {
		return
	}
	if rejectReadOnly(w, t) {
		return
	}
	req, err := decodeCheckinBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := t.Server().Checkin(r.Context(),
		r.Header.Get(headerDeviceID), r.Header.Get(headerToken), req); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// rejectReadOnly writes the 409 + leader-hint rejection for writes
// targeting a follower replica; it reports true when the request was
// rejected and the caller must stop.
func rejectReadOnly(w http.ResponseWriter, t *hub.Task) bool {
	if !t.ReadOnly() {
		return false
	}
	w.Header().Set(headerLeader, t.LeaderURL())
	writeError(w, fmt.Errorf("task %q replicates %s: %w", t.ID(), t.LeaderURL(), ErrReadOnlyReplica))
	return true
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if rt, ok := h.router(r); ok {
		h.shardedStats(w, rt)
		return
	}
	t, ok := h.task(w, r)
	if !ok {
		return
	}
	s := t.Server()
	resp := StatsResponse{
		TaskID:    t.ID(),
		Iteration: s.Iteration(),
		Stopped:   s.Stopped(),
	}
	if est, ok := s.ErrEstimate(); ok {
		resp.ErrorEstimate = &est
	}
	if prior, ok := s.PriorEstimate(); ok {
		resp.PriorEstimate = prior
	}
	writeJSON(w, resp)
}

// writeJSON emits v with the JSON content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

// writeError is the single error path for every endpoint: it maps the
// framework's sentinel errors onto HTTP statuses (ErrAuth→401,
// ErrBadCheckin→400, ErrStopped→409, ErrTaskNotFound→404, cancelled
// request contexts→499-style 400) and emits a JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrAuth):
		status = http.StatusUnauthorized
	case errors.Is(err, core.ErrStopped), errors.Is(err, ErrReadOnlyReplica):
		status = http.StatusConflict
	case errors.Is(err, core.ErrBadCheckin):
		status = http.StatusBadRequest
	case errors.Is(err, hub.ErrTaskNotFound), errors.Is(err, ErrNoFeed):
		status = http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()}) //nolint:errcheck // headers sent
}

// HTTPClient is the device-side HTTP transport. The zero task ID targets
// the server's legacy single-task endpoints; WithTask derives a client
// bound to one named task.
type HTTPClient struct {
	baseURL string
	taskID  string
	client  *http.Client
	retry   RetryPolicy
	retryOn bool
	// wire selects the hot-path encoding (WithWire); the default
	// WireJSON preserves the original protocol byte for byte.
	wire      WireFormat
	wireFlate bool
	// delta is the base cache for WireBinaryDelta checkouts. A pointer,
	// so the value copies the With* combinators make share one cache;
	// WithTask and WithWire install a fresh one.
	delta *deltaCache
}

var _ core.Transport = (*HTTPClient)(nil)

// NewHTTPClient returns a transport speaking to the given base URL
// (e.g. "http://learning.example.com:8080"). A nil client uses a default
// with a 30 s timeout; per-request deadlines and cancellation always
// follow the context passed to each call.
func NewHTTPClient(baseURL string, client *http.Client) *HTTPClient {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPClient{baseURL: strings.TrimRight(baseURL, "/"), client: client}
}

// WithTask returns a copy of the client bound to the given task ID, so
// its Checkout/Checkin/Register calls hit the task-scoped
// /v1/tasks/{task}/ routes. An empty taskID returns to the legacy paths.
func (c *HTTPClient) WithTask(taskID string) *HTTPClient {
	cp := *c
	cp.taskID = taskID
	if cp.delta != nil {
		// A different task is a different model: never apply deltas
		// against the old task's base.
		cp.delta = &deltaCache{}
	}
	return &cp
}

// TaskID returns the task the client is bound to ("" = default task via
// the legacy paths).
func (c *HTTPClient) TaskID() string { return c.taskID }

// endpoint resolves a legacy path ("/v1/checkout") or its task-scoped
// equivalent depending on the client's task binding.
func (c *HTTPClient) endpoint(legacy string) string {
	if c.taskID == "" {
		return c.baseURL + legacy
	}
	return c.baseURL + taskPath(c.taskID, strings.TrimPrefix(legacy, "/v1/"))
}

// Checkout implements core.Transport. Checkout is idempotent, so a
// client built WithRetry transparently retries transient failures.
// With a binary wire format (WithWire) the request negotiates compact
// frames — and delta downloads — via Accept; the JSON default is
// byte-identical to the original protocol.
func (c *HTTPClient) Checkout(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error) {
	if c.wire != WireJSON {
		return c.checkoutBinary(ctx, deviceID, token)
	}
	hdr := http.Header{}
	hdr.Set(headerDeviceID, deviceID)
	hdr.Set(headerToken, token)
	resp, err := c.doGET(ctx, c.endpoint(PathCheckout), hdr)
	if err != nil {
		return nil, fmt.Errorf("transport: checkout: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var out core.CheckoutResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		return nil, fmt.Errorf("transport: decode checkout: %w", err)
	}
	return &out, nil
}

// Checkin implements core.Transport. Binary wire formats POST one
// wirecodec frame instead of the JSON body.
func (c *HTTPClient) Checkin(ctx context.Context, deviceID, token string, body *core.CheckinRequest) error {
	if c.wire != WireJSON {
		return c.checkinBinary(ctx, deviceID, token, body)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("transport: encode checkin: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(PathCheckin), bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("transport: build checkin: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerDeviceID, deviceID)
	req.Header.Set(headerToken, token)
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("transport: checkin: %w", err)
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}

// Tasks fetches the server's task listing (GET /v1/tasks) — the
// programmatic portal index a device browses before joining a task.
func (c *HTTPClient) Tasks(ctx context.Context) ([]TaskSummary, error) {
	resp, err := c.doGET(ctx, c.baseURL+PathTasks, nil)
	if err != nil {
		return nil, fmt.Errorf("transport: task listing: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var out []TaskSummary
	if err := decodeJSON(resp.Body, &out); err != nil {
		return nil, fmt.Errorf("transport: decode task listing: %w", err)
	}
	return out, nil
}

// Stats fetches the task's public progress view (GET stats) — the
// differentially private error and prior estimates a portal displays.
func (c *HTTPClient) Stats(ctx context.Context) (*StatsResponse, error) {
	resp, err := c.doGET(ctx, c.endpoint(PathStats), nil)
	if err != nil {
		return nil, fmt.Errorf("transport: stats: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var out StatsResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		return nil, fmt.Errorf("transport: decode stats: %w", err)
	}
	return &out, nil
}

// errorMessage extracts the message from a JSON error body, falling back
// to the raw bytes for non-JSON responses.
func errorMessage(body []byte) string {
	var er errorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return string(bytes.TrimSpace(body))
}

// wrapSentinel attaches a sentinel to a server-reported message without
// printing the sentinel twice (the server's message usually already ends
// with the sentinel's own text).
func wrapSentinel(msg string, sentinel error) error {
	if s := sentinel.Error(); strings.HasSuffix(msg, s) {
		return fmt.Errorf("%s%w", strings.TrimSuffix(msg, s), sentinel)
	}
	return fmt.Errorf("%s: %w", msg, sentinel)
}

// checkStatus converts HTTP error statuses back into the framework's
// sentinel errors so device code behaves identically across transports.
func checkStatus(resp *http.Response) error {
	switch {
	case resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusUnauthorized:
		return core.ErrAuth
	case resp.StatusCode == http.StatusConflict:
		// A 409 carrying a leader hint is a follower rejecting a write;
		// surface the hint so callers can redirect (LeaderHint). It still
		// unwraps to core.ErrStopped, so plain device loops stand down.
		if leader := resp.Header.Get(headerLeader); leader != "" {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			return &LeaderHintError{Leader: leader, msg: errorMessage(body)}
		}
		return core.ErrStopped
	case resp.StatusCode == http.StatusNotFound:
		// Only our handlers emit the JSON error envelope; a plain-text
		// 404 is an unregistered route (wrong base URL, enrollment
		// disabled, …), not a task-registry miss.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		var er errorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return wrapSentinel(er.Error, hub.ErrTaskNotFound)
		}
		return fmt.Errorf("transport: server returned 404: %s", bytes.TrimSpace(body))
	case resp.StatusCode == http.StatusBadRequest:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return wrapSentinel(errorMessage(body), core.ErrBadCheckin)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("transport: server returned %d: %s", resp.StatusCode, errorMessage(body))
	}
}
