package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// HTTP endpoint paths served by Handler and used by HTTPClient.
const (
	PathCheckout = "/v1/checkout"
	PathCheckin  = "/v1/checkin"
	PathStats    = "/v1/stats"

	headerDeviceID = "X-Crowdml-Device"
	headerToken    = "X-Crowdml-Token"
)

// statsResponse is the public progress view served at PathStats — the
// differentially private statistics the paper's Web portal displays
// (error rates and label distributions, Section V-A).
type statsResponse struct {
	Iteration     int       `json:"iteration"`
	Stopped       bool      `json:"stopped"`
	ErrorEstimate *float64  `json:"errorEstimate,omitempty"`
	PriorEstimate []float64 `json:"priorEstimate,omitempty"`
}

// Handler adapts a core.Server to net/http. Register it on any mux; all
// endpoints speak JSON.
type Handler struct {
	server *core.Server
	mux    *http.ServeMux
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps a server in an http.Handler.
func NewHandler(s *core.Server) *Handler {
	h := &Handler{server: s, mux: http.NewServeMux()}
	h.mux.HandleFunc(PathCheckout, h.handleCheckout)
	h.mux.HandleFunc(PathCheckin, h.handleCheckin)
	h.mux.HandleFunc(PathStats, h.handleStats)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handleCheckout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp, err := h.server.Checkout(r.Header.Get(headerDeviceID), r.Header.Get(headerToken))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (h *Handler) handleCheckin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req core.CheckinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := h.server.Checkin(r.Header.Get(headerDeviceID), r.Header.Get(headerToken), &req); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := statsResponse{
		Iteration: h.server.Iteration(),
		Stopped:   h.server.Stopped(),
	}
	if est, ok := h.server.ErrEstimate(); ok {
		resp.ErrorEstimate = &est
	}
	if prior, ok := h.server.PriorEstimate(); ok {
		resp.PriorEstimate = prior
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrAuth):
		http.Error(w, err.Error(), http.StatusUnauthorized)
	case errors.Is(err, core.ErrStopped):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, core.ErrBadCheckin):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HTTPClient is the device-side HTTP transport.
type HTTPClient struct {
	baseURL string
	client  *http.Client
}

var _ core.Transport = (*HTTPClient)(nil)

// NewHTTPClient returns a transport speaking to the given base URL
// (e.g. "http://learning.example.com:8080"). A nil client uses a default
// with a 30 s timeout.
func NewHTTPClient(baseURL string, client *http.Client) *HTTPClient {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPClient{baseURL: baseURL, client: client}
}

// Checkout implements core.Transport.
func (c *HTTPClient) Checkout(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+PathCheckout, nil)
	if err != nil {
		return nil, fmt.Errorf("transport: build checkout: %w", err)
	}
	req.Header.Set(headerDeviceID, deviceID)
	req.Header.Set(headerToken, token)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: checkout: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var out core.CheckoutResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("transport: decode checkout: %w", err)
	}
	return &out, nil
}

// Checkin implements core.Transport.
func (c *HTTPClient) Checkin(ctx context.Context, deviceID, token string, body *core.CheckinRequest) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("transport: encode checkin: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+PathCheckin, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("transport: build checkin: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerDeviceID, deviceID)
	req.Header.Set(headerToken, token)
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("transport: checkin: %w", err)
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}

// checkStatus converts HTTP error statuses back into the core sentinel
// errors so device code behaves identically across transports.
func checkStatus(resp *http.Response) error {
	switch {
	case resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusUnauthorized:
		return core.ErrAuth
	case resp.StatusCode == http.StatusConflict:
		return core.ErrStopped
	case resp.StatusCode == http.StatusBadRequest:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s: %w", bytes.TrimSpace(body), core.ErrBadCheckin)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("transport: server returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
}
