package transport

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy configures transparent retries for the client's idempotent
// GET requests (checkout, stats, task listing, checkpoint fetch, journal
// feed open). Only transport-level failures and transient server
// statuses (5xx, 429) are retried — application errors (401, 404, 409,
// 400) surface immediately, and non-idempotent requests (checkin,
// register) are never retried at all: a request that may have been
// applied must not be silently replayed. Delays grow exponentially from
// BaseDelay, are capped at MaxDelay, and carry full jitter (each wait is
// uniform in [d/2, d]) so a crowd of devices recovering from the same
// outage does not reconverge in lockstep. The retry budget always
// respects the request context: cancellation or deadline expiry ends the
// attempts immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values < 1 mean the default of 4.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry; it
	// doubles per attempt. Values <= 0 mean the default of 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter delay. Values <= 0 mean the default
	// of 2s.
	MaxDelay time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay returns the jittered wait before the given retry (attempt ≥ 1):
// exponential growth from BaseDelay capped at MaxDelay, then full jitter
// into [d/2, d].
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	return half + rand.N(half+1)
}

// WithRetry returns a copy of the client that transparently retries its
// idempotent GET requests per the policy. The zero policy selects the
// documented defaults.
func (c *HTTPClient) WithRetry(p RetryPolicy) *HTTPClient {
	cp := *c
	cp.retry = p.withDefaults()
	cp.retryOn = true
	return &cp
}

// retryableStatus reports whether an HTTP status is worth retrying: the
// server answered, but with a condition expected to clear (backend
// overload, a restarting leader, explicit throttling).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// doGET executes a GET against url with the given extra headers,
// retrying per the client's policy. A fresh request is built per attempt
// (request bodies are never involved — GETs only). The caller owns the
// returned response body.
func (c *HTTPClient) doGET(ctx context.Context, url string, header http.Header) (*http.Response, error) {
	attempts := 1
	if c.retryOn {
		attempts = c.retry.MaxAttempts
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			t := time.NewTimer(c.retry.delay(attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("%w (retry budget interrupted after: %v)", ctx.Err(), lastErr)
			case <-t.C:
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation, not a transient network fault: stop burning
				// the budget on a context that can never succeed.
				return nil, err
			}
			lastErr = err
			continue
		}
		if c.retryOn && retryableStatus(resp.StatusCode) && attempt < attempts {
			lastErr = fmt.Errorf("server returned %d: %s",
				resp.StatusCode, errorMessage(drainBody(resp)))
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("transport: GET failed after %d attempt(s): %w", attempts, lastErr)
}

// drainBody reads (capped) and closes a response body being discarded by
// a retry, returning the bytes for the error message. Draining lets the
// transport reuse the connection.
func drainBody(resp *http.Response) []byte {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return body
}

// bodyBufs pools response-body read buffers: the client's decode paths
// used to allocate a fresh json.Decoder (with its internal buffer) per
// call, which showed up as per-checkout garbage under load.
var bodyBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledBodyBuf caps what goes back in the pool, so one checkpoint
// fetch does not pin a giant buffer forever.
const maxPooledBodyBuf = 1 << 20

// readAllPooled reads r to EOF into a pooled buffer. The caller must
// call release exactly once, after it is done with data — the bytes are
// recycled and must not be retained past it.
func readAllPooled(r io.Reader) (data []byte, release func(), err error) {
	bp := bodyBufs.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, rerr := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			err = rerr
			break
		}
	}
	release = func() {
		if cap(buf) <= maxPooledBodyBuf {
			*bp = buf[:0]
			bodyBufs.Put(bp)
		}
	}
	return buf, release, err
}

// decodeJSON decodes one JSON value from r through a pooled read
// buffer, avoiding the per-call json.Decoder allocation of the
// streaming form.
func decodeJSON(r io.Reader, v any) error {
	data, release, err := readAllPooled(r)
	if err != nil {
		release()
		return err
	}
	err = json.Unmarshal(data, v)
	release()
	return err
}
