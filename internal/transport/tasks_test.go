package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// newTwoTaskHandler hosts "alpha" (default) and "beta" on one hub.
func newTwoTaskHandler(t *testing.T) (*Handler, *core.Server, *core.Server) {
	t.Helper()
	h := hub.New()
	mk := func(id string) *core.Server {
		task, err := h.CreateTask(context.Background(), id, core.ServerConfig{
			Model:   model.NewLogisticRegression(2, 2),
			Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
		})
		if err != nil {
			t.Fatalf("CreateTask(%s): %v", id, err)
		}
		return task.Server()
	}
	alpha := mk("alpha")
	beta := mk("beta")
	return NewHandler(h), alpha, beta
}

// TestTaskScopedRoutesAreIsolated proves a checkin on one task's route
// moves only that task, and that the legacy alias paths stay bound to
// the default task.
func TestTaskScopedRoutesAreIsolated(t *testing.T) {
	hd, alpha, beta := newTwoTaskHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()
	alphaTok, _ := alpha.RegisterDevice(ctx, "d1")
	betaTok, _ := beta.RegisterDevice(ctx, "d1")

	alphaClient := NewHTTPClient(ts.URL, nil).WithTask("alpha")
	betaClient := NewHTTPClient(ts.URL, nil).WithTask("beta")
	legacyClient := NewHTTPClient(ts.URL, nil) // default task = alpha

	if err := betaClient.Checkin(ctx, "d1", betaTok, checkinReq()); err != nil {
		t.Fatalf("beta checkin: %v", err)
	}
	if got := beta.Iteration(); got != 1 {
		t.Errorf("beta iterations = %d, want 1", got)
	}
	if got := alpha.Iteration(); got != 0 {
		t.Errorf("alpha iterations = %d, want 0 (cross-task leak)", got)
	}

	// The default task's credentials do not work on beta's route.
	if err := betaClient.Checkin(ctx, "d1", alphaTok, checkinReq()); !errors.Is(err, core.ErrAuth) {
		t.Errorf("cross-task token error = %v, want ErrAuth", err)
	}

	// Legacy alias and task-scoped route address the same default task.
	if err := legacyClient.Checkin(ctx, "d1", alphaTok, checkinReq()); err != nil {
		t.Fatalf("legacy checkin: %v", err)
	}
	if err := alphaClient.Checkin(ctx, "d1", alphaTok, checkinReq()); err != nil {
		t.Fatalf("task-scoped checkin: %v", err)
	}
	if got := alpha.Iteration(); got != 2 {
		t.Errorf("alpha iterations = %d, want 2 (legacy + scoped)", got)
	}
}

// TestClosedTaskStandsDevicesDown: after CloseTask, the task's routes
// answer 409 (ErrStopped), so a remote device latches Done instead of
// retrying a 404 forever.
func TestClosedTaskStandsDevicesDown(t *testing.T) {
	h := hub.New()
	ctx := context.Background()
	m := model.NewLogisticRegression(2, 2)
	task, err := h.CreateTask(ctx, "ending", core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	token, _ := task.Server().RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(NewHandler(h))
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("ending")
	dev, err := core.NewDevice(core.DeviceConfig{
		ID: "d1", Token: token, Model: m, Transport: client, Minibatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.AddSample(ctx, model.Sample{X: []float64{1, 0}, Y: 0}); err != nil {
		t.Fatalf("warm-up sample: %v", err)
	}
	if err := h.CloseTask(ctx, "ending"); err != nil {
		t.Fatal(err)
	}
	if err := dev.AddSample(ctx, model.Sample{X: []float64{1, 0}, Y: 0}); !errors.Is(err, core.ErrStopped) {
		t.Fatalf("post-close sample error = %v, want ErrStopped", err)
	}
	if !dev.Done() {
		t.Error("device should latch Done when the task is closed")
	}
}

// TestClosedDefaultTaskStandsLegacyDevicesDown: closing the default
// task must also answer 409 on the legacy alias paths, so devices that
// joined without a task ID stand down too.
func TestClosedDefaultTaskStandsLegacyDevicesDown(t *testing.T) {
	hd, alpha, _ := newTwoTaskHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()
	token, _ := alpha.RegisterDevice(ctx, "d1")
	client := NewHTTPClient(ts.URL, nil) // legacy paths, default = alpha
	if err := hd.hub.CloseTask(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Checkout(ctx, "d1", token); !errors.Is(err, core.ErrStopped) {
		t.Errorf("legacy checkout after closing default = %v, want ErrStopped", err)
	}
	// Creating a new task takes over the default slot and the alias
	// serves it again.
	task, err := hd.hub.CreateTask(ctx, "fresh", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tok2, _ := task.Server().RegisterDevice(ctx, "d2")
	if _, err := client.Checkout(ctx, "d2", tok2); err != nil {
		t.Errorf("legacy checkout on new default: %v", err)
	}
}

func TestUnknownTaskIs404(t *testing.T) {
	hd, _, _ := newTwoTaskHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("ghost")
	if _, err := client.Checkout(context.Background(), "d", "t"); !errors.Is(err, hub.ErrTaskNotFound) {
		t.Errorf("error = %v, want ErrTaskNotFound", err)
	}
	if err := client.Checkin(context.Background(), "d", "t", checkinReq()); !errors.Is(err, hub.ErrTaskNotFound) {
		t.Errorf("error = %v, want ErrTaskNotFound", err)
	}
}

func TestEmptyHubLegacyPathsAre404(t *testing.T) {
	hd := NewHandler(hub.New())
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	if _, err := client.Checkout(context.Background(), "d", "t"); !errors.Is(err, hub.ErrTaskNotFound) {
		t.Errorf("error = %v, want ErrTaskNotFound (no default task)", err)
	}
}

func TestTaskListing(t *testing.T) {
	hd, alpha, _ := newTwoTaskHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()
	tok, _ := alpha.RegisterDevice(ctx, "d1")
	if err := NewHTTPClient(ts.URL, nil).Checkin(ctx, "d1", tok, checkinReq()); err != nil {
		t.Fatal(err)
	}
	tasks, err := NewHTTPClient(ts.URL, nil).Tasks(ctx)
	if err != nil {
		t.Fatalf("Tasks: %v", err)
	}
	if len(tasks) != 2 || tasks[0].ID != "alpha" || tasks[1].ID != "beta" {
		t.Fatalf("listing = %+v", tasks)
	}
	if !tasks[0].Default || tasks[1].Default {
		t.Error("alpha should be flagged as the default task")
	}
	if tasks[0].Iteration != 1 || tasks[0].ErrorEstimate == nil {
		t.Errorf("alpha summary = %+v", tasks[0])
	}
}

func TestStatsIncludesTaskID(t *testing.T) {
	hd, _, _ := newTwoTaskHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	for path, want := range map[string]string{
		PathStats:                  `"taskId":"alpha"`, // legacy alias → default
		taskPath("beta", "stats"):  `"taskId":"beta"`,
		taskPath("alpha", "stats"): `"taskId":"alpha"`,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1024)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if got := string(body[:n]); !strings.Contains(got, want) {
			t.Errorf("%s body = %s, want %s", path, got, want)
		}
	}
}

// TestJSONContentType verifies every JSON-speaking response (success and
// error alike) declares its content type.
func TestJSONContentType(t *testing.T) {
	hd, alpha, _ := newTwoTaskHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	tok, _ := alpha.RegisterDevice(context.Background(), "d1")

	get := func(path, device, token string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set(headerDeviceID, device)
		req.Header.Set(headerToken, token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	cases := []struct {
		name string
		resp *http.Response
		code int
	}{
		{"stats", get(PathStats, "", ""), http.StatusOK},
		{"listing", get(PathTasks, "", ""), http.StatusOK},
		{"checkout ok", get(PathCheckout, "d1", tok), http.StatusOK},
		{"checkout auth error", get(PathCheckout, "ghost", "bad"), http.StatusUnauthorized},
		{"unknown task", get(taskPath("ghost", "stats"), "", ""), http.StatusNotFound},
	}
	for _, tc := range cases {
		if tc.resp.StatusCode != tc.code {
			t.Errorf("%s status = %d, want %d", tc.name, tc.resp.StatusCode, tc.code)
		}
		if ct := tc.resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s Content-Type = %q, want application/json", tc.name, ct)
		}
	}
}

// TestHTTPClientContextCancellationMidRequest proves the client aborts a
// request already in flight when its context is cancelled: the server
// deliberately stalls until the test unblocks it.
func TestHTTPClientContextCancellationMidRequest(t *testing.T) {
	release := make(chan struct{})
	stalled := make(chan struct{}, 2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stalled <- struct{}{}
		<-release // hold the request open past cancellation
	}))
	defer ts.Close()
	defer close(release)

	client := NewHTTPClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Checkout(ctx, "d1", "tok")
		errCh <- err
	}()
	<-stalled // the request reached the server…
	cancel()  // …now cancel it mid-flight
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not abort on context cancellation")
	}

	// Checkin path honors deadlines the same way.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if err := client.Checkin(dctx, "d1", "tok", checkinReq()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("checkin error = %v, want context.DeadlineExceeded", err)
	}
}
