package transport

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/telemetry"
)

// scrape fetches PathMetrics from the test server and returns the body.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + PathMetrics)
	if err != nil {
		t.Fatalf("GET %s: %v", PathMetrics, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", PathMetrics, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(body)
}

// TestMetricsRouteCounting verifies the per-route request counters: the
// route label is the matched ServeMux pattern (stamped onto the request
// during dispatch, so path parameters never leak into label values) and
// unmatched requests fold into one "unmatched" series.
func TestMetricsRouteCounting(t *testing.T) {
	h := hub.New()
	if _, err := h.CreateTask(context.Background(), "alpha", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}); err != nil {
		t.Fatalf("CreateTask: %v", err)
	}
	hd := NewHandler(h)
	reg := telemetry.NewRegistry()
	hd.EnableMetrics(reg)
	ts := httptest.NewServer(hd)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + PathTasks)
		if err != nil {
			t.Fatalf("GET %s: %v", PathTasks, err)
		}
		resp.Body.Close()
	}
	// A 404 on a real route (unknown task) and one on no route at all.
	for _, p := range []string{PathTasks + "/nope/stats", "/v1/definitely-not-a-route"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", p, resp.StatusCode)
		}
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`crowdml_http_requests_total{route="GET /v1/tasks",code="2xx"} 3`,
		`crowdml_http_requests_total{route="GET /v1/tasks/{task}/stats",code="4xx"} 1`,
		`crowdml_http_requests_total{route="unmatched",code="4xx"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestFeedStreamsThroughMetricsWrapper proves the statusWriter wrapper
// is transparent to the journal feed's per-entry Flush (Unwrap must
// expose the real writer to http.NewResponseController) and that each
// streamed entry is counted.
func TestFeedStreamsThroughMetricsWrapper(t *testing.T) {
	hd, srv, _ := newLeader(t)
	reg := telemetry.NewRegistry()
	hd.EnableMetrics(reg)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	for i := 0; i < 5; i++ {
		if err := srv.Checkin(ctx, "d1", token, checkinReq()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")

	feed, err := client.OpenJournalFeed(ctx, 0)
	if err != nil {
		t.Fatalf("OpenJournalFeed: %v", err)
	}
	defer feed.Close()
	n := 0
	for {
		_, err := feed.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("streamed %d entries through the metrics wrapper, want 5", n)
	}
	body := scrape(t, ts.URL)
	if want := `crowdml_feed_entries_streamed_total{task="alpha"} 5`; !strings.Contains(body, want) {
		t.Errorf("exposition missing %q:\n%s", want, body)
	}
	if want := `crowdml_http_requests_total{route="GET /v1/tasks/{task}/journal",code="2xx"} 1`; !strings.Contains(body, want) {
		t.Errorf("exposition missing %q:\n%s", want, body)
	}
}

// TestMetricsEndpointWithNilRegistry: a nil registry still serves the
// endpoint (empty, valid exposition) and skips request counting.
func TestMetricsEndpointWithNilRegistry(t *testing.T) {
	hd := NewHandler(hub.New())
	hd.EnableMetrics(nil)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	if body := scrape(t, ts.URL); body != "" {
		t.Fatalf("nil registry exposition = %q, want empty", body)
	}
	if hd.metrics != nil {
		t.Fatalf("nil registry must not install request counting")
	}
}
