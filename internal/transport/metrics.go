package transport

import (
	"net/http"
	"sync"

	"github.com/crowdml/crowdml/internal/telemetry"
)

// PathMetrics is the operational telemetry endpoint: Prometheus text
// exposition of every registered counter/gauge/histogram. Served on
// leaders and followers alike once EnableMetrics is called — a
// follower's registry carries the replica-side series, so a fleet
// scrape covers both roles with one config.
const PathMetrics = "/v1/metrics"

// httpMetrics is the transport layer's own instrumentation: per-route
// request counts by status class, plus the feed-entry throughput
// counter. Request counters are cached in a sync.Map keyed by
// (route, class) so the per-request cost after first sight is one map
// load and one atomic add — the registry's mutex is only taken when a
// new combination appears.
type httpMetrics struct {
	reg      *telemetry.Registry
	requests sync.Map // "route|class" → *telemetry.Counter
}

// EnableMetrics wires the operational telemetry registry into the
// handler: GET /v1/metrics serves reg's Prometheus exposition, and
// every request through the handler is counted in
// crowdml_http_requests_total{route,code} — route is the matched
// ServeMux pattern (bounded cardinality by construction; path
// parameters never leak into labels) and code the status class
// ("2xx".."5xx"). Call once, before serving traffic, like
// EnableEnrollment. A nil registry still registers the endpoint (an
// empty, valid exposition) but skips request counting.
func (h *Handler) EnableMetrics(reg *telemetry.Registry) {
	h.mux.Handle("GET "+PathMetrics, reg.Handler())
	if reg != nil {
		h.metrics = &httpMetrics{reg: reg}
	}
}

// observe counts one finished request. route is the matched pattern
// ("" for unmatched requests — ServeMux's 404s — which are folded into
// one series so scan traffic cannot mint unbounded label values).
func (m *httpMetrics) observe(route string, status int) {
	if m == nil {
		return
	}
	if route == "" {
		route = "unmatched"
	}
	var class string
	switch {
	case status < 200:
		class = "1xx"
	case status < 300:
		class = "2xx"
	case status < 400:
		class = "3xx"
	case status < 500:
		class = "4xx"
	default:
		class = "5xx"
	}
	key := route + "|" + class
	if c, ok := m.requests.Load(key); ok {
		c.(*telemetry.Counter).Inc()
		return
	}
	c := m.reg.Counter("crowdml_http_requests_total",
		"HTTP requests served, by matched route pattern and status class.",
		telemetry.L("route", route), telemetry.L("code", class))
	m.requests.Store(key, c)
	c.Inc()
}

// feedEntriesCounter binds the per-task feed throughput series — one
// registry lookup per feed open, then an atomic add per streamed entry.
// Nil (a no-op handle) when metrics are disabled.
func (h *Handler) feedEntriesCounter(task string) *telemetry.Counter {
	if h.metrics == nil {
		return nil
	}
	return h.metrics.reg.Counter("crowdml_feed_entries_streamed_total",
		"Journal entries streamed to feed consumers (followers and auditors).",
		telemetry.L("task", task))
}

// statusWriter records the response status code as it passes through.
// Unwrap keeps http.NewResponseController working against the wrapped
// writer — the journal feed's per-entry Flush must still reach the
// underlying connection.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status returns the effective status code (200 when the handler never
// wrote anything — net/http's implicit default).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}
