package transport

import (
	"context"
	"fmt"
	"net/http"
	"sort"

	"github.com/crowdml/crowdml/internal/hub"
)

// PathHealthz is the readiness endpoint, served by both roles: a leader
// reports per-task learning progress; a follower additionally reports
// its replication state and lag. 200 means every hosted task is ready to
// serve its role (a follower is ready once it is tailing the leader's
// feed); 503 means at least one is not — a load balancer draining a
// bootstrapping follower reads exactly this.
const PathHealthz = "/v1/healthz"

// HealthTask is one task's row in the healthz report.
type HealthTask struct {
	ID        string `json:"id"`
	Role      string `json:"role"` // "leader" or "follower"
	Iteration int    `json:"iteration"`
	Stopped   bool   `json:"stopped"`
	Ready     bool   `json:"ready"`
	// Follower-only fields.
	ReplicaState string `json:"replicaState,omitempty"`
	LeaderURL    string `json:"leaderUrl,omitempty"`
	// LeaderIteration is the leader's iteration counter as of the last
	// completed feed exchange.
	LeaderIteration int `json:"leaderIteration,omitempty"`
	// ReplicationLag is how many iterations this replica trails the
	// leader; nil when unknown (no feed exchange has completed yet).
	ReplicationLag *int   `json:"replicationLag,omitempty"`
	LastError      string `json:"lastError,omitempty"`
	// Shards holds the per-member rows of a sharded logical task (Role
	// "sharded"); the row itself is ready iff every shard is.
	Shards []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth is one member's row inside a sharded task's health entry.
type ShardHealth struct {
	ID        string `json:"id"`
	Iteration int    `json:"iteration"`
	Stopped   bool   `json:"stopped"`
	Ready     bool   `json:"ready"`
	// MergeLag is how many iterations this shard has advanced past the
	// published merged view — the staleness of what merged checkouts
	// currently serve for this shard's contribution.
	MergeLag int `json:"mergeLag"`
	// ReplicaState is set when the member is itself a follower replica.
	ReplicaState string `json:"replicaState,omitempty"`
}

// HealthResponse is the healthz body: overall status ("ok" or
// "unavailable", mirrored by the 200/503 response status) plus one row
// per hosted task.
type HealthResponse struct {
	Status string       `json:"status"`
	Tasks  []HealthTask `json:"tasks"`
}

// handleHealthz serves GET /v1/healthz.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Tasks: make([]HealthTask, 0, h.hub.Len())}
	ready := true
	for _, t := range h.hub.Tasks() {
		if _, member := h.hub.ShardMemberOf(t.ID()); member {
			// Reported inside the logical task's sharded row below.
			continue
		}
		row := HealthTask{
			ID:        t.ID(),
			Role:      "leader",
			Iteration: t.Server().Iteration(),
			Stopped:   t.Server().Stopped(),
			Ready:     true,
		}
		if t.ReadOnly() {
			row.Role = "follower"
			row.LeaderURL = t.LeaderURL()
			// A follower is ready once its runtime reports it tailing the
			// feed: bootstrapped, serving reads, trailing by a known lag. A
			// replica between CreateTask and its runtime binding a probe, or
			// one still bootstrapping, is not ready yet; one retrying a lost
			// leader keeps serving its last-applied state and stays ready.
			st, ok := t.ReplicaStatus()
			if !ok {
				row.Ready = false
			} else {
				row.ReplicaState = st.State
				row.LeaderIteration = st.LeaderIteration
				row.LastError = st.LastError
				row.Ready = st.State == hub.ReplicaTailing || st.State == hub.ReplicaRetrying
				if lag, ok := t.ReplicationLag(); ok {
					row.ReplicationLag = &lag
				}
			}
		}
		if !row.Ready {
			ready = false
		}
		resp.Tasks = append(resp.Tasks, row)
	}
	for _, rt := range h.hub.ShardRouters() {
		row := shardedHealthRow(rt)
		if !row.Ready {
			ready = false
		}
		resp.Tasks = append(resp.Tasks, row)
	}
	sort.Slice(resp.Tasks, func(i, j int) bool { return resp.Tasks[i].ID < resp.Tasks[j].ID })
	if !ready {
		resp.Status = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, resp)
}

// Healthz fetches the server's readiness report. Unlike the other GETs
// it is never retried and accepts the 503 a not-ready server answers
// with — the report itself is the answer; err is non-nil only when no
// report could be obtained at all.
func (c *HTTPClient) Healthz(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+PathHealthz, nil)
	if err != nil {
		return nil, fmt.Errorf("transport: build healthz: %w", err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("transport: healthz returned %d", resp.StatusCode)
	}
	var out HealthResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		return nil, fmt.Errorf("transport: decode healthz: %w", err)
	}
	return &out, nil
}
