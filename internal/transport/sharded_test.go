package transport

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/shard"
)

// newShardedHandler hosts the sharded logical task "act" (2 shards)
// plus the plain task "solo" on one hub. The merge interval is long, so
// tests drive merges explicitly through the returned group.
func newShardedHandler(t *testing.T, memberOpts ...shard.Option) (*Handler, *shard.Group) {
	t.Helper()
	h := hub.New()
	configure := func(int) core.ServerConfig {
		return core.ServerConfig{
			Model:   model.NewLogisticRegression(2, 2),
			Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
		}
	}
	opts := append([]shard.Option{shard.WithShards(2), shard.WithMergeInterval(time.Hour)}, memberOpts...)
	g, err := shard.New(context.Background(), h, "act", configure, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	if _, err := h.CreateTask(context.Background(), "solo", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}); err != nil {
		t.Fatal(err)
	}
	return NewHandler(h), g
}

// TestShardedDeviceProtocolOverHTTP drives the full device loop against
// a sharded logical task: the paths are identical to a plain task's,
// writes land on each device's owning member only, and checkouts serve
// the merged view.
func TestShardedDeviceProtocolOverHTTP(t *testing.T) {
	hd, g := newShardedHandler(t)
	hd.EnableEnrollment("k")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()
	cl := NewHTTPClient(ts.URL, nil).WithTask("act")

	// device-002 hashes to shard 0, device-001 to shard 1 (golden map).
	tok0, err := cl.Register(ctx, "device-002", "k")
	if err != nil {
		t.Fatalf("register device-002: %v", err)
	}
	tok1, err := cl.Register(ctx, "device-001", "k")
	if err != nil {
		t.Fatalf("register device-001: %v", err)
	}
	if err := cl.Checkin(ctx, "device-002", tok0, checkinReq()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := cl.Checkin(ctx, "device-001", tok1, checkinReq()); err != nil {
			t.Fatal(err)
		}
	}
	members := g.Members()
	if i0, i1 := members[0].Server().Iteration(), members[1].Server().Iteration(); i0 != 1 || i1 != 2 {
		t.Fatalf("member iterations = (%d,%d), want (1,2)", i0, i1)
	}

	g.Merge()
	resp, err := cl.Checkout(ctx, "device-002", tok0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 3 {
		t.Errorf("merged checkout Version = %d, want 3", resp.Version)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TaskID != "act" || st.Iteration != 3 || st.Shards != 2 {
		t.Errorf("sharded stats = %+v", st)
	}
	if st.ErrorEstimate == nil {
		t.Error("sharded stats missing merged error estimate")
	}

	// A token is shard-local: the wrong device/token pair fails auth even
	// though both devices are enrolled in the logical task.
	if _, err := cl.Checkout(ctx, "device-002", tok1); !errors.Is(err, core.ErrAuth) {
		t.Errorf("cross-shard token err = %v, want ErrAuth", err)
	}
}

// TestShardedListingHidesMembers: the crowd-facing index shows the
// logical task (with its shard count) and plain tasks, never the
// "{task}.shard-{k}" members.
func TestShardedListingHidesMembers(t *testing.T) {
	hd, _ := newShardedHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	tasks, err := NewHTTPClient(ts.URL, nil).Tasks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0].ID != "act" || tasks[1].ID != "solo" {
		t.Fatalf("listing = %+v, want [act solo]", tasks)
	}
	if tasks[0].Shards != 2 || tasks[1].Shards != 0 {
		t.Errorf("shard counts = (%d,%d), want (2,0)", tasks[0].Shards, tasks[1].Shards)
	}
	if tasks[0].Classes != 2 || tasks[0].Dim != 2 {
		t.Errorf("sharded summary shape = (%d,%d)", tasks[0].Classes, tasks[0].Dim)
	}
}

// TestShardedHealthz: the logical task reports one aggregated row with
// per-shard sub-rows; members do not get standalone rows.
func TestShardedHealthz(t *testing.T) {
	hd, g := newShardedHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()

	// One unmerged checkin on shard 1 ⇒ its row shows merge lag.
	tok, err := g.Register(ctx, "device-001")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Checkin(ctx, "device-001", tok, checkinReq()); err != nil {
		t.Fatal(err)
	}

	hr, err := NewHTTPClient(ts.URL, nil).Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || len(hr.Tasks) != 2 {
		t.Fatalf("healthz = %+v, want ok with rows [act solo]", hr)
	}
	row := hr.Tasks[0]
	if row.ID != "act" || row.Role != "sharded" || !row.Ready {
		t.Fatalf("sharded row = %+v", row)
	}
	if len(row.Shards) != 2 {
		t.Fatalf("sharded row has %d shard sub-rows", len(row.Shards))
	}
	if row.Shards[0].ID != "act.shard-0" || row.Shards[1].ID != "act.shard-1" {
		t.Errorf("shard sub-row IDs = %q, %q", row.Shards[0].ID, row.Shards[1].ID)
	}
	if row.Shards[1].MergeLag != 1 {
		t.Errorf("shard 1 merge lag = %d, want 1 (one unmerged checkin)", row.Shards[1].MergeLag)
	}
	if hr.Tasks[1].ID != "solo" || hr.Tasks[1].Role != "leader" {
		t.Errorf("plain row = %+v", hr.Tasks[1])
	}
}

// TestShardedFollowerMemberWritesGet409WithHint pins satellite behavior:
// a write routed to a follower-role member answers 409 with the owning
// shard's leader URL in X-Crowdml-Leader, and the client surfaces it as
// a LeaderHintError that still unwraps to the stand-down sentinels.
func TestShardedFollowerMemberWritesGet409WithHint(t *testing.T) {
	const leaderURL = "http://leader.example:8080"
	// Shard 0 is a follower replica; shard 1 a normal leader member.
	hd, g := newShardedHandler(t, shard.WithMemberTaskOptions(
		func(k int, memberID string) []hub.TaskOption {
			if k == 0 {
				return []hub.TaskOption{hub.AsReplicaOf(leaderURL)}
			}
			return nil
		}))
	hd.EnableEnrollment("k")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()
	cl := NewHTTPClient(ts.URL, nil).WithTask("act")

	// device-002 routes to shard 0 (the follower): rejected with a hint.
	_, err := cl.Register(ctx, "device-002", "k")
	if err == nil {
		t.Fatal("register on follower shard succeeded")
	}
	if !errors.Is(err, ErrReadOnlyReplica) || !errors.Is(err, core.ErrStopped) {
		t.Errorf("err = %v, want both ErrReadOnlyReplica and ErrStopped", err)
	}
	if hint, ok := LeaderHint(err); !ok || hint != leaderURL {
		t.Errorf("LeaderHint = %q, %v, want %q", hint, ok, leaderURL)
	}

	// device-001 routes to shard 1 (a leader): full write path works, and
	// its checkin answers normally too.
	tok, err := cl.Register(ctx, "device-001", "k")
	if err != nil {
		t.Fatalf("register on leader shard: %v", err)
	}
	if err := cl.Checkin(ctx, "device-001", tok, checkinReq()); err != nil {
		t.Fatal(err)
	}
	_ = g
}

// TestShardedLineageEndpointsName404Members: journal/checkpoint are per
// shard — the logical ID answers 404 naming the member IDs to use.
func TestShardedLineageEndpointsName404Members(t *testing.T) {
	hd, _ := newShardedHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/tasks/act/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("journal on logical ID = %d, want 404", resp.StatusCode)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "act.shard-0") {
		t.Errorf("404 body %q does not name the member IDs", er.Error)
	}
}
