package transport

import (
	"bytes"
	"context"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/wirecodec"
)

// ContentTypeBinary is the negotiated media type of the binary wire
// protocol (internal/wirecodec, docs/WIRE.md). A checkout request opts
// in with "Accept: application/x-crowdml-bin" (append ";compress=flate"
// to also ask for compressed frames); a checkin opts in by POSTing its
// frame under this Content-Type. JSON remains the default: requests
// that do not ask get exactly the pre-existing behavior, and error
// responses are ALWAYS the JSON envelope regardless of negotiation.
const ContentTypeBinary = "application/x-crowdml-bin"

// wireCompressFlate is the Accept parameter requesting flate frames.
const wireCompressFlate = "flate"

// WireFormat selects the client's encoding for the device hot path.
type WireFormat int

const (
	// WireJSON is the default: the original JSON request/response bodies.
	WireJSON WireFormat = iota
	// WireBinary negotiates binary frames for checkout and checkin.
	WireBinary
	// WireBinaryDelta additionally sends ?since=N on checkouts, so an
	// up-to-date poller downloads a ~36-byte empty delta instead of the
	// full parameter vector.
	WireBinaryDelta
)

// String returns the -wire flag spelling of the format.
func (f WireFormat) String() string {
	switch f {
	case WireBinary:
		return "binary"
	case WireBinaryDelta:
		return "binary-delta"
	default:
		return "json"
	}
}

// ParseWireFormat parses the -wire flag spelling ("json", "binary",
// "binary-delta").
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "", "json":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	case "binary-delta":
		return WireBinaryDelta, nil
	}
	return WireJSON, fmt.Errorf("transport: unknown wire format %q (want json, binary or binary-delta)", s)
}

// acceptsBinary inspects the request's Accept header for the binary
// media type. Unknown or absent Accept values fall back to JSON — an
// old client can never receive a frame it does not understand.
func acceptsBinary(r *http.Request) (ok, compress bool) {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		if mt == ContentTypeBinary {
			ok = true
			if params["compress"] == wireCompressFlate {
				compress = true
			}
		}
	}
	return ok, compress
}

// isBinaryContentType reports whether a header value names the binary
// media type (parameters ignored — the frame's own flag governs
// compression).
func isBinaryContentType(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == ContentTypeBinary
}

// wireBufs pools frame-encode buffers (responses server-side, checkin
// bodies client-side). Oversized buffers are dropped rather than pooled
// so one giant model does not pin memory forever.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const maxPooledWireBuf = 1 << 20

func putWireBuf(bp *[]byte, b []byte) {
	if cap(b) <= maxPooledWireBuf {
		*bp = b[:0]
		wireBufs.Put(bp)
	}
}

// deltaCheckoutServer is the read surface both a plain task server and
// the sharded router implement; the handler serves every binary
// checkout — full or delta — through it.
type deltaCheckoutServer interface {
	CheckoutDelta(ctx context.Context, deviceID, token string, since int) (*core.ParamDelta, error)
}

var (
	_ deltaCheckoutServer = (*core.Server)(nil)
)

// parseSince extracts the delta base from ?since=N; absent means -1
// (full frame). A malformed value is the client's error: 400.
func parseSince(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return -1, nil
	}
	since, err := strconv.Atoi(raw)
	if err != nil || since < 0 {
		return 0, fmt.Errorf("bad since %q: %w", raw, core.ErrBadCheckin)
	}
	return since, nil
}

// serveBinaryCheckout answers a binary-negotiated checkout from any
// delta-capable read surface. Errors still flow through writeError —
// the JSON envelope — which the client distinguishes by Content-Type.
func (h *Handler) serveBinaryCheckout(w http.ResponseWriter, r *http.Request, srv deltaCheckoutServer, compress bool) {
	since, err := parseSince(r)
	if err != nil {
		writeError(w, err)
		return
	}
	d, err := srv.CheckoutDelta(r.Context(),
		r.Header.Get(headerDeviceID), r.Header.Get(headerToken), since)
	if err != nil {
		writeError(w, err)
		return
	}
	writeBinaryCheckout(w, d, compress)
}

// writeBinaryCheckout encodes a ParamDelta into a pooled buffer and
// writes it: the zero-copy full frame when no delta base matched, the
// smaller of the sparse/dense delta forms otherwise.
func writeBinaryCheckout(w http.ResponseWriter, d *core.ParamDelta, compress bool) {
	bp := wireBufs.Get().(*[]byte)
	b := wirecodec.AppendCheckout((*bp)[:0], d.Params, d.Version, d.Done, d.Since, d.Indices, d.Values, compress)
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	_, _ = w.Write(b)
	putWireBuf(bp, b)
}

// decodeCheckinBody decodes a checkin request by its Content-Type:
// binary frames when the client POSTed ContentTypeBinary, the original
// JSON body otherwise. Every malformed payload — bad JSON, a truncated
// or corrupted frame, the wrong frame kind — wraps core.ErrBadCheckin,
// so the handler's error mapping yields 400, never 500.
func decodeCheckinBody(r *http.Request) (*core.CheckinRequest, error) {
	body := http.MaxBytesReader(nil, r.Body, 64<<20)
	if !isBinaryContentType(r.Header.Get("Content-Type")) {
		var req core.CheckinRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, fmt.Errorf("bad JSON: %v: %w", err, core.ErrBadCheckin)
		}
		return &req, nil
	}
	raw, release, err := readAllPooled(body)
	if err != nil {
		release()
		return nil, fmt.Errorf("read checkin frame: %v: %w", err, core.ErrBadCheckin)
	}
	fr, err := wirecodec.Decode(raw)
	release()
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, core.ErrBadCheckin)
	}
	if fr.Kind != wirecodec.KindCheckin {
		return nil, fmt.Errorf("frame kind %d is not a checkin: %w", fr.Kind, core.ErrBadCheckin)
	}
	return &core.CheckinRequest{
		Grad:        fr.Values,
		NumSamples:  fr.NumSamples,
		ErrCount:    fr.ErrCount,
		LabelCounts: fr.LabelCounts,
		Version:     fr.Version,
	}, nil
}

// --- client side ---

// deltaCache is the client's base for delta checkouts: a private copy
// of the last parameters it saw and their iteration. It is a pointer
// field on HTTPClient so the WithRetry/With* copies share one cache
// (same task, same model); WithTask allocates a fresh one.
type deltaCache struct {
	mu      sync.Mutex
	params  []float64
	version int
	valid   bool
}

func (dc *deltaCache) base() (int, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.version, dc.valid
}

func (dc *deltaCache) drop() {
	dc.mu.Lock()
	dc.valid = false
	dc.params = nil
	dc.mu.Unlock()
}

// WithWire returns a copy of the client speaking the given wire format
// on Checkout/Checkin. WireBinaryDelta installs a fresh delta cache;
// registration, stats and the journal feed always stay JSON.
func (c *HTTPClient) WithWire(f WireFormat) *HTTPClient {
	cp := *c
	cp.wire = f
	cp.delta = nil
	if f == WireBinaryDelta {
		cp.delta = &deltaCache{}
	}
	return &cp
}

// WithWireFlate returns a copy that additionally asks the server to
// flate-compress its binary frames and compresses its own checkin
// frames. Only meaningful combined with WireBinary/WireBinaryDelta.
func (c *HTTPClient) WithWireFlate() *HTTPClient {
	cp := *c
	cp.wireFlate = true
	return &cp
}

// Wire returns the client's negotiated wire format.
func (c *HTTPClient) Wire() WireFormat { return c.wire }

// acceptValue is the Accept header the client sends on binary checkouts.
func (c *HTTPClient) acceptValue() string {
	if c.wireFlate {
		return ContentTypeBinary + ";compress=" + wireCompressFlate
	}
	return ContentTypeBinary
}

// checkoutBinary is the binary/delta checkout flow. A response that is
// not the binary media type (an old server, a proxy) falls back to the
// JSON decoding, so negotiation can never strand the client; a delta
// whose base no longer matches the cache drops it and refetches one
// full frame.
func (c *HTTPClient) checkoutBinary(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error) {
	since := -1
	if c.delta != nil {
		if v, ok := c.delta.base(); ok {
			since = v
		}
	}
	resp, retry, err := c.checkoutBinaryOnce(ctx, deviceID, token, since)
	if retry {
		// Stale or mismatched delta base: one full refetch resynchronizes.
		if c.delta != nil {
			c.delta.drop()
		}
		resp, _, err = c.checkoutBinaryOnce(ctx, deviceID, token, -1)
	}
	return resp, err
}

// checkoutBinaryOnce performs one negotiated checkout round trip.
// retry=true means the delta base was rejected and the caller should
// refetch a full frame.
func (c *HTTPClient) checkoutBinaryOnce(ctx context.Context, deviceID, token string, since int) (*core.CheckoutResponse, bool, error) {
	hdr := http.Header{}
	hdr.Set(headerDeviceID, deviceID)
	hdr.Set(headerToken, token)
	hdr.Set("Accept", c.acceptValue())
	url := c.endpoint(PathCheckout)
	if since >= 0 {
		url += "?since=" + strconv.Itoa(since)
	}
	resp, err := c.doGET(ctx, url, hdr)
	if err != nil {
		return nil, false, fmt.Errorf("transport: checkout: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		// Errors are always the JSON envelope; checkStatus already read
		// it — the binary decoder below never sees an error body.
		return nil, false, err
	}
	if !isBinaryContentType(resp.Header.Get("Content-Type")) {
		// The server answered 2xx but not in our format: decode as JSON
		// rather than feeding the frame decoder something it never was.
		var out core.CheckoutResponse
		if err := decodeJSON(resp.Body, &out); err != nil {
			return nil, false, fmt.Errorf("transport: decode checkout: %w", err)
		}
		return &out, false, nil
	}
	raw, release, err := readAllPooled(resp.Body)
	if err != nil {
		release()
		return nil, false, fmt.Errorf("transport: read checkout frame: %w", err)
	}
	fr, err := wirecodec.Decode(raw)
	release()
	if err != nil {
		return nil, false, fmt.Errorf("transport: decode checkout: %w", err)
	}

	var params []float64
	switch fr.Kind {
	case wirecodec.KindFull:
		params = fr.Values
	case wirecodec.KindDelta:
		if fr.Since != since {
			// The server answered a different base than we asked for:
			// protocol violation; resynchronize with a full frame.
			return nil, true, fmt.Errorf("transport: delta base %d, asked for %d", fr.Since, since)
		}
		if fr.Sparse {
			c.delta.mu.Lock()
			if !c.delta.valid || c.delta.version != fr.Since || len(c.delta.params) != fr.Dims {
				c.delta.mu.Unlock()
				return nil, true, fmt.Errorf("transport: no delta base for iteration %d", fr.Since)
			}
			params, err = wirecodec.ApplyDelta(c.delta.params, fr)
			c.delta.mu.Unlock()
		} else {
			params, err = wirecodec.ApplyDelta(nil, fr)
		}
		if err != nil {
			return nil, false, fmt.Errorf("transport: apply delta: %w", err)
		}
	default:
		return nil, false, fmt.Errorf("transport: unexpected frame kind %d on checkout", fr.Kind)
	}
	// The applied result's iteration must be what the frame advertised
	// and never behind the base we applied against.
	if fr.Version < since {
		return nil, true, fmt.Errorf("transport: checkout went backwards: %d < base %d", fr.Version, since)
	}
	if c.delta != nil {
		// The cache keeps its own copy; the caller owns the returned
		// slice, exactly like the JSON path.
		c.delta.mu.Lock()
		c.delta.params = append(c.delta.params[:0], params...)
		c.delta.version = fr.Version
		c.delta.valid = true
		c.delta.mu.Unlock()
	}
	return &core.CheckoutResponse{Params: params, Version: fr.Version, Done: fr.Done}, false, nil
}

// checkinBinary POSTs the checkin as one binary frame. Error responses
// stay JSON server-side; checkStatus reads them as usual.
func (c *HTTPClient) checkinBinary(ctx context.Context, deviceID, token string, body *core.CheckinRequest) error {
	bp := wireBufs.Get().(*[]byte)
	b := wirecodec.AppendCheckin((*bp)[:0], body.Grad, body.Version, body.NumSamples, body.ErrCount, body.LabelCounts, c.wireFlate)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(PathCheckin), bytes.NewReader(b))
	if err != nil {
		putWireBuf(bp, b)
		return fmt.Errorf("transport: build checkin: %w", err)
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set(headerDeviceID, deviceID)
	req.Header.Set(headerToken, token)
	resp, err := c.client.Do(req)
	putWireBuf(bp, b)
	if err != nil {
		return fmt.Errorf("transport: checkin: %w", err)
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}

// Sharded tasks: the handler serves their binary checkouts via the
// router's CheckoutDelta (shard.Group implements deltaCheckoutServer
// over its merged-view ring); a mounted router that lacks the method
// degrades to full binary frames built from its plain Checkout — see
// shardedCheckout.
