package transport

import (
	"errors"
	"net/http"
	"sort"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
)

// This file is the HTTP face of the sharded leader tier: requests
// addressed to a sharded logical task ID under /v1/tasks/{task}/... are
// proxied through the hub-mounted ShardRouter instead of a single
// task's server. Devices cannot tell a sharded task from a plain one —
// same paths, same payloads, same error protocol; only the stats and
// healthz bodies grow sharding detail.

// router resolves the request's {task} path segment to a mounted shard
// router, when one exists. The legacy alias paths (no segment) never
// resolve to a router: the hub's default-task mechanism is for hosted
// tasks, and a sharded logical task is not one.
func (h *Handler) router(r *http.Request) (hub.ShardRouter, bool) {
	id := r.PathValue("task")
	if id == "" {
		return nil, false
	}
	return h.hub.ShardRouterFor(id)
}

// rejectShardReadOnly writes the 409 + leader-hint rejection when the
// member that owns the device is a follower replica — the same contract
// rejectReadOnly applies to a standalone follower, with the hint naming
// the owning shard's leader. Reports true when the caller must stop.
func (h *Handler) rejectShardReadOnly(w http.ResponseWriter, rt hub.ShardRouter, deviceID string) bool {
	t, ok := h.hub.Task(rt.RouteDevice(deviceID))
	if !ok {
		return false // let the router surface the miss itself
	}
	return rejectReadOnly(w, t)
}

// shardedCheckout proxies GET checkout through the router: authenticate
// on the owning shard, serve the merged view. Binary negotiation works
// exactly like the plain-task path: delta-capable routers (shard.Group)
// serve ?since=N from their merged-view ring; any other router degrades
// to full binary frames.
func (h *Handler) shardedCheckout(w http.ResponseWriter, r *http.Request, rt hub.ShardRouter) {
	if binary, compress := acceptsBinary(r); binary {
		if ds, ok := rt.(deltaCheckoutServer); ok {
			h.serveBinaryCheckout(w, r, ds, compress)
			return
		}
		resp, err := rt.Checkout(r.Context(),
			r.Header.Get(headerDeviceID), r.Header.Get(headerToken))
		if err != nil {
			writeError(w, err)
			return
		}
		writeBinaryCheckout(w, &core.ParamDelta{
			Version: resp.Version,
			Done:    resp.Done,
			Params:  resp.Params,
			Since:   -1,
		}, compress)
		return
	}
	resp, err := rt.Checkout(r.Context(),
		r.Header.Get(headerDeviceID), r.Header.Get(headerToken))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

// shardedCheckin proxies POST checkin to the device's owning shard.
func (h *Handler) shardedCheckin(w http.ResponseWriter, r *http.Request, rt hub.ShardRouter) {
	deviceID := r.Header.Get(headerDeviceID)
	if h.rejectShardReadOnly(w, rt, deviceID) {
		return
	}
	req, err := decodeCheckinBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := rt.Checkin(r.Context(), deviceID, r.Header.Get(headerToken), req); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// shardedStats serves the logical task's merged progress view.
func (h *Handler) shardedStats(w http.ResponseWriter, rt hub.ShardRouter) {
	s := rt.MergedStats()
	resp := StatsResponse{
		TaskID:    rt.LogicalID(),
		Iteration: s.Iteration,
		Stopped:   s.Stopped,
		Shards:    s.Shards,
	}
	if s.HasError {
		est := s.ErrorEstimate
		resp.ErrorEstimate = &est
		resp.PriorEstimate = s.PriorEstimate
	}
	writeJSON(w, resp)
}

// shardedSummaries appends one listing row per mounted router and sorts
// the listing back into ID order. Member tasks are folded out by the
// caller; the crowd sees the logical task only.
func (h *Handler) shardedSummaries(out []TaskSummary) []TaskSummary {
	for _, rt := range h.hub.ShardRouters() {
		info := rt.Info()
		s := rt.MergedStats()
		sum := TaskSummary{
			ID:        rt.LogicalID(),
			Name:      info.Name,
			Algorithm: info.Algorithm,
			Labels:    info.Labels,
			Classes:   s.Classes,
			Dim:       s.Dim,
			Iteration: s.Iteration,
			Stopped:   s.Stopped,
			Shards:    s.Shards,
		}
		if s.HasError {
			est := s.ErrorEstimate
			sum.ErrorEstimate = &est
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// shardedHealthRow builds the healthz row of one sharded logical task:
// ready iff every shard is ready, with one sub-row per member.
func shardedHealthRow(rt hub.ShardRouter) HealthTask {
	s := rt.MergedStats()
	row := HealthTask{
		ID:        rt.LogicalID(),
		Role:      "sharded",
		Iteration: s.Iteration,
		Stopped:   s.Stopped,
		Ready:     true,
	}
	for _, sr := range rt.ShardRows() {
		row.Shards = append(row.Shards, ShardHealth{
			ID:           sr.ID,
			Iteration:    sr.Iteration,
			Stopped:      sr.Stopped,
			Ready:        sr.Ready,
			MergeLag:     sr.MergeLag,
			ReplicaState: sr.ReplicaState,
		})
		if !sr.Ready {
			row.Ready = false
		}
	}
	return row
}

// LeaderHintError is the client-side image of a 409 rejection that
// carried an X-Crowdml-Leader hint: the write landed on a read-only
// follower (standalone, or the follower member owning the device in a
// sharded tier) and Leader names the base URL to retry against. It
// unwraps to both ErrReadOnlyReplica and core.ErrStopped, so existing
// device loops that stand down on ErrStopped keep doing so while
// hint-aware callers redirect.
type LeaderHintError struct {
	// Leader is the hinted leader base URL.
	Leader string
	msg    string
}

func (e *LeaderHintError) Error() string { return e.msg }

// Unwrap makes errors.Is(err, ErrReadOnlyReplica) and
// errors.Is(err, core.ErrStopped) both true.
func (e *LeaderHintError) Unwrap() []error {
	return []error{ErrReadOnlyReplica, core.ErrStopped}
}

// LeaderHint extracts the leader base URL from an error returned by an
// HTTPClient write, when the server supplied one.
func LeaderHint(err error) (string, bool) {
	var lh *LeaderHintError
	if errors.As(err, &lh) && lh.Leader != "" {
		return lh.Leader, true
	}
	return "", false
}
