package transport

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/store"
)

// newLeader hosts task "alpha" with a MemStore-backed journal and
// returns the handler, the task's server, and the store.
func newLeader(t *testing.T) (*Handler, *core.Server, *store.MemStore) {
	t.Helper()
	st := store.NewMemStore()
	h := hub.New()
	task, err := h.CreateTask(context.Background(), "alpha", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}, hub.WithStore(st))
	if err != nil {
		t.Fatalf("CreateTask: %v", err)
	}
	return NewHandler(h), task.Server(), st
}

func TestJournalFeedStreamsEntries(t *testing.T) {
	hd, srv, _ := newLeader(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	for i := 0; i < 5; i++ {
		if err := srv.Checkin(ctx, "d1", token, checkinReq()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")

	feed, err := client.OpenJournalFeed(ctx, 0)
	if err != nil {
		t.Fatalf("OpenJournalFeed: %v", err)
	}
	defer feed.Close()
	var got []int
	for {
		e, err := feed.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, e.Iteration)
	}
	if len(got) != 5 {
		t.Fatalf("streamed %d entries, want 5: %v", len(got), got)
	}
	for i, it := range got {
		if it != i+1 {
			t.Errorf("entry %d has iteration %d, want %d", i, it, i+1)
		}
	}
	if feed.LeaderIteration() != 5 {
		t.Errorf("LeaderIteration = %d, want 5", feed.LeaderIteration())
	}
}

func TestJournalFeedAfterSkipsPrefix(t *testing.T) {
	hd, srv, _ := newLeader(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	for i := 0; i < 4; i++ {
		if err := srv.Checkin(ctx, "d1", token, checkinReq()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")
	feed, err := client.OpenJournalFeed(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()
	first, err := feed.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	// Cursor granularity is whole segments; the stream may lead with
	// entries at or below `after` but must include everything past it.
	n := 0
	for it := first.Iteration; ; {
		if it > 2 {
			n++
		}
		e, err := feed.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		it = e.Iteration
	}
	if n != 2 {
		t.Errorf("entries past iteration 2 = %d, want 2", n)
	}
}

func TestJournalFeedNoStore(t *testing.T) {
	hd, _ := newHandler(t) // no WithStore
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")
	if _, err := client.OpenJournalFeed(context.Background(), 0); !errors.Is(err, hub.ErrTaskNotFound) {
		t.Errorf("feed without store: err = %v, want ErrTaskNotFound (404)", err)
	}
	if _, err := client.FetchCheckpoint(context.Background()); !errors.Is(err, hub.ErrTaskNotFound) {
		t.Errorf("checkpoint without store: err = %v, want ErrTaskNotFound (404)", err)
	}
}

func TestFetchCheckpoint(t *testing.T) {
	hd, srv, st := newLeader(t)
	ctx := context.Background()
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")

	if _, err := client.FetchCheckpoint(ctx); !errors.Is(err, store.ErrNoCheckpoint) {
		t.Fatalf("empty store: err = %v, want ErrNoCheckpoint", err)
	}

	token, _ := srv.RegisterDevice(ctx, "d1")
	if err := srv.Checkin(ctx, "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(ctx, srv.ExportState(), time.Now()); err != nil {
		t.Fatal(err)
	}
	cp, err := client.FetchCheckpoint(ctx)
	if err != nil {
		t.Fatalf("FetchCheckpoint: %v", err)
	}
	if cp.State == nil || cp.State.Iteration != 1 {
		t.Errorf("unexpected checkpoint %+v", cp)
	}
}

func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	h := hub.New()
	_, err := h.CreateTask(context.Background(), "alpha", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}, hub.AsReplicaOf("http://leader.example:8080"))
	if err != nil {
		t.Fatal(err)
	}
	hd := NewHandler(h)
	hd.EnableEnrollment("secret")
	ts := httptest.NewServer(hd)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+taskPath("alpha", "checkin"), strings.NewReader("{}"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("replica checkin status = %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(headerLeader); got != "http://leader.example:8080" {
		t.Errorf("leader hint = %q", got)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+taskPath("alpha", "register"),
		strings.NewReader(`{"deviceId":"d1"}`))
	req.Header.Set(headerEnrollKey, "secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("replica register status = %d, want 409", resp.StatusCode)
	}

	// The client maps the 409 onto the stand-down sentinel.
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")
	if err := client.Checkin(context.Background(), "d", "t", checkinReq()); !errors.Is(err, core.ErrStopped) {
		t.Errorf("client checkin err = %v, want ErrStopped", err)
	}
}

func TestReplicaTaskRejectsStore(t *testing.T) {
	h := hub.New()
	_, err := h.CreateTask(context.Background(), "alpha", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}, hub.AsReplicaOf("http://leader"), hub.WithStore(store.NewMemStore()))
	if err == nil {
		t.Fatal("AsReplicaOf + WithStore should be rejected")
	}
}

func TestAuthProbe(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithTask("alpha")
	if err := client.AuthProbe(ctx, "d1", token); err != nil {
		t.Errorf("valid credentials: %v", err)
	}
	if err := client.AuthProbe(ctx, "d1", "wrong"); !errors.Is(err, core.ErrAuth) {
		t.Errorf("bad token: err = %v, want ErrAuth", err)
	}
}

func TestRetryRecoversFromTransient5xx(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	var calls atomic.Int32
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "backend overloaded", http.StatusServiceUnavailable)
			return
		}
		hd.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	if _, err := client.Checkout(context.Background(), "d1", token); err != nil {
		t.Fatalf("Checkout with retry: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3 (2 failures + 1 success)", n)
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	})
	_, err := client.Tasks(context.Background())
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	// The final attempt's response is returned as-is (a non-2xx status),
	// so the two earlier attempts were retried and the third surfaced.
	if n := calls.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
}

func TestRetryDoesNotRetryApplicationErrors(t *testing.T) {
	hd, _ := newHandler(t)
	var calls atomic.Int32
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		hd.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond,
	})
	if _, err := client.Checkout(context.Background(), "ghost", "bad"); !errors.Is(err, core.ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("401 was retried: %d attempts", n)
	}
}

func TestRetryRespectsContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Tasks(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ignored the context for %v", elapsed)
	}
}

func TestHealthzLeader(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	if err := srv.Checkin(context.Background(), "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(hd)
	defer ts.Close()
	resp, err := http.Get(ts.URL + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("leader healthz status = %d, want 200", resp.StatusCode)
	}
	hr, err := NewHTTPClient(ts.URL, nil).Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || len(hr.Tasks) != 1 {
		t.Fatalf("unexpected health %+v", hr)
	}
	row := hr.Tasks[0]
	if row.Role != "leader" || !row.Ready || row.Iteration != 1 {
		t.Errorf("unexpected task row %+v", row)
	}
}

// stubProbe feeds a fixed status into a replica task's health row.
type stubProbe struct{ st hub.ReplicaStatus }

func (p stubProbe) ReplicaStatus() hub.ReplicaStatus { return p.st }

func TestHealthzFollower(t *testing.T) {
	h := hub.New()
	task, err := h.CreateTask(context.Background(), "alpha", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}, hub.AsReplicaOf("http://leader:8080"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(h))
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)

	// No probe bound yet: the follower is not ready.
	hr, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "unavailable" || hr.Tasks[0].Ready {
		t.Errorf("unbound follower should be unavailable, got %+v", hr)
	}
	resp, _ := http.Get(ts.URL + PathHealthz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}

	// A tailing probe flips it ready and reports lag.
	task.BindReplicaProbe(stubProbe{st: hub.ReplicaStatus{
		State: hub.ReplicaTailing, LeaderURL: "http://leader:8080", LeaderIteration: 7,
	}})
	hr, err = client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	row := hr.Tasks[0]
	if hr.Status != "ok" || !row.Ready || row.Role != "follower" {
		t.Fatalf("tailing follower should be ready, got %+v", hr)
	}
	if row.ReplicationLag == nil || *row.ReplicationLag != 7 {
		t.Errorf("lag = %v, want 7 (leader at 7, local at 0)", row.ReplicationLag)
	}
	if row.LeaderURL != "http://leader:8080" || row.ReplicaState != hub.ReplicaTailing {
		t.Errorf("unexpected follower row %+v", row)
	}
}

func TestStatsClient(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	if err := srv.Checkin(context.Background(), "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(hd)
	defer ts.Close()
	stats, err := NewHTTPClient(ts.URL, nil).WithTask("alpha").Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.TaskID != "alpha" || stats.Iteration != 1 {
		t.Errorf("unexpected stats %+v", stats)
	}
}
