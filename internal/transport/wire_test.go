package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/wirecodec"
)

// rawCheckout performs one checkout round trip with explicit headers,
// returning status, Content-Type and body.
func rawCheckout(t *testing.T, url, deviceID, token, accept, query string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+PathCheckout+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(headerDeviceID, deviceID)
	req.Header.Set(headerToken, token)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

func sameParams(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("params length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("params[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBinaryCheckoutMatchesJSON: the binary wire serves bit-for-bit the
// parameters the JSON wire serves, under the negotiated media type.
func TestBinaryCheckoutMatchesJSON(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()

	jsonCl := NewHTTPClient(ts.URL, nil)
	for _, wire := range []WireFormat{WireBinary, WireBinaryDelta} {
		binCl := jsonCl.WithWire(wire)
		if err := jsonCl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
			t.Fatal(err)
		}
		want, err := jsonCl.Checkout(ctx, "d1", token)
		if err != nil {
			t.Fatal(err)
		}
		got, err := binCl.Checkout(ctx, "d1", token)
		if err != nil {
			t.Fatalf("%v checkout: %v", wire, err)
		}
		if got.Version != want.Version || got.Done != want.Done {
			t.Errorf("%v meta = (%d,%v), want (%d,%v)", wire, got.Version, got.Done, want.Version, want.Done)
		}
		sameParams(t, got.Params, want.Params)
	}

	// The response really is the binary media type.
	status, ct, body := rawCheckout(t, ts.URL, "d1", token, ContentTypeBinary, "")
	if status != http.StatusOK || !isBinaryContentType(ct) {
		t.Fatalf("status=%d Content-Type=%q, want 200 binary", status, ct)
	}
	fr, err := wirecodec.Decode(body)
	if err != nil {
		t.Fatalf("decode served frame: %v", err)
	}
	if fr.Kind != wirecodec.KindFull {
		t.Errorf("frame kind = %d, want full", fr.Kind)
	}
}

// TestUnknownAcceptStaysJSON: anything but the exact media type — absent,
// a wildcard, an unknown type, garbage — gets the original JSON body.
func TestUnknownAcceptStaysJSON(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	for _, accept := range []string{"", "*/*", "application/json", "application/octet-stream", "not a media type"} {
		status, ct, body := rawCheckout(t, ts.URL, "d1", token, accept, "")
		if status != http.StatusOK {
			t.Fatalf("Accept=%q status = %d", accept, status)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Errorf("Accept=%q Content-Type = %q, want JSON", accept, ct)
		}
		if !bytes.HasPrefix(bytes.TrimSpace(body), []byte("{")) {
			t.Errorf("Accept=%q body is not JSON: %q", accept, body[:min(len(body), 32)])
		}
	}
}

// TestDeltaSequenceOverHTTP drives the full delta lifecycle: full frame,
// then a sparse delta applied against the cached base, staying equal to
// the JSON view at every step — and an up-to-date poll costs only an
// empty delta.
func TestDeltaSequenceOverHTTP(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	jsonCl := NewHTTPClient(ts.URL, nil)
	deltaCl := jsonCl.WithWire(WireBinaryDelta)

	// First checkout: no base, full frame.
	first, err := deltaCl.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatal(err)
	}
	if first.Version != 0 {
		t.Fatalf("first version = %d", first.Version)
	}

	// Advance the model, then check out again: served as a delta.
	for i := 0; i < 3; i++ {
		if err := jsonCl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
			t.Fatal(err)
		}
		want, err := jsonCl.Checkout(ctx, "d1", token)
		if err != nil {
			t.Fatal(err)
		}
		got, err := deltaCl.Checkout(ctx, "d1", token)
		if err != nil {
			t.Fatalf("delta checkout %d: %v", i, err)
		}
		if got.Version != want.Version {
			t.Fatalf("version = %d, want %d", got.Version, want.Version)
		}
		sameParams(t, got.Params, want.Params)
	}

	// On the wire, an up-to-date ?since really is a delta frame.
	cur := srv.Iteration()
	_, _, body := rawCheckout(t, ts.URL, "d1", token, ContentTypeBinary, "?since="+strconv.Itoa(cur))
	fr, err := wirecodec.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != wirecodec.KindDelta || fr.Since != cur {
		t.Errorf("frame kind=%d since=%d, want delta since=%d", fr.Kind, fr.Since, cur)
	}
	if len(fr.Indices) != 0 {
		t.Errorf("up-to-date delta carries %d changed entries", len(fr.Indices))
	}
}

// TestDeltaSinceAheadServesFull: a base the leader has never seen (ahead
// of its iteration — e.g. after a restore) degrades to a full frame.
func TestDeltaSinceAheadServesFull(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	status, ct, body := rawCheckout(t, ts.URL, "d1", token, ContentTypeBinary, "?since=999")
	if status != http.StatusOK || !isBinaryContentType(ct) {
		t.Fatalf("status=%d ct=%q", status, ct)
	}
	fr, err := wirecodec.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != wirecodec.KindFull {
		t.Errorf("kind = %d, want full frame fallback", fr.Kind)
	}
}

// TestMalformedSinceRejected: a non-numeric or negative ?since is the
// caller's error — 400, not 500.
func TestMalformedSinceRejected(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	for _, q := range []string{"?since=abc", "?since=-3", "?since=1e9"} {
		status, ct, _ := rawCheckout(t, ts.URL, "d1", token, ContentTypeBinary, q)
		if status != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, status)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s error Content-Type = %q, want JSON envelope", q, ct)
		}
	}
}

// TestMalformedBinaryCheckinRejected: garbage, truncated and
// wrong-kind frames under the binary Content-Type are 400s, never 500s.
func TestMalformedBinaryCheckinRejected(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()

	valid := wirecodec.AppendCheckin(nil, []float64{1, 0, 0, 0}, 0, 1, 0, []int{1, 0}, false)
	wrongKind := wirecodec.AppendFull(nil, []float64{1, 2}, 3, false, false)
	cases := map[string][]byte{
		"garbage":    []byte("not a frame at all"),
		"empty":      {},
		"truncated":  valid[:len(valid)-5],
		"wrong-kind": wrongKind,
	}
	for name, payload := range cases {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+PathCheckin, bytes.NewReader(payload))
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set(headerDeviceID, "d1")
		req.Header.Set(headerToken, token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	if srv.Iteration() != 0 {
		t.Error("malformed checkin advanced the model")
	}
}

// TestBinaryCheckinReachesServer: a binary checkin applies exactly like
// its JSON twin — two identical servers, one driven per wire, end equal.
func TestBinaryCheckinReachesServer(t *testing.T) {
	ctx := context.Background()
	run := func(wire WireFormat) []float64 {
		hd, srv := newHandler(t)
		token, _ := srv.RegisterDevice(ctx, "d1")
		ts := httptest.NewServer(hd)
		defer ts.Close()
		cl := NewHTTPClient(ts.URL, nil).WithWire(wire)
		for i := 0; i < 4; i++ {
			if err := cl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
				t.Fatalf("%v checkin: %v", wire, err)
			}
		}
		if srv.Iteration() != 4 {
			t.Fatalf("%v iterations = %d, want 4", wire, srv.Iteration())
		}
		co, err := cl.Checkout(ctx, "d1", token)
		if err != nil {
			t.Fatal(err)
		}
		return co.Params
	}
	sameParams(t, run(WireBinary), run(WireJSON))
}

// TestBinaryErrorStaysJSON is the negotiation regression test: error
// responses on a binary-negotiated request keep the JSON envelope, and
// the binary client maps them to the same sentinels as the JSON client.
func TestBinaryErrorStaysJSON(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()

	// On the wire: 401 with a JSON body despite Accept: binary.
	status, ct, body := rawCheckout(t, ts.URL, "ghost", "bad", ContentTypeBinary, "")
	if status != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", status)
	}
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want JSON envelope", ct)
	}
	if !bytes.Contains(body, []byte("error")) {
		t.Errorf("error body = %q, want JSON error envelope", body)
	}

	// Through the client: sentinel mapping identical to the JSON wire.
	for _, wire := range []WireFormat{WireBinary, WireBinaryDelta} {
		cl := NewHTTPClient(ts.URL, nil).WithWire(wire)
		if _, err := cl.Checkout(ctx, "ghost", "bad"); !errors.Is(err, core.ErrAuth) {
			t.Errorf("%v checkout error = %v, want ErrAuth", wire, err)
		}
		if err := cl.Checkin(ctx, "ghost", "bad", checkinReq()); !errors.Is(err, core.ErrAuth) {
			t.Errorf("%v checkin error = %v, want ErrAuth", wire, err)
		}
		bad := &core.CheckinRequest{Grad: []float64{1}, LabelCounts: []int{0, 0}}
		if err := cl.Checkin(ctx, "d1", token, bad); !errors.Is(err, core.ErrBadCheckin) {
			t.Errorf("%v bad checkin error = %v, want ErrBadCheckin", wire, err)
		}
	}
}

// TestWireFlateRoundTrip: compressed frames survive the full client flow
// for both directions.
func TestWireFlateRoundTrip(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	jsonCl := NewHTTPClient(ts.URL, nil)
	cl := jsonCl.WithWire(WireBinaryDelta).WithWireFlate()

	if err := cl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	want, err := jsonCl.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, got.Params, want.Params)
	if err := cl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	got2, err := cl.Checkout(ctx, "d1", token) // delta against the cache
	if err != nil {
		t.Fatal(err)
	}
	want2, err := jsonCl.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, got2.Params, want2.Params)
}

// TestDeltaCacheResyncAfterImport: an ImportState that rewinds the
// leader invalidates its delta ring; a delta client holding a now-alien
// base resynchronizes transparently via the full-frame retry.
func TestDeltaCacheResyncAfterImport(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	jsonCl := NewHTTPClient(ts.URL, nil)
	cl := jsonCl.WithWire(WireBinaryDelta)

	for i := 0; i < 3; i++ {
		if err := jsonCl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Checkout(ctx, "d1", token); err != nil {
		t.Fatal(err)
	}

	// Roll the leader back to its own exported state from iteration 3 —
	// versions match but the ring is gone; then advance one step.
	if err := srv.ImportState(srv.ExportState()); err != nil {
		t.Fatal(err)
	}
	if err := jsonCl.Checkin(ctx, "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatalf("checkout after import: %v", err)
	}
	want, err := jsonCl.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version {
		t.Fatalf("version = %d, want %d", got.Version, want.Version)
	}
	sameParams(t, got.Params, want.Params)
}

// TestShardedBinaryWire: the sharded tier negotiates the same protocol —
// full binary frames and merged-view deltas — with values equal to the
// JSON route.
func TestShardedBinaryWire(t *testing.T) {
	hd, g := newShardedHandler(t)
	hd.EnableEnrollment("k")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	ctx := context.Background()
	jsonCl := NewHTTPClient(ts.URL, nil).WithTask("act")
	deltaCl := jsonCl.WithWire(WireBinaryDelta)

	tok, err := jsonCl.Register(ctx, "device-002", "k")
	if err != nil {
		t.Fatal(err)
	}

	// Full-frame checkout against the initial merged view.
	first, err := deltaCl.Checkout(ctx, "device-002", tok)
	if err != nil {
		t.Fatalf("sharded binary checkout: %v", err)
	}
	want, err := jsonCl.Checkout(ctx, "device-002", tok)
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, first.Params, want.Params)

	// Advance a member, merge, and take the delta path.
	if err := jsonCl.Checkin(ctx, "device-002", tok, checkinReq()); err != nil {
		t.Fatal(err)
	}
	g.Merge()
	got, err := deltaCl.Checkout(ctx, "device-002", tok)
	if err != nil {
		t.Fatalf("sharded delta checkout: %v", err)
	}
	want, err = jsonCl.Checkout(ctx, "device-002", tok)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version {
		t.Fatalf("version = %d, want %d", got.Version, want.Version)
	}
	sameParams(t, got.Params, want.Params)

	// Binary checkin routes to the owning member like the JSON one.
	binCl := jsonCl.WithWire(WireBinary)
	if err := binCl.Checkin(ctx, "device-002", tok, checkinReq()); err != nil {
		t.Fatalf("sharded binary checkin: %v", err)
	}
}
