package transport

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

func newServer(t *testing.T) *core.Server {
	t.Helper()
	s, err := core.NewServer(core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

// newHandler hosts a fresh server as the hub's default task "alpha" and
// returns the HTTP handler plus the task's server.
func newHandler(t *testing.T) (*Handler, *core.Server) {
	t.Helper()
	h := hub.New()
	task, err := h.CreateTask(context.Background(), "alpha", core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	})
	if err != nil {
		t.Fatalf("CreateTask: %v", err)
	}
	return NewHandler(h), task.Server()
}

func checkinReq() *core.CheckinRequest {
	return &core.CheckinRequest{
		Grad:        []float64{1, 0, 0, 0},
		NumSamples:  1,
		LabelCounts: []int{1, 0},
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	srv := newServer(t)
	token, err := srv.RegisterDevice(context.Background(), "d1")
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(srv)
	ctx := context.Background()
	co, err := lb.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatalf("Checkout: %v", err)
	}
	if len(co.Params) != 4 {
		t.Errorf("params length %d, want 4", len(co.Params))
	}
	if err := lb.Checkin(ctx, "d1", token, checkinReq()); err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	if srv.Iteration() != 1 {
		t.Error("checkin did not reach the server")
	}
}

func TestLoopbackRespectsContext(t *testing.T) {
	srv := newServer(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	lb := NewLoopback(srv)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lb.Checkout(ctx, "d1", token); !errors.Is(err, context.Canceled) {
		t.Errorf("Checkout error = %v, want context.Canceled", err)
	}
	if err := lb.Checkin(ctx, "d1", token, checkinReq()); !errors.Is(err, context.Canceled) {
		t.Errorf("Checkin error = %v, want context.Canceled", err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	hd, srv := newHandler(t)
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)

	co, err := client.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatalf("Checkout: %v", err)
	}
	if len(co.Params) != 4 || co.Version != 0 {
		t.Errorf("unexpected checkout %+v", co)
	}
	if err := client.Checkin(ctx, "d1", token, checkinReq()); err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	if srv.Iteration() != 1 {
		t.Error("HTTP checkin did not reach server")
	}
	// Second checkout observes the update.
	co2, err := client.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatal(err)
	}
	if co2.Version != 1 {
		t.Errorf("version = %d, want 1", co2.Version)
	}
	if co2.Params[0] == 0 {
		t.Error("parameters did not change after update")
	}
}

func TestHTTPAuthErrors(t *testing.T) {
	hd, _ := newHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	ctx := context.Background()
	if _, err := client.Checkout(ctx, "ghost", "bad"); !errors.Is(err, core.ErrAuth) {
		t.Errorf("Checkout error = %v, want ErrAuth", err)
	}
	if err := client.Checkin(ctx, "ghost", "bad", checkinReq()); !errors.Is(err, core.ErrAuth) {
		t.Errorf("Checkin error = %v, want ErrAuth", err)
	}
}

func TestHTTPBadCheckin(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	bad := &core.CheckinRequest{Grad: []float64{1}, LabelCounts: []int{0, 0}}
	if err := client.Checkin(context.Background(), "d1", token, bad); !errors.Is(err, core.ErrBadCheckin) {
		t.Errorf("error = %v, want ErrBadCheckin", err)
	}
}

func TestHTTPStoppedMapsToErrStopped(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	srv.Stop()
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	if err := client.Checkin(context.Background(), "d1", token, checkinReq()); !errors.Is(err, core.ErrStopped) {
		t.Errorf("error = %v, want ErrStopped", err)
	}
	co, err := client.Checkout(context.Background(), "d1", token)
	if err != nil {
		t.Fatalf("stopped checkout should still answer: %v", err)
	}
	if !co.Done {
		t.Error("stopped checkout should set Done")
	}
}

func TestHTTPStatsEndpoint(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	client := NewHTTPClient(ts.URL, nil)
	if err := client.Checkin(context.Background(), "d1", token, checkinReq()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + PathStats)
	if err != nil {
		t.Fatalf("stats GET: %v", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Iteration     int       `json:"iteration"`
		Stopped       bool      `json:"stopped"`
		ErrorEstimate *float64  `json:"errorEstimate"`
		PriorEstimate []float64 `json:"priorEstimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Iteration != 1 {
		t.Errorf("iteration = %d, want 1", stats.Iteration)
	}
	if stats.ErrorEstimate == nil {
		t.Error("missing error estimate")
	}
	if len(stats.PriorEstimate) != 2 {
		t.Errorf("prior estimate = %v", stats.PriorEstimate)
	}
}

func TestHTTPMethodEnforcement(t *testing.T) {
	hd, _ := newHandler(t)
	ts := httptest.NewServer(hd)
	defer ts.Close()
	tests := []struct {
		method, path string
		allow        string
	}{
		{method: http.MethodPost, path: PathCheckout, allow: "GET"},
		{method: http.MethodGet, path: PathCheckin, allow: "POST"},
		{method: http.MethodPost, path: PathStats, allow: "GET"},
		{method: http.MethodPost, path: taskPath("alpha", "checkout"), allow: "GET"},
		{method: http.MethodGet, path: taskPath("alpha", "checkin"), allow: "POST"},
		{method: http.MethodDelete, path: PathTasks, allow: "GET"},
	}
	for _, tt := range tests {
		req, _ := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tt.method, tt.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", tt.method, tt.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, tt.allow) {
			t.Errorf("%s %s Allow = %q, want it to contain %q", tt.method, tt.path, allow, tt.allow)
		}
	}
}

func TestHTTPBadJSON(t *testing.T) {
	hd, srv := newHandler(t)
	token, _ := srv.RegisterDevice(context.Background(), "d1")
	ts := httptest.NewServer(hd)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+PathCheckin, strings.NewReader("{not json"))
	req.Header.Set(headerDeviceID, "d1")
	req.Header.Set(headerToken, token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestDeviceOverHTTP(t *testing.T) {
	// Full Algorithm 1 device driving a real HTTP server — the networked
	// prototype end to end.
	m := model.NewLogisticRegression(2, 2)
	h := hub.New()
	task, err := h.CreateTask(context.Background(), "phones", core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := task.Server()
	token, _ := srv.RegisterDevice(context.Background(), "phone-1")
	ts := httptest.NewServer(NewHandler(h))
	defer ts.Close()

	dev, err := core.NewDevice(core.DeviceConfig{
		ID: "phone-1", Token: token, Model: m,
		Transport: NewHTTPClient(ts.URL, nil),
		Minibatch: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		y := i % 2
		x := []float64{1, 0}
		if y == 1 {
			x = []float64{0, 1}
		}
		if err := dev.AddSample(ctx, model.Sample{X: x, Y: y}); err != nil {
			t.Fatalf("AddSample %d: %v", i, err)
		}
	}
	if srv.Iteration() != 5 {
		t.Errorf("server iterations = %d, want 5", srv.Iteration())
	}
	st, _ := srv.DeviceStats("phone-1")
	if st.Samples != 25 {
		t.Errorf("samples = %d, want 25", st.Samples)
	}
}

// Property: the JSON wire encoding of a checkin is lossless for any
// payload shape — what the device sanitizes is exactly what the server
// applies.
func TestCheckinWireRoundTripProperty(t *testing.T) {
	f := func(grad []float64, ns uint16, errCount int16, labels []int16, version uint16) bool {
		for i, v := range grad {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				grad[i] = 0
			}
		}
		in := core.CheckinRequest{
			Grad:        grad,
			NumSamples:  int(ns),
			ErrCount:    int(errCount),
			LabelCounts: make([]int, len(labels)),
			Version:     int(version),
		}
		for i, l := range labels {
			in.LabelCounts[i] = int(l)
		}
		payload, err := json.Marshal(&in)
		if err != nil {
			return false
		}
		var out core.CheckinRequest
		if err := json.Unmarshal(payload, &out); err != nil {
			return false
		}
		if out.NumSamples != in.NumSamples || out.ErrCount != in.ErrCount ||
			out.Version != in.Version || len(out.Grad) != len(in.Grad) ||
			len(out.LabelCounts) != len(in.LabelCounts) {
			return false
		}
		for i := range in.Grad {
			if out.Grad[i] != in.Grad[i] {
				return false
			}
		}
		for i := range in.LabelCounts {
			if out.LabelCounts[i] != in.LabelCounts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
