//go:build !unix && !windows

package store

import (
	"fmt"
	"os"
)

// acquireDirLock on platforms with neither flock(2) nor LockFileEx
// (see filelock_unix.go and filelock_windows.go) only creates the lock
// file: the single-live-journal exclusion documented on FileStore is
// NOT enforced here, exactly the pre-lock behavior. Deployments on such
// platforms must not point two servers at one store directory.
func acquireDirLock(path string) (*os.File, error) {
	lock, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	return lock, nil
}

func releaseDirLock(lock *os.File) {
	if lock == nil {
		return
	}
	_ = lock.Close()
}
