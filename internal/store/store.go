// Package store defines the pluggable durability layer for Crowd-ML
// server state. The paper's prototype kept this state in MySQL
// (Section V-A) so a restarted server resumes the crowd's task with the
// accumulated contributions intact; Store is the abstraction of that
// role, with two shipped implementations — FileStore (JSON checkpoints +
// a JSONL journal under a directory) and MemStore (in-memory, for tests,
// benchmarks and embedding).
//
// Two artifacts are managed per task:
//
//   - Checkpoints: atomic snapshots of core.ServerState. A crash never
//     leaves a torn checkpoint (FileStore writes to a temp file and
//     renames).
//   - A write-ahead checkin journal: an append-only log with one entry
//     per applied checkin, carrying the full sanitized contribution
//     (device, iteration, perturbed gradient, counters). Recovery loads
//     the latest checkpoint and deterministically replays the journal
//     tail (core.Server.Replay), so no acknowledged checkin is ever
//     lost — a checkin's journal entry is durable before the Checkin
//     call that produced it returns.
//
// The journal is segmented: Journal.Rotate seals the live segment and
// begins a fresh one (the hub's checkpointer rotates after each
// successful checkpoint), sealed segments are retained as the audit
// trail, and ReadJournalTail reads back only the trailing segments a
// recovery needs — so restart time is bounded by checkpoint cadence,
// not total checkin volume, while ReadJournal still returns the full
// history for auditing.
//
// The journal only ever sees sanitized quantities — raw device data
// never reaches the server, so it cannot reach the store; persisting the
// noise-perturbed gradient weakens nothing the paper's local-privacy
// analysis grants (the server already holds it in memory).
package store

import (
	"context"
	"errors"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

var (
	// ErrNoCheckpoint is returned by Store.Load when no checkpoint has
	// been saved yet.
	ErrNoCheckpoint = errors.New("store: no checkpoint")

	// ErrJournalTruncated is returned by ReadJournal alongside the valid
	// entry prefix when the journal's final record is torn or corrupt —
	// the expected artifact of a crash mid-append. Callers recovering
	// state should treat it as success for the returned entries: the torn
	// record was never durable, so its checkin was never acknowledged.
	ErrJournalTruncated = errors.New("store: journal truncated mid-record")

	// ErrStoreLocked is returned by FileStore.OpenJournal when another
	// process (or another open journal in this one) holds the store
	// directory's advisory lock. Opening a journal repairs (truncates) a
	// crash-torn tail, so a second opener racing a live journal could
	// destroy a half-flushed record; the lock turns that misdeployment
	// into a clean error. MemStore does not lock — simulating a crash by
	// dropping a hub while keeping the store is exactly what it is for.
	ErrStoreLocked = errors.New("store: store directory locked by a live journal")
)

// Checkpoint wraps a server state with bookkeeping metadata.
type Checkpoint struct {
	// SavedAtUnixMillis records the wall-clock save time.
	SavedAtUnixMillis int64 `json:"savedAtUnixMillis"`
	// State is the server's learning state.
	State *core.ServerState `json:"state"`
}

// JournalEntry is one write-ahead record: the complete sanitized checkin
// a device contributed at one server iteration. Together with the
// checkpoint it replays from, the entry fully determines the server's
// next state — Grad, NumSamples, ErrCount, LabelCounts and Version are
// exactly the applied core.CheckinRequest, and Iteration pins where in
// the SGD sequence it lands.
//
// Grad and LabelCounts are empty on entries written by v1 of this
// package, which journaled only audit summaries; such entries cannot be
// replayed (see hub restore, which skips them).
type JournalEntry struct {
	AtUnixMillis int64  `json:"atUnixMillis"`
	DeviceID     string `json:"deviceId"`
	Iteration    int    `json:"iteration"`
	NumSamples   int    `json:"numSamples"`
	ErrCount     int    `json:"errCount"`
	// GradNorm1 is the L1 norm of Grad, kept for cheap auditing (spotting
	// outlier contributions without decoding the full gradient).
	GradNorm1 float64 `json:"gradNorm1"`
	// Grad is the flattened sanitized gradient ĝ that was applied.
	Grad []float64 `json:"grad,omitempty"`
	// LabelCounts are the sanitized per-class counts n̂^k_y.
	LabelCounts []int `json:"labelCounts,omitempty"`
	// Version echoes the checkout version the device computed against,
	// so replay reproduces the staleness accounting exactly.
	Version int `json:"version"`
}

// Replayable reports whether the entry carries enough of the checkin to
// be re-applied during recovery (v1 audit-only entries do not).
func (e *JournalEntry) Replayable() bool { return len(e.Grad) > 0 }

// Journal is an append-only, segmented checkin log. Implementations
// must be safe for concurrent use and must make each entry durable
// before Append returns (that ordering is what turns the journal into a
// write-ahead log: Append runs before the originating Checkin is
// acknowledged). "Durable" means surviving a crash of THIS process:
// FileStore hands each entry to the OS per append but does not fsync it
// — a kernel panic or power loss may lose the newest entries unless the
// caller pays for Sync (the hub's SyncPolicy group-commits one Sync per
// applied batch). Append must not retain e's slices after returning —
// callers may reuse the backing arrays.
type Journal interface {
	Append(ctx context.Context, e JournalEntry) error
	// Rotate seals the live segment and begins a fresh empty one; later
	// Appends land in the new segment. Sealed segments are never written
	// again and remain readable (ReadJournal) as the audit trail. The
	// hub's checkpointer calls Rotate after each successful checkpoint,
	// so the live segment holds only entries the latest checkpoint may
	// not cover — which is what bounds ReadJournalTail, and therefore
	// restart time, by checkpoint cadence. Rotation is bookkeeping, not
	// durability: a failed Rotate leaves the journal appending to the old
	// segment, fully recoverable, just less tightly bounded.
	Rotate(ctx context.Context) error
	// Sync forces everything appended so far onto stable storage
	// (fsync), upgrading those entries from process-crash durability to
	// power-loss durability. No-op for MemStore.
	Sync(ctx context.Context) error
	Close() error
}

// Store persists one task's learning state: atomic checkpoints plus the
// write-ahead checkin journal. Implementations must be safe for
// concurrent use; Save and Load may race an open journal's Appends.
type Store interface {
	// Save atomically replaces the checkpoint with the given state.
	Save(ctx context.Context, state *core.ServerState, now time.Time) error
	// Load reads the most recent checkpoint, or ErrNoCheckpoint.
	Load(ctx context.Context) (*Checkpoint, error)
	// OpenJournal opens (creating if needed) the task's journal for
	// appending. Entries appended across opens accumulate.
	OpenJournal(ctx context.Context) (Journal, error)
	// ReadJournal returns every journal entry, across every segment, in
	// append order — the full audit trail. A missing journal yields
	// (nil, nil). A torn or corrupt final record yields the valid prefix
	// plus ErrJournalTruncated; corruption earlier in the journal is a
	// hard error.
	ReadJournal(ctx context.Context) ([]JournalEntry, error)
	// ReadJournalTail returns the journal suffix a recovery already
	// holding a checkpoint at afterIteration needs: every entry with
	// Iteration > afterIteration, reading only the trailing segments
	// required (whole segments are returned, so entries at or below
	// afterIteration may lead the result — core.Server.Replay skips
	// them). ReadJournalTail(ctx, 0) is equivalent to ReadJournal. The
	// same torn-tail tolerance applies: ErrJournalTruncated alongside
	// the valid entries when the live segment's final record is torn.
	ReadJournalTail(ctx context.Context, afterIteration int) ([]JournalEntry, error)
}

// Root is a namespace of per-task stores — the store-side counterpart of
// a Hub. A restarted process lists the tasks that have persisted state
// and opens each task's Store to restore it (see hub.Hub.Restore).
type Root interface {
	// List returns the task IDs with persisted state, sorted.
	List(ctx context.Context) ([]string, error)
	// Open returns the store for one task, creating it if needed.
	Open(ctx context.Context, taskID string) (Store, error)
}
