// Package store persists Crowd-ML server state and checkin audit logs to
// disk. The paper's prototype kept this state in MySQL (Section V-A); a
// file-backed store keeps the repository dependency-free while providing
// the same operational property — a restarted server resumes the learning
// task with the crowd's accumulated contributions intact.
//
// Two artifacts are managed:
//
//   - Checkpoints: atomic JSON snapshots of core.ServerState
//     (write-to-temp + rename, so a crash never leaves a torn file);
//   - an append-only JSONL checkin journal for auditing which device
//     contributed when (sanitized quantities only — the journal never
//     sees raw data, preserving the local-privacy property).
package store

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// ErrNoCheckpoint is returned by Load when no checkpoint exists yet.
var ErrNoCheckpoint = errors.New("store: no checkpoint")

// Checkpoint wraps a server state with bookkeeping metadata.
type Checkpoint struct {
	// SavedAtUnixMillis records the wall-clock save time.
	SavedAtUnixMillis int64 `json:"savedAtUnixMillis"`
	// State is the server's learning state.
	State *core.ServerState `json:"state"`
}

// FileStore persists checkpoints and journals under a directory.
type FileStore struct {
	dir string
}

// NewFileStore creates (if necessary) and opens a store directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store directory.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) checkpointPath() string {
	return filepath.Join(f.dir, "checkpoint.json")
}

// Save atomically writes a checkpoint of the given state.
func (f *FileStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if state == nil {
		return errors.New("store: nil state")
	}
	cp := Checkpoint{SavedAtUnixMillis: now.UnixMilli(), State: state}
	payload, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(f.dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, f.checkpointPath()); err != nil {
		return fmt.Errorf("store: publish checkpoint: %w", err)
	}
	return nil
}

// Load reads the most recent checkpoint. It returns ErrNoCheckpoint when
// none has been saved.
func (f *FileStore) Load(ctx context.Context) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := os.ReadFile(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if cp.State == nil {
		return nil, errors.New("store: checkpoint missing state")
	}
	return &cp, nil
}

// JournalEntry is one audit record: which device checked in what sanitized
// aggregate at which server iteration. Gradients are summarized by their
// L1 norm rather than stored — the journal is for operational auditing,
// not for replay, and storing full noisy gradients would bloat it ~D·C
// floats per line.
type JournalEntry struct {
	AtUnixMillis int64   `json:"atUnixMillis"`
	DeviceID     string  `json:"deviceId"`
	Iteration    int     `json:"iteration"`
	NumSamples   int     `json:"numSamples"`
	ErrCount     int     `json:"errCount"`
	GradNorm1    float64 `json:"gradNorm1"`
}

// Journal is an append-only JSONL log of checkins. It is safe for
// concurrent use; a shutdown-path Close can race in-flight Appends.
type Journal struct {
	mu   sync.Mutex
	file *os.File
	w    *bufio.Writer
}

// OpenJournal opens (creating if needed) the journal file inside the
// store directory for appending.
func (f *FileStore) OpenJournal(ctx context.Context) (*Journal, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := os.OpenFile(filepath.Join(f.dir, "checkins.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	return &Journal{file: file, w: bufio.NewWriter(file)}, nil
}

// Append writes one entry and flushes it to the file, so a crashed server
// loses at most the entry being written. Checkin volume is low (one line
// per minibatch crowd-wide), so per-entry flushing costs nothing
// noticeable.
func (j *Journal) Append(ctx context.Context, e JournalEntry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(payload); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush journal entry: %w", err)
	}
	return nil
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		return fmt.Errorf("store: flush journal: %w", err)
	}
	return j.file.Close()
}

// ReadJournal loads every entry from the journal file (for audits and
// tests). A missing journal yields an empty slice.
func (f *FileStore) ReadJournal(ctx context.Context) ([]JournalEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := os.Open(filepath.Join(f.dir, "checkins.jsonl"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	defer file.Close()
	var out []JournalEntry
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("store: journal line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: scan journal: %w", err)
	}
	return out, nil
}
