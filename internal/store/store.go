// Package store defines the pluggable durability layer for Crowd-ML
// server state. The paper's prototype kept this state in MySQL
// (Section V-A) so a restarted server resumes the crowd's task with the
// accumulated contributions intact; Store is the abstraction of that
// role, with two shipped implementations — FileStore (JSON checkpoints +
// a JSONL journal under a directory) and MemStore (in-memory, for tests,
// benchmarks and embedding).
//
// Two artifacts are managed per task:
//
//   - Checkpoints: atomic snapshots of core.ServerState. A crash never
//     leaves a torn checkpoint (FileStore writes to a temp file and
//     renames).
//   - A write-ahead checkin journal: an append-only log with one entry
//     per applied checkin, carrying the full sanitized contribution
//     (device, iteration, perturbed gradient, counters). Recovery loads
//     the latest checkpoint and deterministically replays the journal
//     tail (core.Server.Replay), so no acknowledged checkin is ever
//     lost — a checkin's journal entry is durable before the Checkin
//     call that produced it returns.
//
// The journal is segmented: Journal.Rotate seals the live segment and
// begins a fresh one (the hub's checkpointer rotates after each
// successful checkpoint), sealed segments are retained as the audit
// trail, and OpenCursor streams entries back one at a time — starting
// at the trailing segments a recovery needs — so both restart time AND
// resident memory are bounded by checkpoint cadence, not total checkin
// volume; a full audit scan (OpenCursor with afterIteration 0) holds
// one decoded entry at a time however large the history is. Stores
// implementing SegmentRetainer additionally support automated retention
// of sealed segments the latest checkpoint fully covers.
//
// The journal only ever sees sanitized quantities — raw device data
// never reaches the server, so it cannot reach the store; persisting the
// noise-perturbed gradient weakens nothing the paper's local-privacy
// analysis grants (the server already holds it in memory).
package store

import (
	"context"
	"errors"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

var (
	// ErrNoCheckpoint is returned by Store.Load when no checkpoint has
	// been saved yet.
	ErrNoCheckpoint = errors.New("store: no checkpoint")

	// ErrJournalTruncated is returned by JournalCursor.Next in place of
	// io.EOF when the journal's final record is torn or corrupt — the
	// expected artifact of a crash mid-append. Every valid entry has been
	// yielded by then; callers recovering state should treat it as a
	// clean end of stream: the torn record was never durable, so its
	// checkin was never acknowledged.
	ErrJournalTruncated = errors.New("store: journal truncated mid-record")

	// ErrStoreLocked is returned by FileStore.OpenJournal when another
	// process (or another open journal in this one) holds the store
	// directory's advisory lock. Opening a journal repairs (truncates) a
	// crash-torn tail, so a second opener racing a live journal could
	// destroy a half-flushed record; the lock turns that misdeployment
	// into a clean error. MemStore does not lock — simulating a crash by
	// dropping a hub while keeping the store is exactly what it is for.
	ErrStoreLocked = errors.New("store: store directory locked by a live journal")
)

// Checkpoint wraps a server state with bookkeeping metadata.
type Checkpoint struct {
	// SavedAtUnixMillis records the wall-clock save time.
	SavedAtUnixMillis int64 `json:"savedAtUnixMillis"`
	// State is the server's learning state.
	State *core.ServerState `json:"state"`
}

// JournalEntry is one write-ahead record: the complete sanitized checkin
// a device contributed at one server iteration. Together with the
// checkpoint it replays from, the entry fully determines the server's
// next state — Grad, NumSamples, ErrCount, LabelCounts and Version are
// exactly the applied core.CheckinRequest, and Iteration pins where in
// the SGD sequence it lands.
//
// Grad and LabelCounts are empty on entries written by v1 of this
// package, which journaled only audit summaries; such entries cannot be
// replayed (see hub restore, which skips them).
type JournalEntry struct {
	AtUnixMillis int64  `json:"atUnixMillis"`
	DeviceID     string `json:"deviceId"`
	Iteration    int    `json:"iteration"`
	NumSamples   int    `json:"numSamples"`
	ErrCount     int    `json:"errCount"`
	// GradNorm1 is the L1 norm of Grad, kept for cheap auditing (spotting
	// outlier contributions without decoding the full gradient).
	GradNorm1 float64 `json:"gradNorm1"`
	// Grad is the flattened sanitized gradient ĝ that was applied.
	Grad []float64 `json:"grad,omitempty"`
	// LabelCounts are the sanitized per-class counts n̂^k_y.
	LabelCounts []int `json:"labelCounts,omitempty"`
	// Version echoes the checkout version the device computed against,
	// so replay reproduces the staleness accounting exactly.
	Version int `json:"version"`
}

// Replayable reports whether the entry carries enough of the checkin to
// be re-applied during recovery (v1 audit-only entries do not).
func (e *JournalEntry) Replayable() bool { return len(e.Grad) > 0 }

// Journal is an append-only, segmented checkin log. Implementations
// must be safe for concurrent use and must make each entry durable
// before Append returns (that ordering is what turns the journal into a
// write-ahead log: Append runs before the originating Checkin is
// acknowledged). "Durable" means surviving a crash of THIS process:
// FileStore hands each entry to the OS per append but does not fsync it
// — a kernel panic or power loss may lose the newest entries unless the
// caller pays for Sync (the hub's SyncPolicy group-commits one Sync per
// applied batch). Append must not retain e's slices after returning —
// callers may reuse the backing arrays.
type Journal interface {
	Append(ctx context.Context, e JournalEntry) error
	// Rotate seals the live segment and begins a fresh empty one; later
	// Appends land in the new segment. Sealed segments are never written
	// again and remain readable (OpenCursor) as the audit trail. The
	// hub's checkpointer calls Rotate after each successful checkpoint,
	// so the live segment holds only entries the latest checkpoint may
	// not cover — which is what bounds a recovery cursor, and therefore
	// restart time, by checkpoint cadence. Rotation is bookkeeping, not
	// durability: a failed Rotate leaves the journal appending to the old
	// segment, fully recoverable, just less tightly bounded.
	Rotate(ctx context.Context) error
	// Sync forces everything appended so far onto stable storage
	// (fsync), upgrading those entries from process-crash durability to
	// power-loss durability. No-op for MemStore.
	Sync(ctx context.Context) error
	Close() error
}

// JournalCursor streams journal entries in append order, one at a time.
// Next returns io.EOF after the final entry (the clean end of the
// stream) and ErrJournalTruncated — possibly wrapped with the torn
// segment's context — in io.EOF's place when the live segment's final
// record is torn by a crash: every valid entry has been yielded by
// then, and the torn record was never durable, so recovery treats the
// sentinel as a clean end. Any other error is real corruption or I/O
// failure. After the first non-nil error the cursor is exhausted and
// Next keeps returning the same error. Cursors are not safe for
// concurrent use; Close releases the cursor's resources and must be
// called exactly as for any io.Closer, whether or not the stream was
// drained.
//
// Each entry's slices (Grad, LabelCounts) are freshly allocated per
// Next call, so a caller may retain them — but a caller that does NOT
// retain them keeps resident memory at O(one entry) however long the
// journal is, which is the point of the cursor over a slice read.
type JournalCursor interface {
	Next() (JournalEntry, error)
	Close() error
}

// Store persists one task's learning state: atomic checkpoints plus the
// write-ahead checkin journal. Implementations must be safe for
// concurrent use; Save, Load and open cursors may race an open
// journal's Appends.
type Store interface {
	// Save atomically replaces the checkpoint with the given state.
	Save(ctx context.Context, state *core.ServerState, now time.Time) error
	// Load reads the most recent checkpoint, or ErrNoCheckpoint.
	Load(ctx context.Context) (*Checkpoint, error)
	// OpenJournal opens (creating if needed) the task's journal for
	// appending. Entries appended across opens accumulate.
	OpenJournal(ctx context.Context) (Journal, error)
	// OpenCursor opens a streaming read over the journal suffix a
	// recovery already holding a checkpoint at afterIteration needs:
	// every entry with Iteration > afterIteration, reading only the
	// trailing segments required (whole segments are streamed, so
	// entries at or below afterIteration may lead the stream —
	// core.Server.Replay skips them). OpenCursor(ctx, 0) streams the
	// full journal, oldest entry first — the audit scan. A missing
	// journal yields a cursor whose first Next returns io.EOF. Segment
	// selection is a cheap probe of each trailing segment's first
	// record, never a full decode; the cursor itself holds O(one entry)
	// of decoded state at a time.
	OpenCursor(ctx context.Context, afterIteration int) (JournalCursor, error)
}

// SegmentRetainer is implemented by stores whose journal supports
// automated retention of sealed segments (both shipped stores do). The
// hub's checkpointer calls PruneSegments after each successful
// checkpoint-and-rotate cycle when a retention policy is attached.
type SegmentRetainer interface {
	// PruneSegments removes sealed journal segments that the checkpoint
	// at coveredIteration fully covers: a segment is eligible only if it
	// is not the live (newest) segment and its LAST entry's iteration is
	// at or below coveredIteration (journal iterations are monotone, so
	// every entry in it is then covered; an empty sealed segment is
	// trivially covered). Segments are pruned oldest-first and the walk
	// stops at the first ineligible one, so an interrupted prune leaves
	// exactly the state of a smaller completed prune — a contiguous
	// suffix of the journal, always recoverable.
	//
	// With archiveDir == "", eligible segments are deleted. Otherwise
	// they are moved into archiveDir (created if needed), keeping their
	// segment file names — the audit trail lives on as plain JSONL,
	// readable with any JSON tooling. Returns the names of the segments
	// pruned or archived.
	PruneSegments(ctx context.Context, coveredIteration int, archiveDir string) ([]string, error)
}

// SegmentInfo describes one journal segment for auditing and retention
// tooling.
type SegmentInfo struct {
	// Name is the segment's file name within the store directory (for
	// the legacy pre-segmentation journal, "checkins.jsonl").
	Name string
	// Seq is the segment's position in the chain (the legacy journal is
	// 0; numbered segments start at 1).
	Seq int
	// Sealed reports whether the segment has been sealed by a rotation:
	// immutable, fsynced, eligible for retention once a checkpoint
	// covers it. The newest segment is the live one (Sealed == false) —
	// including a legacy checkins.jsonl that no rotation has sealed yet,
	// which is therefore retention-exempt exactly like any live segment.
	Sealed bool
}

// Root is a namespace of per-task stores — the store-side counterpart of
// a Hub. A restarted process lists the tasks that have persisted state
// and opens each task's Store to restore it (see hub.Hub.Restore).
type Root interface {
	// List returns the task IDs with persisted state, sorted.
	List(ctx context.Context) ([]string, error)
	// Open returns the store for one task, creating it if needed.
	Open(ctx context.Context, taskID string) (Store, error)
}
