package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrFeedInterrupted is returned by FeedReader.Next when the byte stream
// ends without the end-of-stream frame the sender always writes last: the
// connection was cut mid-feed (a crashed leader, a dropped TCP stream, a
// proxy timeout). Every frame decoded before the cut is intact — JSONL
// framing means a torn final line simply fails to decode — so a follower
// treats the sentinel as "resume from where I got to", not as corruption.
var ErrFeedInterrupted = errors.New("store: journal feed interrupted before end-of-stream")

// feedFrame is one line of the journal wire feed: either a journal entry
// or the terminal end-of-stream marker. The EOS frame reuses the same
// JSON object shape (JournalEntry has no "eos" key, so the marker is
// unambiguous) and carries the sender's current iteration counter, which
// is what lets a follower measure its replication lag without a second
// round trip.
type feedFrame struct {
	JournalEntry
	// EOS marks the terminal frame of a complete feed response.
	EOS bool `json:"eos,omitempty"`
	// LeaderIteration is the sender's iteration counter at EOS time. It
	// can exceed the last streamed entry's iteration (checkins applied
	// while the feed drained), never trail it.
	LeaderIteration int `json:"leaderIteration,omitempty"`
}

// FeedWriter encodes a journal cursor onto a wire stream as JSONL — the
// leader side of WAL shipping. Entries are written one per line exactly
// as the store persists them, so the feed holds O(one entry) in memory
// however long the journal is, and the stream doubles as a remote audit
// scan (the same artifact `OpenCursor` yields locally). A complete
// response always ends with an EOS frame; its absence tells the reader
// the connection died mid-stream (ErrFeedInterrupted).
type FeedWriter struct {
	enc *json.Encoder
}

// NewFeedWriter returns a writer encoding frames onto w. The caller owns
// any flushing (an HTTP handler flushes after each entry so a live tail
// reaches the follower without buffering delay).
func NewFeedWriter(w io.Writer) *FeedWriter {
	return &FeedWriter{enc: json.NewEncoder(w)}
}

// WriteEntry encodes one journal entry as a feed line.
func (fw *FeedWriter) WriteEntry(e JournalEntry) error {
	if err := fw.enc.Encode(feedFrame{JournalEntry: e}); err != nil {
		return fmt.Errorf("store: encode feed entry at iteration %d: %w", e.Iteration, err)
	}
	return nil
}

// WriteEOS terminates the feed with the end-of-stream frame carrying the
// sender's current iteration counter.
func (fw *FeedWriter) WriteEOS(leaderIteration int) error {
	if err := fw.enc.Encode(feedFrame{EOS: true, LeaderIteration: leaderIteration}); err != nil {
		return fmt.Errorf("store: encode feed EOS: %w", err)
	}
	return nil
}

// FeedReader decodes a journal wire feed — the follower side of WAL
// shipping. Next yields entries in stream order and returns io.EOF after
// the EOS frame (the clean end: LeaderIteration then reports the
// sender's iteration counter), or ErrFeedInterrupted when the underlying
// stream ends without one. Like a JournalCursor, after the first non-nil
// error the reader is exhausted and keeps returning it.
type FeedReader struct {
	dec             *json.Decoder
	err             error
	leaderIteration int
}

// NewFeedReader returns a reader decoding frames from r.
func NewFeedReader(r io.Reader) *FeedReader {
	return &FeedReader{dec: json.NewDecoder(r)}
}

// Next returns the next journal entry from the feed. io.EOF marks the
// clean end of a complete response; ErrFeedInterrupted a cut stream.
func (fr *FeedReader) Next() (JournalEntry, error) {
	if fr.err != nil {
		return JournalEntry{}, fr.err
	}
	var frame feedFrame
	switch err := fr.dec.Decode(&frame); {
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		// Raw end of bytes without an EOS frame — including a line torn
		// mid-object by the cut.
		fr.err = ErrFeedInterrupted
	case err != nil:
		fr.err = fmt.Errorf("store: decode feed frame: %w", err)
	case frame.EOS:
		fr.leaderIteration = frame.LeaderIteration
		fr.err = io.EOF
	default:
		return frame.JournalEntry, nil
	}
	return JournalEntry{}, fr.err
}

// LeaderIteration reports the sender's iteration counter from the EOS
// frame; it is meaningful only after Next has returned io.EOF.
func (fr *FeedReader) LeaderIteration() int { return fr.leaderIteration }
