package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// ctx is the background context shared by the package's tests.
var ctx = context.Background()

// TestJournalConcurrentAppendClose exercises the shutdown race: Close
// must serialize with in-flight Appends (run with -race).
func TestJournalConcurrentAppendClose(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			// Errors are expected once Close wins the race; the point is
			// that the race detector stays quiet.
			_ = j.Append(ctx, JournalEntry{DeviceID: "d", Iteration: i})
		}
	}()
	j.Close()
	<-done
}

func newServer(t *testing.T) *core.Server {
	t.Helper()
	s, err := core.NewServer(core.ServerConfig{
		Model:   model.NewLogisticRegression(3, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	token, _ := srv.RegisterDevice(ctx, "d1")
	req := &core.CheckinRequest{
		Grad: []float64{1, 2, 3, 4, 5, 6}, NumSamples: 3, ErrCount: 1,
		LabelCounts: []int{1, 1, 1},
	}
	if err := srv.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatal(err)
	}

	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	if err := fs.Save(ctx, srv.ExportState(), now); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cp, err := fs.Load(ctx)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if cp.SavedAtUnixMillis != now.UnixMilli() {
		t.Errorf("timestamp %d, want %d", cp.SavedAtUnixMillis, now.UnixMilli())
	}

	restored := newServer(t)
	if err := restored.ImportState(cp.State); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if restored.Iteration() != 1 {
		t.Errorf("restored iteration = %d, want 1", restored.Iteration())
	}
	est, ok := restored.ErrEstimate()
	if !ok || est != 1.0/3 {
		t.Errorf("restored estimate = %v ok=%v", est, ok)
	}
}

func TestLoadWithoutCheckpoint(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(ctx); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("error = %v, want ErrNoCheckpoint", err)
	}
}

func TestSaveNilState(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(ctx, nil, time.Now()); err == nil {
		t.Error("nil state should be rejected")
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	for i := 0; i < 3; i++ {
		if err := fs.Save(ctx, srv.ExportState(), time.Now()); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	// Exactly one checkpoint file, no leftover temp files.
	entries, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if _, err := fs.Load(ctx); err != nil {
		t.Errorf("Load after overwrites: %v", err)
	}
}

func TestLoadCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(ctx); err == nil {
		t.Error("corrupt checkpoint should fail to load")
	}
}

func TestJournalAppendAndRead(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := j.Append(ctx, JournalEntry{
			AtUnixMillis: int64(1000 + i),
			DeviceID:     "d1",
			Iteration:    i + 1,
			NumSamples:   20,
			ErrCount:     i,
			GradNorm1:    float64(i) * 0.5,
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d entries, want 5", len(entries))
	}
	if entries[3].Iteration != 4 || entries[3].ErrCount != 3 {
		t.Errorf("entry 3 = %+v", entries[3])
	}
}

func TestJournalAppendAcrossReopens(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for session := 0; session < 2; session++ {
		j, err := fs.OpenJournal(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(ctx, JournalEntry{Iteration: session}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fs.ReadJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("%d entries after two sessions, want 2", len(entries))
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadJournal(ctx)
	if err != nil || entries != nil {
		t.Errorf("missing journal: entries=%v err=%v, want nil/nil", entries, err)
	}
}

func TestReadJournalCorruptLine(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkins.jsonl"), []byte("{bad\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadJournal(ctx); err == nil {
		t.Error("corrupt journal line should error")
	}
}

func TestNewFileStoreFailsWhenPathIsFile(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(blocker); err == nil {
		t.Error("expected error when store path is an existing file")
	}
}

func TestSaveFailsWhenDirRemoved(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(fs.Dir()); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	if err := fs.Save(ctx, srv.ExportState(), time.Now()); err == nil {
		t.Error("expected error saving into a removed directory")
	}
}

func TestOpenJournalFailsWhenDirRemoved(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(fs.Dir()); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenJournal(ctx); err == nil {
		t.Error("expected error opening journal in removed directory")
	}
}

func TestLoadCheckpointMissingState(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"),
		[]byte(`{"savedAtUnixMillis": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(ctx); err == nil {
		t.Error("checkpoint without state should fail to load")
	}
}

func TestJournalEntriesDurableWithoutClose(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Do NOT close: entries must already be on disk (crash durability).
	if err := j.Append(ctx, JournalEntry{Iteration: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d entries visible before Close, want 1", len(entries))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
