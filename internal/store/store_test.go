package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// ctx is the background context shared by the package's tests.
var ctx = context.Background()

func newServer(t *testing.T) *core.Server {
	t.Helper()
	s, err := core.NewServer(core.ServerConfig{
		Model:   model.NewLogisticRegression(3, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ---- FileStore-specific behaviour (the conformance suite in
// conformance_test.go covers the shared Store semantics) ----

// TestJournalConcurrentAppendClose exercises the shutdown race: Close
// must serialize with in-flight Appends (run with -race).
func TestJournalConcurrentAppendClose(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			// Errors are expected once Close wins the race; the point is
			// that the race detector stays quiet.
			_ = j.Append(ctx, JournalEntry{DeviceID: "d", Iteration: i})
		}
	}()
	j.Close()
	<-done
}

func TestSaveOverwritesAtomically(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	for i := 0; i < 3; i++ {
		if err := fs.Save(ctx, srv.ExportState(), time.Now()); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	// Exactly one checkpoint file, no leftover temp files.
	entries, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if _, err := fs.Load(ctx); err != nil {
		t.Errorf("Load after overwrites: %v", err)
	}
}

func TestLoadCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(ctx); err == nil {
		t.Error("corrupt checkpoint should fail to load")
	}
}

// writeJournalFile seeds a raw checkins.jsonl for the truncation tests.
func writeJournalFile(t *testing.T, dir, content string) *FileStore {
	t.Helper()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkins.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return fs
}

const (
	validLine1 = `{"deviceId":"d1","iteration":1,"numSamples":5,"grad":[1,2,3,4,5,6],"labelCounts":[5,0,0]}`
	validLine2 = `{"deviceId":"d2","iteration":2,"numSamples":5,"grad":[6,5,4,3,2,1],"labelCounts":[0,5,0]}`
)

// TestReadJournalTruncatedTail covers the expected crash artifact: the
// final line torn mid-append. The valid prefix must come back alongside
// ErrJournalTruncated so recovery can proceed.
func TestReadJournalTruncatedTail(t *testing.T) {
	for name, tail := range map[string]string{
		"torn mid-record":    validLine1 + "\n" + validLine2 + "\n" + `{"deviceId":"d3","iter`,
		"torn with newline":  validLine1 + "\n" + validLine2 + "\n" + `{"deviceId":"d3","iter` + "\n",
		"non-JSON last line": validLine1 + "\n" + validLine2 + "\n" + "garbage\n",
		// A record whose JSON decodes but whose newline never hit the disk
		// is torn too: the terminator is what marks its Append — and hence
		// its acknowledgment — complete (OpenJournal drops it by the same
		// rule, so audit reads and recovery agree).
		"parseable unterminated": validLine1 + "\n" + validLine2 + "\n" + `{"deviceId":"d3","iteration":3}`,
	} {
		t.Run(name, func(t *testing.T) {
			fs := writeJournalFile(t, t.TempDir(), tail)
			entries, err := readJournal(fs)
			if !errors.Is(err, ErrJournalTruncated) {
				t.Fatalf("error = %v, want ErrJournalTruncated", err)
			}
			if len(entries) != 2 || entries[0].DeviceID != "d1" || entries[1].DeviceID != "d2" {
				t.Errorf("valid prefix = %+v, want the 2 intact entries", entries)
			}
		})
	}
}

// TestReadJournalOnlyLineTorn is the crash-on-first-append case: no valid
// prefix, but still the tolerant sentinel rather than a hard failure.
func TestReadJournalOnlyLineTorn(t *testing.T) {
	fs := writeJournalFile(t, t.TempDir(), "{bad\n")
	entries, err := readJournal(fs)
	if !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("error = %v, want ErrJournalTruncated", err)
	}
	if len(entries) != 0 {
		t.Errorf("entries = %+v, want none", entries)
	}
}

// TestReadJournalMidCorruptionIsFatal: a bad line FOLLOWED by valid
// entries is not a torn tail — replaying past it would silently drop an
// acknowledged checkin, so it must stay a hard error.
func TestReadJournalMidCorruptionIsFatal(t *testing.T) {
	for name, content := range map[string]string{
		"valid after bad": validLine1 + "\ngarbage\n" + validLine2 + "\n",
		"two bad lines":   validLine1 + "\ngarbage\nmore-garbage\n",
	} {
		t.Run(name, func(t *testing.T) {
			fs := writeJournalFile(t, t.TempDir(), content)
			if _, err := readJournal(fs); err == nil || errors.Is(err, ErrJournalTruncated) {
				t.Errorf("error = %v, want a hard (non-truncation) error", err)
			}
		})
	}
}

// TestOpenJournalRepairsTornTail: reopening a journal whose final record
// was torn by a crash must truncate EVERY tail shape ReadJournal
// tolerates as ErrJournalTruncated — otherwise resuming and appending
// would strand undecodable bytes mid-file and make the NEXT restart's
// ReadJournal fail fatally (valid-after-bad), bricking the task.
func TestOpenJournalRepairsTornTail(t *testing.T) {
	for name, tail := range map[string]string{
		"torn mid-record":          validLine1 + "\n" + validLine2 + "\n" + `{"deviceId":"d3","iter`,
		"torn with newline":        validLine1 + "\n" + validLine2 + "\n" + `{"deviceId":"d3","iter` + "\n",
		"non-JSON last line":       validLine1 + "\n" + validLine2 + "\n" + "garbage\n",
		"parseable unterminated":   validLine1 + "\n" + validLine2 + "\n" + `{"deviceId":"d3","iteration":3}`,
		"clean file (no-op)":       validLine1 + "\n" + validLine2 + "\n",
		"blank line then torn end": validLine1 + "\n\n" + validLine2 + "\n" + "{oops",
	} {
		t.Run(name, func(t *testing.T) {
			fs := writeJournalFile(t, t.TempDir(), tail)
			j, err := fs.OpenJournal(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Append(ctx, JournalEntry{DeviceID: "d4", Iteration: 3}); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			// The appended-to journal must read back clean — across a
			// SECOND open/read cycle too (the restart-after-recovery path).
			entries, err := readJournal(fs)
			if err != nil {
				t.Fatalf("ReadJournal after repair+append: %v", err)
			}
			if len(entries) != 3 || entries[2].DeviceID != "d4" {
				t.Errorf("entries = %+v, want the 2 intact + 1 new", entries)
			}
			if j2, err := fs.OpenJournal(ctx); err != nil {
				t.Fatalf("second open: %v", err)
			} else if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenJournalRefusesRealCorruption: damage no single crash produces
// must never be silently eaten. Two broken trailing lines fail the open;
// mid-file corruption (valid entries after a bad line) is left intact
// for ReadJournal — and therefore restore — to report as fatal.
func TestOpenJournalRefusesRealCorruption(t *testing.T) {
	t.Run("two bad tails", func(t *testing.T) {
		fs := writeJournalFile(t, t.TempDir(), validLine1+"\ngarbage\n{torn")
		if _, err := fs.OpenJournal(ctx); err == nil {
			t.Error("OpenJournal should refuse a journal with two broken trailing lines")
		}
	})
	t.Run("valid after bad stays fatal on read", func(t *testing.T) {
		fs := writeJournalFile(t, t.TempDir(), validLine1+"\ngarbage\n"+validLine2+"\n")
		j, err := fs.OpenJournal(ctx)
		if err != nil {
			t.Fatalf("tail is intact; open should succeed: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := readJournal(fs); err == nil || errors.Is(err, ErrJournalTruncated) {
			t.Errorf("ReadJournal error = %v, want a hard mid-corruption error", err)
		}
	})
}

// TestOpenJournalRepairsFullyTornFile: a journal that is ONLY a torn
// record truncates to empty.
func TestOpenJournalRepairsFullyTornFile(t *testing.T) {
	fs := writeJournalFile(t, t.TempDir(), `{"deviceId":"d1","iter`)
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(fs)
	if err != nil || len(entries) != 0 {
		t.Errorf("after repair: entries=%v err=%v, want none/nil", entries, err)
	}
}

func TestReadJournalToleratesBlankLines(t *testing.T) {
	fs := writeJournalFile(t, t.TempDir(), validLine1+"\n\n"+validLine2+"\n")
	entries, err := readJournal(fs)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(entries) != 2 {
		t.Errorf("%d entries, want 2", len(entries))
	}
}

func TestNewFileStoreFailsWhenPathIsFile(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(blocker); err == nil {
		t.Error("expected error when store path is an existing file")
	}
}

func TestSaveFailsWhenDirRemoved(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(fs.Dir()); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	if err := fs.Save(ctx, srv.ExportState(), time.Now()); err == nil {
		t.Error("expected error saving into a removed directory")
	}
}

func TestOpenJournalFailsWhenDirRemoved(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(fs.Dir()); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenJournal(ctx); err == nil {
		t.Error("expected error opening journal in removed directory")
	}
}

func TestLoadCheckpointMissingState(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"),
		[]byte(`{"savedAtUnixMillis": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(ctx); err == nil {
		t.Error("checkpoint without state should fail to load")
	}
}

func TestJournalEntriesDurableWithoutClose(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Do NOT close: entries must already be on disk (crash durability —
	// the write-ahead property depends on it).
	if err := j.Append(ctx, JournalEntry{Iteration: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d entries visible before Close, want 1", len(entries))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// ---- Segmentation and locking (FileStore-specific) ----

// TestRotateCreatesNumberedSegments: rotation seals journal-0000000001
// and moves appends into journal-0000000002; the chain reads back as
// one ordered log.
func TestRotateCreatesNumberedSegments(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 2)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 3, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := fs.Segments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"journal-0000000001.jsonl", "journal-0000000002.jsonl"}
	if len(segs) != 2 || segs[0].Name != want[0] || segs[1].Name != want[1] {
		t.Fatalf("Segments = %v, want %v", segs, want)
	}
	// Sealed-vs-live status: every segment but the newest was sealed by
	// the rotation that created its successor.
	if !segs[0].Sealed || segs[1].Sealed {
		t.Errorf("Segments status = %+v, want [sealed, live]", segs)
	}
	if segs[0].Seq != 1 || segs[1].Seq != 2 {
		t.Errorf("Segments seq = %+v, want 1, 2", segs)
	}
	entries, err := readJournal(fs)
	if err != nil || len(entries) != 3 {
		t.Fatalf("ReadJournal: %d entries, err=%v", len(entries), err)
	}
}

// TestLegacyJournalReadAsOldestSegment: a pre-segmentation
// checkins.jsonl keeps working — appends continue into it until the
// first rotation seals it, and it reads back as the oldest segment.
func TestLegacyJournalReadAsOldestSegment(t *testing.T) {
	fs := writeJournalFile(t, t.TempDir(), validLine1+"\n"+validLine2+"\n")
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 3, 1) // lands in checkins.jsonl (the live segment)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 4, 1) // lands in journal-0000000001.jsonl
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := fs.Segments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Name != "checkins.jsonl" || segs[1].Name != "journal-0000000001.jsonl" {
		t.Fatalf("Segments = %v, want [checkins.jsonl journal-0000000001.jsonl]", segs)
	}
	if !segs[0].Sealed || segs[0].Seq != 0 || segs[1].Sealed {
		t.Errorf("Segments status = %+v, want the sealed legacy journal (seq 0) + the live numbered segment", segs)
	}
	entries, err := readJournal(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].DeviceID != "d1" || entries[3].Iteration != 4 {
		t.Fatalf("entries = %+v, want legacy pair + 2 appended", entries)
	}
	tail, err := readJournalTail(fs, 3)
	if err != nil || len(tail) != 1 || tail[0].Iteration != 4 {
		t.Fatalf("tail after 3 = %+v err=%v, want just iteration 4", tail, err)
	}
}

// TestTornLiveSegmentWithSealedHistory: only the LIVE segment can be
// crash-torn; the tolerance (and the reopen repair) applies there while
// sealed segments stay strict.
func TestTornLiveSegmentWithSealedHistory(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 2)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 3, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the live segment the way a dying process would.
	live := filepath.Join(fs.Dir(), "journal-0000000002.jsonl")
	f, err := os.OpenFile(live, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"deviceId":"torn","iter`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, err := readJournal(fs)
	if !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("ReadJournal error = %v, want ErrJournalTruncated", err)
	}
	if len(entries) != 4 {
		t.Fatalf("valid prefix = %d entries, want 4", len(entries))
	}
	tail, err := readJournalTail(fs, 2)
	if !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("readJournalTail error = %v, want ErrJournalTruncated", err)
	}
	if len(tail) != 2 || tail[0].Iteration != 3 {
		t.Fatalf("tail = %+v, want iterations 3..4", tail)
	}
	// Reopen repairs the live segment; the sealed one is untouched.
	j2, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if entries, err := readJournal(fs); err != nil || len(entries) != 4 {
		t.Fatalf("after repair: %d entries err=%v, want 4/nil", len(entries), err)
	}
}

// TestTornSealedSegmentIsFatal: a bad final line in a SEALED segment is
// damage no crash produces (sealing fsyncs and closes the file), so
// reads refuse it instead of silently dropping acknowledged checkins.
func TestTornSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal-0000000001.jsonl"),
		[]byte(validLine1+"\n"+`{"deviceId":"torn","iter`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal-0000000002.jsonl"),
		[]byte(validLine2+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readJournal(fs); err == nil || errors.Is(err, ErrJournalTruncated) {
		t.Errorf("ReadJournal error = %v, want a hard sealed-segment error", err)
	}
	if _, err := readJournalTail(fs, 0); err == nil || errors.Is(err, ErrJournalTruncated) {
		t.Errorf("readJournalTail error = %v, want a hard sealed-segment error", err)
	}
}

// ---- Retention (FileStore-specific; the conformance suite covers the
// shared PruneSegments semantics on both backends) ----

// TestLegacyJournalRetentionExempt: a pre-segmentation checkins.jsonl
// is the LIVE segment until the first rotation seals it, so retention
// must leave it alone no matter how high the checkpoint — and may prune
// it the moment a rotation has sealed it.
func TestLegacyJournalRetentionExempt(t *testing.T) {
	fs := writeJournalFile(t, t.TempDir(), validLine1+"\n"+validLine2+"\n")
	pruned, err := fs.PruneSegments(ctx, 1<<30, "")
	if err != nil {
		t.Fatalf("PruneSegments: %v", err)
	}
	if len(pruned) != 0 {
		t.Fatalf("pruned %v; the unsealed legacy journal is retention-exempt", pruned)
	}
	// Seal it with one rotation; now it is an ordinary covered segment.
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	pruned, err = fs.PruneSegments(ctx, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != "checkins.jsonl" {
		t.Fatalf("pruned %v, want the sealed legacy journal", pruned)
	}
}

// TestPruneInterruptedMidwayLeavesRecoverableStore: pruning runs
// oldest-first, so a crash between two removals leaves exactly what a
// smaller completed prune leaves — a contiguous journal suffix. The
// simulated interruption removes only the oldest covered segment by
// hand; everything must still read, restore and re-prune cleanly.
func TestPruneInterruptedMidwayLeavesRecoverableStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 2)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 3, 2)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 5, 2) // the live tail
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// "Crash" after the first removal of a PruneSegments(4, "") run.
	if err := os.Remove(filepath.Join(fs.Dir(), "journal-0000000001.jsonl")); err != nil {
		t.Fatal(err)
	}
	// The restore read (checkpoint at 4) is untouched by the gap...
	tail, err := readJournalTail(fs, 4)
	if err != nil || len(tail) != 2 || tail[0].Iteration != 5 {
		t.Fatalf("tail after interrupted prune = %+v err=%v, want iterations 5..6", tail, err)
	}
	// ...the audit scan serves the surviving suffix...
	entries, err := readJournal(fs)
	if err != nil || len(entries) != 4 || entries[0].Iteration != 3 {
		t.Fatalf("audit after interrupted prune = %d entries err=%v, want 4 starting at 3", len(entries), err)
	}
	// ...and re-running the prune finishes the job.
	pruned, err := fs.PruneSegments(ctx, 4, "")
	if err != nil || len(pruned) != 1 || pruned[0] != "journal-0000000002.jsonl" {
		t.Fatalf("re-run pruned %v err=%v, want the second segment", pruned, err)
	}
}

// TestArchiveCollision: an existing same-named file in the archive
// directory is never overwritten — identical contents (the duplicate an
// interrupted earlier archive leaves) resolve by dropping the source,
// different contents (two tasks sharing an archive dir, a restored
// backup re-issuing sequence numbers) are refused.
func TestArchiveCollision(t *testing.T) {
	mkStore := func(t *testing.T) *FileStore {
		fs, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		j, err := fs.OpenJournal(ctx)
		if err != nil {
			t.Fatal(err)
		}
		appendIters(t, j, 1, 2)
		if err := j.Rotate(ctx); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	t.Run("duplicate resolves", func(t *testing.T) {
		fs := mkStore(t)
		archive := t.TempDir()
		src, err := os.ReadFile(filepath.Join(fs.Dir(), "journal-0000000001.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		// The leftover of an interrupted earlier archive: dst already
		// holds the identical bytes.
		if err := os.WriteFile(filepath.Join(archive, "journal-0000000001.jsonl"), src, 0o644); err != nil {
			t.Fatal(err)
		}
		pruned, err := fs.PruneSegments(ctx, 2, archive)
		if err != nil || len(pruned) != 1 {
			t.Fatalf("PruneSegments over a crash-duplicate = %v, %v; want it resolved", pruned, err)
		}
		if _, err := os.Stat(filepath.Join(fs.Dir(), "journal-0000000001.jsonl")); !errors.Is(err, os.ErrNotExist) {
			t.Error("source segment should be gone after the duplicate resolved")
		}
	})
	t.Run("conflict refused", func(t *testing.T) {
		fs := mkStore(t)
		archive := t.TempDir()
		if err := os.WriteFile(filepath.Join(archive, "journal-0000000001.jsonl"),
			[]byte(validLine2+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if pruned, err := fs.PruneSegments(ctx, 2, archive); err == nil || len(pruned) != 0 {
			t.Fatalf("PruneSegments over a foreign archive file = %v, %v; want a refusal", pruned, err)
		}
		// The foreign file is untouched.
		got, err := os.ReadFile(filepath.Join(archive, "journal-0000000001.jsonl"))
		if err != nil || string(got) != validLine2+"\n" {
			t.Errorf("archive file was disturbed: %q err=%v", got, err)
		}
	})
}

// TestPruneRefusesCorruptSealedSegment: retention decides coverage from
// a sealed segment's final record; if that record does not decode the
// segment is damaged (sealing fsyncs the file) and pruning must stop
// with an error instead of guessing.
func TestPruneRefusesCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal-0000000001.jsonl"),
		[]byte(validLine1+"\ngarbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal-0000000002.jsonl"),
		[]byte(validLine2+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if pruned, err := fs.PruneSegments(ctx, 1<<30, ""); err == nil || len(pruned) != 0 {
		t.Errorf("PruneSegments on a corrupt sealed segment = %v, %v; want an error and no removals", pruned, err)
	}
}

// ---- Root implementations ----

func TestFileRootListOpen(t *testing.T) {
	dir := t.TempDir()
	root, err := NewFileRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ids, err := root.List(ctx); err != nil || len(ids) != 0 {
		t.Fatalf("empty root: ids=%v err=%v", ids, err)
	}
	for _, id := range []string{"zebra", "alpha"} {
		if _, err := root.Open(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	// A stray file at the root is not a task store.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := root.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "zebra" {
		t.Errorf("ids = %v, want [alpha zebra]", ids)
	}
}

// TestReadJournalHugeLines: journal lines carry full gradients, so
// ReadJournal must not impose a line-length cap an Append never had —
// an entry over the old 1 MB scanner limit has to read back fine.
func TestReadJournalHugeLines(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	grad := make([]float64, 200_000) // ~3.6 MB as JSON
	for i := range grad {
		grad[i] = 0.123456789 + float64(i)
	}
	for iter := 1; iter <= 2; iter++ {
		if err := j.Append(ctx, JournalEntry{Iteration: iter, Grad: grad, LabelCounts: []int{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(fs)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(entries) != 2 || len(entries[1].Grad) != len(grad) || entries[1].Grad[7] != grad[7] {
		t.Errorf("huge entries did not round-trip: %d entries", len(entries))
	}
}

func TestFileRootOpenRejectsEscapingIDs(t *testing.T) {
	root, err := NewFileRoot(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", "../escape", "a/b", `a\b`} {
		if _, err := root.Open(ctx, bad); err == nil {
			t.Errorf("Open(%q) should reject a non-clean store name", bad)
		}
	}
}

func TestMemRootSharesStores(t *testing.T) {
	root := NewMemRoot()
	a, err := root.Open(ctx, "task")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	if err := a.Save(ctx, srv.ExportState(), time.Now()); err != nil {
		t.Fatal(err)
	}
	// Re-opening the same ID must see the same store — that is what makes
	// a MemRoot survive a simulated restart.
	b, err := root.Open(ctx, "task")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(ctx); err != nil {
		t.Errorf("second open lost the checkpoint: %v", err)
	}
	ids, err := root.List(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "task" {
		t.Errorf("List = %v, %v", ids, err)
	}
}
