//go:build unix

package store

import (
	"errors"
	"testing"
)

// TestOpenJournalLocksStoreDir: the advisory flock makes a second live
// journal — the deployment mistake that could torn-tail-repair a live
// file — fail fast with ErrStoreLocked, and releases on Close. The
// exclusion is flock-based, so this test (like the enforcement itself;
// see filelock_other.go) is unix-only.
func TestOpenJournalLocksStoreDir(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenJournal(ctx); !errors.Is(err, ErrStoreLocked) {
		t.Errorf("second open error = %v, want ErrStoreLocked", err)
	}
	// A second FileStore handle on the same directory hits the same lock.
	fs2, err := NewFileStore(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.OpenJournal(ctx); !errors.Is(err, ErrStoreLocked) {
		t.Errorf("second-handle open error = %v, want ErrStoreLocked", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := fs.OpenJournal(ctx)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}
