package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// Journal segment naming. The journal is a sequence of JSONL segment
// files: journal-0000000001.jsonl, journal-0000000002.jsonl, … with the
// highest sequence number being the live (appended-to) segment and every
// lower one sealed. A pre-segmentation journal named checkins.jsonl is
// read as the oldest segment, so stores written by earlier versions
// restore unchanged; the first rotation seals it like any other segment.
const (
	segmentPrefix  = "journal-"
	segmentSuffix  = ".jsonl"
	segmentPattern = segmentPrefix + "%010d" + segmentSuffix
	legacyJournal  = "checkins.jsonl"
	lockFileName   = "LOCK"
)

// FileStore persists checkpoints and journals under a directory:
// checkpoint.json (atomic write-to-temp + rename) and a segmented
// journal-*.jsonl write-ahead log (append-only, flushed per entry).
//
// A store directory belongs to ONE live journal at a time: OpenJournal
// repairs (truncates) a crash-torn journal tail, so a second process
// opening the same directory while the first is appending could destroy
// a half-flushed live record. OpenJournal therefore takes an advisory
// flock on the directory's LOCK file, held until the journal is closed;
// a conflicting open fails with ErrStoreLocked instead of racing. (The
// kernel releases the lock when a crashed holder dies, so recovery is
// never blocked by a stale lock file.)
type FileStore struct {
	dir string
}

var _ Store = (*FileStore)(nil)

// NewFileStore creates (if necessary) and opens a store directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store directory.
func (f *FileStore) Dir() string { return f.dir }

// HasCheckpoint cheaply reports whether a checkpoint has been saved —
// an existence probe, without decoding the state (callers that need the
// contents use Load).
func (f *FileStore) HasCheckpoint(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, err := os.Stat(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (f *FileStore) checkpointPath() string {
	return filepath.Join(f.dir, "checkpoint.json")
}

// Save atomically writes a checkpoint of the given state.
func (f *FileStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if state == nil {
		return errors.New("store: nil state")
	}
	cp := Checkpoint{SavedAtUnixMillis: now.UnixMilli(), State: state}
	payload, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(f.dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, f.checkpointPath()); err != nil {
		return fmt.Errorf("store: publish checkpoint: %w", err)
	}
	// Sync the directory so the rename itself survives a machine crash
	// (the temp file's contents were already synced above). Best-effort
	// HERE only: a checkpoint whose rename is lost to power failure
	// costs a longer journal replay, never data — the journal covers
	// every acknowledged checkin regardless.
	_ = syncDir(f.dir)
	return nil
}

// syncDir fsyncs a directory, making file creates and renames inside it
// durable against machine crashes. Filesystems that refuse directory
// fsync (EINVAL) are tolerated — on those there is nothing stronger to
// offer; any other failure is reported so callers for whom the dirent's
// durability is load-bearing (Rotate under a fsyncing SyncPolicy) can
// treat it as fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// Load reads the most recent checkpoint. It returns ErrNoCheckpoint when
// none has been saved.
func (f *FileStore) Load(ctx context.Context) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := os.ReadFile(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if cp.State == nil {
		return nil, errors.New("store: checkpoint missing state")
	}
	return &cp, nil
}

// segmentSeq parses a segment file name, returning its sequence number.
// The legacy checkins.jsonl maps to sequence 0 (older than any numbered
// segment, which start at 1).
func segmentSeq(name string) (int, bool) {
	if name == legacyJournal {
		return 0, true
	}
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if digits == "" {
		return 0, false
	}
	seq := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	if seq < 1 {
		return 0, false
	}
	return seq, true
}

// Segments returns the journal's segment file names, oldest first (the
// last one is the live segment). Empty when no journal exists yet.
// Exposed for auditing and operations tooling; reading one is plain
// JSONL.
func (f *FileStore) Segments(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	type seg struct {
		name string
		seq  int
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := segmentSeq(e.Name()); ok {
			segs = append(segs, seg{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	names := make([]string, len(segs))
	for i, s := range segs {
		names[i] = s.name
	}
	return names, nil
}

// fileJournal is the append-only segmented JSONL journal behind a
// FileStore. It is safe for concurrent use; a shutdown-path Close can
// race in-flight Appends and Rotates.
type fileJournal struct {
	dir string

	mu     sync.Mutex
	file   *os.File // live segment
	w      *bufio.Writer
	seq    int      // live segment's sequence number
	lock   *os.File // flock'd LOCK file, held until Close
	closed bool
}

// OpenJournal opens the journal for appending: it takes the store
// directory's advisory lock (ErrStoreLocked if a live journal already
// holds it), opens the newest segment — creating journal-0000000001.jsonl
// for a fresh store, or continuing a pre-segmentation checkins.jsonl —
// and repairs a crash-torn tail first, truncating back to the last
// decodable, newline-terminated record. The repair removes EXACTLY the
// tail ReadJournal classifies as ErrJournalTruncated (one trailing
// undecodable or unterminated line): such a record was never durable, so
// its checkin was never acknowledged, and appending after it without the
// repair would strand undecodable bytes mid-file and poison every later
// ReadJournal. Anything worse — several bad trailing lines, or a valid
// entry after a bad line — is corruption no crash produces, and
// OpenJournal refuses to touch it.
func (f *FileStore) OpenJournal(ctx context.Context) (Journal, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(filepath.Join(f.dir, lockFileName))
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			releaseDirLock(lock)
		}
	}()
	segs, err := f.Segments(ctx)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf(segmentPattern, 1)
	if len(segs) > 0 {
		name = segs[len(segs)-1]
	}
	seq, _ := segmentSeq(name)
	file, err := os.OpenFile(filepath.Join(f.dir, name),
		os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	if err := repairTornTail(file); err != nil {
		file.Close()
		return nil, fmt.Errorf("store: repair journal tail: %w", err)
	}
	ok = true
	return &fileJournal{dir: f.dir, file: file, w: bufio.NewWriter(file), seq: seq, lock: lock}, nil
}

// repairTornTail truncates a single torn tail record — an undecodable
// final line, or an unterminated one (even a parseable unterminated
// record is dropped: its Append never returned, so its checkin was
// never acknowledged; ReadJournal classifies it as torn by the same
// rule). Two broken trailing lines is damage no single crash produces
// and is refused. Mid-file corruption (a bad line with valid entries
// after it) is not this function's business: it is left in place for
// ReadJournal to report as fatal.
//
// The scan finds line boundaries in one cheap forward pass without
// decoding; only the last one or two non-blank lines are JSON-decoded,
// so reopening a journal does not double restore's full-decode cost.
func repairTornTail(file *os.File) error {
	if _, err := file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(file, 64*1024)
	type lineSpan struct {
		start, end int64 // byte offsets; end includes the newline if any
		terminated bool
	}
	var offset int64
	var last, prev *lineSpan // the two most recent non-blank lines
	for {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return fmt.Errorf("scan journal: %w", readErr)
		}
		if n := int64(len(raw)); n > 0 {
			if len(bytes.TrimSuffix(raw, []byte{'\n'})) > 0 {
				prev, last = last, &lineSpan{start: offset, end: offset + n, terminated: readErr == nil}
			}
			offset += n
		}
		if readErr != nil {
			break
		}
	}
	intact := func(l *lineSpan) (bool, error) {
		if !l.terminated {
			return false, nil
		}
		buf := make([]byte, l.end-l.start)
		if _, err := file.ReadAt(buf, l.start); err != nil {
			return false, err
		}
		var e JournalEntry
		return json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), &e) == nil, nil
	}
	if last != nil {
		ok, err := intact(last)
		if err != nil {
			return err
		}
		if !ok {
			if prev != nil {
				prevOK, err := intact(prev)
				if err != nil {
					return err
				}
				if !prevOK {
					return errors.New("multiple broken trailing lines (beyond a single torn append)")
				}
			}
			if err := file.Truncate(last.start); err != nil {
				return fmt.Errorf("truncate torn tail: %w", err)
			}
		}
	}
	_, err := file.Seek(0, io.SeekEnd)
	return err
}

// Append writes one entry and flushes it to the OS, so a crashed server
// process loses at most the entry being written — and a torn tail is
// exactly what ReadJournal's ErrJournalTruncated tolerance is for. The
// flush runs before the originating Checkin is acknowledged (write-ahead
// ordering). There is no per-entry fsync: durability is against process
// crashes, not power loss, unless the caller follows up with Sync (the
// hub's SyncBatch policy fsyncs once per applied batch).
func (j *fileJournal) Append(ctx context.Context, e JournalEntry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("store: append to closed journal")
	}
	if _, err := j.w.Write(payload); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush journal entry: %w", err)
	}
	return nil
}

// Sync fsyncs the live segment, upgrading everything appended so far to
// power-loss durability.
func (j *fileJournal) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("store: sync on closed journal")
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush journal: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("store: sync journal: %w", err)
	}
	return nil
}

// Rotate seals the live segment — flushed, fsynced, closed, never
// written again — and starts appending to a fresh numbered segment. The
// new segment is created (and the directory synced) BEFORE the old file
// is closed, so a failure at any step leaves the journal appending
// where it was: rotation can be retried on the next checkpoint, and no
// failure path loses the append handle.
func (j *fileJournal) Rotate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("store: rotate on closed journal")
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush before rotate: %w", err)
	}
	// Seal durably: everything in the old segment reaches stable storage
	// before the rotation is visible. The checkpoint that triggered this
	// rotation was itself fsynced, so after a rotation the sealed chain +
	// checkpoint survive power loss regardless of SyncPolicy.
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("store: sync before rotate: %w", err)
	}
	next, err := os.OpenFile(filepath.Join(j.dir, fmt.Sprintf(segmentPattern, j.seq+1)),
		os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: create next segment: %w", err)
	}
	// The new segment's directory entry must be durable BEFORE appends
	// move into it: under a fsyncing SyncPolicy, Journal.Sync fsyncs
	// file contents only, so a dirent lost to power failure would take
	// every post-rotation "synced" entry with it. A failed directory
	// sync therefore fails the rotation (appends stay in the old, known-
	// durable segment, and the checkpointer retries next time) instead
	// of being quietly dropped.
	if err := syncDir(j.dir); err != nil {
		next.Close()
		return fmt.Errorf("store: sync dir for next segment: %w", err)
	}
	old := j.file
	j.file, j.w, j.seq = next, bufio.NewWriter(next), j.seq+1
	if err := old.Close(); err != nil {
		return fmt.Errorf("store: close sealed segment: %w", err)
	}
	return nil
}

// Close flushes and closes the journal, then releases the store
// directory's advisory lock. Idempotent: later calls return nil (a
// retried durability flush re-runs Close after a failed checkpoint
// save).
func (j *fileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	defer releaseDirLock(j.lock)
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		return fmt.Errorf("store: flush journal: %w", err)
	}
	return j.file.Close()
}

// ReadJournal loads every entry from every journal segment, oldest
// first — the full audit trail. A missing journal yields an empty
// slice. A torn or corrupt FINAL line of the LIVE (newest) segment —
// the expected artifact of a crash mid-append — yields the valid prefix
// plus ErrJournalTruncated instead of failing the whole replay; a
// corrupt line anywhere else (mid-segment, or in a sealed segment,
// which no crash can tear) is real corruption and stays a hard error.
func (f *FileStore) ReadJournal(ctx context.Context) ([]JournalEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	segs, err := f.Segments(ctx)
	if err != nil {
		return nil, err
	}
	var out []JournalEntry
	for i, name := range segs {
		entries, err := f.readSegment(name, i == len(segs)-1)
		out = append(out, entries...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ReadJournalTail implements the bounded recovery read: segments are
// read newest-first and prepended until one contains an entry at or
// below afterIteration+1 — every earlier segment then holds only
// iterations the checkpoint already covers (journal iterations are
// monotone), so recovery cost tracks rotation cadence, not journal
// size. Whole segments are returned; core.Server.Replay skips leading
// entries the checkpoint covers.
func (f *FileStore) ReadJournalTail(ctx context.Context, afterIteration int) ([]JournalEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	segs, err := f.Segments(ctx)
	if err != nil {
		return nil, err
	}
	var out []JournalEntry
	var tornTail error
	for i := len(segs) - 1; i >= 0; i-- {
		entries, err := f.readSegment(segs[i], i == len(segs)-1)
		if errors.Is(err, ErrJournalTruncated) {
			tornTail = err // only the live segment can report this
		} else if err != nil {
			return nil, err
		}
		out = append(entries, out...)
		if len(entries) > 0 && entries[0].Iteration <= afterIteration+1 {
			break
		}
	}
	if tornTail != nil {
		return out, tornTail
	}
	return out, nil
}

// readSegment decodes one segment file. With tolerateTail (the live
// segment), a torn or corrupt final record yields the valid prefix plus
// ErrJournalTruncated; without it, any bad line is a hard error.
func (f *FileStore) readSegment(name string, tolerateTail bool) ([]JournalEntry, error) {
	file, err := os.Open(filepath.Join(f.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // raced a concurrent cleanup; nothing to read
	}
	if err != nil {
		return nil, fmt.Errorf("store: open journal segment %s: %w", name, err)
	}
	defer file.Close()
	var out []JournalEntry
	var badLine int  // 1-based line number of the first undecodable line
	var badErr error // its decode error
	// bufio.Reader instead of a Scanner: journal lines carry full
	// gradients (classes·dim floats), so no fixed line-length cap may
	// stand between an Append that succeeded and the recovery that needs
	// to read it back.
	r := bufio.NewReaderSize(file, 64*1024)
	for line := 1; ; line++ {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return nil, fmt.Errorf("store: scan journal segment %s: %w", name, readErr)
		}
		terminated := readErr == nil
		raw = bytes.TrimSuffix(raw, []byte{'\n'})
		if len(raw) > 0 {
			// An unterminated final record is torn even when its JSON
			// happens to decode: the newline is what marks an Append (and
			// therefore an acknowledgment) complete, and the repair in
			// OpenJournal drops such a record by the same rule.
			var e JournalEntry
			decodeErr := json.Unmarshal(raw, &e)
			if decodeErr == nil && !terminated {
				decodeErr = errors.New("record not newline-terminated")
			}
			switch {
			case decodeErr != nil && badLine != 0:
				// Two undecodable lines: not a torn tail.
				return nil, fmt.Errorf("store: journal segment %s line %d: %w", name, badLine, badErr)
			case decodeErr != nil:
				badLine, badErr = line, decodeErr
			case badLine != 0:
				// A valid entry AFTER a bad line means mid-journal
				// corruption, not a crash-torn tail; replaying past it
				// would silently drop an acknowledged checkin.
				return nil, fmt.Errorf("store: journal segment %s line %d: %w", name, badLine, badErr)
			default:
				out = append(out, e)
			}
		}
		if readErr != nil { // io.EOF: past the (possibly unterminated) last line
			break
		}
	}
	if badLine != 0 {
		if !tolerateTail {
			// Sealed segments were flushed, fsynced and closed; no crash
			// tears them. A bad final line here is damage, not a torn tail.
			return out, fmt.Errorf("store: journal segment %s line %d: %v", name, badLine, badErr)
		}
		return out, fmt.Errorf("store: journal segment %s line %d: %v: %w", name, badLine, badErr, ErrJournalTruncated)
	}
	return out, nil
}

// FileRoot exposes a directory of per-task FileStores: each immediate
// subdirectory is one task's store, named by task ID — the layout
// cmd/crowdml-server's -state-dir produces.
type FileRoot struct {
	dir string
}

var _ Root = (*FileRoot)(nil)

// NewFileRoot creates (if necessary) and opens a root directory.
func NewFileRoot(dir string) (*FileRoot, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root dir: %w", err)
	}
	return &FileRoot{dir: dir}, nil
}

// Dir returns the root directory.
func (r *FileRoot) Dir() string { return r.dir }

// List returns the task IDs with a store subdirectory, sorted.
func (r *FileRoot) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list root: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Open returns the FileStore for one task, creating its directory if
// needed. The task ID must be a single clean path element — no
// separators or dot paths — so a config-supplied ID can never place a
// store outside the root.
func (r *FileRoot) Open(ctx context.Context, taskID string) (Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if taskID == "" || taskID == "." || taskID == ".." ||
		strings.ContainsAny(taskID, `/\`) {
		return nil, fmt.Errorf("store: task ID %q is not a valid store name", taskID)
	}
	return NewFileStore(filepath.Join(r.dir, taskID))
}
