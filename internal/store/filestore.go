package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// FileStore persists checkpoints and journals under a directory:
// checkpoint.json (atomic write-to-temp + rename) and checkins.jsonl
// (append-only, flushed per entry).
//
// A store directory belongs to ONE process at a time: OpenJournal
// repairs (truncates) a crash-torn journal tail, so a second process
// opening the same directory while the first is appending could destroy
// a half-flushed live record. Nothing enforces the exclusion (see the
// ROADMAP for an flock); deployments must not point two servers at one
// -state-dir.
type FileStore struct {
	dir string
}

var _ Store = (*FileStore)(nil)

// NewFileStore creates (if necessary) and opens a store directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store directory.
func (f *FileStore) Dir() string { return f.dir }

// HasCheckpoint cheaply reports whether a checkpoint has been saved —
// an existence probe, without decoding the state (callers that need the
// contents use Load).
func (f *FileStore) HasCheckpoint(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, err := os.Stat(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (f *FileStore) checkpointPath() string {
	return filepath.Join(f.dir, "checkpoint.json")
}

// Save atomically writes a checkpoint of the given state.
func (f *FileStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if state == nil {
		return errors.New("store: nil state")
	}
	cp := Checkpoint{SavedAtUnixMillis: now.UnixMilli(), State: state}
	payload, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(f.dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, f.checkpointPath()); err != nil {
		return fmt.Errorf("store: publish checkpoint: %w", err)
	}
	// Sync the directory so the rename itself survives a machine crash
	// (the temp file's contents were already synced above). Best-effort:
	// some filesystems refuse directory syncs.
	if dir, err := os.Open(f.dir); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// Load reads the most recent checkpoint. It returns ErrNoCheckpoint when
// none has been saved.
func (f *FileStore) Load(ctx context.Context) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := os.ReadFile(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if cp.State == nil {
		return nil, errors.New("store: checkpoint missing state")
	}
	return &cp, nil
}

// fileJournal is the append-only JSONL journal behind a FileStore. It is
// safe for concurrent use; a shutdown-path Close can race in-flight
// Appends.
type fileJournal struct {
	mu     sync.Mutex
	file   *os.File
	w      *bufio.Writer
	closed bool
}

// OpenJournal opens (creating if needed) the journal file inside the
// store directory for appending. A torn final record left by a crash
// mid-append is repaired first — truncated back to the last decodable,
// newline-terminated record. The repair removes EXACTLY the tail
// ReadJournal classifies as ErrJournalTruncated (one trailing
// undecodable or unterminated line): such a record was never durable,
// so its checkin was never acknowledged, and appending after it without
// the repair would strand undecodable bytes mid-file and poison every
// later ReadJournal. Anything worse — several bad trailing lines, or a
// valid entry after a bad line — is corruption no crash produces, and
// OpenJournal refuses to touch it.
func (f *FileStore) OpenJournal(ctx context.Context) (Journal, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := os.OpenFile(filepath.Join(f.dir, "checkins.jsonl"),
		os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	if err := repairTornTail(file); err != nil {
		file.Close()
		return nil, fmt.Errorf("store: repair journal tail: %w", err)
	}
	return &fileJournal{file: file, w: bufio.NewWriter(file)}, nil
}

// repairTornTail truncates a single torn tail record — an undecodable
// final line, or an unterminated one (even a parseable unterminated
// record is dropped: its Append never returned, so its checkin was
// never acknowledged; ReadJournal classifies it as torn by the same
// rule). Two broken trailing lines is damage no single crash produces
// and is refused. Mid-file corruption (a bad line with valid entries
// after it) is not this function's business: it is left in place for
// ReadJournal to report as fatal.
//
// The scan finds line boundaries in one cheap forward pass without
// decoding; only the last one or two non-blank lines are JSON-decoded,
// so reopening a journal does not double restore's full-decode cost.
func repairTornTail(file *os.File) error {
	if _, err := file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(file, 64*1024)
	type lineSpan struct {
		start, end int64 // byte offsets; end includes the newline if any
		terminated bool
	}
	var offset int64
	var last, prev *lineSpan // the two most recent non-blank lines
	for {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return fmt.Errorf("scan journal: %w", readErr)
		}
		if n := int64(len(raw)); n > 0 {
			if len(bytes.TrimSuffix(raw, []byte{'\n'})) > 0 {
				prev, last = last, &lineSpan{start: offset, end: offset + n, terminated: readErr == nil}
			}
			offset += n
		}
		if readErr != nil {
			break
		}
	}
	intact := func(l *lineSpan) (bool, error) {
		if !l.terminated {
			return false, nil
		}
		buf := make([]byte, l.end-l.start)
		if _, err := file.ReadAt(buf, l.start); err != nil {
			return false, err
		}
		var e JournalEntry
		return json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), &e) == nil, nil
	}
	if last != nil {
		ok, err := intact(last)
		if err != nil {
			return err
		}
		if !ok {
			if prev != nil {
				prevOK, err := intact(prev)
				if err != nil {
					return err
				}
				if !prevOK {
					return errors.New("multiple broken trailing lines (beyond a single torn append)")
				}
			}
			if err := file.Truncate(last.start); err != nil {
				return fmt.Errorf("truncate torn tail: %w", err)
			}
		}
	}
	_, err := file.Seek(0, io.SeekEnd)
	return err
}

// Append writes one entry and flushes it to the OS, so a crashed server
// process loses at most the entry being written — and a torn tail is
// exactly what ReadJournal's ErrJournalTruncated tolerance is for. The
// flush runs before the originating Checkin is acknowledged (write-ahead
// ordering). There is no per-entry fsync: durability is against process
// crashes, not power loss (see the Journal interface contract).
func (j *fileJournal) Append(ctx context.Context, e JournalEntry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(payload); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush journal entry: %w", err)
	}
	return nil
}

// Close flushes and closes the journal. Idempotent: later calls return
// nil (a retried durability flush re-runs Close after a failed
// checkpoint save).
func (j *fileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		return fmt.Errorf("store: flush journal: %w", err)
	}
	return j.file.Close()
}

// ReadJournal loads every entry from the journal file. A missing journal
// yields an empty slice. A torn or corrupt FINAL line — the expected
// artifact of a crash mid-append — yields the valid prefix plus
// ErrJournalTruncated instead of failing the whole replay; a corrupt line
// with valid entries after it is real corruption and stays a hard error.
func (f *FileStore) ReadJournal(ctx context.Context) ([]JournalEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := os.Open(filepath.Join(f.dir, "checkins.jsonl"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	defer file.Close()
	var out []JournalEntry
	var badLine int  // 1-based line number of the first undecodable line
	var badErr error // its decode error
	// bufio.Reader instead of a Scanner: journal lines carry full
	// gradients (classes·dim floats), so no fixed line-length cap may
	// stand between an Append that succeeded and the recovery that needs
	// to read it back.
	r := bufio.NewReaderSize(file, 64*1024)
	for line := 1; ; line++ {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return nil, fmt.Errorf("store: scan journal: %w", readErr)
		}
		terminated := readErr == nil
		raw = bytes.TrimSuffix(raw, []byte{'\n'})
		if len(raw) > 0 {
			// An unterminated final record is torn even when its JSON
			// happens to decode: the newline is what marks an Append (and
			// therefore an acknowledgment) complete, and the repair in
			// OpenJournal drops such a record by the same rule.
			var e JournalEntry
			decodeErr := json.Unmarshal(raw, &e)
			if decodeErr == nil && !terminated {
				decodeErr = errors.New("record not newline-terminated")
			}
			switch {
			case decodeErr != nil && badLine != 0:
				// Two undecodable lines: not a torn tail.
				return nil, fmt.Errorf("store: journal line %d: %w", badLine, badErr)
			case decodeErr != nil:
				badLine, badErr = line, decodeErr
			case badLine != 0:
				// A valid entry AFTER a bad line means mid-journal
				// corruption, not a crash-torn tail; replaying past it
				// would silently drop an acknowledged checkin.
				return nil, fmt.Errorf("store: journal line %d: %w", badLine, badErr)
			default:
				out = append(out, e)
			}
		}
		if readErr != nil { // io.EOF: past the (possibly unterminated) last line
			break
		}
	}
	if badLine != 0 {
		return out, fmt.Errorf("store: journal line %d: %v: %w", badLine, badErr, ErrJournalTruncated)
	}
	return out, nil
}

// FileRoot exposes a directory of per-task FileStores: each immediate
// subdirectory is one task's store, named by task ID — the layout
// cmd/crowdml-server's -state-dir produces.
type FileRoot struct {
	dir string
}

var _ Root = (*FileRoot)(nil)

// NewFileRoot creates (if necessary) and opens a root directory.
func NewFileRoot(dir string) (*FileRoot, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root dir: %w", err)
	}
	return &FileRoot{dir: dir}, nil
}

// Dir returns the root directory.
func (r *FileRoot) Dir() string { return r.dir }

// List returns the task IDs with a store subdirectory, sorted.
func (r *FileRoot) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list root: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Open returns the FileStore for one task, creating its directory if
// needed. The task ID must be a single clean path element — no
// separators or dot paths — so a config-supplied ID can never place a
// store outside the root.
func (r *FileRoot) Open(ctx context.Context, taskID string) (Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if taskID == "" || taskID == "." || taskID == ".." ||
		strings.ContainsAny(taskID, `/\`) {
		return nil, fmt.Errorf("store: task ID %q is not a valid store name", taskID)
	}
	return NewFileStore(filepath.Join(r.dir, taskID))
}
