package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// Journal segment naming. The journal is a sequence of JSONL segment
// files: journal-0000000001.jsonl, journal-0000000002.jsonl, … with the
// highest sequence number being the live (appended-to) segment and every
// lower one sealed. A pre-segmentation journal named checkins.jsonl is
// read as the oldest segment, so stores written by earlier versions
// restore unchanged; the first rotation seals it like any other segment.
const (
	segmentPrefix  = "journal-"
	segmentSuffix  = ".jsonl"
	segmentPattern = segmentPrefix + "%010d" + segmentSuffix
	legacyJournal  = "checkins.jsonl"
	lockFileName   = "LOCK"
)

// FileStore persists checkpoints and journals under a directory:
// checkpoint.json (atomic write-to-temp + rename) and a segmented
// journal-*.jsonl write-ahead log (append-only, flushed per entry).
//
// A store directory belongs to ONE live journal at a time: OpenJournal
// repairs (truncates) a crash-torn journal tail, so a second process
// opening the same directory while the first is appending could destroy
// a half-flushed live record. OpenJournal therefore takes an advisory
// flock on the directory's LOCK file, held until the journal is closed;
// a conflicting open fails with ErrStoreLocked instead of racing. (The
// kernel releases the lock when a crashed holder dies, so recovery is
// never blocked by a stale lock file.)
type FileStore struct {
	dir string
}

var _ Store = (*FileStore)(nil)

// NewFileStore creates (if necessary) and opens a store directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store directory.
func (f *FileStore) Dir() string { return f.dir }

// HasCheckpoint cheaply reports whether a checkpoint has been saved —
// an existence probe, without decoding the state (callers that need the
// contents use Load).
func (f *FileStore) HasCheckpoint(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, err := os.Stat(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (f *FileStore) checkpointPath() string {
	return filepath.Join(f.dir, "checkpoint.json")
}

// Save atomically writes a checkpoint of the given state.
func (f *FileStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if state == nil {
		return errors.New("store: nil state")
	}
	cp := Checkpoint{SavedAtUnixMillis: now.UnixMilli(), State: state}
	payload, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(f.dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, f.checkpointPath()); err != nil {
		return fmt.Errorf("store: publish checkpoint: %w", err)
	}
	// Sync the directory so the rename itself survives a machine crash
	// (the temp file's contents were already synced above). Best-effort
	// HERE only: a checkpoint whose rename is lost to power failure
	// costs a longer journal replay, never data — the journal covers
	// every acknowledged checkin regardless.
	_ = syncDir(f.dir)
	return nil
}

// syncDir fsyncs a directory, making file creates and renames inside it
// durable against machine crashes. Filesystems that refuse directory
// fsync (EINVAL) are tolerated — on those there is nothing stronger to
// offer; any other failure is reported so callers for whom the dirent's
// durability is load-bearing (Rotate under a fsyncing SyncPolicy) can
// treat it as fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// Load reads the most recent checkpoint. It returns ErrNoCheckpoint when
// none has been saved.
func (f *FileStore) Load(ctx context.Context) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := os.ReadFile(f.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if cp.State == nil {
		return nil, errors.New("store: checkpoint missing state")
	}
	return &cp, nil
}

// segmentSeq parses a segment file name, returning its sequence number.
// The legacy checkins.jsonl maps to sequence 0 (older than any numbered
// segment, which start at 1).
func segmentSeq(name string) (int, bool) {
	if name == legacyJournal {
		return 0, true
	}
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if digits == "" {
		return 0, false
	}
	seq := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	if seq < 1 {
		return 0, false
	}
	return seq, true
}

// Segments returns the journal's segments, oldest first, with their
// sealed-vs-live status: every segment except the newest is sealed (a
// rotation sealed it when it created its successor). The newest is the
// live segment — a pre-segmentation checkins.jsonl that no rotation has
// sealed yet counts as live too, which is why retention never touches
// it until the first rotation seals it. Empty when no journal exists
// yet. Exposed for auditing and operations tooling; reading one is
// plain JSONL.
func (f *FileStore) Segments(ctx context.Context) ([]SegmentInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := segmentSeq(e.Name()); ok {
			segs = append(segs, SegmentInfo{Name: e.Name(), Seq: seq, Sealed: true})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	if n := len(segs); n > 0 {
		segs[n-1].Sealed = false
	}
	return segs, nil
}

// fileJournal is the append-only segmented JSONL journal behind a
// FileStore. It is safe for concurrent use; a shutdown-path Close can
// race in-flight Appends and Rotates.
type fileJournal struct {
	dir string

	mu     sync.Mutex
	file   *os.File // live segment
	w      *bufio.Writer
	seq    int      // live segment's sequence number
	lock   *os.File // flock'd LOCK file, held until Close
	closed bool
}

// OpenJournal opens the journal for appending: it takes the store
// directory's advisory lock (ErrStoreLocked if a live journal already
// holds it), opens the newest segment — creating journal-0000000001.jsonl
// for a fresh store, or continuing a pre-segmentation checkins.jsonl —
// and repairs a crash-torn tail first, truncating back to the last
// decodable, newline-terminated record. The repair removes EXACTLY the
// tail a cursor classifies as ErrJournalTruncated (one trailing
// undecodable or unterminated line): such a record was never durable, so
// its checkin was never acknowledged, and appending after it without the
// repair would strand undecodable bytes mid-file and poison every later
// journal read. Anything worse — several bad trailing lines, or a valid
// entry after a bad line — is corruption no crash produces, and
// OpenJournal refuses to touch it.
func (f *FileStore) OpenJournal(ctx context.Context) (Journal, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(filepath.Join(f.dir, lockFileName))
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			releaseDirLock(lock)
		}
	}()
	segs, err := f.Segments(ctx)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf(segmentPattern, 1)
	if len(segs) > 0 {
		name = segs[len(segs)-1].Name
	}
	seq, _ := segmentSeq(name)
	file, err := os.OpenFile(filepath.Join(f.dir, name),
		os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	if err := repairTornTail(file); err != nil {
		file.Close()
		return nil, fmt.Errorf("store: repair journal tail: %w", err)
	}
	ok = true
	return &fileJournal{dir: f.dir, file: file, w: bufio.NewWriter(file), seq: seq, lock: lock}, nil
}

// repairTornTail truncates a single torn tail record — an undecodable
// final line, or an unterminated one (even a parseable unterminated
// record is dropped: its Append never returned, so its checkin was
// never acknowledged; a cursor classifies it as torn by the same
// rule). Two broken trailing lines is damage no single crash produces
// and is refused. Mid-file corruption (a bad line with valid entries
// after it) is not this function's business: it is left in place for
// the cursor to report as fatal.
//
// The scan finds line boundaries in one cheap forward pass without
// decoding; only the last one or two non-blank lines are JSON-decoded,
// so reopening a journal does not double restore's full-decode cost.
func repairTornTail(file *os.File) error {
	if _, err := file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(file, 64*1024)
	type lineSpan struct {
		start, end int64 // byte offsets; end includes the newline if any
		terminated bool
	}
	var offset int64
	var last, prev *lineSpan // the two most recent non-blank lines
	for {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return fmt.Errorf("scan journal: %w", readErr)
		}
		if n := int64(len(raw)); n > 0 {
			if len(bytes.TrimSuffix(raw, []byte{'\n'})) > 0 {
				prev, last = last, &lineSpan{start: offset, end: offset + n, terminated: readErr == nil}
			}
			offset += n
		}
		if readErr != nil {
			break
		}
	}
	intact := func(l *lineSpan) (bool, error) {
		if !l.terminated {
			return false, nil
		}
		buf := make([]byte, l.end-l.start)
		if _, err := file.ReadAt(buf, l.start); err != nil {
			return false, err
		}
		var e JournalEntry
		return json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), &e) == nil, nil
	}
	if last != nil {
		ok, err := intact(last)
		if err != nil {
			return err
		}
		if !ok {
			if prev != nil {
				prevOK, err := intact(prev)
				if err != nil {
					return err
				}
				if !prevOK {
					return errors.New("multiple broken trailing lines (beyond a single torn append)")
				}
			}
			if err := file.Truncate(last.start); err != nil {
				return fmt.Errorf("truncate torn tail: %w", err)
			}
		}
	}
	_, err := file.Seek(0, io.SeekEnd)
	return err
}

// Append writes one entry and flushes it to the OS, so a crashed server
// process loses at most the entry being written — and a torn tail is
// exactly what the cursor's ErrJournalTruncated tolerance is for. The
// flush runs before the originating Checkin is acknowledged (write-ahead
// ordering). There is no per-entry fsync: durability is against process
// crashes, not power loss, unless the caller follows up with Sync (the
// hub's SyncBatch policy fsyncs once per applied batch).
func (j *fileJournal) Append(ctx context.Context, e JournalEntry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("store: append to closed journal")
	}
	if _, err := j.w.Write(payload); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush journal entry: %w", err)
	}
	return nil
}

// Sync fsyncs the live segment, upgrading everything appended so far to
// power-loss durability.
func (j *fileJournal) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("store: sync on closed journal")
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush journal: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("store: sync journal: %w", err)
	}
	return nil
}

// Rotate seals the live segment — flushed, fsynced, closed, never
// written again — and starts appending to a fresh numbered segment. The
// new segment is created (and the directory synced) BEFORE the old file
// is closed, so a failure at any step leaves the journal appending
// where it was: rotation can be retried on the next checkpoint, and no
// failure path loses the append handle.
func (j *fileJournal) Rotate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("store: rotate on closed journal")
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush before rotate: %w", err)
	}
	// Seal durably: everything in the old segment reaches stable storage
	// before the rotation is visible. The checkpoint that triggered this
	// rotation was itself fsynced, so after a rotation the sealed chain +
	// checkpoint survive power loss regardless of SyncPolicy.
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("store: sync before rotate: %w", err)
	}
	next, err := os.OpenFile(filepath.Join(j.dir, fmt.Sprintf(segmentPattern, j.seq+1)),
		os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: create next segment: %w", err)
	}
	// The new segment's directory entry must be durable BEFORE appends
	// move into it: under a fsyncing SyncPolicy, Journal.Sync fsyncs
	// file contents only, so a dirent lost to power failure would take
	// every post-rotation "synced" entry with it. A failed directory
	// sync therefore fails the rotation (appends stay in the old, known-
	// durable segment, and the checkpointer retries next time) instead
	// of being quietly dropped.
	if err := syncDir(j.dir); err != nil {
		next.Close()
		return fmt.Errorf("store: sync dir for next segment: %w", err)
	}
	old := j.file
	j.file, j.w, j.seq = next, bufio.NewWriter(next), j.seq+1
	if err := old.Close(); err != nil {
		return fmt.Errorf("store: close sealed segment: %w", err)
	}
	return nil
}

// Close flushes and closes the journal, then releases the store
// directory's advisory lock. Idempotent: later calls return nil (a
// retried durability flush re-runs Close after a failed checkpoint
// save).
func (j *fileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	defer releaseDirLock(j.lock)
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		return fmt.Errorf("store: flush journal: %w", err)
	}
	return j.file.Close()
}

// OpenCursor opens the streaming journal read. Segment selection walks
// the chain newest-first probing only each segment's FIRST record: the
// walk stops at the first segment whose first entry is at or below
// afterIteration+1, because every earlier segment then holds only
// iterations the checkpoint already covers (journal iterations are
// monotone) — recovery cost tracks rotation cadence, not journal size.
// A segment whose first record cannot be probed (empty, or a fully torn
// live segment) cannot prove coverage, so the walk keeps going — erring
// toward streaming more, never less. Whole segments are then streamed
// oldest-first; core.Server.Replay skips leading covered entries.
func (f *FileStore) OpenCursor(ctx context.Context, afterIteration int) (JournalCursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	segs, err := f.Segments(ctx)
	if err != nil {
		return nil, err
	}
	start := 0
	if afterIteration > 0 {
		for i := len(segs) - 1; i >= 0; i-- {
			first, ok, err := f.probeFirstEntry(segs[i].Name)
			if err != nil {
				return nil, err
			}
			if ok && first.Iteration <= afterIteration+1 {
				start = i
				break
			}
		}
	}
	return &fileCursor{dir: f.dir, segs: segs[start:]}, nil
}

// probeFirstEntry decodes a segment's first non-blank record, reporting
// ok == false when there is none or it does not decode (an empty
// segment, or a live segment whose only record is torn — the cursor's
// full classification handles those; the probe only needs a lower
// bound it can trust).
func (f *FileStore) probeFirstEntry(name string) (JournalEntry, bool, error) {
	file, err := os.Open(filepath.Join(f.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return JournalEntry{}, false, nil // raced a concurrent prune
	}
	if err != nil {
		return JournalEntry{}, false, fmt.Errorf("store: open journal segment %s: %w", name, err)
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 64*1024)
	for {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return JournalEntry{}, false, fmt.Errorf("store: scan journal segment %s: %w", name, readErr)
		}
		terminated := readErr == nil
		raw = bytes.TrimSuffix(raw, []byte{'\n'})
		if len(raw) > 0 {
			var e JournalEntry
			if json.Unmarshal(raw, &e) == nil && terminated {
				return e, true, nil
			}
			return JournalEntry{}, false, nil
		}
		if readErr != nil {
			return JournalEntry{}, false, nil
		}
	}
}

// fileCursor streams journal segments oldest-first, line by line,
// holding one open file and one decoded entry at a time. The per-line
// classification is exactly the slice reader's old contract: a torn or
// corrupt FINAL line of the LIVE (newest) segment — the expected
// artifact of a crash mid-append — ends the stream with
// ErrJournalTruncated after every valid entry has been yielded; a bad
// line anywhere else (mid-segment, or in a sealed segment, which no
// crash can tear) is real corruption and a hard error.
type fileCursor struct {
	dir  string
	segs []SegmentInfo // remaining + current, oldest first
	idx  int           // next segment to open once file is nil

	file *os.File
	r    *bufio.Reader
	line int // 1-based within the current segment

	// badLine/badErr hold a suspected torn tail: one undecodable line
	// whose verdict (torn vs corruption) depends on what follows it.
	badLine int
	badErr  error

	err error // latched terminal state (io.EOF, ErrJournalTruncated, or a hard error)
}

var _ JournalCursor = (*fileCursor)(nil)

// fail latches a terminal error and returns it.
func (c *fileCursor) fail(err error) (JournalEntry, error) {
	if c.file != nil {
		c.file.Close()
		c.file = nil
	}
	c.err = err
	return JournalEntry{}, err
}

// Next returns the next journal entry, io.EOF at the clean end of the
// chain, or ErrJournalTruncated (wrapped with the segment context) in
// io.EOF's place when the live segment ends in a crash-torn record.
func (c *fileCursor) Next() (JournalEntry, error) {
	if c.err != nil {
		return JournalEntry{}, c.err
	}
	for {
		if c.file == nil {
			if c.idx >= len(c.segs) {
				return c.fail(io.EOF)
			}
			name := c.segs[c.idx].Name
			file, err := os.Open(filepath.Join(c.dir, name))
			if errors.Is(err, fs.ErrNotExist) {
				c.idx++ // raced a concurrent prune; nothing to read here
				continue
			}
			if err != nil {
				return c.fail(fmt.Errorf("store: open journal segment %s: %w", name, err))
			}
			c.file = file
			// bufio.Reader instead of a Scanner: journal lines carry full
			// gradients (classes·dim floats), so no fixed line-length cap
			// may stand between an Append that succeeded and the recovery
			// that needs to read it back.
			c.r = bufio.NewReaderSize(file, 64*1024)
			c.line = 0
			c.badLine, c.badErr = 0, nil
		}
		name := c.segs[c.idx].Name
		live := c.idx == len(c.segs)-1
		raw, readErr := c.r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return c.fail(fmt.Errorf("store: scan journal segment %s: %w", name, readErr))
		}
		terminated := readErr == nil
		c.line++
		raw = bytes.TrimSuffix(raw, []byte{'\n'})
		if len(raw) > 0 {
			// An unterminated final record is torn even when its JSON
			// happens to decode: the newline is what marks an Append (and
			// therefore an acknowledgment) complete, and the repair in
			// OpenJournal drops such a record by the same rule.
			var e JournalEntry
			decodeErr := json.Unmarshal(raw, &e)
			if decodeErr == nil && !terminated {
				decodeErr = errors.New("record not newline-terminated")
			}
			switch {
			case decodeErr != nil && c.badLine != 0:
				// Two undecodable lines: not a torn tail.
				return c.fail(fmt.Errorf("store: journal segment %s line %d: %w", name, c.badLine, c.badErr))
			case decodeErr != nil:
				c.badLine, c.badErr = c.line, decodeErr
			case c.badLine != 0:
				// A valid entry AFTER a bad line means mid-journal
				// corruption, not a crash-torn tail; replaying past it
				// would silently drop an acknowledged checkin.
				return c.fail(fmt.Errorf("store: journal segment %s line %d: %w", name, c.badLine, c.badErr))
			default:
				// A decodable entry is always newline-terminated (the
				// unterminated case was classified torn above), so the
				// reader is mid-file here; the EOF branch below handles
				// segment advance on a later call.
				return e, nil
			}
		}
		if readErr != nil { // io.EOF: past the (possibly unterminated) last line
			if c.badLine != 0 {
				if !live {
					// Sealed segments were flushed, fsynced and closed; no
					// crash tears them. A bad final line here is damage,
					// not a torn tail.
					return c.fail(fmt.Errorf("store: journal segment %s line %d: %v", name, c.badLine, c.badErr))
				}
				return c.fail(fmt.Errorf("store: journal segment %s line %d: %v: %w", name, c.badLine, c.badErr, ErrJournalTruncated))
			}
			c.file.Close()
			c.file = nil
			c.idx++
		}
	}
}

// Close releases the cursor's open segment file, if any.
func (c *fileCursor) Close() error {
	if c.file != nil {
		err := c.file.Close()
		c.file = nil
		if c.err == nil {
			c.err = errors.New("store: cursor closed")
		}
		return err
	}
	if c.err == nil {
		c.err = errors.New("store: cursor closed")
	}
	return nil
}

var _ SegmentRetainer = (*FileStore)(nil)

// PruneSegments implements automated retention: sealed segments whose
// last record's iteration is at or below coveredIteration are removed
// (archiveDir == "") or moved into archiveDir, oldest first, stopping
// at the first segment a checkpoint at coveredIteration does not fully
// cover. The live segment is never touched — including a legacy
// checkins.jsonl that no rotation has sealed yet, which stays
// retention-exempt until the first rotation seals it. Pruning
// oldest-first means an interruption at any point (crash mid-prune)
// leaves exactly the state of a smaller completed prune: a contiguous
// journal suffix, fully recoverable.
func (f *FileStore) PruneSegments(ctx context.Context, coveredIteration int, archiveDir string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	segs, err := f.Segments(ctx)
	if err != nil {
		return nil, err
	}
	if archiveDir != "" {
		if err := os.MkdirAll(archiveDir, 0o755); err != nil {
			return nil, fmt.Errorf("store: create archive dir: %w", err)
		}
	}
	var pruned []string
	for _, seg := range segs {
		if !seg.Sealed {
			break // the live segment (always last) is never pruned
		}
		last, empty, err := f.lastEntryOf(seg.Name)
		if err != nil {
			return pruned, err
		}
		// Journal iterations are monotone, so a sealed segment whose last
		// entry the checkpoint covers is covered in full; the first
		// uncovered segment ends the walk (everything after it is newer).
		if !empty && last.Iteration > coveredIteration {
			break
		}
		path := filepath.Join(f.dir, seg.Name)
		if archiveDir != "" {
			if err := moveFile(path, filepath.Join(archiveDir, seg.Name)); err != nil {
				return pruned, fmt.Errorf("store: archive segment %s: %w", seg.Name, err)
			}
		} else if err := os.Remove(path); err != nil {
			return pruned, fmt.Errorf("store: prune segment %s: %w", seg.Name, err)
		}
		pruned = append(pruned, seg.Name)
	}
	if len(pruned) > 0 {
		// Make the removals durable so a machine crash cannot resurrect a
		// pruned dirent. Best-effort: a resurrected segment only lengthens
		// the audit trail, it cannot affect recovery (its entries are all
		// covered by the checkpoint).
		_ = syncDir(f.dir)
	}
	return pruned, nil
}

// moveFile moves src to dst, preferring a plain rename and falling back
// to copy-then-remove when the two sit on different filesystems (EXDEV)
// — an archive directory on a separate audit volume is the natural
// deployment, and rename alone would fail every retention cycle there.
// The copy lands via a temp file + rename inside the destination
// directory, so a crash mid-copy never leaves a half-written file under
// the segment's name, and the source is removed only after the copy is
// fsynced — a crash between the two leaves a duplicate, never a loss.
//
// An EXISTING dst is never overwritten: archived segments are the audit
// trail, and a name collision means either a misconfiguration (two
// tasks sharing one archive directory, a store restored from backup
// re-issuing sequence numbers) — refused with an error — or the
// crash-duplicate this function's own copy path can leave, recognized
// by identical contents and resolved by just removing the source.
func moveFile(src, dst string) error {
	if _, err := os.Lstat(dst); err == nil {
		same, err := sameContents(src, dst)
		if err != nil {
			return err
		}
		if !same {
			return fmt.Errorf("archive destination %s already exists with different contents", dst)
		}
		return os.Remove(src) // duplicate from an interrupted earlier move
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	renameErr := os.Rename(src, dst)
	if renameErr == nil {
		return nil
	}
	if !errors.Is(renameErr, syscall.EXDEV) {
		// Only a cross-device rename earns the copy fallback; any other
		// failure (permissions, read-only volume) surfaces as itself so
		// the recorded retention error names the real cause. (Windows
		// reports cross-volume renames with its own error code, not
		// EXDEV — archiving across volumes there surfaces that error
		// rather than silently copying.)
		return renameErr
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after the successful rename
	if _, err := io.Copy(tmp, in); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		return err
	}
	// The destination dirent must be durable BEFORE the source unlink:
	// otherwise a machine crash could make the unlink durable while the
	// never-synced archive dirent is not, losing the segment from both
	// directories. (The plain-rename path above has no such window —
	// rename is atomic, so the segment is always in exactly one place.)
	if err := syncDir(filepath.Dir(dst)); err != nil {
		return err
	}
	return os.Remove(src)
}

// sameContents streams two files side by side, reporting whether their
// bytes are identical — O(one buffer) memory, like every other read in
// this package.
func sameContents(a, b string) (bool, error) {
	fa, err := os.Open(a)
	if err != nil {
		return false, err
	}
	defer fa.Close()
	fb, err := os.Open(b)
	if err != nil {
		return false, err
	}
	defer fb.Close()
	bufA, bufB := make([]byte, 64*1024), make([]byte, 64*1024)
	for {
		na, errA := io.ReadFull(fa, bufA)
		nb, errB := io.ReadFull(fb, bufB)
		if na != nb || !bytes.Equal(bufA[:na], bufB[:nb]) {
			return false, nil
		}
		endA := errors.Is(errA, io.EOF) || errors.Is(errA, io.ErrUnexpectedEOF)
		endB := errors.Is(errB, io.EOF) || errors.Is(errB, io.ErrUnexpectedEOF)
		switch {
		case errA == nil && errB == nil:
			continue
		case endA && endB:
			return true, nil
		case endA != endB:
			return false, nil
		default:
			if errA != nil && !endA {
				return false, errA
			}
			return false, errB
		}
	}
}

// lastEntryOf scans one sealed segment for its final record in a single
// forward pass, decoding only that record — O(one line) memory. An
// undecodable final line in a sealed segment is damage (sealing fsyncs
// the file), reported as an error rather than guessed around.
func (f *FileStore) lastEntryOf(name string) (last JournalEntry, empty bool, err error) {
	file, err := os.Open(filepath.Join(f.dir, name))
	if err != nil {
		return JournalEntry{}, false, fmt.Errorf("store: open journal segment %s: %w", name, err)
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 64*1024)
	var lastRaw []byte
	for {
		raw, readErr := r.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return JournalEntry{}, false, fmt.Errorf("store: scan journal segment %s: %w", name, readErr)
		}
		if line := bytes.TrimSuffix(raw, []byte{'\n'}); len(line) > 0 {
			lastRaw = append(lastRaw[:0], line...)
		}
		if readErr != nil {
			break
		}
	}
	if len(lastRaw) == 0 {
		return JournalEntry{}, true, nil
	}
	var e JournalEntry
	if err := json.Unmarshal(lastRaw, &e); err != nil {
		return JournalEntry{}, false, fmt.Errorf("store: journal segment %s final record: %w", name, err)
	}
	return e, false, nil
}

// FileRoot exposes a directory of per-task FileStores: each immediate
// subdirectory is one task's store, named by task ID — the layout
// cmd/crowdml-server's -state-dir produces.
type FileRoot struct {
	dir string
}

var _ Root = (*FileRoot)(nil)

// NewFileRoot creates (if necessary) and opens a root directory.
func NewFileRoot(dir string) (*FileRoot, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root dir: %w", err)
	}
	return &FileRoot{dir: dir}, nil
}

// Dir returns the root directory.
func (r *FileRoot) Dir() string { return r.dir }

// List returns the task IDs with a store subdirectory, sorted.
func (r *FileRoot) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list root: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Open returns the FileStore for one task, creating its directory if
// needed. The task ID must be a single clean path element — no
// separators or dot paths — so a config-supplied ID can never place a
// store outside the root.
func (r *FileRoot) Open(ctx context.Context, taskID string) (Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if taskID == "" || taskID == "." || taskID == ".." ||
		strings.ContainsAny(taskID, `/\`) {
		return nil, fmt.Errorf("store: task ID %q is not a valid store name", taskID)
	}
	return NewFileStore(filepath.Join(r.dir, taskID))
}
