package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// MemStore is an in-memory Store for tests, benchmarks and embedded use.
// It provides the same semantics as FileStore — atomic checkpoint
// replacement, a segmented append-only journal that survives journal
// reopens and rotations — without touching the filesystem, so a "crash"
// is simulated by dropping the server while keeping the MemStore. For
// the same reason it does NOT enforce FileStore's one-live-journal lock:
// reopening after a simulated crash is the point.
type MemStore struct {
	mu       sync.Mutex
	cp       *Checkpoint
	segments [][]JournalEntry // oldest first; the last is the live segment
	// seqBase is segments[0]'s chain sequence number; it advances as
	// retention prunes leading segments, so archived segment names stay
	// aligned with the positions FileStore would have used.
	seqBase int
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{segments: make([][]JournalEntry, 1), seqBase: 1}
}

// Save replaces the checkpoint with a deep copy of the given state, so
// later mutations of the live server never reach back into the snapshot.
func (m *MemStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if state == nil {
		return errors.New("store: nil state")
	}
	cp, err := deepCopyCheckpoint(&Checkpoint{SavedAtUnixMillis: now.UnixMilli(), State: state})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.cp = cp
	m.mu.Unlock()
	return nil
}

// Load returns a deep copy of the most recent checkpoint, or
// ErrNoCheckpoint.
func (m *MemStore) Load(ctx context.Context) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	cp := m.cp
	m.mu.Unlock()
	if cp == nil {
		return nil, ErrNoCheckpoint
	}
	return deepCopyCheckpoint(cp)
}

// deepCopyCheckpoint clones a checkpoint through its JSON form — the
// same round-trip a FileStore checkpoint takes, so the two backends
// cannot drift in what survives persistence.
func deepCopyCheckpoint(cp *Checkpoint) (*Checkpoint, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("store: encode checkpoint: %w", err)
	}
	var out Checkpoint
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if out.State == nil {
		return nil, errors.New("store: checkpoint missing state")
	}
	return &out, nil
}

// memJournal appends into its MemStore's shared segment log; entries
// survive Close and journal reopens, like files on disk.
type memJournal struct {
	m *MemStore
}

// OpenJournal opens the store's journal for appending.
func (m *MemStore) OpenJournal(ctx context.Context) (Journal, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &memJournal{m: m}, nil
}

// Append records a deep copy of the entry in the live segment (the
// Journal contract lets callers reuse e's slices after Append returns).
func (j *memJournal) Append(ctx context.Context, e JournalEntry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.Grad != nil {
		e.Grad = append([]float64(nil), e.Grad...)
	}
	if e.LabelCounts != nil {
		e.LabelCounts = append([]int(nil), e.LabelCounts...)
	}
	j.m.mu.Lock()
	live := len(j.m.segments) - 1
	j.m.segments[live] = append(j.m.segments[live], e)
	j.m.mu.Unlock()
	return nil
}

// Rotate seals the live segment and begins a fresh one, mirroring
// FileStore's segment semantics so the conformance suite (and the hub's
// bounded-recovery behavior) holds on both backends.
func (j *memJournal) Rotate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j.m.mu.Lock()
	j.m.segments = append(j.m.segments, nil)
	j.m.mu.Unlock()
	return nil
}

// Sync is a no-op: every Append is already "durable" in memory.
func (j *memJournal) Sync(ctx context.Context) error { return ctx.Err() }

// Close is a no-op: every Append is already "durable" in memory.
func (j *memJournal) Close() error { return nil }

// SegmentCount reports the number of journal segments (sealed + live) —
// the quick probe tests use for rotation behavior; Segments is the full
// FileStore-parity listing.
func (m *MemStore) SegmentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.segments)
}

// Segments mirrors FileStore.Segments: the segment chain oldest first,
// with synthesized FileStore-style names (aligned with what PruneSegments
// archives them as) and sealed-vs-live status.
func (m *MemStore) Segments(ctx context.Context) ([]SegmentInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	segs := make([]SegmentInfo, len(m.segments))
	for i := range m.segments {
		seq := m.seqBase + i
		segs[i] = SegmentInfo{
			Name:   fmt.Sprintf(segmentPattern, seq),
			Seq:    seq,
			Sealed: i < len(m.segments)-1,
		}
	}
	return segs, nil
}

// OpenCursor mirrors FileStore's bounded streaming read: the starting
// segment is found by a newest-first walk over each segment's first
// entry, and the cursor then streams whole segments oldest-first,
// deep-copying one entry per Next — the same O(one entry) residency
// contract as the file backend. The cursor holds a point-in-time
// snapshot of the segment chain: appends, rotations and prunes racing
// the scan never disturb it.
func (m *MemStore) OpenCursor(ctx context.Context, afterIteration int) (JournalCursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	// Copy the outer slice only: the inner segment slices are append-only
	// (a racing Append may grow the live segment's backing array, but the
	// snapshot's header pins the entries visible at open time).
	segs := make([][]JournalEntry, len(m.segments))
	copy(segs, m.segments)
	m.mu.Unlock()
	start := 0
	if afterIteration > 0 {
		for i := len(segs) - 1; i >= 0; i-- {
			if len(segs[i]) > 0 && segs[i][0].Iteration <= afterIteration+1 {
				start = i
				break
			}
		}
	}
	return &memCursor{segs: segs[start:]}, nil
}

// memCursor iterates a snapshot of the segment chain. Its terminal
// states mirror fileCursor's exactly — io.EOF latched at the drained
// end, a "cursor closed" error latched by a mid-stream Close — so a
// use-after-close bug fails the same way on both backends instead of
// reading as a clean-but-truncated stream here.
type memCursor struct {
	segs [][]JournalEntry
	i, j int
	err  error // latched terminal state
}

var _ JournalCursor = (*memCursor)(nil)

func (c *memCursor) Next() (JournalEntry, error) {
	if c.err != nil {
		return JournalEntry{}, c.err
	}
	for c.i < len(c.segs) {
		if c.j < len(c.segs[c.i]) {
			e := c.segs[c.i][c.j]
			c.j++
			if e.Grad != nil {
				e.Grad = append([]float64(nil), e.Grad...)
			}
			if e.LabelCounts != nil {
				e.LabelCounts = append([]int(nil), e.LabelCounts...)
			}
			return e, nil
		}
		c.i, c.j = c.i+1, 0
	}
	c.err = io.EOF
	return JournalEntry{}, io.EOF
}

func (c *memCursor) Close() error {
	if c.err == nil {
		c.err = errors.New("store: cursor closed")
	}
	return nil
}

var _ SegmentRetainer = (*MemStore)(nil)

// PruneSegments mirrors FileStore's retention semantics: sealed
// segments (every segment but the last) whose last entry is at or below
// coveredIteration are dropped oldest-first, stopping at the first
// uncovered one; the live segment is never touched. With archiveDir
// set, each pruned segment is first written out as a JSONL file named
// exactly as FileStore would have named it (journal-NNNNNNNNNN.jsonl),
// so the archived audit trail is the same artifact on both backends.
func (m *MemStore) PruneSegments(ctx context.Context, coveredIteration int, archiveDir string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if archiveDir != "" {
		if err := os.MkdirAll(archiveDir, 0o755); err != nil {
			return nil, fmt.Errorf("store: create archive dir: %w", err)
		}
	}
	// The whole walk holds the store lock — including the archive file
	// writes — so a concurrent PruneSegments (or a racing Rotate) can
	// never re-check a segment this call is mid-way through removing.
	// MemStore is the test/embedded backend; briefly blocking an Append
	// behind an archive write is a fair price for the check-then-remove
	// atomicity.
	m.mu.Lock()
	defer m.mu.Unlock()
	var pruned []string
	for len(m.segments) > 1 {
		seg, seq := m.segments[0], m.seqBase
		if len(seg) > 0 && seg[len(seg)-1].Iteration > coveredIteration {
			break
		}
		name := fmt.Sprintf(segmentPattern, seq)
		if archiveDir != "" {
			if err := writeSegmentFile(filepath.Join(archiveDir, name), seg); err != nil {
				return pruned, err
			}
		}
		m.segments = m.segments[1:]
		m.seqBase++
		pruned = append(pruned, name)
	}
	return pruned, nil
}

// writeSegmentFile renders one archived segment as JSONL. O_EXCL:
// archived segments are the audit trail, and a name collision (two
// tasks sharing one archive directory) must surface as an error, never
// silently truncate earlier history.
func writeSegmentFile(path string, seg []JournalEntry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: archive segment: %w", err)
	}
	for i := range seg {
		payload, err := json.Marshal(&seg[i])
		if err != nil {
			f.Close()
			return fmt.Errorf("store: encode archived entry: %w", err)
		}
		if _, err := f.Write(append(payload, '\n')); err != nil {
			f.Close()
			return fmt.Errorf("store: write archived segment: %w", err)
		}
	}
	return f.Close()
}

// MemRoot is an in-memory Root: a process-lifetime namespace of
// MemStores. Opening the same task ID twice returns the same store, so a
// hub "restarted" against the same MemRoot sees the previous instance's
// state — the crash-recovery tests are built on exactly that.
type MemRoot struct {
	mu     sync.Mutex
	stores map[string]*MemStore
}

var _ Root = (*MemRoot)(nil)

// NewMemRoot returns an empty in-memory root.
func NewMemRoot() *MemRoot {
	return &MemRoot{stores: make(map[string]*MemStore)}
}

// List returns the task IDs opened so far, sorted.
func (r *MemRoot) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.stores))
	for id := range r.stores {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Open returns the task's MemStore, creating it on first open.
func (r *MemRoot) Open(ctx context.Context, taskID string) (Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stores[taskID]
	if !ok {
		st = NewMemStore()
		r.stores[taskID] = st
	}
	return st, nil
}
