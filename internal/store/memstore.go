package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// MemStore is an in-memory Store for tests, benchmarks and embedded use.
// It provides the same semantics as FileStore — atomic checkpoint
// replacement, a segmented append-only journal that survives journal
// reopens and rotations — without touching the filesystem, so a "crash"
// is simulated by dropping the server while keeping the MemStore. For
// the same reason it does NOT enforce FileStore's one-live-journal lock:
// reopening after a simulated crash is the point.
type MemStore struct {
	mu       sync.Mutex
	cp       *Checkpoint
	segments [][]JournalEntry // oldest first; the last is the live segment
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{segments: make([][]JournalEntry, 1)}
}

// Save replaces the checkpoint with a deep copy of the given state, so
// later mutations of the live server never reach back into the snapshot.
func (m *MemStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if state == nil {
		return errors.New("store: nil state")
	}
	cp, err := deepCopyCheckpoint(&Checkpoint{SavedAtUnixMillis: now.UnixMilli(), State: state})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.cp = cp
	m.mu.Unlock()
	return nil
}

// Load returns a deep copy of the most recent checkpoint, or
// ErrNoCheckpoint.
func (m *MemStore) Load(ctx context.Context) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	cp := m.cp
	m.mu.Unlock()
	if cp == nil {
		return nil, ErrNoCheckpoint
	}
	return deepCopyCheckpoint(cp)
}

// deepCopyCheckpoint clones a checkpoint through its JSON form — the
// same round-trip a FileStore checkpoint takes, so the two backends
// cannot drift in what survives persistence.
func deepCopyCheckpoint(cp *Checkpoint) (*Checkpoint, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("store: encode checkpoint: %w", err)
	}
	var out Checkpoint
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if out.State == nil {
		return nil, errors.New("store: checkpoint missing state")
	}
	return &out, nil
}

// memJournal appends into its MemStore's shared segment log; entries
// survive Close and journal reopens, like files on disk.
type memJournal struct {
	m *MemStore
}

// OpenJournal opens the store's journal for appending.
func (m *MemStore) OpenJournal(ctx context.Context) (Journal, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &memJournal{m: m}, nil
}

// Append records a deep copy of the entry in the live segment (the
// Journal contract lets callers reuse e's slices after Append returns).
func (j *memJournal) Append(ctx context.Context, e JournalEntry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.Grad != nil {
		e.Grad = append([]float64(nil), e.Grad...)
	}
	if e.LabelCounts != nil {
		e.LabelCounts = append([]int(nil), e.LabelCounts...)
	}
	j.m.mu.Lock()
	live := len(j.m.segments) - 1
	j.m.segments[live] = append(j.m.segments[live], e)
	j.m.mu.Unlock()
	return nil
}

// Rotate seals the live segment and begins a fresh one, mirroring
// FileStore's segment semantics so the conformance suite (and the hub's
// bounded-recovery behavior) holds on both backends.
func (j *memJournal) Rotate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j.m.mu.Lock()
	j.m.segments = append(j.m.segments, nil)
	j.m.mu.Unlock()
	return nil
}

// Sync is a no-op: every Append is already "durable" in memory.
func (j *memJournal) Sync(ctx context.Context) error { return ctx.Err() }

// Close is a no-op: every Append is already "durable" in memory.
func (j *memJournal) Close() error { return nil }

// SegmentCount reports the number of journal segments (sealed + live) —
// the in-memory analogue of FileStore.Segments, for tests asserting
// rotation behavior.
func (m *MemStore) SegmentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.segments)
}

// ReadJournal returns a copy of every appended entry across every
// segment, in order.
func (m *MemStore) ReadJournal(ctx context.Context) ([]JournalEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []JournalEntry
	for _, seg := range m.segments {
		out = append(out, copyEntries(seg)...)
	}
	return out, nil
}

// ReadJournalTail mirrors FileStore's bounded recovery read: segments
// are scanned newest-first and prepended until one starts at or below
// afterIteration+1.
func (m *MemStore) ReadJournalTail(ctx context.Context, afterIteration int) ([]JournalEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []JournalEntry
	for i := len(m.segments) - 1; i >= 0; i-- {
		seg := m.segments[i]
		out = append(copyEntries(seg), out...)
		if len(seg) > 0 && seg[0].Iteration <= afterIteration+1 {
			break
		}
	}
	return out, nil
}

func copyEntries(seg []JournalEntry) []JournalEntry {
	if len(seg) == 0 {
		return nil
	}
	out := make([]JournalEntry, len(seg))
	copy(out, seg)
	for i := range out {
		if out[i].Grad != nil {
			out[i].Grad = append([]float64(nil), out[i].Grad...)
		}
		if out[i].LabelCounts != nil {
			out[i].LabelCounts = append([]int(nil), out[i].LabelCounts...)
		}
	}
	return out
}

// MemRoot is an in-memory Root: a process-lifetime namespace of
// MemStores. Opening the same task ID twice returns the same store, so a
// hub "restarted" against the same MemRoot sees the previous instance's
// state — the crash-recovery tests are built on exactly that.
type MemRoot struct {
	mu     sync.Mutex
	stores map[string]*MemStore
}

var _ Root = (*MemRoot)(nil)

// NewMemRoot returns an empty in-memory root.
func NewMemRoot() *MemRoot {
	return &MemRoot{stores: make(map[string]*MemStore)}
}

// List returns the task IDs opened so far, sorted.
func (r *MemRoot) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.stores))
	for id := range r.stores {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Open returns the task's MemStore, creating it on first open.
func (r *MemRoot) Open(ctx context.Context, taskID string) (Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stores[taskID]
	if !ok {
		st = NewMemStore()
		r.stores[taskID] = st
	}
	return st, nil
}
