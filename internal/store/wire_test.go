package store

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func feedEntries(t *testing.T, n int) []JournalEntry {
	t.Helper()
	out := make([]JournalEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, JournalEntry{
			DeviceID:    "dev",
			Iteration:   i,
			NumSamples:  2 * i,
			ErrCount:    i % 3,
			Grad:        []float64{float64(i), -float64(i)},
			LabelCounts: []int{i, 0},
			Version:     i - 1,
		})
	}
	return out
}

func TestFeedRoundTrip(t *testing.T) {
	entries := feedEntries(t, 5)
	var buf bytes.Buffer
	fw := NewFeedWriter(&buf)
	for _, e := range entries {
		if err := fw.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry: %v", err)
		}
	}
	if err := fw.WriteEOS(42); err != nil {
		t.Fatalf("WriteEOS: %v", err)
	}

	fr := NewFeedReader(&buf)
	for i, want := range entries {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if got.Iteration != want.Iteration || got.DeviceID != want.DeviceID ||
			len(got.Grad) != len(want.Grad) || got.Grad[0] != want.Grad[0] {
			t.Fatalf("entry %d mismatch: got %+v want %+v", i, got, want)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at EOS, got %v", err)
	}
	if fr.LeaderIteration() != 42 {
		t.Fatalf("LeaderIteration = %d, want 42", fr.LeaderIteration())
	}
	// Exhausted readers keep returning the same error.
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF again, got %v", err)
	}
}

func TestFeedInterrupted(t *testing.T) {
	entries := feedEntries(t, 3)
	var buf bytes.Buffer
	fw := NewFeedWriter(&buf)
	for _, e := range entries {
		if err := fw.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry: %v", err)
		}
	}
	// No EOS frame, and the last line torn mid-object — a cut connection.
	raw := buf.String()
	cut := raw[:len(raw)-10]

	fr := NewFeedReader(strings.NewReader(cut))
	n := 0
	for {
		_, err := fr.Next()
		if err != nil {
			if !errors.Is(err, ErrFeedInterrupted) {
				t.Fatalf("want ErrFeedInterrupted, got %v", err)
			}
			break
		}
		n++
	}
	if n != len(entries)-1 {
		t.Fatalf("yielded %d intact entries before the cut, want %d", n, len(entries)-1)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrFeedInterrupted) {
		t.Fatalf("exhausted reader should repeat ErrFeedInterrupted, got %v", err)
	}
}

func TestFeedEmptyStreamInterrupted(t *testing.T) {
	fr := NewFeedReader(strings.NewReader(""))
	if _, err := fr.Next(); !errors.Is(err, ErrFeedInterrupted) {
		t.Fatalf("empty stream: want ErrFeedInterrupted, got %v", err)
	}
}

func TestFeedEOSOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := NewFeedWriter(&buf).WriteEOS(7); err != nil {
		t.Fatalf("WriteEOS: %v", err)
	}
	fr := NewFeedReader(&buf)
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if fr.LeaderIteration() != 7 {
		t.Fatalf("LeaderIteration = %d, want 7", fr.LeaderIteration())
	}
}
