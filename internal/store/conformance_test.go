package store

import (
	"context"
	"errors"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
)

// readJournal and readJournalTail are the TEST-ONLY slice wrappers over
// the streaming cursor: they drain OpenCursor into memory so assertions
// can index entries. Production code never materializes the journal —
// bounding audit and restore memory is the point of the cursor API —
// which is why these helpers live here and not in the package.
func readJournal(st Store) ([]JournalEntry, error) { return readJournalTail(st, 0) }

func readJournalTail(st Store, afterIteration int) ([]JournalEntry, error) {
	cur, err := st.OpenCursor(ctx, afterIteration)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []JournalEntry
	for {
		e, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			// ErrJournalTruncated keeps the old slice-API shape: the valid
			// prefix alongside the sentinel.
			return out, err
		}
		out = append(out, e)
	}
}

// TestStoreConformance runs every shipped Store implementation through
// one shared suite, so FileStore and MemStore cannot drift in the
// semantics recovery depends on: atomic checkpoint replacement,
// checkpoint isolation from later state mutation, and an append-only
// journal whose entries survive journal reopens and caller slice reuse.
func TestStoreConformance(t *testing.T) {
	impls := map[string]func(t *testing.T) Store{
		"FileStore": func(t *testing.T) Store {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"MemStore": func(t *testing.T) Store { return NewMemStore() },
	}
	suite := map[string]func(t *testing.T, st Store){
		"LoadWithoutCheckpoint":  testLoadWithoutCheckpoint,
		"SaveLoadRoundTrip":      testSaveLoadRoundTrip,
		"SaveReplacesCheckpoint": testSaveReplacesCheckpoint,
		"SaveNilState":           testSaveNilState,
		"CheckpointIsolation":    testCheckpointIsolation,
		"JournalRoundTrip":       testJournalRoundTrip,
		"JournalSliceReuse":      testJournalSliceReuse,
		"JournalAcrossReopens":   testJournalAcrossReopens,
		"JournalRotation":        testJournalRotation,
		"JournalTailBounded":     testJournalTailBounded,
		"JournalSync":            testJournalSync,
		"CursorMissingJournal":   testCursorMissingJournal,
		"CursorUseAfterClose":    testCursorUseAfterClose,
		"CancelledContext":       testCancelledContext,
		"RetentionPruneCovered":  testRetentionPruneCovered,
		"RetentionNeverLive":     testRetentionNeverLive,
		"RetentionArchive":       testRetentionArchive,
		"CursorRacesPrune":       testCursorRacesPrune,
	}
	for implName, mk := range impls {
		t.Run(implName, func(t *testing.T) {
			for name, fn := range suite {
				t.Run(name, func(t *testing.T) { fn(t, mk(t)) })
			}
		})
	}
}

func testLoadWithoutCheckpoint(t *testing.T, st Store) {
	if _, err := st.Load(ctx); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("error = %v, want ErrNoCheckpoint", err)
	}
}

func testSaveLoadRoundTrip(t *testing.T, st Store) {
	srv := newServerT(t)
	token, _ := srv.RegisterDevice(ctx, "d1")
	req := &core.CheckinRequest{
		Grad: []float64{1, 2, 3, 4, 5, 6}, NumSamples: 3, ErrCount: 1,
		LabelCounts: []int{1, 1, 1},
	}
	if err := srv.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 7, 29, 10, 0, 0, 0, time.UTC)
	if err := st.Save(ctx, srv.ExportState(), now); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cp, err := st.Load(ctx)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if cp.SavedAtUnixMillis != now.UnixMilli() {
		t.Errorf("timestamp %d, want %d", cp.SavedAtUnixMillis, now.UnixMilli())
	}
	restored := newServerT(t)
	if err := restored.ImportState(cp.State); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if restored.Iteration() != 1 {
		t.Errorf("restored iteration = %d, want 1", restored.Iteration())
	}
	if est, ok := restored.ErrEstimate(); !ok || est != 1.0/3 {
		t.Errorf("restored estimate = %v ok=%v", est, ok)
	}
}

func testSaveReplacesCheckpoint(t *testing.T, st Store) {
	srv := newServerT(t)
	if err := st.Save(ctx, srv.ExportState(), time.UnixMilli(1000)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(ctx, srv.ExportState(), time.UnixMilli(2000)); err != nil {
		t.Fatal(err)
	}
	cp, err := st.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.SavedAtUnixMillis != 2000 {
		t.Errorf("Load returned checkpoint at %d, want the latest (2000)", cp.SavedAtUnixMillis)
	}
}

func testSaveNilState(t *testing.T, st Store) {
	if err := st.Save(ctx, nil, time.Now()); err == nil {
		t.Error("nil state should be rejected")
	}
}

// testCheckpointIsolation: mutating the live state after Save must not
// reach back into the persisted checkpoint (and mutating a loaded
// checkpoint must not corrupt the store).
func testCheckpointIsolation(t *testing.T, st Store) {
	srv := newServerT(t)
	state := srv.ExportState()
	if err := st.Save(ctx, state, time.Now()); err != nil {
		t.Fatal(err)
	}
	state.Iteration = 999
	state.Params[0] = 123.456
	cp, err := st.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State.Iteration == 999 || cp.State.Params[0] == 123.456 {
		t.Error("checkpoint aliases the saved state's memory")
	}
	cp.State.Iteration = 777
	cp2, err := st.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.State.Iteration == 777 {
		t.Error("loaded checkpoint aliases the store's memory")
	}
}

func testJournalRoundTrip(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := j.Append(ctx, JournalEntry{
			AtUnixMillis: int64(1000 + i),
			DeviceID:     "d1",
			Iteration:    i + 1,
			NumSamples:   20,
			ErrCount:     i,
			GradNorm1:    float64(i) * 0.5,
			Grad:         []float64{float64(i), 1, 2, 3, 4, 5},
			LabelCounts:  []int{i, 20 - i, 0},
			Version:      i,
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d entries, want 5", len(entries))
	}
	want := JournalEntry{
		AtUnixMillis: 1003, DeviceID: "d1", Iteration: 4, NumSamples: 20,
		ErrCount: 3, GradNorm1: 1.5,
		Grad: []float64{3, 1, 2, 3, 4, 5}, LabelCounts: []int{3, 17, 0}, Version: 3,
	}
	if !reflect.DeepEqual(entries[3], want) {
		t.Errorf("entry 3 = %+v, want %+v", entries[3], want)
	}
	if !entries[3].Replayable() {
		t.Error("entry with a gradient must report Replayable")
	}
}

// testJournalSliceReuse: the Journal contract says Append must not
// retain e's slices — callers (the hub's hook hands over the device's
// request buffers) may reuse them immediately after.
func testJournalSliceReuse(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	grad := []float64{1, 2, 3}
	counts := []int{4, 5}
	if err := j.Append(ctx, JournalEntry{Iteration: 1, Grad: grad, LabelCounts: counts}); err != nil {
		t.Fatal(err)
	}
	grad[0], counts[0] = -99, -99
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Grad[0] == -99 || entries[0].LabelCounts[0] == -99 {
		t.Error("Append retained the caller's slices")
	}
}

func testJournalAcrossReopens(t *testing.T, st Store) {
	for session := 0; session < 2; session++ {
		j, err := st.OpenJournal(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(ctx, JournalEntry{Iteration: session}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := readJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("%d entries after two sessions, want 2", len(entries))
	}
}

// appendIters appends one minimal replayable entry per iteration in
// [from, from+n).
func appendIters(t *testing.T, j Journal, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		err := j.Append(ctx, JournalEntry{
			DeviceID: "d1", Iteration: i, NumSamples: 1,
			Grad: []float64{float64(i)}, LabelCounts: []int{1},
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// testJournalRotation: entries written across rotations stay one
// ordered log (the audit trail), both within a journal session and
// across reopens.
func testJournalRotation(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 3)
	if err := j.Rotate(ctx); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendIters(t, j, 4, 2)
	if err := j.Rotate(ctx); err != nil {
		t.Fatalf("second Rotate: %v", err)
	}
	appendIters(t, j, 6, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the live segment continues; sealed segments are untouched.
	j2, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j2, 7, 1)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(st)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if len(entries) != 7 {
		t.Fatalf("%d entries across segments, want 7", len(entries))
	}
	for i := range entries {
		if entries[i].Iteration != i+1 {
			t.Errorf("entry %d has iteration %d, want %d", i, entries[i].Iteration, i+1)
		}
	}
}

// testJournalTailBounded: a cursor opened after afterIteration must
// stream every entry past it without touching segments the checkpoint
// fully covers, and OpenCursor(ctx, 0) must stream the whole journal.
func testJournalTailBounded(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 4) // sealed below
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 5, 2) // sealed below
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 7, 3) // the live tail
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A checkpoint at iteration 6 covers both sealed segments: the tail
	// read must hand back exactly the live segment.
	tail, err := readJournalTail(st, 6)
	if err != nil {
		t.Fatalf("readJournalTail: %v", err)
	}
	if len(tail) != 3 || tail[0].Iteration != 7 {
		t.Fatalf("tail after 6 = %d entries starting at %d, want 3 starting at 7",
			len(tail), tail[0].Iteration)
	}
	// A checkpoint mid-segment (iteration 5) needs the second sealed
	// segment too; whole segments come back and Replay skips entry 5.
	tail, err = readJournalTail(st, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 5 || tail[0].Iteration != 5 {
		t.Fatalf("tail after 5 = %d entries starting at %d, want 5 starting at 5",
			len(tail), tail[0].Iteration)
	}
	// No checkpoint: the tail read IS the full read.
	all, err := readJournalTail(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("tail after 0 = %d entries, want all 9", len(all))
	}
}

// testJournalSync: Sync succeeds and loses nothing (the power-loss
// upgrade itself is not observable in-process; the conformance point is
// that a group-commit caller can rely on the call).
func testJournalSync(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 2)
	if err := j.Sync(ctx); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	appendIters(t, j, 3, 1)
	if err := j.Sync(ctx); err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(st)
	if err != nil || len(entries) != 3 {
		t.Fatalf("after syncs: %d entries err=%v, want 3/nil", len(entries), err)
	}
}

// testCursorMissingJournal: a store with no journal yields a cursor
// whose first Next is a clean io.EOF — first boot and restart share the
// restore code path.
func testCursorMissingJournal(t *testing.T, st Store) {
	cur, err := st.OpenCursor(ctx, 0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	defer cur.Close()
	if _, err := cur.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next on a missing journal = %v, want io.EOF", err)
	}
}

func testCancelledContext(t *testing.T, st Store) {
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	srv := newServerT(t)
	if err := st.Save(cancelled, srv.ExportState(), time.Now()); !errors.Is(err, context.Canceled) {
		t.Errorf("Save error = %v, want context.Canceled", err)
	}
	if _, err := st.Load(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("Load error = %v, want context.Canceled", err)
	}
	if _, err := st.OpenJournal(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("OpenJournal error = %v, want context.Canceled", err)
	}
	if _, err := st.OpenCursor(cancelled, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("OpenCursor error = %v, want context.Canceled", err)
	}
}

// testCursorUseAfterClose: a cursor closed mid-stream must ERROR on
// later Nexts (not feign a clean io.EOF end — a use-after-close bug
// would otherwise read as a truncated-but-valid journal), while a
// cursor that reached io.EOF keeps reporting io.EOF after Close. Both
// backends must agree, or a bug would pass MemStore tests and fail on
// files in production.
func testCursorUseAfterClose(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := st.OpenCursor(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := cur.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("Next after mid-stream Close = %v, want a non-EOF error", err)
	}
	// Drained first, then closed: the io.EOF latch survives.
	drained, err := st.OpenCursor(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := drained.Next(); err != nil {
			break
		}
	}
	if err := drained.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := drained.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next after drain+Close = %v, want io.EOF", err)
	}
}

// retainer asserts the shipped stores implement SegmentRetainer (the
// conformance suite IS the proof WithRetention can rely on them).
func retainer(t *testing.T, st Store) SegmentRetainer {
	t.Helper()
	r, ok := st.(SegmentRetainer)
	if !ok {
		t.Fatalf("%T does not implement SegmentRetainer", st)
	}
	return r
}

// segmentedJournal seeds the retention tests' layout on any backend:
// sealed segment (iterations 1-3), sealed segment (4-5), live segment
// (6).
func segmentedJournal(t *testing.T, st Store) {
	t.Helper()
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 1, 3)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 4, 2)
	if err := j.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	appendIters(t, j, 6, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// testRetentionPruneCovered: PruneSegments removes a sealed segment
// ONLY when the checkpoint covers its last entry, walking oldest-first
// and stopping at the first uncovered segment — a checkpoint mid-way
// through the chain never costs an uncovered entry.
func testRetentionPruneCovered(t *testing.T, st Store) {
	segmentedJournal(t, st)
	// Covered through iteration 4: segment 1-3 is prunable, segment 4-5
	// is NOT (its last entry, 5, exceeds the checkpoint).
	pruned, err := retainer(t, st).PruneSegments(ctx, 4, "")
	if err != nil {
		t.Fatalf("PruneSegments: %v", err)
	}
	if len(pruned) != 1 {
		t.Fatalf("pruned %v, want exactly the first sealed segment", pruned)
	}
	entries, err := readJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Iteration != 4 {
		t.Fatalf("after prune: %d entries starting at %d, want 3 starting at 4",
			len(entries), entries[0].Iteration)
	}
	// A later checkpoint covering iteration 5 frees the second segment.
	pruned, err = retainer(t, st).PruneSegments(ctx, 5, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 {
		t.Fatalf("second prune removed %v, want one segment", pruned)
	}
	// Restore-style read: the surviving live tail is intact.
	tail, err := readJournalTail(st, 5)
	if err != nil || len(tail) != 1 || tail[0].Iteration != 6 {
		t.Fatalf("tail after prunes = %+v err=%v, want just iteration 6", tail, err)
	}
}

// testRetentionNeverLive: however high the checkpoint, the live segment
// is untouchable — its entries may not be covered yet (appends race the
// export) and tearing the append target would corrupt the journal.
func testRetentionNeverLive(t *testing.T, st Store) {
	segmentedJournal(t, st)
	pruned, err := retainer(t, st).PruneSegments(ctx, 1<<30, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 2 {
		t.Fatalf("pruned %v, want both sealed segments and nothing else", pruned)
	}
	entries, err := readJournal(st)
	if err != nil || len(entries) != 1 || entries[0].Iteration != 6 {
		t.Fatalf("live segment must survive: entries=%+v err=%v", entries, err)
	}
	// With only the live segment left there is nothing more to prune.
	if pruned, err := retainer(t, st).PruneSegments(ctx, 1<<30, ""); err != nil || len(pruned) != 0 {
		t.Errorf("prune of a live-only journal = %v, %v; want none/nil", pruned, err)
	}
}

// testRetentionArchive: archived segments are moved, not lost — the
// audit trail lives on in the archive directory as plain JSONL segment
// files both backends render identically (readable by pointing a
// FileStore at the directory).
func testRetentionArchive(t *testing.T, st Store) {
	segmentedJournal(t, st)
	dir := t.TempDir() + "/archive" // PruneSegments must create it
	pruned, err := retainer(t, st).PruneSegments(ctx, 5, dir)
	if err != nil {
		t.Fatalf("PruneSegments(archive): %v", err)
	}
	if len(pruned) != 2 {
		t.Fatalf("archived %v, want both sealed segments", pruned)
	}
	// The store keeps only the live tail...
	entries, err := readJournal(st)
	if err != nil || len(entries) != 1 || entries[0].Iteration != 6 {
		t.Fatalf("store after archive: entries=%+v err=%v, want just iteration 6", entries, err)
	}
	// ...and the archive holds the full covered history, as an ordinary
	// segment chain.
	archive, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	archived, err := readJournal(archive)
	if err != nil {
		t.Fatalf("read archived segments: %v", err)
	}
	if len(archived) != 5 {
		t.Fatalf("archive holds %d entries, want the 5 covered ones", len(archived))
	}
	for i := range archived {
		if archived[i].Iteration != i+1 {
			t.Errorf("archived entry %d has iteration %d", i, archived[i].Iteration)
		}
	}
}

// testCursorRacesPrune: a live cursor draining the journal while the
// writer rotates segments and prunes covered ones must never observe
// corruption. This is exactly the leader-side replication race — the
// journal feed streams through a cursor while the checkpointer prunes
// behind it. Contract: within one cursor pass iterations are strictly
// increasing (segment granularity means covered entries may lead the
// stream, but pruning never reorders or duplicates), and a pass
// terminates only with io.EOF or ErrJournalTruncated — a segment
// vanishing under the cursor is not an error.
func testCursorRacesPrune(t *testing.T, st Store) {
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ret := retainer(t, st)
	const (
		total  = 400 // entries the writer appends
		perSeg = 8   // rotation (and prune-horizon) cadence
	)
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: append, sealing a segment every perSeg entries and pruning
	// everything a checkpoint trailing one segment behind would cover.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 1; i <= total; i++ {
			err := j.Append(ctx, JournalEntry{
				DeviceID: "d1", Iteration: i, NumSamples: 1,
				Grad: []float64{float64(i)}, LabelCounts: []int{1},
			})
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			if i%perSeg == 0 {
				if err := j.Rotate(ctx); err != nil {
					t.Errorf("rotate at %d: %v", i, err)
					return
				}
				if _, err := ret.PruneSegments(ctx, i-perSeg, ""); err != nil {
					t.Errorf("prune at %d: %v", i, err)
					return
				}
			}
		}
	}()

	// Readers: repeatedly open cursors at staggered positions and drain
	// them while segments disappear underneath. One final pass after the
	// writer finishes so every reader also sees the settled journal.
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			for pass := 0; ; pass++ {
				final := false
				select {
				case <-done:
					final = true // writer finished; one settled pass, then exit
				default:
				}
				after := (reader*17 + pass*13) % total
				cur, err := st.OpenCursor(ctx, after)
				if err != nil {
					t.Errorf("reader %d pass %d: OpenCursor(%d): %v", reader, pass, after, err)
					return
				}
				prev := 0 // covered entries may lead the stream; only order matters
				for {
					e, err := cur.Next()
					if errors.Is(err, io.EOF) || errors.Is(err, ErrJournalTruncated) {
						break
					}
					if err != nil {
						t.Errorf("reader %d pass %d: Next: %v", reader, pass, err)
						cur.Close()
						return
					}
					if e.Iteration <= prev {
						t.Errorf("reader %d pass %d: iteration %d after %d", reader, pass, e.Iteration, prev)
						cur.Close()
						return
					}
					prev = e.Iteration
				}
				cur.Close()
				if final {
					return
				}
			}
		}(reader)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// newServerT mirrors newServer for the conformance suite (kept separate
// so this file stands alone when read as the Store contract).
func newServerT(t *testing.T) *core.Server {
	return newServer(t)
}
