//go:build unix

package store

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// acquireDirLock takes a non-blocking exclusive flock on the store
// directory's lock file, creating it if needed. The lock is advisory —
// it binds cooperating crowdml processes, not arbitrary tools — and is
// attached to the open file description, so the kernel releases it the
// instant a crashed holder dies: stale locks cannot exist and the file
// is never unlinked (unlinking would reopen the classic race where two
// processes lock different inodes behind one path).
func acquireDirLock(path string) (*os.File, error) {
	lock, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("%s: %w", path, ErrStoreLocked)
		}
		return nil, fmt.Errorf("store: lock %s: %w", path, err)
	}
	return lock, nil
}

// releaseDirLock drops the advisory lock. Closing the file releases the
// flock with it; the explicit unlock just makes the handoff immediate.
func releaseDirLock(lock *os.File) {
	if lock == nil {
		return
	}
	_ = syscall.Flock(int(lock.Fd()), syscall.LOCK_UN)
	_ = lock.Close()
}
