//go:build windows

package store

import (
	"errors"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Windows enforces the store-directory lock with LockFileEx on the LOCK
// file — the same advisory-between-cooperating-processes semantics the
// unix flock gives: the lock is attached to the open handle, so the
// kernel releases it the instant a crashed holder's process dies, stale
// locks cannot exist, and the file is never unlinked (deleting a lock
// file reopens the classic race where two processes lock different
// objects behind one path; on Windows the open handle would block the
// delete anyway).

var (
	// The stdlib syscall package has no NewLazySystemDLL (that lives in
	// x/sys, and this repo is stdlib-only), but kernel32 is a KnownDLL:
	// Windows resolves it from System32 regardless of the search path,
	// and it is already mapped into every process before main — so the
	// planted-DLL concern NewLazySystemDLL addresses does not apply.
	kernel32         = syscall.NewLazyDLL("kernel32.dll")
	procLockFileEx   = kernel32.NewProc("LockFileEx")
	procUnlockFileEx = kernel32.NewProc("UnlockFileEx")
)

const (
	lockfileFailImmediately = 0x00000001 // LOCKFILE_FAIL_IMMEDIATELY
	lockfileExclusiveLock   = 0x00000002 // LOCKFILE_EXCLUSIVE_LOCK

	errnoLockViolation syscall.Errno = 33 // ERROR_LOCK_VIOLATION
)

// lockRange covers the whole (empty) lock file: LockFileEx locks byte
// ranges, and locking one byte past offset 0 is the idiomatic
// whole-file advisory lock.
func lockRange(f *os.File, flags uintptr) error {
	var ol syscall.Overlapped
	r, _, errno := procLockFileEx.Call(f.Fd(), flags, 0, 1, 0, uintptr(unsafe.Pointer(&ol)))
	if r == 0 {
		return errno
	}
	return nil
}

// acquireDirLock takes a non-blocking exclusive LockFileEx lock on the
// store directory's lock file, creating it if needed. A conflicting
// holder yields ErrStoreLocked, mirroring the unix implementation.
func acquireDirLock(path string) (*os.File, error) {
	lock, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	if err := lockRange(lock, lockfileExclusiveLock|lockfileFailImmediately); err != nil {
		lock.Close()
		if errors.Is(err, errnoLockViolation) {
			return nil, fmt.Errorf("%s: %w", path, ErrStoreLocked)
		}
		return nil, fmt.Errorf("store: lock %s: %w", path, err)
	}
	return lock, nil
}

// releaseDirLock drops the lock. Closing the handle releases it with
// the process's reference; the explicit unlock just makes the handoff
// immediate.
func releaseDirLock(lock *os.File) {
	if lock == nil {
		return
	}
	var ol syscall.Overlapped
	_, _, _ = procUnlockFileEx.Call(lock.Fd(), 0, 1, 0, uintptr(unsafe.Pointer(&ol)))
	_ = lock.Close()
}
