package promlint

import (
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/telemetry"
)

func lint(t *testing.T, in string) []Problem {
	t.Helper()
	probs, err := Lint(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return probs
}

func wantClean(t *testing.T, in string) {
	t.Helper()
	if probs := lint(t, in); len(probs) != 0 {
		t.Fatalf("want clean, got %v", probs)
	}
}

func wantProblem(t *testing.T, in, substr string) {
	t.Helper()
	probs := lint(t, in)
	for _, p := range probs {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Fatalf("no problem containing %q in %v", substr, probs)
}

func TestCleanExposition(t *testing.T) {
	wantClean(t, `# HELP a_total Things.
# TYPE a_total counter
a_total 3
# TYPE b gauge
b{task="x"} 2.5
b{task="y"} -1
# TYPE h histogram
h_bucket{le="0.5"} 1
h_bucket{le="+Inf"} 3
h_sum 4.2
h_count 3
`)
}

func TestDuplicateTypeLine(t *testing.T) {
	wantProblem(t, "# TYPE a counter\na 1\n# TYPE a counter\n", "duplicate # TYPE")
}

func TestSampleBeforeType(t *testing.T) {
	wantProblem(t, "a 1\n# TYPE a counter\n", "appears after its first sample")
}

func TestSampleWithoutType(t *testing.T) {
	wantProblem(t, "orphan_total 1\n", "no preceding # TYPE")
}

func TestDuplicateSeries(t *testing.T) {
	wantProblem(t, "# TYPE a counter\na{task=\"x\"} 1\na{task=\"x\"} 2\n", "duplicate series")
}

func TestHistogramNotCumulative(t *testing.T) {
	wantProblem(t, `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`, "not cumulative")
}

func TestHistogramMissingInf(t *testing.T) {
	wantProblem(t, `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="2"} 2
h_sum 1
h_count 2
`, `want le="+Inf"`)
}

func TestHistogramCountMismatch(t *testing.T) {
	wantProblem(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 1
h_count 4
`, "_count 4 != +Inf bucket 3")
}

func TestHistogramMissingCount(t *testing.T) {
	wantProblem(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 1
`, "no matching _count")
}

func TestHistogramBucketWithoutLE(t *testing.T) {
	wantProblem(t, `# TYPE h histogram
h_bucket 3
h_sum 1
h_count 3
`, "exactly one le label")
}

func TestHistogramPerSeriesBuckets(t *testing.T) {
	// Two label-disjoint series of one histogram family are checked
	// independently — x's +Inf below y's counts is fine.
	wantClean(t, `# TYPE h histogram
h_bucket{task="x",le="1"} 1
h_bucket{task="x",le="+Inf"} 2
h_bucket{task="y",le="1"} 7
h_bucket{task="y",le="+Inf"} 9
h_sum{task="x"} 1
h_count{task="x"} 2
h_sum{task="y"} 3
h_count{task="y"} 9
`)
}

func TestUnparseableSample(t *testing.T) {
	wantProblem(t, "# TYPE a counter\na one\n", "bad value")
	wantProblem(t, "# TYPE a counter\na{task=\"x} 1\n", "unterminated")
	wantProblem(t, "# TYPE a counter\n{} 1\n", "invalid metric name")
}

func TestEscapedLabelValues(t *testing.T) {
	wantClean(t, `# TYPE a counter
a{path="C:\\dir\n\"q\""} 1
`)
}

func TestSpecialValues(t *testing.T) {
	wantClean(t, "# TYPE g gauge\ng{v=\"a\"} +Inf\ng{v=\"b\"} -Inf\ng{v=\"c\"} NaN\n")
}

// TestLintsLiveTelemetryOutput closes the loop with the real writer:
// whatever internal/telemetry emits must be clean under this linter —
// the same pairing the follower e2e CI step enforces over HTTP.
func TestLintsLiveTelemetryOutput(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("crowdml_checkouts_total", "Checkouts.", telemetry.L("task", "t1")).Add(4)
	reg.Gauge("crowdml_replica_lag_iterations", "Lag.", telemetry.L("task", "t1")).Set(2)
	h := reg.Histogram("crowdml_checkout_seconds", "Latency.", telemetry.DurationBuckets, telemetry.L("task", "t1"))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	reg.Histogram("crowdml_idle_seconds", "Zero observations.", []float64{1, 2})
	reg.Counter("escape_total", "x", telemetry.L("p", "a\\b\"c\nd")).Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if probs := lint(t, b.String()); len(probs) != 0 {
		t.Fatalf("live telemetry output failed lint: %v\n%s", probs, b.String())
	}
}
