// Package promlint validates Prometheus text exposition (version
// 0.0.4) the way CI needs it validated: structurally, so a malformed
// metric rename or a broken histogram fails the build by name instead
// of silently producing an unscrapable endpoint. It checks that
//
//   - every sample's family declares a # TYPE line before the first
//     sample, and no family is declared twice (unique metric names);
//   - sample lines parse (name, optional labels, float value) and no
//     exact series repeats;
//   - histogram families expose only _bucket/_sum/_count samples, each
//     bucket series has exactly one le label, cumulative bucket counts
//     are monotone non-decreasing, the last bucket is le="+Inf", and
//     _count equals it.
//
// It is deliberately a library, not a command: the follower e2e test
// scrapes a live /v1/metrics response and feeds it straight to Lint,
// so the CI step exercises the real HTTP surface.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Problem is one finding, anchored to a 1-based line of the input.
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

// sample is one parsed sample line.
type sample struct {
	line   int
	name   string
	labels []label // in appearance order
	value  float64
}

type label struct{ name, value string }

// le returns the sample's le label value and whether exactly one is
// present.
func (s *sample) le() (string, bool) {
	found := ""
	n := 0
	for _, l := range s.labels {
		if l.name == "le" {
			found = l.value
			n++
		}
	}
	return found, n == 1
}

// seriesKeyAs identifies a series under the given name (the sample's
// own name for exact-duplicate detection, the FAMILY name to group a
// histogram's _bucket/_sum/_count samples together) plus its labels in
// appearance order, optionally dropping le (so one bucket ladder is one
// key).
func (s *sample) seriesKeyAs(name string, dropLE bool) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range s.labels {
		if dropLE && l.name == "le" {
			continue
		}
		fmt.Fprintf(&b, "|%s=%d:%s", l.name, len(l.value), l.value)
	}
	return b.String()
}

// baseName strips a histogram sample suffix, returning the family name
// it would belong to and the suffix found ("" when none).
func baseName(name string) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// Lint reads one exposition and returns its problems (nil when clean).
// A read error is returned separately; problems found before it are
// still reported.
func Lint(r io.Reader) ([]Problem, error) {
	var probs []Problem
	addf := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	types := map[string]string{}      // family → declared type
	typeLine := map[string]int{}      // family → its TYPE line
	sampled := map[string]int{}       // family → first sample line
	seen := map[string]int{}          // exact series (with le) → first line
	buckets := map[string][]*sample{} // histogram series (sans le) → bucket samples in order
	counts := map[string]*sample{}    // histogram series (sans le) → _count sample

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, kind := fields[2], ""
				if len(fields) == 4 {
					kind = fields[3]
				}
				if prev, dup := types[name]; dup {
					addf(lineNo, "duplicate # TYPE for %q (first declared %s at line %d)", name, prev, typeLine[name])
					continue
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf(lineNo, "unknown type %q for %q", kind, name)
				}
				if first, ok := sampled[name]; ok {
					addf(lineNo, "# TYPE for %q appears after its first sample (line %d)", name, first)
				}
				types[name] = kind
				typeLine[name] = lineNo
			}
			continue // HELP and other comments are free-form
		}

		s, err := parseSample(line)
		if err != nil {
			addf(lineNo, "unparseable sample: %v", err)
			continue
		}
		s.line = lineNo

		// Resolve the family: histogram suffixes attach to the base family
		// when (and only when) that family is a declared histogram.
		family := s.name
		base, suffix := baseName(s.name)
		if suffix != "" && types[base] == "histogram" {
			family = base
		}
		kind, declared := types[family]
		if !declared {
			addf(lineNo, "sample %q has no preceding # TYPE line", s.name)
		}
		if _, ok := sampled[family]; !ok {
			sampled[family] = lineNo
		}

		key := s.seriesKeyAs(s.name, false)
		if first, dup := seen[key]; dup {
			addf(lineNo, "duplicate series %q (first at line %d)", s.name, first)
			continue
		}
		seen[key] = lineNo

		if kind == "histogram" {
			switch {
			case family == s.name:
				addf(lineNo, "histogram %q exposes a bare sample (want _bucket/_sum/_count)", family)
			case suffix == "_bucket":
				if _, ok := s.le(); !ok {
					addf(lineNo, "histogram bucket %q needs exactly one le label", s.name)
					continue
				}
				k := s.seriesKeyAs(family, true)
				buckets[k] = append(buckets[k], s)
			case suffix == "_count":
				counts[s.seriesKeyAs(family, true)] = s
			}
		}
	}
	if err := sc.Err(); err != nil {
		return probs, fmt.Errorf("promlint: read: %w", err)
	}

	// Per-series histogram shape checks, in input order of first bucket.
	for key, bs := range buckets {
		prevCount := -1.0
		prevLE := ""
		for i, b := range bs {
			le, _ := b.le()
			if b.value < prevCount {
				addf(b.line, "histogram %q: bucket le=%q count %v below preceding le=%q count %v (not cumulative)",
					b.name, le, b.value, prevLE, prevCount)
			}
			prevCount, prevLE = b.value, le
			if i == len(bs)-1 && le != "+Inf" {
				addf(b.line, "histogram %q: last bucket is le=%q, want le=\"+Inf\"", b.name, le)
			}
		}
		last := bs[len(bs)-1]
		if le, _ := last.le(); le == "+Inf" {
			if c, ok := counts[key]; !ok {
				addf(last.line, "histogram %q: no matching _count sample", last.name)
			} else if c.value != last.value {
				addf(c.line, "histogram %q: _count %v != +Inf bucket %v", c.name, c.value, last.value)
			}
		}
	}
	return probs, nil
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (*sample, error) {
	s := &sample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.name = rest[:brace]
		var err error
		rest, err = parseLabels(rest[brace:], s)
		if err != nil {
			return nil, err
		}
	} else {
		if sp < 0 {
			return nil, fmt.Errorf("no value")
		}
		s.name = rest[:sp]
		rest = rest[sp:]
	}
	if !validMetricName(s.name) {
		return nil, fmt.Errorf("invalid metric name %q", s.name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("want `value [timestamp]` after the name, got %q", strings.TrimSpace(rest))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return nil, err
	}
	s.value = v
	return s, nil
}

// parseLabels consumes a {name="value",...} block (handling \\, \" and
// \n escapes) and returns the remainder of the line.
func parseLabels(rest string, s *sample) (string, error) {
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " ,")
		if rest == "" {
			return "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '='")
		}
		name := rest[:eq]
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("label %q: unquoted value", name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return "", fmt.Errorf("label %q: unterminated value", name)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return "", fmt.Errorf("label %q: dangling escape", name)
				}
				switch rest[1] {
				case '\\', '"':
					val.WriteByte(rest[1])
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %q: bad escape \\%c", name, rest[1])
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		s.labels = append(s.labels, label{name: name, value: val.String()})
	}
}

// parseValue accepts Go floats plus the Prometheus spellings.
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		v = "Inf"
	case "-Inf":
		v = "-Inf"
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", v)
	}
	return f, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
