// Command benchgate is the CI benchmark regression gate: it parses raw
// `go test -bench` output, aggregates repeated runs (-count=N), and
// compares each benchmark's best (minimum) ns/op against a baseline,
// failing (exit 1) on any regression beyond the threshold. The minimum
// is the gate statistic because scheduler interference on shared runners
// only ever inflates a run, while a real regression shifts every run.
// With -bop-threshold and -benchmem output on both sides, each
// benchmark's best B/op is gated the same way — the guard that keeps
// the streaming journal reads' bounded allocations from silently
// regressing back to materialized slices.
//
// Typical CI usage:
//
//	go test -run '^$' -bench 'Checkout|Checkin' -benchtime=1000x -count=5 . | tee bench.txt
//	go run ./internal/tools/benchgate -input bench.txt -json BENCH_pr.json -baseline BENCH_baseline.json
//
// Refreshing the committed baseline after an intentional change:
//
//	go test -run '^$' -bench 'Checkout|Checkin' -benchtime=1000x -count=5 . |
//	    go run ./internal/tools/benchgate -update -baseline BENCH_baseline.json
//
// The gate compares per-benchmark minimums, which tolerates noisy runs;
// it cannot tolerate comparing different machines against each other, so
// refresh the baseline from hardware comparable to the CI runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input     = flag.String("input", "-", "raw `go test -bench` output file (- = stdin)")
		jsonOut   = flag.String("json", "", "also write the parsed current results to this JSON file")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against (or to write with -update)")
		threshold = flag.Float64("threshold", 0.20, "fail when a benchmark's best ns/op regresses by more than this fraction")
		bop       = flag.Float64("bop-threshold", 0, "also fail when a benchmark's best B/op regresses by more than this fraction (0 disables; needs -benchmem runs on both sides)")
		update    = flag.Bool("update", false, "write the parsed results to -baseline instead of comparing")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return fmt.Errorf("benchgate: %w", err)
		}
		defer f.Close()
		in = f
	}
	current, err := ParseBench(in)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		if err := writeSuite(*jsonOut, current); err != nil {
			return err
		}
	}
	if *update {
		if err := writeSuite(*baseline, current); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %d benchmark baselines to %s\n",
			len(current.Benchmarks), *baseline)
		return nil
	}

	payload, err := os.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("benchgate: read baseline: %w", err)
	}
	var base Suite
	if err := json.Unmarshal(payload, &base); err != nil {
		return fmt.Errorf("benchgate: parse baseline %s: %w", *baseline, err)
	}
	deltas, missing, added := Compare(&base, current, *threshold, *bop)
	Render(os.Stdout, deltas, missing, added, *threshold)
	if regs := Regressions(deltas); len(regs) > 0 {
		return fmt.Errorf("benchgate: %d benchmark statistic(s) regressed beyond the threshold", len(regs))
	}
	fmt.Println("benchgate: no regressions")
	return nil
}

func writeSuite(path string, s *Suite) error {
	payload, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: encode: %w", err)
	}
	if err := os.WriteFile(path, append(payload, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchgate: write %s: %w", path, err)
	}
	return nil
}
