package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkCheckoutParallel-8   161577   8118 ns/op   4144 B/op   2 allocs/op
//
// The GOMAXPROCS suffix stays part of the name: a -cpu change is a
// different experiment and must not be compared against the old one.
// The B/op column (printed under -benchmem) is captured when present,
// so allocation regressions can be gated too.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9]+) B/op)?`)

// Result aggregates the -count repetitions of one benchmark.
type Result struct {
	Name    string    `json:"name"`
	NsPerOp []float64 `json:"nsPerOp"`
	// Median is recorded for reporting.
	Median float64 `json:"median"`
	// Min is the regression-gate statistic. Scheduling interference on a
	// shared CI runner only inflates a run's ns/op, never deflates it, so
	// the best of N short runs is far more stable than their median at
	// small -benchtime — while a real regression shifts the whole
	// distribution, minimum included.
	Min float64 `json:"min"`
	// BPerOp holds the repetitions' B/op readings (empty when the run
	// was not made with -benchmem); MedianB/MinB aggregate them like
	// Median/Min. Allocation counts are far less noisy than wall time,
	// but the minimum stays the gate statistic for symmetry (GC timing
	// can perturb amortized figures like pooled-buffer reuse).
	BPerOp  []float64 `json:"bPerOp,omitempty"`
	MedianB float64   `json:"medianB,omitempty"`
	MinB    float64   `json:"minB,omitempty"`
}

// Suite is the JSON artifact written by -json and consumed as -baseline.
type Suite struct {
	Benchmarks map[string]*Result `json:"benchmarks"`
}

// ParseBench reads raw `go test -bench` output and aggregates the
// repetitions of each benchmark.
func ParseBench(r io.Reader) (*Suite, error) {
	s := &Suite{Benchmarks: make(map[string]*Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op %q: %w", m[3], err)
		}
		res, ok := s.Benchmarks[m[1]]
		if !ok {
			res = &Result{Name: m[1]}
			s.Benchmarks[m[1]] = res
		}
		res.NsPerOp = append(res.NsPerOp, ns)
		if m[4] != "" {
			bop, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad B/op %q: %w", m[4], err)
			}
			res.BPerOp = append(res.BPerOp, bop)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: scan: %w", err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	for _, res := range s.Benchmarks {
		res.Median = median(res.NsPerOp)
		res.Min = minOf(res.NsPerOp)
		if len(res.BPerOp) > 0 {
			res.MedianB = median(res.BPerOp)
			res.MinB = minOf(res.BPerOp)
		}
	}
	return s, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Delta is one benchmark's baseline-vs-current comparison of a single
// statistic (ns/op, or B/op when byte gating is on).
type Delta struct {
	Name      string
	Unit      string  // "ns/op" or "B/op"
	Base      float64 // baseline minimum
	Current   float64 // current minimum
	Ratio     float64 // Current/Base − 1 (positive = worse)
	Regressed bool
}

// Compare evaluates current against baseline with the given regression
// threshold (0.20 = fail when >20% slower). bopThreshold > 0 adds a
// second gate on B/op for benchmarks where BOTH sides carry allocation
// data (runs made with -benchmem) — the streaming-read benchmarks rely
// on it so a bounded-memory win cannot silently regress; 0 keeps byte
// deltas out entirely, matching the pre-benchmem behavior. Benchmarks
// only present on one side are reported in missing/added and never fail
// the gate: CI may legitimately run a subset, and new benchmarks have
// no baseline yet.
func Compare(baseline, current *Suite, threshold, bopThreshold float64) (deltas []Delta, missing, added []string) {
	for name, base := range baseline.Benchmarks {
		cur, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		d := Delta{Name: name, Unit: "ns/op", Base: gateStat(base), Current: gateStat(cur)}
		if d.Base > 0 {
			d.Ratio = d.Current/d.Base - 1
		}
		d.Regressed = d.Ratio > threshold
		deltas = append(deltas, d)
		if bopThreshold > 0 && len(base.BPerOp) > 0 && len(cur.BPerOp) > 0 {
			b := Delta{Name: name, Unit: "B/op", Base: base.MinB, Current: cur.MinB}
			switch {
			case b.Base > 0:
				b.Ratio = b.Current/b.Base - 1
				b.Regressed = b.Ratio > bopThreshold
			case b.Current > 0:
				// From zero allocations to some is always a regression;
				// +Inf keeps the rendered delta column honest about it.
				b.Ratio = math.Inf(1)
				b.Regressed = true
			}
			deltas = append(deltas, b)
		}
	}
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Name != deltas[j].Name {
			return deltas[i].Name < deltas[j].Name
		}
		return deltas[i].Unit < deltas[j].Unit
	})
	sort.Strings(missing)
	sort.Strings(added)
	return deltas, missing, added
}

// Render writes a benchstat-style comparison table.
func Render(w io.Writer, deltas []Delta, missing, added []string, threshold float64) {
	fmt.Fprintf(w, "%-50s %6s %14s %14s %9s\n", "benchmark", "unit", "base", "current", "delta")
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-50s %6s %14.1f %14.1f %+8.1f%%%s\n",
			d.Name, d.Unit, d.Base, d.Current, d.Ratio*100, mark)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "%-50s (in baseline, not measured this run)\n", name)
	}
	for _, name := range added {
		fmt.Fprintf(w, "%-50s (new, no baseline — add with -update)\n", name)
	}
	fmt.Fprintf(w, "gate: fail when current > base × %.2f\n", 1+threshold)
}

// gateStat picks a result's gate statistic: the minimum, falling back to
// the median for baselines written before Min was recorded.
func gateStat(r *Result) float64 {
	if r.Min > 0 {
		return r.Min
	}
	return r.Median
}

// Regressions filters the deltas that trip the gate.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
