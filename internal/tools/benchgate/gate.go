package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkCheckoutParallel-8   161577   8118 ns/op   4144 B/op   2 allocs/op
//
// The GOMAXPROCS suffix stays part of the name: a -cpu change is a
// different experiment and must not be compared against the old one.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// Result aggregates the -count repetitions of one benchmark.
type Result struct {
	Name    string    `json:"name"`
	NsPerOp []float64 `json:"nsPerOp"`
	// Median is recorded for reporting.
	Median float64 `json:"median"`
	// Min is the regression-gate statistic. Scheduling interference on a
	// shared CI runner only inflates a run's ns/op, never deflates it, so
	// the best of N short runs is far more stable than their median at
	// small -benchtime — while a real regression shifts the whole
	// distribution, minimum included.
	Min float64 `json:"min"`
}

// Suite is the JSON artifact written by -json and consumed as -baseline.
type Suite struct {
	Benchmarks map[string]*Result `json:"benchmarks"`
}

// ParseBench reads raw `go test -bench` output and aggregates the
// repetitions of each benchmark.
func ParseBench(r io.Reader) (*Suite, error) {
	s := &Suite{Benchmarks: make(map[string]*Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op %q: %w", m[3], err)
		}
		res, ok := s.Benchmarks[m[1]]
		if !ok {
			res = &Result{Name: m[1]}
			s.Benchmarks[m[1]] = res
		}
		res.NsPerOp = append(res.NsPerOp, ns)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: scan: %w", err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	for _, res := range s.Benchmarks {
		res.Median = median(res.NsPerOp)
		res.Min = res.NsPerOp[0]
		for _, v := range res.NsPerOp[1:] {
			if v < res.Min {
				res.Min = v
			}
		}
	}
	return s, nil
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name      string
	Base      float64 // baseline min ns/op
	Current   float64 // current min ns/op
	Ratio     float64 // Current/Base − 1 (positive = slower)
	Regressed bool
}

// Compare evaluates current against baseline with the given regression
// threshold (0.20 = fail when >20% slower). Benchmarks only present on
// one side are reported in missing/added and never fail the gate: CI may
// legitimately run a subset, and new benchmarks have no baseline yet.
func Compare(baseline, current *Suite, threshold float64) (deltas []Delta, missing, added []string) {
	for name, base := range baseline.Benchmarks {
		cur, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		d := Delta{Name: name, Base: gateStat(base), Current: gateStat(cur)}
		if d.Base > 0 {
			d.Ratio = d.Current/d.Base - 1
		}
		d.Regressed = d.Ratio > threshold
		deltas = append(deltas, d)
	}
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(missing)
	sort.Strings(added)
	return deltas, missing, added
}

// Render writes a benchstat-style comparison table.
func Render(w io.Writer, deltas []Delta, missing, added []string, threshold float64) {
	fmt.Fprintf(w, "%-50s %14s %14s %9s\n", "benchmark", "base ns/op", "current ns/op", "delta")
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-50s %14.1f %14.1f %+8.1f%%%s\n",
			d.Name, d.Base, d.Current, d.Ratio*100, mark)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "%-50s (in baseline, not measured this run)\n", name)
	}
	for _, name := range added {
		fmt.Fprintf(w, "%-50s (new, no baseline — add with -update)\n", name)
	}
	fmt.Fprintf(w, "gate: fail when current > base × %.2f\n", 1+threshold)
}

// gateStat picks a result's gate statistic: the minimum, falling back to
// the median for baselines written before Min was recorded.
func gateStat(r *Result) float64 {
	if r.Min > 0 {
		return r.Min
	}
	return r.Median
}

// Regressions filters the deltas that trip the gate.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
