package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/crowdml/crowdml
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCheckoutParallel-8   	 1348351	       918.4 ns/op	    4144 B/op	       2 allocs/op
BenchmarkCheckoutParallel-8   	 1300000	       905.0 ns/op
BenchmarkCheckoutParallel-8   	 1200000	      1100.0 ns/op
BenchmarkCheckinBatched-8     	 1831282	       649.4 ns/op
BenchmarkCheckinBatched-8     	 1800000	       655.1 ns/op
BenchmarkCheckinBatched-8     	 1700000	       700.9 ns/op
PASS
ok  	github.com/crowdml/crowdml	14.451s
`

func parse(t *testing.T, out string) *Suite {
	t.Helper()
	s, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseBenchAggregatesRepetitions(t *testing.T) {
	s := parse(t, sampleOutput)
	if len(s.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(s.Benchmarks))
	}
	co := s.Benchmarks["BenchmarkCheckoutParallel-8"]
	if co == nil {
		t.Fatal("BenchmarkCheckoutParallel-8 missing (the -cpu suffix must be kept)")
	}
	if len(co.NsPerOp) != 3 {
		t.Fatalf("got %d repetitions, want 3", len(co.NsPerOp))
	}
	if co.Median != 918.4 {
		t.Errorf("median = %v, want 918.4", co.Median)
	}
	if co.Min != 905.0 {
		t.Errorf("min = %v, want 905.0", co.Min)
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error for input without benchmark lines")
	}
}

func TestMedianEvenCount(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
}

// TestGateFailsOnSyntheticRegression is the acceptance check for the CI
// gate: a >20% slowdown must trip it, a smaller one must not.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := parse(t, sampleOutput)

	// +25% on every line of one benchmark: must regress.
	slow := strings.ReplaceAll(sampleOutput, "649.4", "811.8")
	slow = strings.ReplaceAll(slow, "655.1", "818.9")
	slow = strings.ReplaceAll(slow, "700.9", "876.1")
	deltas, missing, added := Compare(base, parse(t, slow), 0.20, 0)
	if len(missing) != 0 || len(added) != 0 {
		t.Fatalf("missing=%v added=%v, want none", missing, added)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "BenchmarkCheckinBatched-8" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkCheckinBatched-8", regs)
	}

	// +10%: within the threshold, must pass.
	mild := strings.ReplaceAll(sampleOutput, "649.4", "714.3")
	mild = strings.ReplaceAll(mild, "655.1", "720.6")
	mild = strings.ReplaceAll(mild, "700.9", "771.0")
	deltas, _, _ = Compare(base, parse(t, mild), 0.20, 0)
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("regressions = %+v, want none at +10%%", regs)
	}

	// Identical runs: zero delta.
	deltas, _, _ = Compare(base, parse(t, sampleOutput), 0.20, 0)
	for _, d := range deltas {
		if d.Ratio != 0 || d.Regressed {
			t.Errorf("%s: ratio = %v regressed = %v, want 0/false", d.Name, d.Ratio, d.Regressed)
		}
	}
}

// TestCompareDisjointSuites checks subset runs and new benchmarks are
// reported but never fail the gate.
func TestCompareDisjointSuites(t *testing.T) {
	base := parse(t, sampleOutput)
	onlyCheckout := `BenchmarkCheckoutParallel-8   	 1348351	       918.4 ns/op
BenchmarkBrandNew-8           	  100000	      1000.0 ns/op
`
	deltas, missing, added := Compare(base, parse(t, onlyCheckout), 0.20, 0)
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkCheckoutParallel-8" {
		t.Fatalf("deltas = %+v", deltas)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkCheckinBatched-8" {
		t.Fatalf("missing = %v", missing)
	}
	if len(added) != 1 || added[0] != "BenchmarkBrandNew-8" {
		t.Fatalf("added = %v", added)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("disjoint suites must not regress, got %+v", regs)
	}
}

// benchmemOutput has -benchmem columns on every repetition, so the B/op
// gate has data on both sides.
const benchmemOutput = `BenchmarkJournalTailRestore/checkpoints=8-2   	    1000	    104000 ns/op	  145000 B/op	     193 allocs/op
BenchmarkJournalTailRestore/checkpoints=8-2   	    1000	    101000 ns/op	  144000 B/op	     193 allocs/op
BenchmarkJournalTailRestore/checkpoints=8-2   	    1000	    110000 ns/op	  146000 B/op	     195 allocs/op
`

func TestParseBenchCapturesBPerOp(t *testing.T) {
	s := parse(t, benchmemOutput)
	r := s.Benchmarks["BenchmarkJournalTailRestore/checkpoints=8-2"]
	if r == nil {
		t.Fatal("benchmark missing")
	}
	if len(r.BPerOp) != 3 || r.MinB != 144000 || r.MedianB != 145000 {
		t.Errorf("BPerOp = %v minB = %v medianB = %v, want 3 readings min 144000 median 145000",
			r.BPerOp, r.MinB, r.MedianB)
	}
	// The sample output's partial B/op coverage (only one line carries
	// it) still parses, aggregating what is there.
	partial := parse(t, sampleOutput)
	if co := partial.Benchmarks["BenchmarkCheckoutParallel-8"]; len(co.BPerOp) != 1 || co.MinB != 4144 {
		t.Errorf("partial B/op = %v minB = %v, want the one 4144 reading", co.BPerOp, co.MinB)
	}
}

// TestGateOnBytes: with -bop-threshold set, an allocation regression
// fails the gate even when ns/op is flat — and without it, bytes are
// ignored entirely.
func TestGateOnBytes(t *testing.T) {
	base := parse(t, benchmemOutput)
	bloated := strings.ReplaceAll(benchmemOutput, "145000 B/op", "300000 B/op")
	bloated = strings.ReplaceAll(bloated, "144000 B/op", "299000 B/op")
	bloated = strings.ReplaceAll(bloated, "146000 B/op", "301000 B/op")

	deltas, _, _ := Compare(base, parse(t, bloated), 0.20, 0.20)
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Unit != "B/op" {
		t.Fatalf("regressions = %+v, want exactly the B/op delta", regs)
	}
	// Same comparison with byte gating off: nothing regresses.
	deltas, _, _ = Compare(base, parse(t, bloated), 0.20, 0)
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("regressions with bytes gating off = %+v, want none", regs)
	}
	// A baseline without B/op data (old format) never produces byte
	// deltas even when the gate is on.
	noBytes := strings.NewReplacer(
		"\t  145000 B/op\t     193 allocs/op", "",
		"\t  144000 B/op\t     193 allocs/op", "",
		"\t  146000 B/op\t     195 allocs/op", "").Replace(benchmemOutput)
	deltas, _, _ = Compare(parse(t, noBytes), parse(t, bloated), 0.20, 0.20)
	for _, d := range deltas {
		if d.Unit == "B/op" {
			t.Errorf("byte delta produced without baseline data: %+v", d)
		}
	}
}
