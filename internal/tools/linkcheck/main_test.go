package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"exists.md", filepath.Join("docs", "guide.md")} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("# x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	src := "# Title\n" +
		"[good](exists.md) and [good dir](docs) and [anchor](#section)\n" +
		"[good with fragment](docs/guide.md#part-2)\n" +
		"[external](https://example.com/x.md) [mail](mailto:a@b.c)\n" +
		"[missing](nope.md)\n" +
		"```\n[not a link check](inside-fence.md)\n```\n" +
		"`[not either](inline-code.md)` after span\n" +
		"[also missing](docs/absent.md)\n"
	got := checkLinks(filepath.Join(dir, "readme.md"), src)
	if len(got) != 2 {
		t.Fatalf("found %d broken links, want 2: %+v", len(got), got)
	}
	if got[0].target != "nope.md" || got[0].line != 5 {
		t.Errorf("first broken = %+v, want nope.md on line 5", got[0])
	}
	if got[1].target != "docs/absent.md" {
		t.Errorf("second broken = %+v, want docs/absent.md", got[1])
	}
}

// TestCheckLinksParensAndLeadingFence covers the two scanner edge
// cases: parenthesized filenames keep their whole path, and a fence
// opening on the file's very first line suppresses checking inside it.
func TestCheckLinksParensAndLeadingFence(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "design(v2).md"), []byte("# x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "[spec](design(v2).md)\n[missing](gone(v3).md)\n"
	got := checkLinks(filepath.Join(dir, "readme.md"), src)
	if len(got) != 1 || got[0].target != "gone(v3).md" {
		t.Fatalf("parenthesized targets: got %+v, want only gone(v3).md broken", got)
	}
	fenced := "```\n[example link](never-checked.md)\n```\n[real missing](absent.md)\n"
	got = checkLinks(filepath.Join(dir, "readme.md"), fenced)
	if len(got) != 1 || got[0].target != "absent.md" {
		t.Fatalf("leading fence: got %+v, want only absent.md broken", got)
	}
}

func TestCheckTargetExternalAndAnchors(t *testing.T) {
	for _, target := range []string{"#anchor", "https://x.test/a", "http://x.test", "mailto:a@b.c"} {
		if p := checkTarget(".", target); p != "" {
			t.Errorf("checkTarget(%q) = %q, want clean", target, p)
		}
	}
	if p := checkTarget(".", ""); p == "" {
		t.Error("empty target should be reported")
	}
}
