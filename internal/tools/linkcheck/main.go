// Command linkcheck verifies the relative links in markdown files: every
// [text](target) whose target is a filesystem path must point at a file
// or directory that exists, resolved against the markdown file's own
// directory (absolute targets resolve against the repository root, i.e.
// the working directory). External schemes (http, https, mailto) and
// pure in-page anchors (#fragment) are skipped — this is a repo
// self-consistency check, not a crawler, so CI stays hermetic.
//
// Usage:
//
//	go run ./internal/tools/linkcheck README.md docs
//
// Arguments are markdown files or directories (scanned recursively for
// *.md). Exit status 1 lists every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir> ...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		found, err := collectMarkdown(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		files = append(files, found...)
	}
	broken := 0
	for _, file := range files {
		payload, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, l := range checkLinks(file, string(payload)) {
			fmt.Fprintf(os.Stderr, "%s:%d: broken link [%s](%s): %s\n",
				file, l.line, l.text, l.target, l.problem)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) in %d file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

func collectMarkdown(arg string) ([]string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{arg}, nil
	}
	var files []string
	err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

type brokenLink struct {
	line    int
	text    string
	target  string
	problem string
}

// checkLinks scans markdown source for inline links and images and
// returns the relative ones whose targets do not exist. The scan is a
// hand-rolled bracket matcher rather than a regexp so nested brackets
// in link text ([see [1]](x)) and parenthesized URLs behave; fenced
// code blocks and inline code spans are skipped so examples of link
// syntax are not checked.
func checkLinks(file, src string) []brokenLink {
	var out []brokenLink
	dir := filepath.Dir(file)
	line := 1
	inFence := strings.HasPrefix(src, "```") || strings.HasPrefix(src, "~~~")
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\n':
			line++
			rest := src[i+1:]
			if strings.HasPrefix(rest, "```") || strings.HasPrefix(rest, "~~~") {
				inFence = !inFence
			}
			continue
		case '`':
			if inFence {
				continue
			}
			// Skip an inline code span on this line.
			if end := strings.IndexByte(src[i+1:], '`'); end >= 0 && !strings.Contains(src[i+1:i+1+end], "\n") {
				i += end + 1
			}
			continue
		case '[':
			if inFence {
				continue
			}
		default:
			continue
		}
		// src[i] == '[': find the matching close bracket.
		depth, j := 1, i+1
		for ; j < len(src) && depth > 0; j++ {
			switch src[j] {
			case '[':
				depth++
			case ']':
				depth--
			case '\n':
				depth = -1 // links don't span lines in this repo's docs
			}
		}
		if depth != 0 || j >= len(src) || src[j] != '(' {
			continue
		}
		text := src[i+1 : j-1]
		// Balanced-paren scan for the target, so [x](design(v2).md) keeps
		// its whole path.
		pdepth, k := 1, j+1
		for ; k < len(src) && pdepth > 0; k++ {
			switch src[k] {
			case '(':
				pdepth++
			case ')':
				pdepth--
			case '\n':
				pdepth = -1
			}
		}
		if pdepth != 0 {
			continue
		}
		target := src[j+1 : k-1]
		i = k - 1
		// Strip an optional title: [x](path "title")
		if t := strings.IndexAny(target, " \t"); t >= 0 {
			target = target[:t]
		}
		if problem := checkTarget(dir, target); problem != "" {
			out = append(out, brokenLink{line: line, text: text, target: target, problem: problem})
		}
	}
	return out
}

// checkTarget classifies one link target; "" means fine.
func checkTarget(dir, target string) string {
	switch {
	case target == "":
		return "empty target"
	case strings.HasPrefix(target, "#"):
		return "" // in-page anchor; not checked
	case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
		return "" // external; CI stays offline
	}
	path := target
	if k := strings.IndexByte(path, '#'); k >= 0 {
		path = path[:k] // drop the fragment; check the file
	}
	if path == "" {
		return ""
	}
	if !filepath.IsAbs(path) {
		path = filepath.Join(dir, path)
	} else {
		path = filepath.Join(".", path)
	}
	if _, err := os.Stat(path); err != nil {
		return "target does not exist"
	}
	return ""
}
