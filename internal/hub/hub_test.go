package hub

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

func serverConfig() core.ServerConfig {
	return core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	}
}

func TestCreateLookupCloseLifecycle(t *testing.T) {
	h := New()
	ctx := context.Background()
	if _, ok := h.Task("alpha"); ok {
		t.Fatal("empty hub should have no tasks")
	}
	task, err := h.CreateTask(ctx, "alpha", serverConfig())
	if err != nil {
		t.Fatalf("CreateTask: %v", err)
	}
	if task.ID() != "alpha" || task.Server() == nil {
		t.Errorf("task = %+v", task)
	}
	got, ok := h.Task("alpha")
	if !ok || got != task {
		t.Error("lookup did not return the created task")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d, want 1", h.Len())
	}
	if err := h.CloseTask(ctx, "alpha"); err != nil {
		t.Fatalf("CloseTask: %v", err)
	}
	if _, ok := h.Task("alpha"); ok {
		t.Error("closed task still resolvable")
	}
	if !task.Server().Stopped() {
		t.Error("closing a task must stop its server")
	}
	if err := h.CloseTask(ctx, "alpha"); !errors.Is(err, ErrTaskNotFound) {
		t.Errorf("double close error = %v, want ErrTaskNotFound", err)
	}
	if !h.Closed("alpha") {
		t.Error("closed task should leave a tombstone")
	}
	if h.Closed("never-existed") {
		t.Error("unknown task must not read as closed")
	}
	// Re-creating the ID clears the tombstone.
	if _, err := h.CreateTask(ctx, "alpha", serverConfig()); err != nil {
		t.Fatalf("re-create after close: %v", err)
	}
	if h.Closed("alpha") {
		t.Error("re-created task should not read as closed")
	}
}

func TestCreateTaskValidation(t *testing.T) {
	h := New()
	ctx := context.Background()
	if _, err := h.CreateTask(ctx, "dup", serverConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateTask(ctx, "dup", serverConfig()); !errors.Is(err, ErrTaskExists) {
		t.Errorf("duplicate error = %v, want ErrTaskExists", err)
	}
	for _, bad := range []string{"", ".", "..", "has space", "a/b", "ünïcode", string(make([]byte, 200))} {
		if _, err := h.CreateTask(ctx, bad, serverConfig()); !errors.Is(err, ErrBadTaskID) {
			t.Errorf("CreateTask(%q) error = %v, want ErrBadTaskID", bad, err)
		}
	}
	// An invalid server config surfaces as an error, not a panic.
	if _, err := h.CreateTask(ctx, "nomodel", core.ServerConfig{}); err == nil {
		t.Error("expected error for incomplete server config")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := h.CreateTask(cancelled, "late", serverConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled-context error = %v, want context.Canceled", err)
	}
}

func TestDefaultTaskSelection(t *testing.T) {
	h := New()
	ctx := context.Background()
	if _, ok := h.DefaultTask(); ok {
		t.Fatal("empty hub should have no default task")
	}
	first, _ := h.CreateTask(ctx, "first", serverConfig())
	if d, ok := h.DefaultTask(); !ok || d != first {
		t.Error("first created task should be the default")
	}
	if _, err := h.CreateTask(ctx, "second", serverConfig()); err != nil {
		t.Fatal(err)
	}
	if d, _ := h.DefaultTask(); d != first {
		t.Error("creating a second task must not steal the default")
	}
	third, _ := h.CreateTask(ctx, "third", serverConfig(), AsDefault())
	if d, _ := h.DefaultTask(); d != third {
		t.Error("AsDefault should rebind the default task")
	}
	if err := h.SetDefaultTask("second"); err != nil {
		t.Fatal(err)
	}
	if d, _ := h.DefaultTask(); d.ID() != "second" {
		t.Error("SetDefaultTask did not rebind")
	}
	if err := h.SetDefaultTask("ghost"); !errors.Is(err, ErrTaskNotFound) {
		t.Errorf("SetDefaultTask(ghost) = %v, want ErrTaskNotFound", err)
	}
	// Closing the default leaves no default rather than a dangling one.
	if err := h.CloseTask(ctx, "second"); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.DefaultTask(); ok {
		t.Error("closed default task should clear the default")
	}
}

func TestTaskInfoDefaultsToID(t *testing.T) {
	h := New()
	task, err := h.CreateTask(context.Background(), "bare", serverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if task.Info().Name != "bare" {
		t.Errorf("Info().Name = %q, want task ID fallback", task.Info().Name)
	}
	named, err := h.CreateTask(context.Background(), "named", serverConfig(),
		WithInfo(TaskInfo{Name: "Display name", Objective: "why"}))
	if err != nil {
		t.Fatal(err)
	}
	if named.Info().Name != "Display name" || named.Info().Objective != "why" {
		t.Errorf("Info() = %+v", named.Info())
	}
}

func TestTasksSortedListing(t *testing.T) {
	h := New()
	ctx := context.Background()
	for _, id := range []string{"zebra", "alpha", "mid"} {
		if _, err := h.CreateTask(ctx, id, serverConfig()); err != nil {
			t.Fatal(err)
		}
	}
	tasks := h.Tasks()
	if len(tasks) != 3 {
		t.Fatalf("listing has %d tasks, want 3", len(tasks))
	}
	for i, want := range []string{"alpha", "mid", "zebra"} {
		if tasks[i].ID() != want {
			t.Errorf("tasks[%d] = %s, want %s", i, tasks[i].ID(), want)
		}
	}
}

// TestConcurrentMultiTaskCheckins drives concurrent device traffic into
// many tasks at once — the sharded registry plus per-task server locks
// must keep every update correct (run with -race).
func TestConcurrentMultiTaskCheckins(t *testing.T) {
	const (
		tasks     = 8
		devices   = 4
		perDevice = 25
	)
	h := New()
	ctx := context.Background()
	tokens := make([][]string, tasks)
	for ti := 0; ti < tasks; ti++ {
		task, err := h.CreateTask(ctx, fmt.Sprintf("task-%d", ti), serverConfig())
		if err != nil {
			t.Fatal(err)
		}
		tokens[ti] = make([]string, devices)
		for di := 0; di < devices; di++ {
			tok, err := task.Server().RegisterDevice(ctx, fmt.Sprintf("dev-%d", di))
			if err != nil {
				t.Fatal(err)
			}
			tokens[ti][di] = tok
		}
	}
	var wg sync.WaitGroup
	for ti := 0; ti < tasks; ti++ {
		for di := 0; di < devices; di++ {
			wg.Add(1)
			go func(ti, di int) {
				defer wg.Done()
				id := fmt.Sprintf("dev-%d", di)
				for n := 0; n < perDevice; n++ {
					task, ok := h.Task(fmt.Sprintf("task-%d", ti))
					if !ok {
						t.Errorf("task-%d vanished", ti)
						return
					}
					co, err := task.Server().Checkout(ctx, id, tokens[ti][di])
					if err != nil {
						t.Errorf("checkout: %v", err)
						return
					}
					req := &core.CheckinRequest{
						Grad:        make([]float64, 4),
						NumSamples:  1,
						LabelCounts: []int{1, 0},
						Version:     co.Version,
					}
					if err := task.Server().Checkin(ctx, id, tokens[ti][di], req); err != nil {
						t.Errorf("checkin: %v", err)
						return
					}
				}
			}(ti, di)
		}
	}
	wg.Wait()
	for ti := 0; ti < tasks; ti++ {
		task, _ := h.Task(fmt.Sprintf("task-%d", ti))
		if got := task.Server().Iteration(); got != devices*perDevice {
			t.Errorf("task-%d iterations = %d, want %d", ti, got, devices*perDevice)
		}
	}
}

// BenchmarkHubCheckout measures parallel authenticated checkouts against
// one task resolved through the hub — the full portal-scale read path
// (registry lookup + lock-free snapshot read). It should scale with
// GOMAXPROCS: no stage of it takes a write lock.
func BenchmarkHubCheckout(b *testing.B) {
	h := New()
	ctx := context.Background()
	task, err := h.CreateTask(ctx, "bench", core.ServerConfig{
		Model:   model.NewLogisticRegression(10, 50),
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	token, err := task.Server().RegisterDevice(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			task, _ := h.Task("bench")
			if _, err := task.Server().Checkout(ctx, "bench", token); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkHubCheckin measures parallel authenticated checkins spread
// across N tasks on one hub. Task count 1 measures single-task batched
// checkin throughput; higher counts show how far independent tasks scale
// on the sharded registry.
func BenchmarkHubCheckin(b *testing.B) {
	for _, tasks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			h := New()
			ctx := context.Background()
			tokens := make([]string, tasks)
			for ti := 0; ti < tasks; ti++ {
				task, err := h.CreateTask(ctx, fmt.Sprintf("task-%d", ti), core.ServerConfig{
					Model:   model.NewLogisticRegression(10, 50),
					Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
				})
				if err != nil {
					b.Fatal(err)
				}
				tokens[ti], err = task.Server().RegisterDevice(ctx, "bench")
				if err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Spread workers round-robin over the tasks.
				ti := int(next.Add(1)) % tasks
				req := &core.CheckinRequest{
					Grad:        make([]float64, 10*50),
					NumSamples:  20,
					LabelCounts: make([]int, 10),
				}
				for pb.Next() {
					task, _ := h.Task(fmt.Sprintf("task-%d", ti))
					if err := task.Server().Checkin(ctx, "bench", tokens[ti], req); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
