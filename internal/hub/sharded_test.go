package hub

import (
	"context"
	"errors"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// fakeRouter is a minimal ShardRouter for registry tests; only the
// identity methods matter here.
type fakeRouter struct {
	id      string
	members []string
}

func (f *fakeRouter) LogicalID() string   { return f.id }
func (f *fakeRouter) Info() TaskInfo      { return TaskInfo{Name: f.id} }
func (f *fakeRouter) MemberIDs() []string { return f.members }
func (f *fakeRouter) MapVersion() int     { return 1 }
func (f *fakeRouter) RouteDevice(deviceID string) string {
	return f.members[0]
}
func (f *fakeRouter) Checkout(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeRouter) Checkin(ctx context.Context, deviceID, token string, req *core.CheckinRequest) error {
	return errors.New("not implemented")
}
func (f *fakeRouter) Register(ctx context.Context, deviceID string) (string, error) {
	return "", errors.New("not implemented")
}
func (f *fakeRouter) MergedStats() ShardedStats   { return ShardedStats{} }
func (f *fakeRouter) ShardRows() []ShardHealthRow { return nil }

func shardedTestConfig() core.ServerConfig {
	return core.ServerConfig{
		Model:   model.NewLogisticRegression(2, 3),
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	}
}

func TestMountShardRouter(t *testing.T) {
	ctx := context.Background()
	h := New()
	for _, id := range []string{"act.shard-0", "act.shard-1"} {
		if _, err := h.CreateTask(ctx, id, shardedTestConfig()); err != nil {
			t.Fatal(err)
		}
	}
	r := &fakeRouter{id: "act", members: []string{"act.shard-0", "act.shard-1"}}
	if err := h.MountShardRouter(r); err != nil {
		t.Fatalf("mount: %v", err)
	}

	if got, ok := h.ShardRouterFor("act"); !ok || got != ShardRouter(r) {
		t.Fatalf("ShardRouterFor(act) = %v, %v", got, ok)
	}
	if logical, ok := h.ShardMemberOf("act.shard-1"); !ok || logical != "act" {
		t.Fatalf("ShardMemberOf(act.shard-1) = %q, %v", logical, ok)
	}
	if _, ok := h.ShardMemberOf("act"); ok {
		t.Error("the logical ID itself reports as a member")
	}
	if rs := h.ShardRouters(); len(rs) != 1 || rs[0].LogicalID() != "act" {
		t.Fatalf("ShardRouters() = %v", rs)
	}

	// The logical ID is now reserved: no plain task and no second router.
	if _, err := h.CreateTask(ctx, "act", shardedTestConfig()); !errors.Is(err, ErrTaskExists) {
		t.Fatalf("CreateTask(logical id) err = %v, want ErrTaskExists", err)
	}
	if err := h.MountShardRouter(&fakeRouter{id: "act", members: []string{"act.shard-0"}}); !errors.Is(err, ErrTaskExists) {
		t.Fatalf("double mount err = %v, want ErrTaskExists", err)
	}
	// Members cannot be claimed by a second router either.
	if err := h.MountShardRouter(&fakeRouter{id: "other", members: []string{"act.shard-0"}}); !errors.Is(err, ErrTaskExists) {
		t.Fatalf("member steal err = %v, want ErrTaskExists", err)
	}

	h.UnmountShardRouter("act")
	if _, ok := h.ShardRouterFor("act"); ok {
		t.Error("router still resolvable after unmount")
	}
	if _, ok := h.ShardMemberOf("act.shard-0"); ok {
		t.Error("membership survives unmount")
	}
	// The ID is free again.
	if _, err := h.CreateTask(ctx, "act", shardedTestConfig()); err != nil {
		t.Fatalf("CreateTask after unmount: %v", err)
	}
}

func TestMountShardRouterValidation(t *testing.T) {
	ctx := context.Background()
	h := New()
	if err := h.MountShardRouter(nil); err == nil {
		t.Error("mount(nil) did not error")
	}
	if err := h.MountShardRouter(&fakeRouter{id: "bad/id", members: []string{"m"}}); !errors.Is(err, ErrBadTaskID) {
		t.Errorf("mount(bad id) err = %v, want ErrBadTaskID", err)
	}
	if err := h.MountShardRouter(&fakeRouter{id: "empty"}); err == nil {
		t.Error("mount(no members) did not error")
	}
	// Members must already be hosted.
	if err := h.MountShardRouter(&fakeRouter{id: "act", members: []string{"act.shard-0"}}); !errors.Is(err, ErrTaskNotFound) {
		t.Errorf("mount(missing member) err = %v, want ErrTaskNotFound", err)
	}
	// A hosted task's ID cannot become a logical ID.
	if _, err := h.CreateTask(ctx, "taken", shardedTestConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateTask(ctx, "taken.shard-0", shardedTestConfig()); err != nil {
		t.Fatal(err)
	}
	if err := h.MountShardRouter(&fakeRouter{id: "taken", members: []string{"taken.shard-0"}}); !errors.Is(err, ErrTaskExists) {
		t.Errorf("mount(over live task) err = %v, want ErrTaskExists", err)
	}
}
