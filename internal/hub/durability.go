package hub

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/store"
)

// ErrSkipTask is returned by a Restore configuration callback to leave a
// persisted task unopened (its state stays in the store untouched).
var ErrSkipTask = errors.New("crowdml: skip restoring this task")

// CheckpointPolicy controls when a task's asynchronous checkpointer
// snapshots the server state. The journal makes every acknowledged
// checkin durable on its own, so checkpoints only bound replay time —
// both triggers coalesce: however many checkins arrive between
// snapshots, each trigger writes one.
type CheckpointPolicy struct {
	// Every checkpoints on a timer (when any checkin arrived since the
	// last snapshot). 0 disables the timer.
	Every time.Duration
	// AfterN checkpoints once this many checkins accumulated since the
	// last snapshot. 0 disables the count trigger.
	AfterN int
}

// withDefaults returns the policy CreateTask actually runs: a task with
// a store but no explicit policy checkpoints once a minute.
func (p CheckpointPolicy) withDefaults() CheckpointPolicy {
	if p.Every <= 0 && p.AfterN <= 0 {
		p.Every = time.Minute
	}
	return p
}

// SyncPolicy selects how hard the write-ahead journal pushes each entry
// toward stable storage — the durability/throughput trade for a durable
// task.
type SyncPolicy int

const (
	// SyncNone (the default) flushes each entry to the OS without
	// fsyncing: every acknowledged checkin survives a crash of the
	// server process, but a kernel panic or power loss may lose the
	// newest entries. This is the cheapest policy and the pre-SyncPolicy
	// behavior.
	SyncNone SyncPolicy = iota
	// SyncBatch is group-commit fsync: the batch leader fsyncs the
	// journal ONCE per applied batch, after the batch's entries are
	// appended and before any of its Checkin calls return. Acknowledged
	// checkins then survive power loss, at a cost amortized over the
	// whole batch — under load, a fraction of a per-entry fsync each.
	SyncBatch
	// SyncEvery fsyncs after every single append — power-loss durability
	// with no batching window at all, at full per-entry fsync cost.
	// SyncBatch gives the same guarantee for acknowledged checkins
	// (nothing is acknowledged before the batch's sync); SyncEvery only
	// narrows the window for entries whose acknowledgment never
	// happened, so it is rarely worth its price.
	SyncEvery
)

// WithSyncPolicy sets a durable task's journal fsync policy; it only
// has an effect together with WithStore. The zero policy is SyncNone.
func WithSyncPolicy(p SyncPolicy) TaskOption {
	return func(o *createOptions) { o.sync = p }
}

// retention modes (see RetentionPolicy).
const (
	retentionKeep = iota
	retentionPrune
	retentionArchive
)

// RetentionPolicy decides what happens to sealed journal segments a
// checkpoint fully covers. The checkpointer applies the policy after
// each successful Save+Rotate cycle — and ONLY then: a failed rotation
// skips retention entirely (the covered entries still sit in the live
// segment), the live segment is never touched, and a segment whose last
// iteration exceeds the new checkpoint's iteration is never touched
// either. Retention is disk bookkeeping, not durability: every pruned
// entry is covered by a durable checkpoint, so no policy can ever cost
// an acknowledged checkin.
type RetentionPolicy struct {
	mode int
	dir  string
}

// KeepAll — the default — retains every sealed segment forever as the
// audit trail (the pre-retention behavior); disk use grows with
// lifetime checkin volume.
var KeepAll = RetentionPolicy{}

// PruneCovered deletes sealed segments once the latest checkpoint
// covers their last entry, bounding disk use by checkpoint cadence at
// the price of the audit trail.
var PruneCovered = RetentionPolicy{mode: retentionPrune}

// ArchiveCovered moves covered sealed segments into dir instead of
// deleting them: the store directory stays bounded like PruneCovered,
// while the audit trail lives on in dir as plain JSONL segment files
// (both backends write the same artifact).
func ArchiveCovered(dir string) RetentionPolicy {
	return RetentionPolicy{mode: retentionArchive, dir: dir}
}

// WithRetention sets a durable task's segment retention policy; it only
// has an effect together with WithStore, and requires a store
// implementing store.SegmentRetainer (both shipped stores do) for any
// policy other than KeepAll. The zero policy is KeepAll.
func WithRetention(p RetentionPolicy) TaskOption {
	return func(o *createOptions) { o.retention = p }
}

// WithStore attaches a durability store to the task. CreateTask then
// restores any persisted state (latest checkpoint + deterministic replay
// of the live journal segments) before the task is registered, journals
// every applied checkin write-ahead of its acknowledgment, and runs an
// asynchronous checkpointer per WithCheckpointPolicy — which also
// rotates the journal onto a fresh segment after each successful
// snapshot, keeping restart time bounded by checkpoint cadence while
// sealed segments accumulate as the audit trail. Journal fsync behavior
// is WithSyncPolicy's. Hub.Close (or CloseTask) flushes a final
// snapshot and closes the journal.
func WithStore(st store.Store) TaskOption {
	return func(o *createOptions) { o.store = st }
}

// WithCheckpointPolicy sets the task's checkpoint cadence; it only has
// an effect together with WithStore. The zero policy means the default
// (checkpoint once a minute).
func WithCheckpointPolicy(p CheckpointPolicy) TaskOption {
	return func(o *createOptions) { o.policy = p }
}

// durability is the per-task persistence engine: the write-ahead journal
// hook plus the coalescing asynchronous checkpointer. The hook runs on
// the batch leader OUTSIDE the server's parameter lock (the PR 2 hot
// path is untouched); the checkpointer runs on its own goroutine and
// never blocks checkins at all.
type durability struct {
	st        store.Store
	journal   store.Journal
	user      func(ctx context.Context, deviceID string, iteration int, req *core.CheckinRequest)
	userBatch func(n int)  // the user's own OnBatchCommit, chained after the sync
	srv       *core.Server // set once the server exists, before any traffic

	policy    CheckpointPolicy
	sync      SyncPolicy
	retention RetentionPolicy
	m         *durMetrics   // nil disables durability telemetry
	dirty     atomic.Int64  // checkins journaled since the last snapshot
	kick      chan struct{} // AfterN trigger (capacity 1, coalescing)
	stopCh    chan struct{}
	doneCh    chan struct{}

	// failed latches on the first journal-append failure: the WAL can no
	// longer honor "every acknowledged checkin is durable", so the task
	// fail-stops (see onCheckin) rather than silently widening the loss —
	// and no later append may succeed, which would leave a hole that
	// breaks replay contiguity on recovery. preFailStopped captures the
	// learning-rule stop state at the moment of failure, so close() can
	// persist THAT instead of the fail-stop latch — a transient disk
	// error must not brick the task across restarts.
	failed         atomic.Bool
	preFailStopped atomic.Bool

	// stopOnce guards stopCh against double close across retried closes.
	stopOnce sync.Once

	// closeMu fences the journal against close: the hook appends under
	// the read lock, and close() takes the write lock to set closing —
	// which both drains every in-flight append and makes later hooks skip
	// journaling. An append racing journal.Close would otherwise latch a
	// bogus fail-stop from the spurious error. Skipping loses nothing:
	// close() stops the server BEFORE its state export, so any checkin
	// whose hook got this far is covered by the final checkpoint.
	closeMu sync.RWMutex
	closing bool

	mu        sync.Mutex
	asyncErr  []error       // failures on the async paths, surfaced by close
	closed    bool          // fully flushed; latched only on flush success
	closeBusy bool          // a close attempt is in flight
	closeWait chan struct{} // closed when the in-flight attempt finishes
	// persistStopped is the stop flag the final checkpoint should carry,
	// decided once on the first close attempt (before close's own
	// administrative Stop latches the server) so a RETRIED close after a
	// flush failure does not mistake that Stop for learning state.
	persistStopped bool
	stopDecided    bool
}

func newDurability(st store.Store, journal store.Journal, policy CheckpointPolicy, sync SyncPolicy,
	retention RetentionPolicy,
	user func(context.Context, string, int, *core.CheckinRequest), userBatch func(int)) *durability {
	return &durability{
		st: st, journal: journal, user: user, userBatch: userBatch,
		policy:    policy.withDefaults(),
		sync:      sync,
		retention: retention,
		kick:      make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
}

// onCheckin is the ServerConfig.OnCheckin hook CreateTask installs. Per
// the core contract it runs after the checkin is applied in memory but
// before the originating Checkin call returns — so the journal record is
// durable before the device ever sees an acknowledgment, and before the
// user's own OnCheckin hook observes the iteration.
func (d *durability) onCheckin(ctx context.Context, deviceID string, iteration int, req *core.CheckinRequest) {
	d.journalCheckin(ctx, deviceID, iteration, req)
	if d.user != nil {
		d.user(ctx, deviceID, iteration, req)
	}
}

// journalCheckin appends the WAL record under closeMu's read lock. The
// lock is scoped to the journaling alone — never the user hook — so a
// hook that itself closes the task cannot deadlock against close()'s
// write lock.
func (d *durability) journalCheckin(ctx context.Context, deviceID string, iteration int, req *core.CheckinRequest) {
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.failed.Load() || d.closing {
		return
	}
	entry := store.JournalEntry{
		AtUnixMillis: time.Now().UnixMilli(),
		DeviceID:     deviceID,
		Iteration:    iteration,
		NumSamples:   req.NumSamples,
		ErrCount:     req.ErrCount,
		GradNorm1:    linalg.Norm1(req.Grad),
		Grad:         req.Grad,
		LabelCounts:  req.LabelCounts,
		Version:      req.Version,
	}
	// The checkin is already applied to the model; the record must be
	// written even if the device's request context has been cancelled.
	if err := d.journal.Append(context.WithoutCancel(ctx), entry); err != nil {
		if d.m != nil {
			d.m.appendFailures.Inc()
		}
		d.failStop(fmt.Errorf("journal append at iteration %d failed; task stopped: %w", iteration, err))
	} else {
		if d.m != nil {
			d.m.appends.Inc()
		}
		if d.sync == SyncEvery {
			done := d.m.observeSync()
			err := d.journal.Sync(context.WithoutCancel(ctx))
			done()
			if err != nil {
				d.failStop(fmt.Errorf("journal sync at iteration %d failed; task stopped: %w", iteration, err))
			}
		}
	}
	n := d.dirty.Add(1)
	if d.policy.AfterN > 0 && n >= int64(d.policy.AfterN) {
		select {
		case d.kick <- struct{}{}:
		default: // a kick is already pending; it will see this checkin too
		}
	}
}

func (d *durability) recordErr(err error) {
	d.mu.Lock()
	d.asyncErr = append(d.asyncErr, err)
	d.mu.Unlock()
}

// failStop latches the WAL-broken state: the journal can no longer
// honor "every acknowledged checkin is durable", so the task stops
// accepting checkins (keeping the at-risk window as narrow as one
// batch), no later append may succeed behind the failure (a hole would
// break replay contiguity), and the error surfaces at Close. The
// learning-rule stop state is captured first: the fail-stop is
// operational, and must not be persisted as learning state.
func (d *durability) failStop(err error) {
	d.preFailStopped.Store(d.srv.Stopped())
	d.failed.Store(true)
	d.srv.Stop()
	if d.m != nil {
		d.m.failStops.Inc()
	}
	d.recordErr(err)
}

// onBatchCommit is the core.ServerConfig.OnBatchCommit hook CreateTask
// installs under SyncBatch: one fsync per applied batch, after the
// batch's journal appends and before any of its Checkin calls return —
// group commit. A sync failure fail-stops exactly like an append
// failure: the batch's entries may not be on stable storage, so the
// task must not keep widening the at-risk window.
func (d *durability) onBatchCommit(n int) {
	d.syncBatch()
	if d.userBatch != nil {
		d.userBatch(n)
	}
}

// syncBatch performs the group-commit fsync under closeMu's read lock
// (scoped like journalCheckin's: never around the user hook, so a hook
// that closes the task cannot deadlock against close()).
func (d *durability) syncBatch() {
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.failed.Load() || d.closing {
		return
	}
	done := d.m.observeSync()
	err := d.journal.Sync(context.Background())
	done()
	if err != nil {
		d.failStop(fmt.Errorf("journal group-commit sync failed; task stopped: %w", err))
	}
}

// run is the checkpointer goroutine: it waits for a trigger, then writes
// one snapshot covering every checkin journaled so far. Started before
// the task is registered; stopped by close.
func (d *durability) run() {
	defer close(d.doneCh)
	var tick <-chan time.Time
	if d.policy.Every > 0 {
		ticker := time.NewTicker(d.policy.Every)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-d.stopCh:
			return
		case <-d.kick:
		case <-tick:
		}
		if d.dirty.Load() == 0 {
			continue
		}
		d.save(context.Background())
	}
}

// save snapshots the server state, then rotates the journal onto a
// fresh segment. ExportState takes the apply lock for the duration of
// one state copy — the same cost a stats export pays — so checkpointing
// throttles the write path only for that copy, never for the Store.Save
// I/O itself.
func (d *durability) save(ctx context.Context) {
	n := d.dirty.Load()
	state := d.srv.ExportState()
	// Scrub the fail-stop latch exactly as close() does: it is
	// operational, not learning state, and a snapshot that persisted it
	// would brick the task across a crash that follows a transient
	// journal error. (failed is checked AFTER the export: the fail-stop
	// stores preFailStopped and failed before it stops the server, so an
	// export that saw the stop also sees failed here.)
	if d.failed.Load() {
		state.Stopped = d.preFailStopped.Load()
	}
	if err := d.st.Save(ctx, state, time.Now()); err != nil {
		if d.m != nil {
			d.m.checkpointFailures.Inc()
		}
		d.recordErr(fmt.Errorf("checkpoint: %w", err))
		return
	}
	if d.m != nil {
		d.m.checkpointSaves.Inc()
	}
	// Checkins that raced in between the Load and the export are covered
	// by the snapshot too; counting them as still-dirty only means one
	// redundant save later, never a lost one.
	d.dirty.Add(-n)
	if d.rotate(ctx) {
		d.retain(ctx, state.Iteration)
	}
}

// rotate seals the live journal segment behind a successful checkpoint,
// reporting whether the seal actually happened (retention runs only
// then). Ordering makes the crash windows safe in both directions:
// entries appended between the state export and the rotation land in
// the old segment with iterations ABOVE the checkpoint's, and restore's
// cursor walks back past the newest segment whenever its first entry is
// not covered — so a crash between checkpoint success and the seal (or
// a failed rotation, which is recorded and retried at the next
// checkpoint) costs only bounded extra reading, never correctness.
// Skipped once the task is closing (the journal is being fenced; the
// final checkpoint covers everything) or fail-stopped.
func (d *durability) rotate(ctx context.Context) bool {
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.failed.Load() || d.closing {
		return false
	}
	if err := d.journal.Rotate(ctx); err != nil {
		d.recordErr(fmt.Errorf("rotate journal: %w", err))
		return false
	}
	if d.m != nil {
		d.m.rotations.Inc()
		d.m.updateSegmentGauge(ctx, d.st)
	}
	return true
}

// retain applies the task's RetentionPolicy after a successful
// checkpoint-and-rotate cycle: sealed segments whose last iteration the
// fresh checkpoint (at coveredIteration) covers are pruned or archived
// by the store. Never reached on a failed rotation — the covered
// entries would still sit in the live segment, which retention must not
// touch — and the store itself re-checks coverage per segment, so
// entries that raced past the checkpoint's iteration are always kept.
// A retention failure is bookkeeping, not data loss: it is recorded for
// Close and retried after the next checkpoint.
func (d *durability) retain(ctx context.Context, coveredIteration int) {
	if d.retention.mode == retentionKeep {
		return
	}
	retainer, ok := d.st.(store.SegmentRetainer)
	if !ok {
		return // CreateTask validated this; a wrapper store may still hide it
	}
	pruned, err := retainer.PruneSegments(ctx, coveredIteration, d.retention.dir)
	if err != nil {
		d.recordErr(fmt.Errorf("segment retention: %w", err))
	}
	// An interrupted prune still removed the segments it reports; count
	// them and refresh the gauge regardless of the error.
	if d.m != nil {
		d.m.prunedSegments.Add(uint64(len(pruned)))
		d.m.updateSegmentGauge(ctx, d.st)
	}
}

// close stops the checkpointer, stops the server, writes the final
// snapshot, closes the journal, and reports every error the async paths
// accumulated. Stopping the server before the final export closes the
// shutdown loss window: a checkin not yet applied when the stop latches
// is rejected (ErrStopped, never acknowledged), so nothing acknowledged
// can postdate the final checkpoint. The stop is shutdown mechanics, not
// learning state — the snapshot records the server's pre-shutdown
// stopped flag, so a restored task resumes accepting checkins unless the
// learning rule (or CloseTask) had already stopped it.
//
// The flushed latch is set only when the flush SUCCEEDS: a close that
// failed on a wedged or full store returns its error and may be retried
// (Hub.Close and a flush-failed CloseTask leave the task reachable for
// exactly that); once a close succeeds, later calls return nil.
func (d *durability) close(ctx context.Context) error {
	// Claim the single close slot, or wait for the attempt already in
	// flight and then re-check: a concurrent closer must not report
	// success (and, in CloseTask's case, deregister the task) while the
	// real flush is still running and may yet fail.
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return nil
		}
		if !d.closeBusy {
			d.closeBusy = true
			d.closeWait = make(chan struct{})
			d.mu.Unlock()
			break
		}
		wait := d.closeWait
		d.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return fmt.Errorf("waiting on a concurrent durability close: %w", ctx.Err())
		}
	}
	done := func(final bool, errs ...error) error {
		d.mu.Lock()
		d.closeBusy = false
		d.closed = final
		close(d.closeWait)
		errs = append(errs, d.asyncErr...)
		d.asyncErr = nil
		d.mu.Unlock()
		return errors.Join(errs...)
	}
	d.stopOnce.Do(func() { close(d.stopCh) })
	select {
	case <-d.doneCh:
	case <-ctx.Done():
		// The checkpointer is wedged in a hung Store.Save; hand the caller
		// its deadline back and leave the latch open for a retry once the
		// store recovers. (The checkpointer goroutine itself exits when
		// the wedged Save returns and does not restart — the journal still
		// records every checkin, so nothing is lost, but snapshots resume
		// only after a successful retried close... which is the only
		// supported continuation: close again, don't keep serving.)
		return done(false, fmt.Errorf("checkpointer did not stop before the deadline: %w", ctx.Err()))
	}
	d.mu.Lock()
	if !d.stopDecided {
		// Decide what stop flag to persist BEFORE close's own Stop below
		// latches the server (a retried close must not mistake it for
		// learning state), and likewise ignore a fail-stop latch — both
		// are operational; only the learning rule's (or CloseTask's
		// pre-existing) verdict belongs in the checkpoint.
		d.persistStopped = d.srv.Stopped()
		if d.failed.Load() {
			d.persistStopped = d.preFailStopped.Load()
		}
		d.stopDecided = true
	}
	stopped := d.persistStopped
	d.mu.Unlock()
	d.srv.Stop()
	state := d.srv.ExportState() // wMu barrier: everything applied so far
	state.Stopped = stopped
	if err := d.st.Save(ctx, state, time.Now()); err != nil {
		// The journal stays open and hooks keep appending: every
		// acknowledged checkin remains durable in the WAL even though the
		// snapshot failed, and a retried close re-exports and re-saves.
		return done(false, fmt.Errorf("final checkpoint: %w", err))
	}
	// Only now fence the journal — the fence drains in-flight hook
	// appends and makes later hooks skip journaling. Any checkin those
	// late hooks represent was applied before the Stop above, so the
	// just-written checkpoint already covers it durably; fencing earlier
	// would instead leave such checkins nowhere if the Save had failed.
	d.closeMu.Lock()
	d.closing = true
	d.closeMu.Unlock()
	var errs []error
	if err := d.journal.Close(); err != nil {
		errs = append(errs, fmt.Errorf("close journal: %w", err))
	}
	return done(len(errs) == 0, errs...)
}

// restoreInto reconstructs a freshly built server from its store: load
// the latest checkpoint (if any), then deterministically replay the
// journal tail, landing on the exact pre-crash iteration, parameters and
// totals. The tail is STREAMED — Store.OpenCursor picks the trailing
// segments the checkpoint does not cover and Server.Replay pulls one
// entry at a time — so both restart time and restore memory are bounded
// by checkpoint cadence (the checkpointer rotates after every
// successful snapshot), not by how many checkins the task has absorbed
// in its life. A torn final journal record (ErrJournalTruncated from
// the cursor) is tolerated as a clean end of stream — it was never
// durable, so its checkin was never acknowledged. Entries written by
// the v1 audit-only journal carry no gradient and cannot be replayed;
// they are skipped (the checkpoint is the best v1 could do).
func restoreInto(ctx context.Context, srv *core.Server, st store.Store, taskID string) error {
	covered := 0 // the checkpoint's iteration: entries at or below it are covered
	cp, err := st.Load(ctx)
	switch {
	case errors.Is(err, store.ErrNoCheckpoint):
	case err != nil:
		return fmt.Errorf("task %q: load checkpoint: %w", taskID, err)
	default:
		if err := srv.ImportState(cp.State); err != nil {
			return fmt.Errorf("task %q: restore checkpoint: %w", taskID, err)
		}
		covered = cp.State.Iteration
	}
	cur, err := st.OpenCursor(ctx, covered)
	if err != nil {
		return fmt.Errorf("task %q: open journal cursor: %w", taskID, err)
	}
	defer cur.Close()
	if _, err := srv.Replay(func() (core.ReplayRecord, error) {
		for {
			e, err := cur.Next()
			if errors.Is(err, io.EOF) || errors.Is(err, store.ErrJournalTruncated) {
				return core.ReplayRecord{}, io.EOF
			}
			if err != nil {
				return core.ReplayRecord{}, err
			}
			if !e.Replayable() {
				continue
			}
			// The cursor allocates fresh slices per entry, so handing them
			// to the request is safe; Replay consumes the record before
			// pulling the next one — O(one entry) resident.
			return core.ReplayRecord{
				DeviceID:  e.DeviceID,
				Iteration: e.Iteration,
				Req: &core.CheckinRequest{
					Grad:        e.Grad,
					NumSamples:  e.NumSamples,
					ErrCount:    e.ErrCount,
					LabelCounts: e.LabelCounts,
					Version:     e.Version,
				},
			}, nil
		}
	}); err != nil {
		return fmt.Errorf("task %q: replay journal: %w", taskID, err)
	}
	return nil
}

// TaskConfig supplies the runtime configuration for a persisted task
// being restored — the parts a Store cannot hold (the model, the
// updater, portal metadata). Return ErrSkipTask to leave the task's
// state in the store without hosting it.
type TaskConfig func(taskID string) (core.ServerConfig, []TaskOption, error)

// Restore reconstructs every task persisted under root: List the task
// IDs, obtain each task's runtime configuration from configure, and
// CreateTask with the task's store attached — which loads the latest
// checkpoint, replays the journal tail, and resumes journaling and
// checkpointing. It returns the restored tasks. On error, tasks already
// restored stay hosted (the caller owns the hub and can Close it).
func (h *Hub) Restore(ctx context.Context, root store.Root, configure TaskConfig) ([]*Task, error) {
	ids, err := root.List(ctx)
	if err != nil {
		return nil, fmt.Errorf("crowdml: list persisted tasks: %w", err)
	}
	var out []*Task
	for _, id := range ids {
		if !ValidTaskID(id) {
			// Never a crowdml store: CreateTask enforces the ID charset, so
			// the hub could not have written it. Skipping keeps a stray
			// directory under a file root (lost+found, an operator's backup
			// copy) from aborting the whole restore.
			continue
		}
		cfg, opts, err := configure(id)
		if errors.Is(err, ErrSkipTask) {
			continue
		}
		if err != nil {
			return out, fmt.Errorf("task %q: configure: %w", id, err)
		}
		st, err := root.Open(ctx, id)
		if err != nil {
			return out, fmt.Errorf("task %q: open store: %w", id, err)
		}
		task, err := h.CreateTask(ctx, id, cfg, append(opts, WithStore(st))...)
		if err != nil {
			return out, err
		}
		out = append(out, task)
	}
	return out, nil
}

// Close flushes durability for every hosted task: each task's
// checkpointer is stopped, its server is stopped (so no checkin can be
// acknowledged past its final snapshot — devices get ErrStopped, and
// checkouts still answer, with Done set), a final snapshot is written,
// and the journal is closed; tasks without a store are untouched. The
// stop is not persisted as learning state: a hub reopened from the same
// stores resumes every task. Errors
// are collected per task (prefixed with the task ID) and joined, so one
// failing store never hides another task's flush failure. Idempotent.
func (h *Hub) Close(ctx context.Context) error {
	var errs []error
	for _, t := range h.Tasks() {
		if err := t.closeDurability(ctx); err != nil {
			errs = append(errs, fmt.Errorf("task %q: %w", t.id, err))
		}
	}
	return errors.Join(errs...)
}
