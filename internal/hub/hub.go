// Package hub hosts many named Crowd-ML learning tasks inside one server
// process. The paper's Web portal (Section V-A) assumes a portal listing
// multiple crowd-learning tasks that devices can browse and join; Hub is
// the server-side registry backing that design: each task is an
// independent core.Server (Algorithm 2 instance) addressed by a stable
// task ID, and the HTTP layer routes /v1/tasks/{id}/... requests to it.
//
// The registry is sharded: task IDs hash onto a fixed set of
// independently locked shards, so concurrent checkins to different tasks
// never contend on one registry mutex. Within a task, the core.Server hot
// path is built for read-mostly concurrency: checkouts and stats reads
// are lock-free (immutable parameter snapshots, atomic counters, a
// hash-striped device registry), and concurrent checkins are applied in
// groups by a batch leader under a single parameter-lock acquisition —
// see core.ServerConfig's CheckinBatchSize/CheckinQueueDepth/
// CheckinFlushInterval knobs, which CreateTask passes through untouched.
//
// Durability is hub-managed (the MySQL role of the paper's prototype):
// CreateTask(..., WithStore(st)) makes a task durable — restored from
// its store before registration, write-ahead journaled on every applied
// checkin, snapshotted asynchronously per WithCheckpointPolicy — and
// Hub.Restore/Hub.Close handle whole-process restart and shutdown. See
// durability.go.
package hub

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
)

// NumShards is the number of independently locked registry shards.
const NumShards = 16

// maxTombstonesPerShard bounds the per-shard memory spent remembering
// closed task IDs (see Hub.Closed).
const maxTombstonesPerShard = 1024

var (
	// ErrTaskExists is returned by CreateTask for a duplicate task ID.
	ErrTaskExists = errors.New("crowdml: task already exists")

	// ErrTaskNotFound is returned when a task ID resolves to nothing —
	// it was never created, or it has been closed.
	ErrTaskNotFound = errors.New("crowdml: task not found")

	// ErrBadTaskID is returned for task IDs that are empty, too long, or
	// contain characters outside [A-Za-z0-9._-] (task IDs appear in URL
	// paths and on-disk state directories).
	ErrBadTaskID = errors.New("crowdml: invalid task id")
)

// TaskInfo describes a crowd-learning task to prospective participants —
// the transparency details the paper's portal lists: objective, sensory
// data collected, labels collected, learning algorithm, and the privacy
// budget each contribution spends.
type TaskInfo struct {
	// Name is the task's display name.
	Name string
	// Objective explains what is being learned and why.
	Objective string
	// SensorData describes what raw data devices process locally.
	SensorData string
	// Labels names the target classes.
	Labels []string
	// Algorithm describes the learner (e.g. "multiclass logistic
	// regression via private distributed SGD").
	Algorithm string
	// Budget is the per-checkin privacy budget, displayed with its
	// composed total so participants can judge the privacy level.
	Budget privacy.Budget
}

// Task is one hosted learning task: a core.Server plus its portal
// metadata and (with WithStore) its durability engine. Tasks are created
// with Hub.CreateTask and remain valid (but stopped) after Hub.CloseTask
// removes them from the registry.
type Task struct {
	id     string
	server *core.Server
	info   TaskInfo
	dur    *durability // nil without WithStore
	// replicaOf is the leader base URL for a follower replica task
	// (AsReplicaOf); "" for a leader-role task. probe is the replication
	// runtime's telemetry hook (see BindReplicaProbe in replica.go).
	replicaOf string
	probe     probeBox
}

// ID returns the task's registry key.
func (t *Task) ID() string { return t.id }

// Server returns the task's underlying Crowd-ML server.
func (t *Task) Server() *core.Server { return t.server }

// Info returns the task's portal metadata.
func (t *Task) Info() TaskInfo { return t.info }

// Store returns the durability store attached with WithStore, or nil.
func (t *Task) Store() store.Store {
	if t.dur == nil {
		return nil
	}
	return t.dur.st
}

// closeDurability flushes and shuts down the task's durability engine
// (final snapshot + journal close). No-op for tasks without a store or
// whose durability was already closed.
func (t *Task) closeDurability(ctx context.Context) error {
	if t.dur == nil {
		return nil
	}
	return t.dur.close(ctx)
}

// TaskOption customizes CreateTask.
type TaskOption func(*createOptions)

type createOptions struct {
	info      TaskInfo
	asDefault bool
	store     store.Store
	policy    CheckpointPolicy
	sync      SyncPolicy
	retention RetentionPolicy
	replicaOf string
	metrics   *telemetry.Registry
}

// WithInfo attaches portal metadata to the task. When the info has no
// Name, the task ID is used.
func WithInfo(info TaskInfo) TaskOption {
	return func(o *createOptions) { o.info = info }
}

// AsDefault makes the new task the hub's default task — the one the
// legacy single-task /v1/* endpoints are aliased to. Without this
// option, a created task only becomes the default when the hub has none
// (it is the first task, or the previous default was closed).
func AsDefault() TaskOption {
	return func(o *createOptions) { o.asDefault = true }
}

// shard is one independently locked slice of the registry.
type shard struct {
	mu      sync.RWMutex
	tasks   map[string]*Task
	closed  map[string]struct{} // tombstones for CloseTask'd IDs
	pending map[string]struct{} // IDs reserved by an in-flight CreateTask
}

// Hub is a sharded registry of named learning tasks. It is safe for
// concurrent use; operations on different tasks proceed without shared
// lock contention.
type Hub struct {
	shards [NumShards]shard

	// sharded indexes the mounted ShardRouters fronting sharded logical
	// tasks (see sharded.go).
	sharded shardIndex

	defaultMu sync.RWMutex
	defaultID string
	// defaultClosed records that the default slot is empty because its
	// task was closed (vs never assigned), so the legacy endpoints can
	// tell devices to stand down (409) rather than 404.
	defaultClosed bool
}

// New returns an empty hub.
func New() *Hub {
	h := &Hub{}
	for i := range h.shards {
		h.shards[i].tasks = make(map[string]*Task)
		h.shards[i].closed = make(map[string]struct{})
		h.shards[i].pending = make(map[string]struct{})
	}
	return h
}

// shardFor picks the shard owning a task ID (FNV-1a).
func (h *Hub) shardFor(taskID string) *shard {
	f := fnv.New32a()
	_, _ = f.Write([]byte(taskID)) // fnv never errors
	return &h.shards[f.Sum32()%NumShards]
}

// ValidTaskID reports whether id is usable as a task ID: non-empty, at
// most 128 bytes, charset [A-Za-z0-9._-], and not a filesystem dot path
// (task IDs appear in URL paths and on-disk state directories).
func ValidTaskID(id string) bool {
	if id == "" || len(id) > 128 || id == "." || id == ".." {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// CreateTask constructs a core.Server from cfg and registers it under
// taskID. Whenever the hub has no default task — it is empty, or the
// previous default was closed — the created task becomes the default
// (see AsDefault). Re-using the ID of a previously closed task clears
// that task's tombstone. It fails with ErrTaskExists for duplicate IDs
// and ErrBadTaskID for IDs unusable in URLs.
//
// With WithStore, the task is durable: any state already persisted is
// restored (latest checkpoint + deterministic replay of the journal
// tail) before the task is registered, every applied checkin is
// journaled write-ahead of its acknowledgment, and an asynchronous
// checkpointer snapshots the state per WithCheckpointPolicy. The
// supplied cfg.OnCheckin still runs, after the journal append for the
// same iteration.
func (h *Hub) CreateTask(ctx context.Context, taskID string, cfg core.ServerConfig, opts ...TaskOption) (*Task, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !ValidTaskID(taskID) {
		return nil, fmt.Errorf("%q: %w", taskID, ErrBadTaskID)
	}
	if h.shardRouterExists(taskID) {
		// A mounted router owns the logical ID's whole URL namespace; a
		// plain task underneath it would be unreachable.
		return nil, fmt.Errorf("%q: a sharded logical task uses this ID: %w", taskID, ErrTaskExists)
	}
	var o createOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.info.Name == "" {
		o.info.Name = taskID
	}
	if o.metrics != nil && cfg.Metrics == nil {
		cfg.Metrics = core.NewServerMetrics(o.metrics, taskID)
	}
	// Reserve the ID before any side effects: opening the store's journal
	// repairs (truncates) its tail and the restore replays it, neither of
	// which may ever touch a store whose task is already live — a racing
	// duplicate could otherwise truncate the winner's half-flushed append
	// as a "torn tail". The reservation makes duplicate rejection happen
	// strictly before the store is opened.
	sh := h.shardFor(taskID)
	sh.mu.Lock()
	_, live := sh.tasks[taskID]
	_, reserving := sh.pending[taskID]
	if live || reserving {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%q: %w", taskID, ErrTaskExists)
	}
	sh.pending[taskID] = struct{}{}
	sh.mu.Unlock()
	// Deferred cleanup rather than per-path calls: a panic out of
	// user-supplied code (an Updater panicking during journal replay)
	// must not strand the reservation or the open journal handle any
	// more than an ordinary error would.
	registered := false
	var dur *durability
	defer func() {
		if registered {
			return
		}
		if dur != nil {
			dur.stopOnce.Do(func() { close(dur.stopCh) })
			_ = dur.journal.Close()
		}
		sh.mu.Lock()
		delete(sh.pending, taskID)
		sh.mu.Unlock()
	}()

	if o.replicaOf != "" && o.store != nil {
		// A follower's state arrives through Server.Replay, which bypasses
		// the OnCheckin journaling hook by design — a local WAL would
		// silently diverge from the replica's actual state. Followers
		// re-bootstrap from the leader instead of recovering locally.
		return nil, fmt.Errorf("task %q: a replica task (AsReplicaOf) cannot also have a store", taskID)
	}
	if o.store != nil {
		// Fail retention misconfiguration at creation, not at the first
		// checkpoint: a policy other than KeepAll needs a store that can
		// actually prune, and the archive mode needs a destination.
		if o.retention.mode != retentionKeep {
			if _, ok := o.store.(store.SegmentRetainer); !ok {
				return nil, fmt.Errorf("task %q: retention policy needs a store implementing store.SegmentRetainer", taskID)
			}
		}
		if o.retention.mode == retentionArchive && o.retention.dir == "" {
			return nil, fmt.Errorf("task %q: ArchiveCovered needs a non-empty archive directory", taskID)
		}
		journal, err := o.store.OpenJournal(ctx)
		if err != nil {
			return nil, fmt.Errorf("task %q: open journal: %w", taskID, err)
		}
		dur = newDurability(o.store, journal, o.policy, o.sync, o.retention, cfg.OnCheckin, cfg.OnBatchCommit)
		dur.m = newDurMetrics(o.metrics, taskID)
		dur.m.updateSegmentGauge(ctx, o.store)
		cfg.OnCheckin = dur.onCheckin
		if o.sync == SyncBatch {
			// Group commit rides the batch leader's per-batch hook: one
			// fsync covering the whole batch, before any of its
			// acknowledgments (the user's own OnBatchCommit, if any, runs
			// after the sync).
			cfg.OnBatchCommit = dur.onBatchCommit
		}
	}
	server, err := core.NewServer(cfg)
	if err != nil {
		return nil, fmt.Errorf("task %q: %w", taskID, err)
	}
	if dur != nil {
		dur.srv = server
		if err := restoreInto(ctx, server, o.store, taskID); err != nil {
			return nil, err
		}
		// The checkpointer starts before the task is visible, so a racing
		// CloseTask/Close can always join it.
		go dur.run()
	}
	task := &Task{id: taskID, server: server, info: o.info, dur: dur, replicaOf: o.replicaOf}

	sh.mu.Lock()
	delete(sh.pending, taskID)
	sh.tasks[taskID] = task
	delete(sh.closed, taskID)
	registered = true
	sh.mu.Unlock()

	h.defaultMu.Lock()
	if h.defaultID == "" || o.asDefault {
		h.defaultID = taskID
		h.defaultClosed = false
	}
	h.defaultMu.Unlock()
	// A concurrent CloseTask may have removed the task between the shard
	// insert and the default election above; don't leave the default
	// pointing at a task that no longer resolves.
	if _, ok := h.Task(taskID); !ok {
		h.defaultMu.Lock()
		if h.defaultID == taskID {
			h.defaultID = ""
		}
		h.defaultMu.Unlock()
	}
	return task, nil
}

// Task looks up a task by ID.
func (h *Hub) Task(taskID string) (*Task, bool) {
	sh := h.shardFor(taskID)
	sh.mu.RLock()
	t, ok := sh.tasks[taskID]
	sh.mu.RUnlock()
	return t, ok
}

// DefaultTask returns the task the legacy single-task endpoints are bound
// to, or false when the hub is empty (or the default has been closed).
func (h *Hub) DefaultTask() (*Task, bool) {
	h.defaultMu.RLock()
	id := h.defaultID
	h.defaultMu.RUnlock()
	if id == "" {
		return nil, false
	}
	return h.Task(id)
}

// SetDefaultTask rebinds the legacy endpoints to an existing task.
func (h *Hub) SetDefaultTask(taskID string) error {
	if _, ok := h.Task(taskID); !ok {
		return fmt.Errorf("%q: %w", taskID, ErrTaskNotFound)
	}
	h.defaultMu.Lock()
	h.defaultID = taskID
	h.defaultClosed = false
	h.defaultMu.Unlock()
	return nil
}

// DefaultClosed reports that the hub currently has no default task
// because the previous default was closed (rather than never set).
func (h *Hub) DefaultClosed() bool {
	h.defaultMu.RLock()
	defer h.defaultMu.RUnlock()
	return h.defaultID == "" && h.defaultClosed
}

// CloseTask stops the task's server (administrative shutdown, so devices
// checking out learn to stand down if they still hold the pointer),
// flushes a durable task's state — final checkpoint, journal closed —
// and removes the task from the registry, leaving a tombstone so the
// HTTP layer can tell remote devices the task has stopped (409) rather
// than that it never existed (404). Closing the default task leaves the
// hub with no default until SetDefaultTask or the next CreateTask.
//
// The flush runs BEFORE the removal: if it fails (a wedged or erroring
// store), the error is returned and the task stays registered — stopped,
// but still reachable — so the operator can retry CloseTask (or
// Hub.Close) once the store recovers, instead of the flush becoming
// permanently unreachable.
func (h *Hub) CloseTask(ctx context.Context, taskID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t, ok := h.Task(taskID)
	if !ok {
		return fmt.Errorf("%q: %w", taskID, ErrTaskNotFound)
	}
	t.server.Stop()
	if err := t.closeDurability(ctx); err != nil {
		return fmt.Errorf("task %q: flush on close: %w", taskID, err)
	}
	sh := h.shardFor(taskID)
	sh.mu.Lock()
	if _, still := sh.tasks[taskID]; !still {
		// A concurrent CloseTask won the removal race.
		sh.mu.Unlock()
		return fmt.Errorf("%q: %w", taskID, ErrTaskNotFound)
	}
	delete(sh.tasks, taskID)
	if len(sh.closed) >= maxTombstonesPerShard {
		// Bound tombstone memory under task churn by evicting an
		// arbitrary old entry; devices of a task evicted here fall
		// back to 404 instead of 409, which still fails their run.
		for old := range sh.closed {
			delete(sh.closed, old)
			break
		}
	}
	sh.closed[taskID] = struct{}{}
	sh.mu.Unlock()
	h.defaultMu.Lock()
	if h.defaultID == taskID {
		h.defaultID = ""
		h.defaultClosed = true
	}
	h.defaultMu.Unlock()
	return nil
}

// Closed reports whether the task ID was hosted here and has been
// closed (and not re-created since). Tombstones are bounded per shard,
// so under heavy task churn the oldest closures may be forgotten.
func (h *Hub) Closed(taskID string) bool {
	sh := h.shardFor(taskID)
	sh.mu.RLock()
	_, ok := sh.closed[taskID]
	sh.mu.RUnlock()
	return ok
}

// Tasks returns every hosted task, sorted by ID (a stable order for the
// portal listing and the /v1/tasks endpoint).
func (h *Hub) Tasks() []*Task {
	var out []*Task
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		for _, t := range sh.tasks {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Len reports the number of hosted tasks.
func (h *Hub) Len() int {
	n := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		n += len(sh.tasks)
		sh.mu.RUnlock()
	}
	return n
}
