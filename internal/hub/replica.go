package hub

import (
	"sync/atomic"
)

// Replica states reported by ReplicaStatus.State; defined here (rather
// than in the replica runtime) so the HTTP layer can interpret a probe's
// status without importing the runtime package.
const (
	// ReplicaBootstrapping: the follower is fetching the leader's latest
	// checkpoint (or retrying after losing the journal feed's continuity
	// to retention) and is not yet a faithful read replica.
	ReplicaBootstrapping = "bootstrapping"
	// ReplicaTailing: bootstrapped and applying the live journal feed;
	// the replica serves reads, trailing the leader by ReplicationLag.
	ReplicaTailing = "tailing"
	// ReplicaRetrying: the leader is unreachable; the follower serves its
	// last-applied state while reconnecting under capped backoff.
	ReplicaRetrying = "retrying"
	// ReplicaStopped: the replication runtime has shut down.
	ReplicaStopped = "stopped"
)

// ReplicaStatus is a follower task's replication telemetry, reported by
// the runtime driving it (see BindReplicaProbe) and surfaced on the
// /v1/healthz endpoint.
type ReplicaStatus struct {
	// State is one of the Replica* constants above.
	State string
	// LeaderURL is the leader this task replicates from.
	LeaderURL string
	// LeaderIteration is the leader's iteration counter as of the last
	// completed feed exchange (0 until one completes).
	LeaderIteration int
	// LastError describes the most recent replication failure, cleared
	// on the next successful exchange.
	LastError string
}

// ReplicaProbe is implemented by the runtime replicating into a task
// (replica.Replicator); the task holds it so the hub's HTTP surface can
// report replication health without depending on the runtime package.
type ReplicaProbe interface {
	ReplicaStatus() ReplicaStatus
}

// AsReplicaOf marks the task as a read-only follower replica of the
// same task on the leader at leaderURL: its state is maintained solely
// by replaying the leader's shipped journal, the HTTP layer rejects
// writes (checkin, register) with 409 and a leader hint, and reads
// (checkout, stats) are served locally. Incompatible with WithStore —
// replayed entries bypass the journaling hook, so a follower's own WAL
// would silently diverge from its state; a follower that dies simply
// re-bootstraps from the leader's checkpoint.
func AsReplicaOf(leaderURL string) TaskOption {
	return func(o *createOptions) { o.replicaOf = leaderURL }
}

// ReadOnly reports whether the task is a follower replica (created with
// AsReplicaOf): its state is owned by the replication runtime and the
// HTTP layer must reject writes.
func (t *Task) ReadOnly() bool { return t.replicaOf != "" }

// LeaderURL returns the leader base URL a replica task follows, or ""
// for a leader-role task.
func (t *Task) LeaderURL() string { return t.replicaOf }

// BindReplicaProbe attaches the replication runtime's telemetry probe to
// the task. Called once by the runtime when it starts; safe to call
// again (a restarted runtime re-binds, latest wins).
func (t *Task) BindReplicaProbe(p ReplicaProbe) {
	t.probe.Store(&p)
}

// ReplicaStatus reports the task's replication telemetry; ok is false
// for leader-role tasks and for replicas whose runtime has not bound a
// probe yet (a follower between CreateTask and Replicator start).
func (t *Task) ReplicaStatus() (ReplicaStatus, bool) {
	p := t.probe.Load()
	if p == nil {
		return ReplicaStatus{}, false
	}
	return (*p).ReplicaStatus(), true
}

// ReplicationLag reports how many iterations the replica trails the
// leader: the leader's iteration counter from the last completed feed
// exchange minus the locally applied iteration, clamped at zero (the
// local counter can briefly lead the EOS-frame observation). ok is
// false when no probe is bound or no exchange has completed yet — lag
// is then unknown, not zero.
func (t *Task) ReplicationLag() (int, bool) {
	st, ok := t.ReplicaStatus()
	if !ok || st.LeaderIteration == 0 {
		return 0, false
	}
	lag := st.LeaderIteration - t.server.Iteration()
	if lag < 0 {
		lag = 0
	}
	return lag, true
}

// probeBox is the atomic holder for a task's replica probe.
type probeBox = atomic.Pointer[ReplicaProbe]
