package hub

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/store"
)

// readAll drains a store's full journal through its streaming cursor —
// the test-only slice wrapper (production code never materializes the
// journal).
func readAll(st store.Store) ([]store.JournalEntry, error) {
	cur, err := st.OpenCursor(context.Background(), 0)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []store.JournalEntry
	for {
		e, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// checkinN drives n deterministic checkins from one registered device.
func checkinN(t *testing.T, srv *core.Server, deviceID string, n int) {
	t.Helper()
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, deviceID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		co, err := srv.Checkout(ctx, deviceID, token)
		if err != nil {
			t.Fatal(err)
		}
		req := &core.CheckinRequest{
			Grad:        []float64{float64(i + 1), 0.5, -0.25, 1},
			NumSamples:  2,
			ErrCount:    i % 2,
			LabelCounts: []int{1, 1},
			Version:     co.Version,
		}
		if err := srv.Checkin(ctx, deviceID, token, req); err != nil {
			t.Fatal(err)
		}
	}
}

// stateWithoutDeviceSecrets compares everything recovery must reproduce.
func assertStatesEqual(t *testing.T, got, want *core.ServerState) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored state diverges:\n got: %+v\nwant: %+v", got, want)
	}
}

func TestDurableTaskJournalsEveryCheckin(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 7)
	entries, err := readAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("%d journal entries for 7 acknowledged checkins", len(entries))
	}
	for i, e := range entries {
		if e.Iteration != i+1 || e.DeviceID != "d1" || !e.Replayable() {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
	if task.Store() != st {
		t.Error("Task.Store should return the attached store")
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryFromJournalOnly drops the hub with NO checkpoint ever
// written: recovery must rebuild the full state from the journal alone.
func TestCrashRecoveryFromJournalOnly(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	// A policy that never fires during the test: no timer tick this
	// century, no count trigger reached.
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 5)
	want := task.Server().ExportState()
	if _, err := st.Load(ctx); !errors.Is(err, store.ErrNoCheckpoint) {
		t.Fatalf("premature checkpoint: %v", err)
	}
	// Crash: the hub is dropped without Close. Reopen from the store.
	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	assertStatesEqual(t, restored.Server().ExportState(), want)
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoverySnapshotPlusTail checkpoints mid-stream, keeps
// checking in, then crashes: recovery = snapshot + journal-tail replay.
func TestCrashRecoverySnapshotPlusTail(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 4)
	// Force a mid-run snapshot the way the checkpointer would write it.
	if err := st.Save(ctx, task.Server().ExportState(), time.Now()); err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d2", 3) // the tail beyond the snapshot
	want := task.Server().ExportState()

	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Server().ExportState()
	assertStatesEqual(t, got, want)
	if got.Iteration != 7 {
		t.Errorf("iteration = %d, want 7", got.Iteration)
	}
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointPolicyAfterN: the count trigger must produce an
// asynchronous snapshot without any Close.
func TestCheckpointPolicyAfterN(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{AfterN: 3}))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 3)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := st.Load(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("AfterN trigger never produced a checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestHubCloseFlushesFinalSnapshot: Close must leave a checkpoint at the
// exact final state for every durable task, and be idempotent.
func TestHubCloseFlushesFinalSnapshot(t *testing.T) {
	ctx := context.Background()
	root := store.NewMemRoot()
	h := New()
	for i := 0; i < 3; i++ {
		st, _ := root.Open(ctx, fmt.Sprintf("task-%d", i))
		task, err := h.CreateTask(ctx, fmt.Sprintf("task-%d", i), serverConfig(), WithStore(st),
			WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}))
		if err != nil {
			t.Fatal(err)
		}
		checkinN(t, task.Server(), "d1", i+1)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		st, _ := root.Open(ctx, fmt.Sprintf("task-%d", i))
		cp, err := st.Load(ctx)
		if err != nil {
			t.Fatalf("task-%d: %v", i, err)
		}
		if cp.State.Iteration != i+1 {
			t.Errorf("task-%d checkpoint iteration = %d, want %d", i, cp.State.Iteration, i+1)
		}
	}
	if err := h.Close(ctx); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestCloseStopsServerWithoutPersistingStop: after Hub.Close no checkin
// can be acknowledged past the final snapshot (the server is stopped),
// but the stop is shutdown mechanics — a task restored from the same
// store resumes accepting checkins.
func TestCloseStopsServerWithoutPersistingStop(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, srv, "d2", 1)
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	req := &core.CheckinRequest{Grad: []float64{1, 0, 0, 1}, NumSamples: 1, LabelCounts: []int{1, 0}}
	if err := srv.Checkin(ctx, "d1", token, req); !errors.Is(err, core.ErrStopped) {
		t.Errorf("post-Close checkin error = %v, want ErrStopped (nothing may be acked past the final snapshot)", err)
	}
	cp, err := st.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State.Stopped {
		t.Error("shutdown stop must not be persisted as learning state")
	}
	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, restored.Server(), "d3", 1) // resumes accepting checkins
	if restored.Server().Iteration() != 2 {
		t.Errorf("restored iteration = %d, want 2", restored.Server().Iteration())
	}
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCloseTaskFlushes: closing one task flushes its durability.
func TestCloseTaskFlushes(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 2)
	if err := h.CloseTask(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	cp, err := st.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State.Iteration != 2 {
		t.Errorf("flushed iteration = %d, want 2", cp.State.Iteration)
	}
}

// TestRestoreReconstructsAllTasks exercises the whole-process restart
// path: Restore lists the root and rebuilds every task, honoring
// ErrSkipTask.
func TestRestoreReconstructsAllTasks(t *testing.T) {
	ctx := context.Background()
	root := store.NewMemRoot()
	h := New()
	wants := map[string]*core.ServerState{}
	for _, id := range []string{"alpha", "beta", "gamma"} {
		st, _ := root.Open(ctx, id)
		task, err := h.CreateTask(ctx, id, serverConfig(), WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		checkinN(t, task.Server(), "d-"+id, len(id))
		wants[id] = task.Server().ExportState()
	}
	// A stray non-task name in the root (a lost+found, a backup copy)
	// must be skipped, not abort the restore.
	if _, err := root.Open(ctx, "lost+found"); err != nil {
		t.Fatal(err)
	}
	// Crash without Close; restore onto a fresh hub, skipping one task.
	h2 := New()
	tasks, err := h2.Restore(ctx, root, func(taskID string) (core.ServerConfig, []TaskOption, error) {
		if taskID == "beta" {
			return core.ServerConfig{}, nil, ErrSkipTask
		}
		return serverConfig(), []TaskOption{WithInfo(TaskInfo{Objective: "restored " + taskID})}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || h2.Len() != 2 {
		t.Fatalf("restored %d tasks (hub %d), want 2", len(tasks), h2.Len())
	}
	if _, ok := h2.Task("beta"); ok {
		t.Error("skipped task must not be hosted")
	}
	for _, id := range []string{"alpha", "gamma"} {
		task, ok := h2.Task(id)
		if !ok {
			t.Fatalf("task %s not restored", id)
		}
		assertStatesEqual(t, task.Server().ExportState(), wants[id])
		if task.Info().Objective != "restored "+id {
			t.Errorf("task %s lost its configure options", id)
		}
	}
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestUserHookRunsAfterJournalAppend: the redesign's ordering contract —
// when the user's OnCheckin observes iteration t, t's journal record is
// already durable.
func TestUserHookRunsAfterJournalAppend(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	cfg := serverConfig()
	var observed []int
	hookErr := make(chan error, 64)
	cfg.OnCheckin = func(ctx context.Context, deviceID string, iteration int, req *core.CheckinRequest) {
		observed = append(observed, iteration)
		entries, err := readAll(st)
		if err != nil {
			hookErr <- err
			return
		}
		if len(entries) == 0 || entries[len(entries)-1].Iteration != iteration {
			hookErr <- fmt.Errorf("journal tail at hook time = %d entries, want one ending at iteration %d",
				len(entries), iteration)
		}
	}
	task, err := h.CreateTask(ctx, "t", cfg, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 4)
	close(hookErr)
	for err := range hookErr {
		t.Error(err)
	}
	if len(observed) != 4 {
		t.Errorf("user hook ran %d times, want 4", len(observed))
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreSkipsV1AuditEntries: journals written before the WAL
// redesign carry no gradient; they must be skipped, not break recovery.
func TestRestoreSkipsV1AuditEntries(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two v1 audit-only entries (no Grad/LabelCounts).
	for i := 1; i <= 2; i++ {
		if err := j.Append(ctx, store.JournalEntry{DeviceID: "old", Iteration: i, NumSamples: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatalf("v1 journal must not break task creation: %v", err)
	}
	if task.Server().Iteration() != 0 {
		t.Errorf("audit-only entries must not advance the iteration counter")
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestReplayGapFailsCreate: a journal that skips an iteration beyond the
// snapshot is unrecoverable and must surface, not silently diverge.
func TestReplayGapFailsCreate(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	j, err := st.OpenJournal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, iter := range []int{1, 3} { // gap: no iteration 2
		err := j.Append(ctx, store.JournalEntry{
			DeviceID: "d", Iteration: iter,
			Grad: []float64{1, 2, 3, 4}, LabelCounts: []int{1, 1}, NumSamples: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	h := New()
	if _, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st)); !errors.Is(err, core.ErrReplayGap) {
		t.Errorf("CreateTask error = %v, want ErrReplayGap", err)
	}
}

// failingStore wraps a MemStore with a journal that starts erroring
// after failAfter successful appends.
type failingStore struct {
	*store.MemStore
	failAfter int
}

type failingJournal struct {
	store.Journal
	st *failingStore
	n  int
}

func (f *failingStore) OpenJournal(ctx context.Context) (store.Journal, error) {
	j, err := f.MemStore.OpenJournal(ctx)
	if err != nil {
		return nil, err
	}
	return &failingJournal{Journal: j, st: f}, nil
}

func (j *failingJournal) Append(ctx context.Context, e store.JournalEntry) error {
	if j.n >= j.st.failAfter {
		return errors.New("disk full")
	}
	j.n++
	return j.Journal.Append(ctx, e)
}

// TestJournalAppendFailureFailStops: once an applied checkin cannot be
// journaled, the WAL guarantee is broken for it — the task must stop
// accepting checkins (bounding the acknowledged-but-unjournaled window),
// no later append may leave a replay-breaking hole behind the failure,
// and Close must surface the error.
func TestJournalAppendFailureFailStops(t *testing.T) {
	ctx := context.Background()
	st := &failingStore{MemStore: store.NewMemStore(), failAfter: 2}
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	req := func() *core.CheckinRequest {
		return &core.CheckinRequest{Grad: []float64{1, 0, 0, 1}, NumSamples: 1, LabelCounts: []int{1, 0}}
	}
	for i := 0; i < 2; i++ {
		if err := srv.Checkin(ctx, "d1", token, req()); err != nil {
			t.Fatal(err)
		}
	}
	// The third checkin applies but its journal append fails: the caller
	// still sees success (it IS applied), and the task fail-stops.
	if err := srv.Checkin(ctx, "d1", token, req()); err != nil {
		t.Fatalf("the applied checkin's own call reports success, got %v", err)
	}
	if !srv.Stopped() {
		t.Error("task must stop once the journal cannot keep the WAL guarantee")
	}
	if err := srv.Checkin(ctx, "d1", token, req()); !errors.Is(err, core.ErrStopped) {
		t.Errorf("post-failure checkin error = %v, want ErrStopped", err)
	}
	// The journal holds the contiguous prefix only — no hole.
	entries, err := readAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("journal has %d entries, want the 2 durable ones", len(entries))
	}
	if err := h.Close(ctx); err == nil {
		t.Error("Close must surface the journal failure")
	}
	// The fail-stop is operational, not learning state: after the
	// operator fixes the store, a restart resumes the task — with the
	// full pre-failure state (the final checkpoint covered the
	// unjournaled checkin).
	st.failAfter = 1 << 30 // "disk freed"
	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Server().Stopped() {
		t.Error("transient journal failure must not persist Stopped across restarts")
	}
	if restored.Server().Iteration() != 3 {
		t.Errorf("restored iteration = %d, want 3 (final checkpoint covers the unjournaled checkin)",
			restored.Server().Iteration())
	}
	checkinN(t, restored.Server(), "d9", 1)
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRotatesJournal: every successful checkpoint must seal
// the live segment, and a post-rotation crash must still restore the
// exact state (checkpoint + live-tail replay across the rotation).
func TestCheckpointRotatesJournal(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{AfterN: 3}))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 3)
	deadline := time.Now().Add(5 * time.Second)
	for st.SegmentCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never rotated the journal")
		}
		time.Sleep(time.Millisecond)
	}
	checkinN(t, task.Server(), "d2", 2) // the tail in the fresh segment
	want := task.Server().ExportState()

	// Crash without Close; the restore crosses the rotation boundary.
	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	assertStatesEqual(t, restored.Server().ExportState(), want)
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// rotateBlockedStore wraps a MemStore with a journal whose Rotate fails
// while armed — the observable state of a crash (or transient error)
// landing between checkpoint success and the segment seal: the
// checkpoint exists, but the covered entries still sit in the live
// segment.
type rotateBlockedStore struct {
	*store.MemStore
	blocked atomic.Bool
}

type rotateBlockedJournal struct {
	store.Journal
	st *rotateBlockedStore
}

func (s *rotateBlockedStore) OpenJournal(ctx context.Context) (store.Journal, error) {
	j, err := s.MemStore.OpenJournal(ctx)
	if err != nil {
		return nil, err
	}
	return &rotateBlockedJournal{Journal: j, st: s}, nil
}

func (j *rotateBlockedJournal) Rotate(ctx context.Context) error {
	if j.st.blocked.Load() {
		return errors.New("crash before seal")
	}
	return j.Journal.Rotate(ctx)
}

// TestCrashBetweenCheckpointSuccessAndSeal: the checkpoint lands, the
// rotation never does, the process dies. The live segment then holds
// entries the checkpoint already covers PLUS the tail beyond it —
// restore must replay exactly the tail (Replay skips covered records)
// and land on the exact pre-crash state.
func TestCrashBetweenCheckpointSuccessAndSeal(t *testing.T) {
	ctx := context.Background()
	st := &rotateBlockedStore{MemStore: store.NewMemStore()}
	st.blocked.Store(true)
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{AfterN: 3}))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 3)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cp, err := st.Load(ctx); err == nil && cp.State.Iteration == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if st.SegmentCount() != 1 {
		t.Fatalf("rotation happened despite the simulated crash window (%d segments)", st.SegmentCount())
	}
	checkinN(t, task.Server(), "d2", 2) // tail beyond the checkpoint, same segment
	want := task.Server().ExportState()

	// Crash without Close; restore from checkpoint@3 + a live segment
	// whose first three entries the checkpoint covers.
	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Server().ExportState()
	assertStatesEqual(t, got, want)
	if got.Iteration != 5 {
		t.Errorf("iteration = %d, want 5", got.Iteration)
	}
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// syncCountingStore wraps a MemStore and counts journal Sync calls, so
// the SyncPolicy wiring is observable.
type syncCountingStore struct {
	*store.MemStore
	syncs    atomic.Int64
	syncFail atomic.Bool
}

type syncCountingJournal struct {
	store.Journal
	st *syncCountingStore
}

func (s *syncCountingStore) OpenJournal(ctx context.Context) (store.Journal, error) {
	j, err := s.MemStore.OpenJournal(ctx)
	if err != nil {
		return nil, err
	}
	return &syncCountingJournal{Journal: j, st: s}, nil
}

func (j *syncCountingJournal) Sync(ctx context.Context) error {
	if j.st.syncFail.Load() {
		return errors.New("fsync failed")
	}
	j.st.syncs.Add(1)
	return j.Journal.Sync(ctx)
}

// TestSyncPolicyGroupCommit: SyncBatch must sync once per applied batch
// (sequential checkins are one-item batches), SyncEvery once per append,
// SyncNone never.
func TestSyncPolicyGroupCommit(t *testing.T) {
	ctx := context.Background()
	for name, tc := range map[string]struct {
		policy    SyncPolicy
		wantSyncs int64
	}{
		"SyncNone":  {SyncNone, 0},
		"SyncBatch": {SyncBatch, 5},
		"SyncEvery": {SyncEvery, 5},
	} {
		t.Run(name, func(t *testing.T) {
			st := &syncCountingStore{MemStore: store.NewMemStore()}
			h := New()
			task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
				WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}),
				WithSyncPolicy(tc.policy))
			if err != nil {
				t.Fatal(err)
			}
			checkinN(t, task.Server(), "d1", 5)
			if got := st.syncs.Load(); got != tc.wantSyncs {
				t.Errorf("%d journal syncs for 5 sequential checkins, want %d", got, tc.wantSyncs)
			}
			if err := h.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSyncBatchChainsUserHook: the user's own OnBatchCommit still runs,
// after the group-commit sync — mirroring the OnCheckin chaining
// contract.
func TestSyncBatchChainsUserHook(t *testing.T) {
	ctx := context.Background()
	st := &syncCountingStore{MemStore: store.NewMemStore()}
	h := New()
	cfg := serverConfig()
	var sawBatches atomic.Int64
	var syncedFirst atomic.Bool
	cfg.OnBatchCommit = func(n int) {
		sawBatches.Add(int64(n))
		if st.syncs.Load() > 0 {
			syncedFirst.Store(true)
		}
	}
	task, err := h.CreateTask(ctx, "t", cfg, WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}),
		WithSyncPolicy(SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 3)
	if sawBatches.Load() != 3 {
		t.Errorf("user OnBatchCommit saw %d applied checkins, want 3", sawBatches.Load())
	}
	if !syncedFirst.Load() {
		t.Error("user OnBatchCommit must run after the group-commit sync")
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSyncFailureFailStops: a failed group-commit fsync breaks the
// power-loss guarantee for entries already acknowledged-in-flight — the
// task must fail-stop exactly like a failed append, and Close must
// surface it.
func TestSyncFailureFailStops(t *testing.T) {
	ctx := context.Background()
	st := &syncCountingStore{MemStore: store.NewMemStore()}
	st.syncFail.Store(true)
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}),
		WithSyncPolicy(SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	req := &core.CheckinRequest{Grad: []float64{1, 0, 0, 1}, NumSamples: 1, LabelCounts: []int{1, 0}}
	if err := srv.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatalf("the applied checkin's own call reports success, got %v", err)
	}
	if !srv.Stopped() {
		t.Error("task must fail-stop once the journal cannot be synced")
	}
	if err := h.Close(ctx); err == nil {
		t.Error("Close must surface the sync failure")
	}
}

// panicNthUpdater panics on exactly the nth Update call.
type panicNthUpdater struct {
	n     int
	calls atomic.Int64
}

func (u *panicNthUpdater) Update(w, g *linalg.Matrix, t int) {
	if int(u.calls.Add(1)) == u.n {
		panic("updater exploded")
	}
	// A plain SGD step is irrelevant here; the test only checks the
	// journal invariant, so applying nothing is fine.
}

func (u *panicNthUpdater) Name() string { return "panic-nth" }

// TestUpdaterPanicKeepsJournalContiguous: checkins acknowledged as
// successes must ALL be journaled even when a later item in their batch
// panics the Updater — a success acked without a journal record would be
// an unrecoverable replay gap after a crash.
func TestUpdaterPanicKeepsJournalContiguous(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	cfg := core.ServerConfig{
		Model:   serverConfig().Model,
		Updater: &panicNthUpdater{n: 4},
		// Force multi-item batches so applied-then-panic coexist: a small
		// queue plus many concurrent callers.
		CheckinBatchSize: 8,
	}
	task, err := h.CreateTask(ctx, "t", cfg, WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{Every: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	srv := task.Server()
	token, err := srv.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 12
	var wg sync.WaitGroup
	acked := make(chan int, callers) // iterations? unknown; count successes
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { _ = recover() }() // the leader observes the panic
			req := &core.CheckinRequest{
				Grad: []float64{1, 0, 0, 1}, NumSamples: 1, LabelCounts: []int{1, 0},
			}
			if err := srv.Checkin(ctx, "d1", token, req); err == nil {
				acked <- 1
			}
		}()
	}
	wg.Wait()
	close(acked)
	successes := 0
	for range acked {
		successes++
	}
	entries, err := readAll(st)
	if err != nil {
		t.Fatal(err)
	}
	// Every acknowledged success has a journal record, and the records
	// are the contiguous iteration prefix replay requires. (The leader
	// whose own call panicked was also applied — its hook ran too — so
	// the journal may exceed the success count, never trail it.)
	if len(entries) < successes {
		t.Errorf("%d journal entries for %d acknowledged successes", len(entries), successes)
	}
	if len(entries) != srv.Iteration() {
		t.Errorf("journal has %d entries, server at iteration %d", len(entries), srv.Iteration())
	}
	for i, e := range entries {
		if e.Iteration != i+1 {
			t.Fatalf("journal entry %d has iteration %d — gap would break replay", i, e.Iteration)
		}
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCheckpointScrubsFailStop: the ASYNC checkpointer must apply
// the same fail-stop scrub as close() — a snapshot written after a
// transient journal error, followed by a crash with no clean close,
// must not restore the task permanently stopped.
func TestAsyncCheckpointScrubsFailStop(t *testing.T) {
	ctx := context.Background()
	st := &failingStore{MemStore: store.NewMemStore(), failAfter: 1}
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{AfterN: 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Checkin 1 journals; checkin 2's append fails and latches the
	// fail-stop; both kick the AfterN checkpointer.
	checkinN(t, task.Server(), "d1", 2)
	if !task.Server().Stopped() {
		t.Fatal("fail-stop did not latch")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cp, err := st.Load(ctx)
		if err == nil && cp.State.Iteration == 2 {
			if cp.State.Stopped {
				t.Fatal("async snapshot persisted the fail-stop latch as learning state")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never wrote the post-failure snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	// Crash (no Close): the restored task must accept checkins again.
	st.failAfter = 1 << 30
	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Server().Stopped() {
		t.Error("crash after a post-fail-stop snapshot bricked the task")
	}
	checkinN(t, restored.Server(), "d2", 1)
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateDurableTaskAborted: losing the registration race must not
// leak the journal handle or flush a bogus checkpoint.
func TestDuplicateDurableTaskAborted(t *testing.T) {
	ctx := context.Background()
	st := store.NewMemStore()
	h := New()
	if _, err := h.CreateTask(ctx, "t", serverConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st)); !errors.Is(err, ErrTaskExists) {
		t.Fatalf("error = %v, want ErrTaskExists", err)
	}
	if _, err := st.Load(ctx); !errors.Is(err, store.ErrNoCheckpoint) {
		t.Error("aborted creation must not write a checkpoint")
	}
}

// ---- Segment retention (WithRetention) ----

// retentionBackend is one shipped store under retention test: the
// store, its segment listing, and a crash-faithful reopen (FileStore
// copies the tree so the dead hub's advisory lock does not block the
// restore, exactly like the top-level recovery tests).
type retentionBackend struct {
	st       store.Store
	segments func() []store.SegmentInfo
	reopen   func(t *testing.T) store.Store
}

// retentionBackends parameterizes the retention tests over both shipped
// stores.
func retentionBackends(t *testing.T) map[string]func(t *testing.T) retentionBackend {
	list := func(fn func(context.Context) ([]store.SegmentInfo, error)) func() []store.SegmentInfo {
		return func() []store.SegmentInfo {
			segs, err := fn(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return segs
		}
	}
	return map[string]func(t *testing.T) retentionBackend{
		"MemStore": func(t *testing.T) retentionBackend {
			st := store.NewMemStore()
			return retentionBackend{
				st:       st,
				segments: list(st.Segments),
				reopen:   func(t *testing.T) store.Store { return st },
			}
		},
		"FileStore": func(t *testing.T) retentionBackend {
			dir := t.TempDir()
			fs, err := store.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			return retentionBackend{
				st:       fs,
				segments: list(fs.Segments),
				reopen: func(t *testing.T) store.Store {
					crashDir := t.TempDir()
					copyStoreDir(t, dir, crashDir)
					fs2, err := store.NewFileStore(crashDir)
					if err != nil {
						t.Fatal(err)
					}
					return fs2
				},
			}
		},
	}
}

// copyStoreDir freezes a store directory the way a process crash does:
// the files stop changing and the kernel releases the dead holder's
// journal lock — which is exactly what a copy gives us.
func copyStoreDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		payload, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for " + what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetentionPruneCoveredBounded: with PruneCovered, each checkpoint
// cycle prunes the sealed segment it covers, so the segment count stays
// bounded across waves instead of growing — and the pruned store still
// restores the exact pre-crash state (the checkpoint + live tail are
// all recovery ever needed).
func TestRetentionPruneCoveredBounded(t *testing.T) {
	ctx := context.Background()
	for name, mk := range retentionBackends(t) {
		t.Run(name, func(t *testing.T) {
			backend := mk(t)
			st := backend.st
			h := New()
			task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
				WithCheckpointPolicy(CheckpointPolicy{AfterN: 3}),
				WithRetention(PruneCovered))
			if err != nil {
				t.Fatal(err)
			}
			for wave := 0; wave < 3; wave++ {
				checkinN(t, task.Server(), fmt.Sprintf("d%d", wave), 3)
				// Each wave: checkpoint -> rotate (fresh live segment, seq
				// wave+2) -> prune (the sealed, covered one goes away). The
				// sequence number distinguishes "cycle done" from "not yet
				// rotated", both of which show a single segment.
				wantSeq := wave + 2
				waitForCond(t, "checkpoint+prune cycle", func() bool {
					segs := backend.segments()
					return len(segs) == 1 && segs[0].Seq == wantSeq
				})
			}
			checkinN(t, task.Server(), "tail", 2) // beyond the last checkpoint
			want := task.Server().ExportState()

			// Crash without Close; the pruned store must restore exactly.
			h2 := New()
			restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(backend.reopen(t)))
			if err != nil {
				t.Fatal(err)
			}
			assertStatesEqual(t, restored.Server().ExportState(), want)
			if got := restored.Server().Iteration(); got != 11 {
				t.Errorf("restored iteration = %d, want 11", got)
			}
			if err := h2.Close(ctx); err != nil {
				t.Fatal(err)
			}
			_ = h.Close(ctx) // release the crashed hub's goroutines and lock
		})
	}
}

// TestRetentionSkippedOnFailedRotation: a checkpoint whose rotation
// fails must NOT trigger retention — the covered entries still sit in
// the live segment, and pruning anything near it would be the exact
// corruption the never-touch-the-live-segment rule exists to prevent.
func TestRetentionSkippedOnFailedRotation(t *testing.T) {
	ctx := context.Background()
	st := &rotateBlockedStore{MemStore: store.NewMemStore()}
	st.blocked.Store(true)
	h := New()
	task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(st),
		WithCheckpointPolicy(CheckpointPolicy{AfterN: 3}),
		WithRetention(PruneCovered))
	if err != nil {
		t.Fatal(err)
	}
	checkinN(t, task.Server(), "d1", 3)
	waitForCond(t, "checkpoint", func() bool {
		cp, err := st.Load(ctx)
		return err == nil && cp.State.Iteration == 3
	})
	if st.SegmentCount() != 1 {
		t.Fatalf("rotation happened despite the simulated failure (%d segments)", st.SegmentCount())
	}
	// Retention must not have touched the (covered but un-rotated) live
	// segment: every journaled entry is still there.
	entries, err := readAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("journal has %d entries after the failed rotation, want all 3", len(entries))
	}
	checkinN(t, task.Server(), "d2", 2)
	want := task.Server().ExportState()

	h2 := New()
	restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	assertStatesEqual(t, restored.Server().ExportState(), want)
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionArchiveKeepsAuditTrail: ArchiveCovered moves covered
// segments aside instead of deleting them — the store stays bounded
// like PruneCovered, while the archive directory accumulates the full
// covered history as ordinary JSONL segments.
func TestRetentionArchiveKeepsAuditTrail(t *testing.T) {
	ctx := context.Background()
	for name, mk := range retentionBackends(t) {
		t.Run(name, func(t *testing.T) {
			backend := mk(t)
			archiveDir := t.TempDir()
			archive, err := store.NewFileStore(archiveDir)
			if err != nil {
				t.Fatal(err)
			}
			h := New()
			task, err := h.CreateTask(ctx, "t", serverConfig(), WithStore(backend.st),
				WithCheckpointPolicy(CheckpointPolicy{AfterN: 4}),
				WithRetention(ArchiveCovered(archiveDir)))
			if err != nil {
				t.Fatal(err)
			}
			checkinN(t, task.Server(), "d1", 4)
			// The cycle is observable at its END: the archive holds the
			// covered history (waiting on segment counts alone would race
			// the checkpoint-rotate-archive pipeline).
			waitForCond(t, "checkpoint+archive cycle", func() bool {
				archived, err := readAll(archive)
				return err == nil && len(archived) == 4
			})
			want := task.Server().ExportState()

			// The archived history reads back as a plain segment chain.
			archived, err := readAll(archive)
			if err != nil {
				t.Fatalf("read archive: %v", err)
			}
			for i := range archived {
				if archived[i].Iteration != i+1 || !archived[i].Replayable() {
					t.Errorf("archived entry %d = %+v", i, archived[i])
				}
			}
			// And the store alone still restores the exact state.
			h2 := New()
			restored, err := h2.CreateTask(ctx, "t", serverConfig(), WithStore(backend.reopen(t)))
			if err != nil {
				t.Fatal(err)
			}
			assertStatesEqual(t, restored.Server().ExportState(), want)
			if err := h2.Close(ctx); err != nil {
				t.Fatal(err)
			}
			_ = h.Close(ctx) // release the crashed hub's goroutines and lock
		})
	}
}

// hiddenRetainerStore wraps a MemStore behind the plain Store interface
// so the SegmentRetainer implementation is invisible.
type hiddenRetainerStore struct{ inner store.Store }

func (s *hiddenRetainerStore) Save(ctx context.Context, state *core.ServerState, now time.Time) error {
	return s.inner.Save(ctx, state, now)
}
func (s *hiddenRetainerStore) Load(ctx context.Context) (*store.Checkpoint, error) {
	return s.inner.Load(ctx)
}
func (s *hiddenRetainerStore) OpenJournal(ctx context.Context) (store.Journal, error) {
	return s.inner.OpenJournal(ctx)
}
func (s *hiddenRetainerStore) OpenCursor(ctx context.Context, after int) (store.JournalCursor, error) {
	return s.inner.OpenCursor(ctx, after)
}

// TestRetentionMisconfigurationFailsCreate: a retention policy the
// store cannot execute (or an archive policy with no destination) must
// fail at CreateTask, not be silently ignored at the first checkpoint.
func TestRetentionMisconfigurationFailsCreate(t *testing.T) {
	ctx := context.Background()
	h := New()
	if _, err := h.CreateTask(ctx, "no-retainer", serverConfig(),
		WithStore(&hiddenRetainerStore{inner: store.NewMemStore()}),
		WithRetention(PruneCovered)); err == nil {
		t.Error("CreateTask must reject retention on a store without SegmentRetainer")
	}
	if _, err := h.CreateTask(ctx, "no-dir", serverConfig(),
		WithStore(store.NewMemStore()),
		WithRetention(ArchiveCovered(""))); err == nil {
		t.Error("CreateTask must reject ArchiveCovered with an empty directory")
	}
	// KeepAll (the default) needs neither.
	if _, err := h.CreateTask(ctx, "keep", serverConfig(),
		WithStore(&hiddenRetainerStore{inner: store.NewMemStore()}),
		WithRetention(KeepAll)); err != nil {
		t.Errorf("KeepAll on a plain store must work: %v", err)
	}
}
