package hub

// This file is the hub-side registry half of the sharded leader tier
// (internal/shard implements the other half). A ShardRouter fronts N
// ordinary member tasks — each a full leader with its own
// WAL/checkpoint/replication lineage — as ONE logical task ID. The hub
// only indexes routers and answers membership queries; the routing,
// merging and telemetry live in the implementation. This mirrors the
// ReplicaProbe decoupling in replica.go: the HTTP layer stays a hub
// consumer and never imports the runtime packages.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/crowdml/crowdml/internal/core"
)

// ShardedStats is the merged progress view of a sharded logical task:
// iteration is the sum of the member iterations the published merged
// view incorporates, and the estimates are re-derived from the summed
// raw counters (ΣN_s, ΣN_e, ΣN^k_y across shards), so they compose
// exactly as if one leader had served the whole crowd.
type ShardedStats struct {
	// Iteration is the merged iteration counter: the sum of every
	// member's iteration as of the published merged view. Monotonically
	// non-decreasing across merges.
	Iteration int
	// Stopped reports whether EVERY shard has met its stopping criteria —
	// devices stand down only when no shard will accept their checkins.
	Stopped bool
	// ErrorEstimate is ΣN_e/ΣN_s across shards; HasError is false until
	// any shard has samples.
	ErrorEstimate float64
	HasError      bool
	// PriorEstimate is ΣN^k_y/ΣN_s across shards; nil until any samples.
	PriorEstimate []float64
	// Classes, Dim is the (shared) model shape of the member tasks.
	Classes, Dim int
	// Shards is the member count N; MapVersion the shard map version.
	Shards     int
	MapVersion int
}

// ShardHealthRow is one member's row in the logical task's health
// report.
type ShardHealthRow struct {
	// ID is the member task ID (e.g. "activity.shard-2").
	ID string
	// Iteration is the member's live iteration counter.
	Iteration int
	Stopped   bool
	// Ready mirrors the single-task readiness rule: a leader member is
	// always ready; a follower member is ready while tailing/retrying.
	Ready bool
	// MergeLag is how many iterations the member's live counter has
	// advanced past the component the published merged view incorporated
	// — the per-shard staleness of what merged checkouts currently serve.
	MergeLag int
	// ReplicaState is the member's replication state when it is itself a
	// follower replica; "" for leader members.
	ReplicaState string
}

// ShardRouter fronts the member tasks of one sharded logical task. The
// HTTP layer resolves a logical task ID to its router and proxies the
// device protocol through it: writes (checkin, register) go to the
// owning member by hashed device ID, reads (checkout, stats) are served
// from the router's merged view. Implemented by internal/shard.
type ShardRouter interface {
	// LogicalID is the task ID devices address.
	LogicalID() string
	// Info is the logical task's portal metadata (the base info, without
	// any per-shard decoration).
	Info() TaskInfo
	// MemberIDs returns the member task IDs, in shard order.
	MemberIDs() []string
	// MapVersion is the shard-map placement version (see
	// shard.ShardMap).
	MapVersion() int
	// RouteDevice returns the member task ID owning the device.
	RouteDevice(deviceID string) string
	// Checkout authenticates the device against its owning member and
	// serves the merged model (lock-free: one atomic load + one copy).
	Checkout(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error)
	// Checkin applies the device's delta on its owning member.
	Checkin(ctx context.Context, deviceID, token string, req *core.CheckinRequest) error
	// Register enrolls the device on its owning member.
	Register(ctx context.Context, deviceID string) (string, error)
	// MergedStats reports the published merged progress view.
	MergedStats() ShardedStats
	// ShardRows reports per-member health (one row per shard).
	ShardRows() []ShardHealthRow
}

// shardIndex is the hub's registry of mounted routers. Guarded by its
// own lock (never held together with a registry-shard lock).
type shardIndex struct {
	mu sync.RWMutex
	// routers maps logical task ID → mounted router.
	routers map[string]ShardRouter
	// memberOf maps member task ID → logical task ID.
	memberOf map[string]string
}

// MountShardRouter publishes a router under its logical task ID, making
// the HTTP layer route /v1/tasks/{logical}/... through it and fold its
// member tasks out of listings and health reports. The logical ID must
// be valid, must not collide with a hosted task (live or being created)
// or another router, and every member must already be hosted here and
// not belong to another router.
func (h *Hub) MountShardRouter(r ShardRouter) error {
	if r == nil {
		return fmt.Errorf("crowdml: MountShardRouter(nil)")
	}
	logical := r.LogicalID()
	if !ValidTaskID(logical) {
		return fmt.Errorf("%q: %w", logical, ErrBadTaskID)
	}
	members := r.MemberIDs()
	if len(members) == 0 {
		return fmt.Errorf("crowdml: router %q has no members", logical)
	}
	if h.taskOrPending(logical) {
		return fmt.Errorf("%q: a hosted task already uses the logical ID: %w", logical, ErrTaskExists)
	}
	for _, m := range members {
		if _, ok := h.Task(m); !ok {
			return fmt.Errorf("router %q: member %q: %w", logical, m, ErrTaskNotFound)
		}
	}
	h.sharded.mu.Lock()
	defer h.sharded.mu.Unlock()
	if _, dup := h.sharded.routers[logical]; dup {
		return fmt.Errorf("%q: a router is already mounted: %w", logical, ErrTaskExists)
	}
	if _, dup := h.sharded.memberOf[logical]; dup {
		return fmt.Errorf("%q: the logical ID is a member of another router: %w", logical, ErrTaskExists)
	}
	for _, m := range members {
		if owner, taken := h.sharded.memberOf[m]; taken {
			return fmt.Errorf("router %q: member %q already belongs to router %q: %w", logical, m, owner, ErrTaskExists)
		}
		if _, isLogical := h.sharded.routers[m]; isLogical {
			return fmt.Errorf("router %q: member %q is another router's logical ID: %w", logical, m, ErrTaskExists)
		}
	}
	if h.sharded.routers == nil {
		h.sharded.routers = make(map[string]ShardRouter)
		h.sharded.memberOf = make(map[string]string)
	}
	h.sharded.routers[logical] = r
	for _, m := range members {
		h.sharded.memberOf[m] = logical
	}
	return nil
}

// UnmountShardRouter removes the router mounted under logical (no-op if
// none is). The member tasks stay hosted; callers closing a whole tier
// close them separately.
func (h *Hub) UnmountShardRouter(logical string) {
	h.sharded.mu.Lock()
	defer h.sharded.mu.Unlock()
	r, ok := h.sharded.routers[logical]
	if !ok {
		return
	}
	delete(h.sharded.routers, logical)
	for _, m := range r.MemberIDs() {
		if h.sharded.memberOf[m] == logical {
			delete(h.sharded.memberOf, m)
		}
	}
}

// ShardRouterFor resolves a logical task ID to its mounted router.
func (h *Hub) ShardRouterFor(taskID string) (ShardRouter, bool) {
	h.sharded.mu.RLock()
	r, ok := h.sharded.routers[taskID]
	h.sharded.mu.RUnlock()
	return r, ok
}

// ShardMemberOf reports the logical task ID a hosted task is a shard
// member of, or false for ordinary tasks. Listings and health reports
// use it to fold member tasks into their logical row.
func (h *Hub) ShardMemberOf(taskID string) (string, bool) {
	h.sharded.mu.RLock()
	logical, ok := h.sharded.memberOf[taskID]
	h.sharded.mu.RUnlock()
	return logical, ok
}

// ShardRouters returns every mounted router, sorted by logical ID (the
// stable order listings and health reports append them in).
func (h *Hub) ShardRouters() []ShardRouter {
	h.sharded.mu.RLock()
	out := make([]ShardRouter, 0, len(h.sharded.routers))
	for _, r := range h.sharded.routers {
		out = append(out, r)
	}
	h.sharded.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].LogicalID() < out[j].LogicalID() })
	return out
}

// taskOrPending reports whether taskID is hosted or reserved by an
// in-flight CreateTask (so a mount cannot slip between reservation and
// registration).
func (h *Hub) taskOrPending(taskID string) bool {
	sh := h.shardFor(taskID)
	sh.mu.RLock()
	_, live := sh.tasks[taskID]
	_, reserving := sh.pending[taskID]
	sh.mu.RUnlock()
	return live || reserving
}

// shardRouterExists reports whether taskID names a mounted router
// (CreateTask's collision check).
func (h *Hub) shardRouterExists(taskID string) bool {
	h.sharded.mu.RLock()
	_, ok := h.sharded.routers[taskID]
	h.sharded.mu.RUnlock()
	return ok
}
