package hub

import (
	"context"
	"time"

	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
)

// WithMetrics attaches an operational telemetry registry to the task.
// CreateTask binds the core hot-path series (unless cfg.Metrics is
// already set, which wins) and, together with WithStore, the durability
// series — journal appends, fsync latency, checkpoint saves, rotations,
// retention prunes, fail-stops, and the live segment-count gauge. All
// series carry a task label; see docs/OPERATIONS.md "Monitoring" for
// the full name table. A nil registry is valid and disables telemetry.
func WithMetrics(reg *telemetry.Registry) TaskOption {
	return func(o *createOptions) { o.metrics = reg }
}

// durMetrics holds the pre-bound handles for one durable task's
// journal/checkpoint/retention paths. A nil *durMetrics disables all of
// them (every method and handle is nil-safe).
//
// Metric names (all carry a task label):
//
//	crowdml_journal_appends_total            counter    WAL records appended
//	crowdml_journal_append_failures_total    counter    failed appends (each fail-stops the task)
//	crowdml_journal_sync_seconds             histogram  journal fsync latency
//	crowdml_journal_rotations_total          counter    segments sealed after checkpoints
//	crowdml_journal_segments                 gauge      live segment-chain length
//	crowdml_retention_pruned_segments_total  counter    sealed segments pruned/archived
//	crowdml_checkpoint_saves_total           counter    successful checkpoint saves
//	crowdml_checkpoint_failures_total        counter    failed checkpoint saves
//	crowdml_failstops_total                  counter    WAL-broken fail-stop latches
type durMetrics struct {
	appends            *telemetry.Counter
	appendFailures     *telemetry.Counter
	syncSeconds        *telemetry.Histogram
	rotations          *telemetry.Counter
	segments           *telemetry.Gauge
	prunedSegments     *telemetry.Counter
	checkpointSaves    *telemetry.Counter
	checkpointFailures *telemetry.Counter
	failStops          *telemetry.Counter
}

// newDurMetrics binds the durability series for one task; nil registry
// yields nil.
func newDurMetrics(reg *telemetry.Registry, task string) *durMetrics {
	if reg == nil {
		return nil
	}
	t := telemetry.L("task", task)
	return &durMetrics{
		appends: reg.Counter("crowdml_journal_appends_total",
			"Write-ahead journal records appended.", t),
		appendFailures: reg.Counter("crowdml_journal_append_failures_total",
			"Failed journal appends; each one fail-stops its task.", t),
		syncSeconds: reg.Histogram("crowdml_journal_sync_seconds",
			"Journal fsync latency in seconds (per-entry or group commit).",
			telemetry.DurationBuckets, t),
		rotations: reg.Counter("crowdml_journal_rotations_total",
			"Journal segments sealed after successful checkpoints.", t),
		segments: reg.Gauge("crowdml_journal_segments",
			"Journal segments currently in the store (live chain length).", t),
		prunedSegments: reg.Counter("crowdml_retention_pruned_segments_total",
			"Sealed journal segments pruned or archived by the retention policy.", t),
		checkpointSaves: reg.Counter("crowdml_checkpoint_saves_total",
			"Successful checkpoint saves.", t),
		checkpointFailures: reg.Counter("crowdml_checkpoint_failures_total",
			"Failed checkpoint saves (retried at the next trigger).", t),
		failStops: reg.Counter("crowdml_failstops_total",
			"WAL-broken fail-stop latches (task stopped to protect durability).", t),
	}
}

// observeSync times one journal fsync. Returns a done func so call
// sites stay one-line; both the method and the handle tolerate nil.
func (m *durMetrics) observeSync() func() {
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() { m.syncSeconds.ObserveSince(start) }
}

// updateSegmentGauge refreshes the live segment-chain gauge from the
// store, when the store can enumerate segments (both shipped stores
// can). Called off the hot path — after rotations and retention passes —
// so the Segments listing cost never taxes a checkin.
func (m *durMetrics) updateSegmentGauge(ctx context.Context, st store.Store) {
	if m == nil {
		return
	}
	lister, ok := st.(interface {
		Segments(context.Context) ([]store.SegmentInfo, error)
	})
	if !ok {
		return
	}
	segs, err := lister.Segments(ctx)
	if err != nil {
		return // bookkeeping only; the next rotation retries
	}
	m.segments.Set(float64(len(segs)))
}
