package core

import (
	"context"
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
)

// ParamView is a zero-copy, read-only view of a server's published
// checkout snapshot: the flattened parameter vector and the iteration it
// was captured at. The slice aliases the immutable snapshot — callers
// must treat it as frozen and copy before mutating. This is the merge
// hook a sharded front-end builds its combined model from: pulling one
// view per shard per merge cycle costs two atomic loads instead of a
// parameter-matrix copy.
type ParamView struct {
	// Params aliases the published immutable snapshot. Read-only.
	Params []float64
	// Version is the iteration counter the snapshot was captured at.
	// Monotonically non-decreasing across successive views of one server.
	Version int
}

// ParamView returns the current published snapshot without copying the
// parameters. Like Checkout it refreshes a stale snapshot first when the
// parameter lock is free, so the view trails the iteration counter only
// while a batch is mid-apply.
func (s *Server) ParamView() ParamView {
	snap := s.refreshSnapshot()
	return ParamView{Params: snap.params, Version: snap.version}
}

// Authenticate verifies a device's credentials without serving any
// learning state — the entry point a routing front-end uses to
// authenticate a checkout it will answer from a merged cross-shard view
// rather than from this server's own snapshot. The AuthFallback (if
// configured) applies exactly as it does for Checkout, including the
// one-time provisioning of vouched credentials.
func (s *Server) Authenticate(ctx context.Context, deviceID, token string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.authenticate(ctx, deviceID, token)
}

// CrowdTotals returns the raw crowd-wide counters behind the Eq. (14)
// estimates — ΣN_s, ΣN_e and ΣN^k_y — read lock-free from the atomic
// counters. A front-end aggregating several shards sums these and
// re-derives the ratios itself, which composes exactly (a mean of
// per-shard ratios would weight small shards the same as large ones).
func (s *Server) CrowdTotals() (samples, errs int64, labels []int64) {
	labels = make([]int64, len(s.totalNky))
	for k := range s.totalNky {
		labels[k] = s.totalNky[k].Load()
	}
	return s.totalNs.Load(), s.totalNe.Load(), labels
}

// MergeParamViews combines per-shard parameter snapshots into a single
// model by weighted averaging — the paper-style model averaging a
// sharded leader tier serves merged checkouts from. weights[i] scales
// views[i]; a shard that has applied more checkins should carry
// proportionally more weight (pass its snapshot Version). When every
// weight is zero (no shard has progressed yet) the views are averaged
// uniformly, so a brand-new tier still serves its common initial model.
// The returned slice is freshly allocated; the views are not mutated.
func MergeParamViews(views []ParamView, weights []float64) ([]float64, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("core: MergeParamViews: no views")
	}
	if len(weights) != len(views) {
		return nil, fmt.Errorf("core: MergeParamViews: %d weights for %d views", len(weights), len(views))
	}
	n := len(views[0].Params)
	total := 0.0
	for i, v := range views {
		if len(v.Params) != n {
			return nil, fmt.Errorf("core: MergeParamViews: view %d has %d params, view 0 has %d", i, len(v.Params), n)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("core: MergeParamViews: negative weight %g for view %d", weights[i], i)
		}
		total += weights[i]
	}
	out := make([]float64, n)
	if total == 0 {
		// Uniform average: all shards share the (deterministic) initial
		// parameters before any checkin, so this also preserves them exactly.
		inv := 1.0 / float64(len(views))
		for _, v := range views {
			linalg.Axpy(inv, v.Params, out)
		}
		return out, nil
	}
	for i, v := range views {
		if weights[i] == 0 {
			continue
		}
		linalg.Axpy(weights[i]/total, v.Params, out)
	}
	return out, nil
}
