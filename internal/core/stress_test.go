package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// TestConcurrentStress interleaves checkout, checkin and stats reads from
// many devices against one server and asserts the learning state stays
// consistent: the iteration counter equals the number of applied
// checkins, the crowd totals ΣN_s/ΣN_e/ΣN^k_y equal the sums of what the
// devices contributed, per-device counters match, and the checkout
// snapshot version is monotonic from any single observer's point of view.
// Run with -race to exercise the lock-free read paths against the batched
// applier.
func TestConcurrentStress(t *testing.T) {
	const (
		devices           = 8
		checkinsPerDevice = 120
		classes           = 3
		dim               = 16
	)
	srv, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(classes, dim),
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
		// A tiny batch/queue so the stress run exercises leader handoff
		// and queue backpressure, not just the uncontended fast path.
		CheckinBatchSize:  4,
		CheckinQueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tokens := make([]string, devices)
	for i := range tokens {
		if tokens[i], err = srv.RegisterDevice(ctx, deviceID(i)); err != nil {
			t.Fatal(err)
		}
	}

	var writers, readers sync.WaitGroup
	stopReaders := make(chan struct{})

	// Stats readers hammer the lock-free read paths while writers apply.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			lastVersion := -1
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				if v := srv.SnapshotVersion(); v < lastVersion {
					t.Errorf("snapshot version went backwards: %d -> %d", lastVersion, v)
					return
				} else {
					lastVersion = v
				}
				srv.ErrEstimate()
				srv.PriorEstimate()
				srv.Iteration()
				srv.Stopped()
				srv.DeviceStats(deviceID(0))
			}
		}()
	}

	for i := 0; i < devices; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			lastVersion := -1
			for n := 0; n < checkinsPerDevice; n++ {
				co, err := srv.Checkout(ctx, deviceID(i), tokens[i])
				if err != nil {
					t.Errorf("device %d checkout: %v", i, err)
					return
				}
				if co.Version < lastVersion {
					t.Errorf("device %d: checkout version went backwards: %d -> %d",
						i, lastVersion, co.Version)
					return
				}
				lastVersion = co.Version
				req := &CheckinRequest{
					Grad:        make([]float64, classes*dim),
					NumSamples:  2,
					ErrCount:    1,
					LabelCounts: []int{1, 1, 0},
					Version:     co.Version,
				}
				req.Grad[i%len(req.Grad)] = 0.01
				if err := srv.Checkin(ctx, deviceID(i), tokens[i], req); err != nil {
					t.Errorf("device %d checkin %d: %v", i, n, err)
					return
				}
			}
		}(i)
	}

	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() {
		writers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(stopReaders)
		t.Fatal("stress run timed out")
	}
	close(stopReaders)
	readers.Wait()

	total := devices * checkinsPerDevice
	if got := srv.Iteration(); got != total {
		t.Errorf("Iteration() = %d, want %d", got, total)
	}
	if est, ok := srv.ErrEstimate(); !ok || est != 0.5 {
		t.Errorf("ErrEstimate() = %v, %v; want 0.5 (1 error per 2 samples)", est, ok)
	}
	prior, ok := srv.PriorEstimate()
	if !ok {
		t.Fatal("PriorEstimate() not ready after stress run")
	}
	if prior[0] != 0.5 || prior[1] != 0.5 || prior[2] != 0 {
		t.Errorf("PriorEstimate() = %v, want [0.5 0.5 0]", prior)
	}
	for i := 0; i < devices; i++ {
		st, ok := srv.DeviceStats(deviceID(i))
		if !ok {
			t.Fatalf("device %d missing from stats", i)
		}
		if st.Checkins != checkinsPerDevice {
			t.Errorf("device %d Checkins = %d, want %d", i, st.Checkins, checkinsPerDevice)
		}
		if st.Samples != 2*checkinsPerDevice || st.Errors != checkinsPerDevice {
			t.Errorf("device %d counters = (%d samples, %d errors), want (%d, %d)",
				i, st.Samples, st.Errors, 2*checkinsPerDevice, checkinsPerDevice)
		}
		if st.StalenessSum < 0 {
			t.Errorf("device %d StalenessSum = %d, want >= 0", i, st.StalenessSum)
		}
	}
	// The final snapshot must converge to the final iteration once a
	// reader asks for it.
	if _, err := srv.Checkout(ctx, deviceID(0), tokens[0]); err != nil {
		t.Fatal(err)
	}
	if v := srv.SnapshotVersion(); v != total {
		t.Errorf("SnapshotVersion() after final checkout = %d, want %d", v, total)
	}
}

// TestOnCheckinOrdering asserts the relaxed-locking contract of
// ServerConfig.OnCheckin: hooks run outside the parameter lock but
// strictly in iteration order, each before its own Checkin returns.
func TestOnCheckinOrdering(t *testing.T) {
	const classes, dim = 2, 4
	var mu sync.Mutex
	var iterations []int
	srv, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(classes, dim),
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
		OnCheckin: func(ctx context.Context, deviceID string, iteration int, req *CheckinRequest) {
			mu.Lock()
			iterations = append(iterations, iteration)
			mu.Unlock()
		},
		CheckinBatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const workers = 6
	tokens := make([]string, workers)
	for i := range tokens {
		if tokens[i], err = srv.RegisterDevice(ctx, deviceID(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const perWorker = 50
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &CheckinRequest{
				Grad:        make([]float64, classes*dim),
				NumSamples:  1,
				LabelCounts: make([]int, classes),
			}
			for n := 0; n < perWorker; n++ {
				if err := srv.Checkin(ctx, deviceID(i), tokens[i], req); err != nil {
					t.Errorf("checkin: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(iterations) != workers*perWorker {
		t.Fatalf("hook ran %d times, want %d", len(iterations), workers*perWorker)
	}
	for i := 1; i < len(iterations); i++ {
		if iterations[i] != iterations[i-1]+1 {
			t.Fatalf("hook iterations out of order at %d: %d after %d",
				i, iterations[i], iterations[i-1])
		}
	}
}

func deviceID(i int) string { return fmt.Sprintf("device-%02d", i) }
