package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// TestCheckinRejectsNonFiniteGradient: one NaN/Inf gradient would poison
// the shared parameters for every later device and cannot even be
// journaled (encoding/json rejects non-finite floats, which would
// fail-stop a durable task) — it must be rejected as a bad checkin, not
// applied.
func TestCheckinRejectsNonFiniteGradient(t *testing.T) {
	const classes, dim = 2, 3
	srv, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(classes, dim),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		req := &CheckinRequest{
			Grad:        make([]float64, classes*dim),
			NumSamples:  1,
			LabelCounts: make([]int, classes),
		}
		req.Grad[2] = bad
		if err := srv.Checkin(ctx, "dev", token, req); !errors.Is(err, ErrBadCheckin) {
			t.Errorf("%s gradient: error = %v, want ErrBadCheckin", name, err)
		}
	}
	if srv.Iteration() != 0 {
		t.Errorf("rejected checkins advanced the iteration counter to %d", srv.Iteration())
	}
	// The parameters stay finite and usable.
	req := &CheckinRequest{
		Grad:        make([]float64, classes*dim),
		NumSamples:  1,
		LabelCounts: make([]int, classes),
	}
	req.Grad[0] = 0.5
	if err := srv.Checkin(ctx, "dev", token, req); err != nil {
		t.Fatalf("finite checkin after rejections: %v", err)
	}
	for _, v := range srv.Params().Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("parameters contaminated by a rejected checkin")
		}
	}
}
