package core

import (
	"context"
	"math"
	"testing"
)

// checkinN applies n distinct checkins and forces snapshot publication
// after each (ParamDelta needs every intermediate version in the ring,
// which lazy publication provides on the next read).
func checkinN(t *testing.T, s *Server, id, token string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		req := validCheckin(s.Iteration())
		req.Grad[i%len(req.Grad)] = 1
		if err := s.Checkin(ctx, id, token, req); err != nil {
			t.Fatalf("checkin %d: %v", i, err)
		}
		s.ParamView() // publish
	}
}

func TestParamDeltaEmptyWhenCurrent(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	checkinN(t, s, "d1", token, 3)

	cur := s.SnapshotVersion()
	d := s.ParamDelta(cur)
	if d.Since != cur || d.Version != cur {
		t.Fatalf("want empty delta at %d, got since=%d version=%d", cur, d.Since, d.Version)
	}
	if len(d.Indices) != 0 || len(d.Values) != 0 {
		t.Fatalf("current base produced %d changes", len(d.Indices))
	}
	if d.Params == nil {
		t.Fatal("Params fallback missing")
	}
}

func TestParamDeltaRingHit(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")

	base := s.ParamView() // version 0
	checkinN(t, s, "d1", token, 2)

	d := s.ParamDelta(base.Version)
	if d.Since != base.Version {
		t.Fatalf("ring miss for version %d (since=%d)", base.Version, d.Since)
	}
	if len(d.Indices) == 0 {
		t.Fatal("two applied checkins produced no changed coordinates")
	}
	// Applying the delta to the base must reproduce the current snapshot
	// bit for bit.
	got := append([]float64(nil), base.Params...)
	for i, idx := range d.Indices {
		got[idx] = d.Values[i]
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(d.Params[i]) {
			t.Fatalf("coordinate %d: applied %v, snapshot %v", i, got[i], d.Params[i])
		}
	}
}

func TestParamDeltaFallbacks(t *testing.T) {
	s := newTestServer(t, ServerConfig{DeltaHistory: 2})
	token := register(t, s, "d1")
	checkinN(t, s, "d1", token, 5)

	cur := s.SnapshotVersion()
	for name, since := range map[string]int{
		"ahead of the counter": cur + 10,
		"negative":             -1,
		"older than the ring":  0, // history 2 over 5 versions evicted it
	} {
		d := s.ParamDelta(since)
		if d.Since != -1 {
			t.Errorf("%s (since=%d): want full fallback, got delta since=%d", name, since, d.Since)
		}
		if d.Version != cur || len(d.Params) == 0 {
			t.Errorf("%s: fallback lost the full frame (version=%d)", name, d.Version)
		}
	}
}

func TestParamDeltaRingBounded(t *testing.T) {
	s := newTestServer(t, ServerConfig{DeltaHistory: 3})
	token := register(t, s, "d1")
	checkinN(t, s, "d1", token, 10)

	s.ringMu.Lock()
	n := len(s.ring)
	s.ringMu.Unlock()
	if n > 3 {
		t.Fatalf("ring grew to %d entries with DeltaHistory=3", n)
	}
	// The most recent retained base must still produce a delta.
	if d := s.ParamDelta(s.SnapshotVersion() - 1); d.Since == -1 {
		t.Fatal("most recent ring entry not served")
	}
}

func TestImportStateInvalidatesRing(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	checkinN(t, s, "d1", token, 3)
	base := s.SnapshotVersion() - 1

	if d := s.ParamDelta(base); d.Since != base {
		t.Fatalf("precondition: base %d not in ring", base)
	}
	st := s.ExportState()
	if err := s.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	// Post-restore the ring holds only the re-published current
	// snapshot; the older base must fall back to a full frame.
	if d := s.ParamDelta(base); d.Since != -1 {
		t.Fatalf("stale base %d survived a state import (since=%d)", base, d.Since)
	}
	if d := s.ParamDelta(s.SnapshotVersion()); d.Since == -1 {
		t.Fatal("current-version empty delta unavailable after import")
	}
}

func TestCheckoutDeltaAuth(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")

	if _, err := s.CheckoutDelta(ctx, "d1", "wrong", 0); err != ErrAuth {
		t.Fatalf("want ErrAuth, got %v", err)
	}
	d, err := s.CheckoutDelta(ctx, "d1", token, -1)
	if err != nil {
		t.Fatalf("CheckoutDelta: %v", err)
	}
	if d.Since != -1 || d.Version != 0 {
		t.Fatalf("unexpected delta %+v", d)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.CheckoutDelta(cancelled, "d1", token, -1); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestDiffParams(t *testing.T) {
	base := []float64{1, 2, 3, 0}
	cur := []float64{1, 5, 3, math.Copysign(0, -1)}
	idx, vals := DiffParams(base, cur)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("indices %v", idx)
	}
	if vals[0] != 5 || math.Float64bits(vals[1]) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("values %v (−0 must survive bitwise)", vals)
	}
	if idx, _ := DiffParams(cur, cur); len(idx) != 0 {
		t.Fatal("identical vectors produced changes")
	}
}
