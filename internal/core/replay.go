package core

import (
	"errors"
	"fmt"
	"io"

	"github.com/crowdml/crowdml/internal/linalg"
)

// ErrReplayGap is returned by Replay when the journal tail skips an
// iteration: the record stream must be contiguous from the restored
// state's iteration counter, or the reconstructed parameters would
// silently diverge from the pre-crash server.
var ErrReplayGap = errors.New("core: replay records skip an iteration")

// replayPublishEvery is how many applied records a long Replay lets
// accumulate before republishing the checkout snapshot mid-stream.
// Replay holds the parameter lock for its whole run, which starves the
// lazy TryLock publication path concurrent readers normally rely on — a
// follower replica applying a long bootstrap tail while already serving
// checkouts would otherwise pin every reader to the pre-replay
// parameters until the stream ends. Publishing every N records bounds
// that staleness at N iterations for the cost of one parameter copy per
// N applies.
const replayPublishEvery = 64

// ReplayRecord is one journaled, previously-acknowledged checkin on its
// way back into a restored server — the store.JournalEntry fields that
// determine the state transition.
type ReplayRecord struct {
	// DeviceID is the contributing device.
	DeviceID string
	// Iteration is the server iteration the checkin was applied at.
	Iteration int
	// Req is the sanitized checkin exactly as originally applied.
	Req *CheckinRequest
}

// ReplaySource yields successive replay records for Server.Replay, in
// journal append order; it returns io.EOF (alone, with a zero record)
// to end the stream cleanly, and any other error to abort the replay.
// Streaming instead of a materialized slice is what bounds recovery
// memory: Replay holds one record at a time, so restoring a task costs
// O(one entry) resident memory regardless of how long the journal tail
// is. The source is called synchronously from Replay, under the
// server's parameter lock — it must not call back into the server.
type ReplaySource func() (ReplayRecord, error)

// ReplaySlice adapts an in-memory record slice to a ReplaySource — the
// convenience path for embedders (and tests) that already hold the
// records.
func ReplaySlice(records []ReplayRecord) ReplaySource {
	i := 0
	return func() (ReplayRecord, error) {
		if i >= len(records) {
			return ReplayRecord{}, io.EOF
		}
		r := records[i]
		i++
		return r, nil
	}
}

// Replay re-applies journaled checkins on top of the server's current
// state — the recovery path after ImportState has restored the latest
// checkpoint. Records are pulled one at a time from next (a streaming
// store cursor in the hub's restore path; ReplaySlice for callers with
// a materialized tail). Records at or below the current iteration
// counter are already covered by the checkpoint and are skipped; the
// rest must be contiguous (ErrReplayGap otherwise) and are applied with
// the same update step, counter accumulation and staleness accounting
// as the original Checkin, so a recovered server lands on the exact
// pre-crash iteration, parameters and totals.
//
// Replay excludes the write path for its whole run (it holds the apply
// lock) but coexists with concurrent readers: checkouts and stats serve
// the published snapshot, which Replay republishes every
// replayPublishEvery applied records and once at the end — the
// follower-replica mode applies a live journal tail through Replay while
// serving the read path. Unlike Checkin it performs no authentication
// (credentials are not part of persisted state), does not consult the
// stopping rule (every record was acknowledged, so it passed the rule
// when originally applied), and does not invoke the OnCheckin hook (the
// records came FROM the journal; journaling them again would duplicate
// the log). It returns the number of records applied.
//
// Exactness holds for updaters whose step depends only on (w, ĝ, t) —
// the paper's SGD schedules — and equally for stateful updaters that
// implement optimizer.StateExporter (AdaGrad, Momentum): their internal
// state rides in ServerState.UpdaterState, ImportState hands it back
// before Replay runs, and each replayed Update advances it exactly as
// the original Checkin did. A stateful updater that does NOT implement
// StateExporter resumes with its internal state reset (the checkpoint
// had nothing to carry).
func (s *Server) Replay(next ReplaySource) (applied int, err error) {
	classes, dim := s.cfg.Model.Shape()
	s.wMu.Lock()
	defer s.wMu.Unlock()
	for {
		r, err := next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return applied, fmt.Errorf("core: replay source: %w", err)
		}
		t := int(s.t.Load())
		if r.Iteration <= t {
			continue // covered by the checkpoint
		}
		if r.Iteration != t+1 {
			return applied, fmt.Errorf("record for iteration %d after state at %d: %w",
				r.Iteration, t, ErrReplayGap)
		}
		if r.Req == nil {
			return applied, fmt.Errorf("core: replay record %d has no request", r.Iteration)
		}
		if len(r.Req.Grad) != classes*dim {
			return applied, fmt.Errorf("core: replay record %d gradient length %d, want %d",
				r.Iteration, len(r.Req.Grad), classes*dim)
		}
		if len(r.Req.LabelCounts) != classes {
			return applied, fmt.Errorf("core: replay record %d label counts length %d, want %d",
				r.Iteration, len(r.Req.LabelCounts), classes)
		}
		g, err := linalg.NewMatrixFrom(classes, dim, r.Req.Grad)
		if err != nil {
			return applied, fmt.Errorf("core: replay record %d: %w", r.Iteration, err)
		}
		// Same commit sequence as applyBatchLocked: update, iteration,
		// counters (errors before samples), device stats.
		staleness := t - r.Req.Version
		s.cfg.Updater.Update(s.w, g, r.Iteration)
		s.t.Store(int64(r.Iteration))
		s.totalNe.Add(int64(r.Req.ErrCount))
		for k, c := range r.Req.LabelCounts {
			s.totalNky[k].Add(int64(c))
		}
		s.totalNs.Add(int64(r.Req.NumSamples))
		s.devices.recordReplay(r.DeviceID, r.Req, staleness, classes)
		applied++
		if applied%replayPublishEvery == 0 {
			// Keep concurrent readers fed during a long replay (see
			// replayPublishEvery); counters above are atomics, already live.
			s.publishSnapshotLocked()
		}
	}
	// Re-latch the stopping rule from the replayed counters, then publish
	// the recovered parameters for checkouts.
	s.evalStopped()
	s.publishSnapshotLocked()
	return applied, nil
}
