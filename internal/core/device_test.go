package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/privacy"
)

// fakeTransport is a scriptable Transport for device-side tests.
type fakeTransport struct {
	params      []float64
	version     int
	done        bool
	failCO      bool
	failCI      bool
	checkins    []*CheckinRequest
	checkoutCnt int
}

var _ Transport = (*fakeTransport)(nil)

func (f *fakeTransport) Checkout(ctx context.Context, id, token string) (*CheckoutResponse, error) {
	f.checkoutCnt++
	if f.failCO {
		return nil, errors.New("network down")
	}
	return &CheckoutResponse{Params: append([]float64(nil), f.params...), Version: f.version, Done: f.done}, nil
}

func (f *fakeTransport) Checkin(ctx context.Context, id, token string, req *CheckinRequest) error {
	if f.failCI {
		return errors.New("network down")
	}
	cp := *req
	cp.Grad = append([]float64(nil), req.Grad...)
	cp.LabelCounts = append([]int(nil), req.LabelCounts...)
	f.checkins = append(f.checkins, &cp)
	return nil
}

func newTestDevice(t *testing.T, cfg DeviceConfig) (*Device, *fakeTransport) {
	t.Helper()
	ft := &fakeTransport{params: make([]float64, 2*3)}
	if cfg.ID == "" {
		cfg.ID = "dev"
	}
	if cfg.Model == nil {
		cfg.Model = model.NewLogisticRegression(2, 3)
	}
	if cfg.Transport == nil {
		cfg.Transport = ft
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d, ft
}

func sampleFor(y int) model.Sample {
	x := []float64{0.5, 0.3, 0.2}
	if y == 1 {
		x = []float64{0.1, 0.4, 0.5}
	}
	return model.Sample{X: x, Y: y}
}

func TestNewDeviceValidation(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	ft := &fakeTransport{}
	tests := []struct {
		name string
		cfg  DeviceConfig
	}{
		{name: "missing id", cfg: DeviceConfig{Model: m, Transport: ft}},
		{name: "missing model", cfg: DeviceConfig{ID: "d", Transport: ft}},
		{name: "missing transport", cfg: DeviceConfig{ID: "d", Model: m}},
		{name: "bad holdout", cfg: DeviceConfig{ID: "d", Model: m, Transport: ft, HoldoutFraction: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewDevice(tt.cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
}

func TestDeviceFlushOnMinibatch(t *testing.T) {
	d, ft := newTestDevice(t, DeviceConfig{Minibatch: 3})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := d.AddSample(ctx, sampleFor(i%2)); err != nil {
			t.Fatalf("AddSample: %v", err)
		}
	}
	if len(ft.checkins) != 0 {
		t.Fatal("flushed before minibatch filled")
	}
	if err := d.AddSample(ctx, sampleFor(0)); err != nil {
		t.Fatalf("AddSample: %v", err)
	}
	if len(ft.checkins) != 1 {
		t.Fatalf("expected 1 checkin, got %d", len(ft.checkins))
	}
	ci := ft.checkins[0]
	if ci.NumSamples != 3 {
		t.Errorf("NumSamples = %d, want 3", ci.NumSamples)
	}
	if got := ci.LabelCounts[0] + ci.LabelCounts[1]; got != 3 {
		t.Errorf("label counts sum = %d, want 3 (no privacy)", got)
	}
	if d.Buffered() != 0 {
		t.Errorf("buffer not reset: %d", d.Buffered())
	}
	if d.Checkins() != 1 {
		t.Errorf("Checkins = %d", d.Checkins())
	}
}

func TestDeviceGradientMatchesDirectComputation(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	d, ft := newTestDevice(t, DeviceConfig{Model: m, Minibatch: 2, Lambda: 0.1})
	// Non-zero server params so the λw term matters.
	ft.params = []float64{0.1, -0.2, 0.3, 0.4, 0, -0.1}
	ctx := context.Background()
	s1, s2 := sampleFor(0), sampleFor(1)
	if err := d.AddSample(ctx, s1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddSample(ctx, s2); err != nil {
		t.Fatal(err)
	}
	w, _ := linalg.NewMatrixFrom(2, 3, ft.params)
	want := model.NewParams(m)
	m.AddGradient(w, want, s1)
	m.AddGradient(w, want, s2)
	want.Scale(0.5)
	want.AddScaled(0.1, w)
	got := ft.checkins[0].Grad
	if !linalg.Equal(got, want.Data(), 1e-12) {
		t.Errorf("device gradient %v, want %v", got, want.Data())
	}
}

func TestDeviceBufferCap(t *testing.T) {
	// Minibatch 2 but checkout always fails, buffer cap 4: samples beyond
	// 4 are dropped with ErrBufferFull (Device Routine 1).
	d, ft := newTestDevice(t, DeviceConfig{Minibatch: 2, MaxBuffer: 4})
	ft.failCO = true
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		err := d.AddSample(ctx, sampleFor(0))
		if i >= 1 && err == nil {
			t.Fatalf("sample %d: expected flush error while network down", i)
		}
	}
	if err := d.AddSample(ctx, sampleFor(0)); !errors.Is(err, ErrBufferFull) {
		t.Errorf("5th sample error = %v, want ErrBufferFull", err)
	}
	if d.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", d.Dropped())
	}
	// Network recovers: next flush sends all 4 buffered samples (Remark 1).
	ft.failCO = false
	if err := d.Flush(ctx); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if len(ft.checkins) != 1 || ft.checkins[0].NumSamples != 4 {
		t.Fatalf("expected one checkin with 4 samples, got %+v", ft.checkins)
	}
}

func TestDeviceCheckinFailureRetains(t *testing.T) {
	d, ft := newTestDevice(t, DeviceConfig{Minibatch: 1})
	ft.failCI = true
	err := d.AddSample(context.Background(), sampleFor(0))
	if err == nil {
		t.Fatal("expected checkin failure")
	}
	if d.Buffered() != 1 {
		t.Errorf("buffer = %d after failed checkin, want 1 (retained)", d.Buffered())
	}
	ft.failCI = false
	if err := d.Flush(context.Background()); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if d.Buffered() != 0 || len(ft.checkins) != 1 {
		t.Error("retry did not deliver the retained samples")
	}
}

func TestDeviceStopsWhenServerDone(t *testing.T) {
	d, ft := newTestDevice(t, DeviceConfig{Minibatch: 1})
	ft.done = true
	if err := d.AddSample(context.Background(), sampleFor(0)); !errors.Is(err, ErrStopped) {
		t.Errorf("error = %v, want ErrStopped", err)
	}
	if !d.Done() {
		t.Error("device should latch Done")
	}
	if err := d.AddSample(context.Background(), sampleFor(0)); !errors.Is(err, ErrStopped) {
		t.Error("samples after Done should be rejected")
	}
}

func TestDeviceFlushEmptyIsNoop(t *testing.T) {
	d, ft := newTestDevice(t, DeviceConfig{Minibatch: 5})
	if err := d.Flush(context.Background()); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	if ft.checkoutCnt != 0 {
		t.Error("empty flush should not contact the server")
	}
}

func TestDevicePrivacyPerturbsGradient(t *testing.T) {
	// With a tiny ε the sanitized gradient must differ from the clean one;
	// counters must also be perturbed.
	mk := func(budget privacy.Budget, seed uint64) *CheckinRequest {
		d, ft := newTestDevice(t, DeviceConfig{
			Minibatch: 2, Budget: budget, Seed: seed,
		})
		ctx := context.Background()
		if err := d.AddSample(ctx, sampleFor(0)); err != nil {
			t.Fatal(err)
		}
		if err := d.AddSample(ctx, sampleFor(1)); err != nil {
			t.Fatal(err)
		}
		return ft.checkins[0]
	}
	clean := mk(privacy.Budget{}, 1)
	noisy := mk(privacy.Budget{Gradient: 0.5, ErrCount: 0.5, LabelCount: 0.5}, 1)
	if linalg.Equal(clean.Grad, noisy.Grad, 1e-9) {
		t.Error("gradient unperturbed despite enabled budget")
	}
	// The raw sample count is transmitted unperturbed per the paper.
	if noisy.NumSamples != 2 {
		t.Errorf("NumSamples = %d, want 2 (unperturbed)", noisy.NumSamples)
	}
}

func TestDeviceHoldoutExcludesFromGradient(t *testing.T) {
	// With HoldoutFraction ~1-epsilon... use 0.99 and seed scanning: after
	// enough samples some must be held out; we verify by checking that the
	// gradient for a fully-held-out batch is zero.
	for seed := uint64(0); seed < 50; seed++ {
		d, ft := newTestDevice(t, DeviceConfig{Minibatch: 1, HoldoutFraction: 0.99, Seed: seed})
		if err := d.AddSample(context.Background(), sampleFor(0)); err != nil {
			t.Fatal(err)
		}
		ci := ft.checkins[0]
		if linalg.Norm1(ci.Grad) == 0 {
			// Held out: gradient zero but the sample still counted.
			if ci.NumSamples != 1 {
				t.Error("held-out sample must still be counted in n_s")
			}
			return
		}
	}
	t.Error("no seed produced a held-out sample at fraction 0.99")
}

func TestDeviceEndToEndWithServer(t *testing.T) {
	// Device + server via a closure transport: full Algorithm 1+2 loop.
	m := model.NewLogisticRegression(2, 3)
	srv := newTestServer(t, ServerConfig{Model: m})
	token := register(t, srv, "d1")
	d, err := NewDevice(DeviceConfig{
		ID: "d1", Token: token, Model: m, Minibatch: 2,
		Transport: serverTransport{srv},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := d.AddSample(ctx, sampleFor(i%2)); err != nil {
			t.Fatalf("AddSample %d: %v", i, err)
		}
	}
	if srv.Iteration() != 10 {
		t.Errorf("server iterations = %d, want 10", srv.Iteration())
	}
	st, _ := srv.DeviceStats("d1")
	if st.Samples != 20 {
		t.Errorf("server counted %d samples, want 20", st.Samples)
	}
}

// serverTransport adapts a *Server directly (mirrors transport.Loopback
// without the import, keeping core's tests self-contained).
type serverTransport struct{ s *Server }

func (t serverTransport) Checkout(ctx context.Context, id, token string) (*CheckoutResponse, error) {
	return t.s.Checkout(ctx, id, token)
}

func (t serverTransport) Checkin(ctx context.Context, id, token string, req *CheckinRequest) error {
	return t.s.Checkin(ctx, id, token, req)
}

func TestDeviceDefaultsApplied(t *testing.T) {
	d, _ := newTestDevice(t, DeviceConfig{Minibatch: 0})
	if d.cfg.Minibatch != 1 {
		t.Errorf("default minibatch = %d, want 1", d.cfg.Minibatch)
	}
	if d.cfg.MaxBuffer != 8 {
		t.Errorf("default max buffer = %d, want 8", d.cfg.MaxBuffer)
	}
}

func ExampleDevice() {
	fmt.Println("see examples/quickstart for a runnable end-to-end example")
	// Output: see examples/quickstart for a runnable end-to-end example
}

func TestDeviceSecureNoiseDiffersAcrossRuns(t *testing.T) {
	// Same seed + SecureNoise: the sanitized gradients must differ between
	// two identically configured devices (deterministic streams would not).
	mk := func() *CheckinRequest {
		d, ft := newTestDevice(t, DeviceConfig{
			Minibatch: 1, Seed: 42, SecureNoise: true,
			Budget: privacy.Budget{Gradient: 1},
		})
		if err := d.AddSample(context.Background(), sampleFor(0)); err != nil {
			t.Fatal(err)
		}
		return ft.checkins[0]
	}
	a, b := mk(), mk()
	if linalg.Equal(a.Grad, b.Grad, 1e-12) {
		t.Error("secure noise produced identical gradients for identical seeds")
	}
}

func TestDeviceHoldoutErrorCounterOnlyHeldOut(t *testing.T) {
	// With holdout ~0 (but enabled), no sample is ever held out, so n_e
	// must stay 0 even though the model misclassifies everything — the
	// counter only sees held-out samples (Remark 2).
	d, ft := newTestDevice(t, DeviceConfig{Minibatch: 4, HoldoutFraction: 1e-12, Seed: 5})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := d.AddSample(ctx, sampleFor(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if ft.checkins[0].ErrCount != 0 {
		t.Errorf("ErrCount = %d, want 0 (nothing held out)", ft.checkins[0].ErrCount)
	}
	// With holdout ~1, everything is held out: gradient must be zero and
	// the counter active.
	d2, ft2 := newTestDevice(t, DeviceConfig{Minibatch: 4, HoldoutFraction: 0.999999, Seed: 5})
	for i := 0; i < 4; i++ {
		if err := d2.AddSample(ctx, sampleFor(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if linalg.Norm1(ft2.checkins[0].Grad) != 0 {
		t.Error("fully held-out batch should send a zero gradient")
	}
	// At w=0 every prediction is class 0, so the two y=1 samples miss.
	if got := ft2.checkins[0].ErrCount; got != 2 {
		t.Errorf("ErrCount = %d, want 2", got)
	}
}
