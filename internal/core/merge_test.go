package core

import (
	"context"
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

func mergeTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(2, 3),
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamViewZeroCopyAndVersion(t *testing.T) {
	ctx := context.Background()
	s := mergeTestServer(t)
	token, err := s.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.ParamView()
	if v0.Version != 0 {
		t.Fatalf("fresh view version = %d, want 0", v0.Version)
	}
	req := &CheckinRequest{
		Grad:        []float64{1, 0, 0, 0, 0, 0},
		NumSamples:  1,
		LabelCounts: []int{1, 0},
	}
	if err := s.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatal(err)
	}
	v1 := s.ParamView()
	if v1.Version != 1 {
		t.Fatalf("view version after checkin = %d, want 1", v1.Version)
	}
	// Two views of the same published snapshot must alias the same backing
	// array (the whole point of the zero-copy hook).
	v2 := s.ParamView()
	if &v1.Params[0] != &v2.Params[0] {
		t.Error("consecutive views of one snapshot do not share backing storage")
	}
	// And the pre-checkin view must be unaffected by the update (snapshots
	// are immutable once published).
	if v0.Params[0] != 0 {
		t.Errorf("old view mutated by later checkin: %v", v0.Params[:3])
	}
}

func TestAuthenticateExported(t *testing.T) {
	ctx := context.Background()
	s := mergeTestServer(t)
	token, err := s.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Authenticate(ctx, "d1", token); err != nil {
		t.Fatalf("Authenticate(valid) = %v", err)
	}
	if err := s.Authenticate(ctx, "d1", "wrong"); err != ErrAuth {
		t.Fatalf("Authenticate(bad token) = %v, want ErrAuth", err)
	}
	// The replica-style fallback must apply (and cache) exactly as it does
	// for Checkout.
	calls := 0
	s.cfg.AuthFallback = func(ctx context.Context, deviceID, tok string) error {
		calls++
		return nil
	}
	if err := s.Authenticate(ctx, "d2", "vouched"); err != nil {
		t.Fatalf("Authenticate(vouched) = %v", err)
	}
	if err := s.Authenticate(ctx, "d2", "vouched"); err != nil {
		t.Fatalf("Authenticate(cached vouched) = %v", err)
	}
	if calls != 1 {
		t.Fatalf("fallback ran %d times, want 1 (cached after vouch)", calls)
	}
}

func TestCrowdTotals(t *testing.T) {
	ctx := context.Background()
	s := mergeTestServer(t)
	token, err := s.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		req := &CheckinRequest{
			Grad:        []float64{0.1, 0, 0, 0, 0, 0},
			NumSamples:  5,
			ErrCount:    2,
			LabelCounts: []int{3, 2},
		}
		if err := s.Checkin(ctx, "d1", token, req); err != nil {
			t.Fatal(err)
		}
	}
	ns, ne, nky := s.CrowdTotals()
	if ns != 15 || ne != 6 {
		t.Fatalf("CrowdTotals = (%d, %d), want (15, 6)", ns, ne)
	}
	if len(nky) != 2 || nky[0] != 9 || nky[1] != 6 {
		t.Fatalf("CrowdTotals labels = %v, want [9 6]", nky)
	}
}

func TestMergeParamViews(t *testing.T) {
	views := []ParamView{
		{Params: []float64{1, 2}, Version: 1},
		{Params: []float64{3, 6}, Version: 3},
	}
	// Weighted by versions: (1·1 + 3·3)/4 = 2.5, (1·2 + 3·6)/4 = 5.
	got, err := MergeParamViews(views, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2.5) > 1e-12 || math.Abs(got[1]-5) > 1e-12 {
		t.Fatalf("weighted merge = %v, want [2.5 5]", got)
	}
	// All-zero weights fall back to a uniform average.
	got, err = MergeParamViews(views, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-4) > 1e-12 {
		t.Fatalf("uniform merge = %v, want [2 4]", got)
	}
	// The inputs must not be mutated and the output must be fresh storage.
	if views[0].Params[0] != 1 || views[1].Params[0] != 3 {
		t.Fatalf("merge mutated its inputs: %v", views)
	}

	if _, err := MergeParamViews(nil, nil); err == nil {
		t.Error("MergeParamViews(no views) did not error")
	}
	if _, err := MergeParamViews(views, []float64{1}); err == nil {
		t.Error("MergeParamViews(weight/view mismatch) did not error")
	}
	if _, err := MergeParamViews(views, []float64{1, -1}); err == nil {
		t.Error("MergeParamViews(negative weight) did not error")
	}
	bad := []ParamView{{Params: []float64{1}}, {Params: []float64{1, 2}}}
	if _, err := MergeParamViews(bad, []float64{1, 1}); err == nil {
		t.Error("MergeParamViews(shape mismatch) did not error")
	}
}
