package core

import (
	"errors"
	"testing"
)

// TestChurnReRegisterKeepsCountersWithoutResurrection covers the churn
// semantics the scenario harness leans on: a device that departs and
// re-registers under the same ID gets fresh credentials, keeps exactly
// one registry entry with its historical counters, contributes nothing
// twice to the crowd totals, and does NOT resurrect its old staleness —
// new checkins accrue staleness only from their own echoed versions.
func TestChurnReRegisterKeepsCountersWithoutResurrection(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	oldToken := register(t, s, "d1")
	helperToken := register(t, s, "helper")

	// d1 checks out at version 0, then the helper advances the server so
	// d1's eventual checkin is stale.
	co, err := s.Checkout(ctx, "d1", oldToken)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		hco, err := s.Checkout(ctx, "helper", helperToken)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Checkin(ctx, "helper", helperToken, validCheckin(hco.Version)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkin(ctx, "d1", oldToken, validCheckin(co.Version)); err != nil {
		t.Fatal(err)
	}
	stats, ok := s.DeviceStats("d1")
	if !ok {
		t.Fatal("d1 stats missing after checkin")
	}
	if stats.Checkins != 1 || stats.StalenessSum != 3 {
		t.Fatalf("pre-churn stats = %+v, want 1 checkin with staleness 3", stats)
	}
	preSamples, preErrs, preLabels := s.CrowdTotals()

	// The device departs and rejoins: same ID, rotated token.
	newToken := register(t, s, "d1")
	if newToken == oldToken {
		t.Fatal("re-registration did not rotate the token")
	}

	// Re-registration is pure credential rotation: nothing about the
	// learning state may move.
	if gotS, gotE, gotL := s.CrowdTotals(); gotS != preSamples || gotE != preErrs {
		t.Errorf("re-registration changed crowd totals: (%d, %d) vs (%d, %d)", gotS, gotE, preSamples, preErrs)
	} else {
		for k := range gotL {
			if gotL[k] != preLabels[k] {
				t.Errorf("re-registration changed label totals[%d]: %d vs %d", k, gotL[k], preLabels[k])
			}
		}
	}
	stats, ok = s.DeviceStats("d1")
	if !ok {
		t.Fatal("d1 stats missing after re-registration")
	}
	if stats.Checkins != 1 || stats.Samples != 1 || stats.StalenessSum != 3 {
		t.Errorf("re-registration altered d1's counters: %+v", stats)
	}

	// Exactly one registry entry — the departed incarnation must not be
	// double-counted in the exported roster.
	if n := len(s.ExportState().Devices); n != 2 {
		t.Errorf("exported %d device entries, want 2 (d1 + helper)", n)
	}

	// The old incarnation's credentials are dead on both paths.
	if _, err := s.Checkout(ctx, "d1", oldToken); !errors.Is(err, ErrAuth) {
		t.Errorf("old-token checkout err = %v, want ErrAuth", err)
	}
	if err := s.Checkin(ctx, "d1", oldToken, validCheckin(0)); !errors.Is(err, ErrAuth) {
		t.Errorf("old-token checkin err = %v, want ErrAuth", err)
	}
	if st, _ := s.DeviceStats("d1"); st.Checkins != 1 {
		t.Errorf("rejected old-token checkin was counted: %+v", st)
	}

	// A fresh checkout+checkin under the new token accrues staleness only
	// from its own version gap (0 here) — the old sum must not bleed in.
	co, err = s.Checkout(ctx, "d1", newToken)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkin(ctx, "d1", newToken, validCheckin(co.Version)); err != nil {
		t.Fatal(err)
	}
	stats, _ = s.DeviceStats("d1")
	if stats.Checkins != 2 || stats.StalenessSum != 3 {
		t.Errorf("post-rejoin stats = %+v, want 2 checkins with staleness still 3", stats)
	}
	if gotS, _, _ := s.CrowdTotals(); gotS != preSamples+1 {
		t.Errorf("crowd samples = %d, want %d (exactly one new contribution)", gotS, preSamples+1)
	}
}
