package core

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// ServerState is a serializable snapshot of everything Algorithm 2
// accumulates: the parameter vector, the iteration counter, and the
// per-device progress counters. The paper's prototype persisted this state
// in MySQL (Section V-A); package store provides the file-backed
// equivalent so a restarted server resumes the task instead of discarding
// the crowd's contributions.
//
// Device tokens are intentionally NOT part of the state: credentials are
// provisioning data, not learning state, and persisting them would widen
// the blast radius of a leaked checkpoint.
type ServerState struct {
	// ModelName, Classes and Dim identify the task shape for sanity
	// checking on restore.
	ModelName string `json:"modelName"`
	Classes   int    `json:"classes"`
	Dim       int    `json:"dim"`
	// Params is the flattened C×D parameter matrix.
	Params []float64 `json:"params"`
	// Iteration is the SGD iteration counter t.
	Iteration int `json:"iteration"`
	// Stopped records whether the stopping criteria had been met.
	Stopped bool `json:"stopped"`
	// TotalSamples, TotalErrors and TotalLabelCounts are the crowd-wide
	// counters behind the Eq. (14) estimates.
	TotalSamples     int   `json:"totalSamples"`
	TotalErrors      int   `json:"totalErrors"`
	TotalLabelCounts []int `json:"totalLabelCounts"`
	// UpdaterName identifies the updater that produced UpdaterState
	// (optimizer.Updater.Name()). ImportState only hands the state
	// vector back when the configured updater's name matches; otherwise
	// the state is reset — restoring an AdaGrad checkpoint into a task
	// reconfigured for Momentum must not silently reinterpret
	// accumulators as velocity.
	UpdaterName string `json:"updaterName,omitempty"`
	// UpdaterState is the updater's internal state, for updaters that
	// implement optimizer.StateExporter (AdaGrad's per-coordinate
	// accumulators, Momentum's velocity). Empty for stateless updaters
	// like the paper's SGD schedules. With it in the checkpoint, recovery
	// is bit-exact for stateful updaters too: ImportState hands the
	// vector back and journal-tail replay advances it deterministically.
	UpdaterState []float64 `json:"updaterState,omitempty"`
	// Devices holds the per-device counters, keyed by device ID.
	Devices map[string]DeviceStateEntry `json:"devices"`
}

// DeviceStateEntry is the serializable form of DeviceStats.
type DeviceStateEntry struct {
	Samples      int   `json:"samples"`
	Errors       int   `json:"errors"`
	LabelCounts  []int `json:"labelCounts"`
	Checkins     int   `json:"checkins"`
	StalenessSum int   `json:"stalenessSum"`
}

// ExportState snapshots the server's learning state. It takes the apply
// lock, so the exported parameters, iteration counter, crowd totals and
// per-device counters all come from the same quiescent point between
// batches.
func (s *Server) ExportState() *ServerState {
	s.wMu.Lock()
	defer s.wMu.Unlock()
	classes, dim := s.cfg.Model.Shape()
	totalNky := make([]int, len(s.totalNky))
	for k := range s.totalNky {
		totalNky[k] = int(s.totalNky[k].Load())
	}
	st := &ServerState{
		ModelName:        s.cfg.Model.Name(),
		Classes:          classes,
		Dim:              dim,
		Params:           linalg.Copy(s.w.Data()),
		Iteration:        int(s.t.Load()),
		Stopped:          s.stopped.Load(),
		TotalSamples:     int(s.totalNs.Load()),
		TotalErrors:      int(s.totalNe.Load()),
		TotalLabelCounts: totalNky,
		Devices:          make(map[string]DeviceStateEntry),
	}
	st.UpdaterName = s.cfg.Updater.Name()
	if se, ok := s.cfg.Updater.(optimizer.StateExporter); ok {
		// The updater only ever runs under wMu (applyBatchLocked, Replay),
		// so this export is from the same quiescent point as the rest.
		st.UpdaterState = se.ExportState()
	}
	s.devices.forEach(func(id string, d *DeviceStats) {
		st.Devices[id] = DeviceStateEntry{
			Samples:      d.Samples,
			Errors:       d.Errors,
			LabelCounts:  append([]int(nil), d.LabelCounts...),
			Checkins:     d.Checkins,
			StalenessSum: d.StalenessSum,
		}
	})
	return st
}

// ImportState restores a previously exported state. The snapshot must
// match the server's model name and shape. Devices present in the snapshot
// are re-created with their counters but WITHOUT credentials; they must
// re-register (see ServerState's security note).
//
// ImportState is a startup-time operation: restore the checkpoint before
// the server starts taking traffic. It excludes concurrent batch
// application via the apply lock, but lock-free stats readers racing the
// restore may observe a mix of old and new counters.
func (s *Server) ImportState(st *ServerState) error {
	if st == nil {
		return fmt.Errorf("core: nil state")
	}
	classes, dim := s.cfg.Model.Shape()
	if st.ModelName != s.cfg.Model.Name() || st.Classes != classes || st.Dim != dim {
		return fmt.Errorf("core: state for %s (%dx%d) does not match server model %s (%dx%d)",
			st.ModelName, st.Classes, st.Dim, s.cfg.Model.Name(), classes, dim)
	}
	if len(st.Params) != classes*dim {
		return fmt.Errorf("core: state params length %d, want %d", len(st.Params), classes*dim)
	}
	if len(st.TotalLabelCounts) != classes {
		return fmt.Errorf("core: state label counts length %d, want %d",
			len(st.TotalLabelCounts), classes)
	}
	for id, entry := range st.Devices {
		if len(entry.LabelCounts) != classes {
			return fmt.Errorf("core: device %s label counts length %d, want %d",
				id, len(entry.LabelCounts), classes)
		}
	}
	s.wMu.Lock()
	defer s.wMu.Unlock()
	if se, ok := s.cfg.Updater.(optimizer.StateExporter); ok {
		// The state vector is only meaningful to the updater that wrote
		// it: on a name mismatch (the task was reconfigured — AdaGrad →
		// Momentum, or a changed hyperparameter) the updater is reset
		// instead, because silently reinterpreting one updater's vector
		// as another's would corrupt the trajectory without any error.
		// An empty vector likewise resets — restoring from a checkpoint
		// written under stateless SGD starts the accumulators fresh,
		// exactly as a reconfigured task should. The converse (a
		// snapshot carrying state the configured updater cannot absorb)
		// is ignored for the same reason: the operator's current
		// configuration wins.
		state := st.UpdaterState
		if st.UpdaterName != s.cfg.Updater.Name() {
			state = nil
		}
		if err := se.ImportState(state); err != nil {
			return fmt.Errorf("core: restore updater state: %w", err)
		}
	}
	copy(s.w.Data(), st.Params)
	s.t.Store(int64(st.Iteration))
	s.totalNs.Store(int64(st.TotalSamples))
	s.totalNe.Store(int64(st.TotalErrors))
	for k := range s.totalNky {
		s.totalNky[k].Store(int64(st.TotalLabelCounts[k]))
	}
	s.stopped.Store(st.Stopped)
	for id, entry := range st.Devices {
		s.devices.importStats(id, DeviceStats{
			Samples:      entry.Samples,
			Errors:       entry.Errors,
			LabelCounts:  append([]int(nil), entry.LabelCounts...),
			Checkins:     entry.Checkins,
			StalenessSum: entry.StalenessSum,
		})
	}
	// A restore can rewind the iteration counter, so version numbers in
	// the retained delta ring would no longer identify the bases clients
	// hold. Drop it before republishing: delta checkouts fall back to
	// full frames until fresh snapshots accumulate.
	s.invalidateDeltaRing()
	s.publishSnapshotLocked()
	return nil
}
