package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// panicOnceUpdater panics on its first Update call and behaves like a
// plain SGD step afterwards — the misbehaving-user-callback scenario.
type panicOnceUpdater struct {
	panicked atomic.Bool
	inner    optimizer.Updater
}

func (u *panicOnceUpdater) Update(w, g *linalg.Matrix, t int) {
	if u.panicked.CompareAndSwap(false, true) {
		panic("updater exploded")
	}
	u.inner.Update(w, g, t)
}

func (u *panicOnceUpdater) Name() string { return "panic-once" }

// TestApplierPanicSafety checks the old defer-released-mutex robustness
// survives batching: a panic in a user-supplied Updater propagates to the
// leader's own Checkin call (as it always did), queued waiters in the
// same batch fail with ErrCheckinAborted instead of hanging, and the
// server keeps serving afterwards.
func TestApplierPanicSafety(t *testing.T) {
	const classes, dim = 2, 4
	srv, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(classes, dim),
		Updater: &panicOnceUpdater{inner: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	req := func() *CheckinRequest {
		return &CheckinRequest{
			Grad:        make([]float64, classes*dim),
			NumSamples:  1,
			LabelCounts: make([]int, classes),
		}
	}

	// Fire concurrent checkins; whichever becomes leader first trips the
	// panicking updater. Every call must resolve — the leader's caller
	// observes the panic, waiters batched behind it fail with
	// ErrCheckinAborted, later ones apply cleanly — and none may hang.
	const callers = 9
	var wg sync.WaitGroup
	outcomes := make(chan error, callers)
	panics := make(chan any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			outcomes <- srv.Checkin(ctx, "dev", token, req())
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("checkins hung after an applier panic")
	}
	close(panics)
	close(outcomes)
	var panicCount int
	for range panics {
		panicCount++
	}
	if panicCount != 1 {
		t.Fatalf("observed %d panics, want exactly 1 (in the leader's caller)", panicCount)
	}
	succeeded := 0
	for err := range outcomes {
		if err == nil {
			succeeded++
		} else if !errors.Is(err, ErrCheckinAborted) {
			t.Errorf("checkin error = %v, want nil or ErrCheckinAborted", err)
		}
	}

	// Exactly-once accounting: every nil outcome was applied once; the
	// panicking item and every aborted/abandoned one committed nothing
	// (the updater runs before the iteration or any counter is taken), so
	// a retry cannot double-count.
	if got, want := srv.Iteration(), succeeded; got != want {
		t.Errorf("Iteration() = %d, want %d (one per successful checkin)", got, want)
	}
	if st, ok := srv.DeviceStats("dev"); !ok || st.Checkins != succeeded {
		t.Errorf("device Checkins = %d (ok=%v), want %d", st.Checkins, ok, succeeded)
	}

	// The server must still work: semaphore and lock were released.
	if err := srv.Checkin(ctx, "dev", token, req()); err != nil {
		t.Fatalf("checkin after panic: %v", err)
	}
	if _, err := srv.Checkout(ctx, "dev", token); err != nil {
		t.Fatalf("checkout after panic: %v", err)
	}
}

// TestHookPanicIsolation checks that one panicking OnCheckin hook does
// not silently skip the remaining applied items' hooks: an audit sink is
// entitled to one record per applied checkin, the waiters still get
// their (successful) results, and the panic surfaces from the leader.
func TestHookPanicIsolation(t *testing.T) {
	const classes, dim = 2, 4
	var mu sync.Mutex
	var logged []int
	calls := 0
	srv, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(classes, dim),
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}},
		OnCheckin: func(ctx context.Context, deviceID string, iteration int, req *CheckinRequest) {
			mu.Lock()
			calls++
			first := calls == 1
			logged = append(logged, iteration)
			mu.Unlock()
			if first {
				panic("journal exploded")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	token, err := srv.RegisterDevice(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	req := func() *CheckinRequest {
		return &CheckinRequest{
			Grad:        make([]float64, classes*dim),
			NumSamples:  1,
			LabelCounts: make([]int, classes),
		}
	}
	const callers = 8
	var wg sync.WaitGroup
	panics := make(chan any, callers)
	failed := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			if err := srv.Checkin(ctx, "dev", token, req()); err != nil {
				failed <- err
			}
		}()
	}
	wg.Wait()
	close(panics)
	close(failed)
	var panicCount int
	for range panics {
		panicCount++
	}
	if panicCount != 1 {
		t.Fatalf("observed %d panics, want 1 (the leader that ran the exploding hook)", panicCount)
	}
	for err := range failed {
		t.Errorf("checkin failed with %v; hook panics must not fail applied checkins", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != callers {
		t.Fatalf("hook ran %d times, want %d (one per applied checkin, panicking one included)",
			len(logged), callers)
	}
	for i := 1; i < len(logged); i++ {
		if logged[i] != logged[i-1]+1 {
			t.Fatalf("hook iterations out of order: %v", logged)
		}
	}
}
