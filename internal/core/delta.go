package core

import (
	"context"
	"math"
	"time"
)

// DefaultDeltaHistory is how many recently published snapshots the
// server retains for delta checkouts when ServerConfig.DeltaHistory is
// unset. The ring stores pointers to snapshots that were published
// anyway, so the cost is retained memory (history × vector), not extra
// copies.
const DefaultDeltaHistory = 16

// ParamDelta is the delta-checkout read: everything a wire layer needs
// to answer "give me the parameters, I last saw iteration since". The
// zero-copy Params alias is ALWAYS populated (the full-frame fallback);
// Since >= 0 additionally offers the sparse change set against the
// caller's base, which is usually far smaller on the wire.
type ParamDelta struct {
	// Version is the iteration of the snapshot this delta leads to.
	Version int
	// Done mirrors CheckoutResponse.Done.
	Done bool
	// Params aliases the current published snapshot — read-only, like
	// ParamView.Params. Serve it verbatim when Since < 0.
	Params []float64
	// Since is the base iteration Indices/Values apply against, or -1
	// when no delta could be derived (base too old, ring invalidated by
	// a state restore, or since ahead of the counter) and the full
	// Params must be served instead.
	Since int
	// Indices/Values are the changed coordinates and their NEW absolute
	// values: copy the base, overwrite these, and the result is
	// bit-identical to Params. Empty when nothing changed (the hot
	// polling case). Valid only when Since >= 0.
	Indices []uint32
	Values  []float64
}

// recordSnapshotLocked appends a just-published snapshot to the delta
// ring. Callers hold wMu (the publication path); the ring has its own
// mutex because ParamDelta reads it without wMu. Re-publications of the
// same version replace the tail — published params for one version are
// deterministic, so this is a pointer swap, not a content change.
func (s *Server) recordSnapshotLocked(snap *paramSnapshot) {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	if n := len(s.ring); n > 0 && s.ring[n-1].version == snap.version {
		s.ring[n-1] = snap
		return
	}
	if len(s.ring) == s.cfg.DeltaHistory {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = snap
		return
	}
	s.ring = append(s.ring, snap)
}

// invalidateDeltaRing drops every retained snapshot. Called by
// ImportState: a restore may rewind the iteration counter, after which
// an old client base labeled with the same version number as a
// post-restore snapshot is only trustworthy for bit-exact replay
// lineages — dropping the ring forces full frames until fresh
// snapshots accumulate.
func (s *Server) invalidateDeltaRing() {
	s.ringMu.Lock()
	s.ring = s.ring[:0]
	s.ringMu.Unlock()
}

// ParamDelta derives the checkout delta against the caller's base
// iteration. It is lock-free on the snapshot read (same discipline as
// Checkout) plus one short mutex acquisition on the snapshot ring; when
// the base is found the diff costs one pass over the vector and
// allocates only the changed coordinates. since < 0, a base older than
// the ring, or a base ahead of the counter all degrade to the full
// fallback (Since = -1), never to an error.
func (s *Server) ParamDelta(since int) *ParamDelta {
	snap := s.refreshSnapshot()
	d := &ParamDelta{
		Version: snap.version,
		Done:    s.evalStopped(),
		Params:  snap.params,
		Since:   -1,
	}
	if since < 0 || since > snap.version {
		return d
	}
	if since == snap.version {
		// The caller is current: an empty delta, the cheapest answer the
		// hot polling path can get.
		d.Since = since
		return d
	}
	var base []float64
	s.ringMu.Lock()
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].version == since {
			base = s.ring[i].params
			break
		}
		if s.ring[i].version < since {
			break
		}
	}
	s.ringMu.Unlock()
	if base == nil || len(base) != len(snap.params) {
		return d
	}
	d.Since = since
	d.Indices, d.Values = DiffParams(base, snap.params)
	return d
}

// CheckoutDelta is the delta-aware Checkout: authenticate, then derive
// the delta against since (or the full fallback). It reports through
// the same checkout telemetry as Checkout, so switching wire formats
// does not blind the operator. Unlike Checkout, the returned Params
// alias the published snapshot — the transport encodes them without
// copying; callers must not mutate them.
func (s *Server) CheckoutDelta(ctx context.Context, deviceID, token string, since int) (*ParamDelta, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var start time.Time
	if s.cfg.Metrics != nil {
		start = time.Now()
	}
	if err := s.authenticate(ctx, deviceID, token); err != nil {
		s.cfg.Metrics.observeCheckout(start, err)
		return nil, err
	}
	d := s.ParamDelta(since)
	s.cfg.Metrics.observeCheckout(start, nil)
	return d, nil
}

// DiffParams computes the sparse change set between two equal-length
// vectors: the coordinates whose bit patterns differ and cur's values
// there. Bit comparison (not ==) so that ±0 transitions survive the
// trip and applying the delta to base reproduces cur exactly. Two
// passes keep the result slices exactly sized.
func DiffParams(base, cur []float64) ([]uint32, []float64) {
	changed := 0
	for i := range cur {
		if math.Float64bits(cur[i]) != math.Float64bits(base[i]) {
			changed++
		}
	}
	indices := make([]uint32, 0, changed)
	values := make([]float64, 0, changed)
	for i := range cur {
		if math.Float64bits(cur[i]) != math.Float64bits(base[i]) {
			indices = append(indices, uint32(i))
			values = append(values, cur[i])
		}
	}
	return indices, values
}
