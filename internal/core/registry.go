package core

import (
	"crypto/subtle"
	"hash/fnv"
	"sync"
)

// deviceShards is the number of independently locked registry shards —
// the same 16-way hash-striping idiom as the hub's task registry, so a
// crowd of devices authenticating concurrently never funnels through one
// mutex.
const deviceShards = 16

// deviceEntry is one enrolled device: its credential and its Algorithm 2
// progress counters. Both live under the owning shard's lock; counter
// mutation additionally happens only while the server's apply lock is
// held (see Server.wMu), so state export under that lock sees totals and
// per-device counters that agree.
type deviceEntry struct {
	token string
	stats DeviceStats
}

// deviceShard is one independently locked slice of the device registry.
type deviceShard struct {
	mu      sync.RWMutex
	entries map[string]*deviceEntry
}

// deviceRegistry is a hash-striped map of enrolled devices. Reads
// (authentication on every checkout and checkin, stats snapshots) take a
// shard read lock only; token rotation and counter updates take the
// shard write lock.
type deviceRegistry struct {
	shards [deviceShards]deviceShard
}

func newDeviceRegistry() *deviceRegistry {
	r := &deviceRegistry{}
	for i := range r.shards {
		r.shards[i].entries = make(map[string]*deviceEntry)
	}
	return r
}

// shardFor picks the shard owning a device ID (FNV-1a).
func (r *deviceRegistry) shardFor(deviceID string) *deviceShard {
	f := fnv.New32a()
	_, _ = f.Write([]byte(deviceID)) // fnv never errors
	return &r.shards[f.Sum32()%deviceShards]
}

// register enrolls (or re-enrolls) a device with a fresh token, creating
// its counters with the given class count on first enrollment.
func (r *deviceRegistry) register(deviceID, token string, classes int) {
	sh := r.shardFor(deviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[deviceID]; ok {
		e.token = token
		return
	}
	sh.entries[deviceID] = &deviceEntry{
		token: token,
		stats: DeviceStats{LabelCounts: make([]int, classes)},
	}
}

// authenticate verifies a device's token under the shard read lock. An
// entry with an empty stored token is unprovisioned — created by state
// restore or journal replay, which never persist credentials — and must
// never authenticate (an empty presented token would otherwise match it:
// ConstantTimeCompare of two empty slices reports equal). Such a device
// re-registers to obtain a fresh token.
func (r *deviceRegistry) authenticate(deviceID, token string) error {
	sh := r.shardFor(deviceID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[deviceID]
	if !ok || e.token == "" ||
		subtle.ConstantTimeCompare([]byte(e.token), []byte(token)) != 1 {
		return ErrAuth
	}
	return nil
}

// foldCheckin accumulates one checkin into a device's counters — the
// single accounting shared by the live apply path and journal replay, so
// the two can never drift (recovery must be bit-exact).
func foldCheckin(st *DeviceStats, req *CheckinRequest, staleness int) {
	st.Samples += req.NumSamples
	st.Errors += req.ErrCount
	for k, c := range req.LabelCounts {
		st.LabelCounts[k] += c
	}
	st.Checkins++
	st.StalenessSum += staleness
}

// applyCheckinStats folds one applied checkin into a device's counters
// under the shard write lock. It reports whether the device exists.
func (r *deviceRegistry) applyCheckinStats(deviceID string, req *CheckinRequest, staleness int) bool {
	sh := r.shardFor(deviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[deviceID]
	if !ok {
		return false
	}
	foldCheckin(&e.stats, req, staleness)
	return true
}

// recordReplay folds one replayed checkin into a device's counters,
// creating the entry (without a credential, like importStats) when the
// device contributed after the checkpoint that created it was taken.
func (r *deviceRegistry) recordReplay(deviceID string, req *CheckinRequest, staleness, classes int) {
	sh := r.shardFor(deviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[deviceID]
	if !ok {
		e = &deviceEntry{stats: DeviceStats{LabelCounts: make([]int, classes)}}
		sh.entries[deviceID] = e
	}
	foldCheckin(&e.stats, req, staleness)
}

// statsCopy returns a deep copy of a device's counters.
func (r *deviceRegistry) statsCopy(deviceID string) (DeviceStats, bool) {
	sh := r.shardFor(deviceID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[deviceID]
	if !ok {
		return DeviceStats{}, false
	}
	cp := e.stats
	cp.LabelCounts = append([]int(nil), e.stats.LabelCounts...)
	return cp, true
}

// importStats overwrites (or creates, without a credential) a device's
// counters — the ImportState path. A device restored this way must
// re-register before it can authenticate.
func (r *deviceRegistry) importStats(deviceID string, stats DeviceStats) {
	sh := r.shardFor(deviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[deviceID]
	if !ok {
		e = &deviceEntry{}
		sh.entries[deviceID] = e
	}
	e.stats = stats
}

// forEach calls fn for every enrolled device, one shard at a time under
// its read lock. The *DeviceStats passed to fn aliases registry memory
// and must not be retained.
func (r *deviceRegistry) forEach(fn func(deviceID string, stats *DeviceStats)) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id, e := range sh.entries {
			fn(id, &e.stats)
		}
		sh.mu.RUnlock()
	}
}
