package core

import (
	"context"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

func populatedServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	req := &CheckinRequest{
		Grad:        []float64{1, 0, 0, 0, 0, 0},
		NumSamples:  4,
		ErrCount:    2,
		LabelCounts: []int{2, 1, 1},
	}
	if err := s.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatal(err)
	}
	return s, token
}

func TestExportImportRoundTrip(t *testing.T) {
	src, _ := populatedServer(t)
	st := src.ExportState()

	dst := newTestServer(t, ServerConfig{})
	if err := dst.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if dst.Iteration() != src.Iteration() {
		t.Errorf("iteration %d, want %d", dst.Iteration(), src.Iteration())
	}
	if !linalg.Equal(dst.Params().Data(), src.Params().Data(), 0) {
		t.Error("params differ after restore")
	}
	gotEst, ok := dst.ErrEstimate()
	wantEst, _ := src.ErrEstimate()
	if !ok || gotEst != wantEst {
		t.Errorf("error estimate %v, want %v", gotEst, wantEst)
	}
	stats, ok := dst.DeviceStats("d1")
	if !ok || stats.Samples != 4 || stats.Errors != 2 {
		t.Errorf("restored device stats = %+v ok=%v", stats, ok)
	}
}

func TestImportStateRequiresReauth(t *testing.T) {
	src, _ := populatedServer(t)
	dst := newTestServer(t, ServerConfig{})
	if err := dst.ImportState(src.ExportState()); err != nil {
		t.Fatal(err)
	}
	// Tokens are not persisted: the device must re-register.
	if _, err := dst.Checkout(ctx, "d1", "old-token"); err == nil {
		t.Error("restored server must not accept unprovisioned credentials")
	}
	// In particular an EMPTY presented token must not match the restored
	// entry's empty stored token (a constant-time compare of two empty
	// strings reports equal — the classic restore auth bypass).
	if _, err := dst.Checkout(ctx, "d1", ""); err == nil {
		t.Error("unprovisioned device must reject an empty token")
	}
	tok := register(t, dst, "d1")
	if _, err := dst.Checkout(ctx, "d1", tok); err != nil {
		t.Errorf("re-registered device rejected: %v", err)
	}
}

func TestExportStateIsSnapshot(t *testing.T) {
	src, token := populatedServer(t)
	st := src.ExportState()
	before := append([]float64(nil), st.Params...)
	// Mutate the server after the export.
	if err := src.Checkin(ctx, "d1", token, validCheckin(1)); err != nil {
		t.Fatal(err)
	}
	if !linalg.Equal(st.Params, before, 0) {
		t.Error("exported state aliased live server data")
	}
}

func TestImportStateValidation(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	if err := s.ImportState(nil); err == nil {
		t.Error("nil state should be rejected")
	}
	other, err := NewServer(ServerConfig{
		Model:   model.NewLogisticRegression(5, 7),
		Updater: s.cfg.Updater,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ImportState(other.ExportState()); err == nil {
		t.Error("mismatched shape should be rejected")
	}
	st := s.ExportState()
	st.Params = st.Params[:1]
	if err := s.ImportState(st); err == nil {
		t.Error("truncated params should be rejected")
	}
	st2 := s.ExportState()
	st2.TotalLabelCounts = []int{1}
	if err := s.ImportState(st2); err == nil {
		t.Error("bad label-count arity should be rejected")
	}
	st3 := s.ExportState()
	st3.Devices = map[string]DeviceStateEntry{"x": {LabelCounts: []int{1}}}
	if err := s.ImportState(st3); err == nil {
		t.Error("bad device label-count arity should be rejected")
	}
}

func TestImportStatePreservesStopped(t *testing.T) {
	src, _ := populatedServer(t)
	src.Stop()
	dst := newTestServer(t, ServerConfig{})
	if err := dst.ImportState(src.ExportState()); err != nil {
		t.Fatal(err)
	}
	if !dst.Stopped() {
		t.Error("stopped flag lost on restore")
	}
}

// TestUpdaterStateRoundTripAndReset: checkpoints carry the updater's
// identity next to its state vector; a same-updater restore hands the
// state back, a reconfigured task resets it rather than reinterpreting
// one updater's accumulators as another's velocity.
func TestUpdaterStateRoundTripAndReset(t *testing.T) {
	ctx := context.Background()
	src := newTestServer(t, ServerConfig{Updater: &optimizer.AdaGrad{Eta: 0.5}})
	token, err := src.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	req := &CheckinRequest{Grad: []float64{1, 0.5, -0.25, 0, 1, -1}, NumSamples: 2, LabelCounts: []int{1, 1, 0}}
	if err := src.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatal(err)
	}
	st := src.ExportState()
	if st.UpdaterName != (&optimizer.AdaGrad{Eta: 0.5}).Name() {
		t.Errorf("UpdaterName = %q, want the AdaGrad name", st.UpdaterName)
	}
	if len(st.UpdaterState) != 6 {
		t.Fatalf("UpdaterState has %d coordinates, want 6", len(st.UpdaterState))
	}

	// Same updater: the state comes back.
	same := &optimizer.AdaGrad{Eta: 0.5}
	dst := newTestServer(t, ServerConfig{Updater: same})
	if err := dst.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if got := same.ExportState(); len(got) != 6 || got[0] != st.UpdaterState[0] {
		t.Errorf("same-updater restore got state %v, want %v", got, st.UpdaterState)
	}

	// Reconfigured task (different stateful updater): reset, not
	// reinterpretation.
	other := &optimizer.Momentum{Schedule: optimizer.Constant{C: 0.1}, Beta: 0.9}
	dst2 := newTestServer(t, ServerConfig{Updater: other})
	if err := dst2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if got := other.ExportState(); got != nil {
		t.Errorf("cross-updater restore imported state %v, want a reset (nil)", got)
	}
}
