package core

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"sync"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// ServerConfig configures a Crowd-ML server (Algorithm 2 inputs).
type ServerConfig struct {
	// Model defines the classifier (C, h, l of Eq. 2). Required.
	Model model.Model
	// Updater applies the parameter update of Eq. (3); required.
	// The paper's default is SGD with η(t) = c/√t.
	Updater optimizer.Updater
	// Tmax is the maximum number of iterations (checkins); 0 means
	// unbounded.
	Tmax int
	// TargetError is the desired overall error ρ; the server stops when
	// the running estimate ΣN_e/ΣN_s drops to ρ or below. 0 disables.
	TargetError float64
	// MinSamplesForStop is the minimum ΣN_s before the ρ criterion is
	// evaluated, so a couple of lucky early checkins cannot stop the task.
	// Defaults to 10× the model's class count when zero.
	MinSamplesForStop int
	// InitParams optionally seeds the parameter matrix ("Init: randomized
	// w" in Algorithm 2). Nil starts from zero, which is a valid (and
	// deterministic) initialization for the convex models in this repo.
	InitParams *linalg.Matrix
	// OnCheckin, if non-nil, is invoked after every successfully applied
	// checkin with the request context, the device ID, the resulting
	// iteration number, and the sanitized request (safe to log: it only
	// ever contains sanitized data). It runs under the server lock — keep
	// it fast, e.g. hand off to a store.Journal.
	OnCheckin func(ctx context.Context, deviceID string, iteration int, req *CheckinRequest)
}

// DeviceStats are the server's per-device progress counters from
// Algorithm 2: N^m_s, N^m_e and N^{k,m}_y.
type DeviceStats struct {
	// Samples is N^m_s, the total (unperturbed) sample count.
	Samples int
	// Errors is N^m_e, the accumulated sanitized misclassification count.
	Errors int
	// LabelCounts is N^{k,m}_y per class, accumulated sanitized counts.
	LabelCounts []int
	// Checkins counts completed checkins from this device.
	Checkins int
	// StalenessSum accumulates (t_apply − t_checkout) over checkins, for
	// latency analysis (Section IV-B3).
	StalenessSum int
}

// Server is the Crowd-ML server of Algorithm 2. It is safe for concurrent
// use by many devices; a single mutex guards the parameter vector, which is
// appropriate because the update itself is O(C·D) and the paper's design
// goal is a minimal server load (Section IV-B1).
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	w        *linalg.Matrix
	t        int // iteration counter (completed checkins)
	stopped  bool
	devices  map[string]*DeviceStats
	tokens   map[string]string
	totalNs  int
	totalNe  int
	totalNky []int
}

// NewServer constructs a server. It returns an error if the config is
// incomplete or the initial parameters have the wrong shape.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: ServerConfig.Model is required")
	}
	if cfg.Updater == nil {
		return nil, fmt.Errorf("core: ServerConfig.Updater is required")
	}
	classes, _ := cfg.Model.Shape()
	if cfg.MinSamplesForStop == 0 {
		cfg.MinSamplesForStop = 10 * classes
	}
	w := model.NewParams(cfg.Model)
	if cfg.InitParams != nil {
		if err := w.CopyFrom(cfg.InitParams); err != nil {
			return nil, fmt.Errorf("core: init params: %w", err)
		}
	}
	return &Server{
		cfg:      cfg,
		w:        w,
		devices:  make(map[string]*DeviceStats),
		tokens:   make(map[string]string),
		totalNky: make([]int, classes),
	}, nil
}

// RegisterDevice enrolls a device and returns its authentication token
// (the Web-portal "join task" step of Section V-A). Registering an already
// known device rotates its token.
func (s *Server) RegisterDevice(ctx context.Context, deviceID string) (token string, err error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return "", fmt.Errorf("core: token generation: %w", err)
	}
	token = hex.EncodeToString(buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[deviceID] = token
	if _, ok := s.devices[deviceID]; !ok {
		classes, _ := s.cfg.Model.Shape()
		s.devices[deviceID] = &DeviceStats{LabelCounts: make([]int, classes)}
	}
	return token, nil
}

// authenticate verifies a device's token under the lock.
func (s *Server) authenticate(deviceID, token string) error {
	want, ok := s.tokens[deviceID]
	if !ok || subtle.ConstantTimeCompare([]byte(want), []byte(token)) != 1 {
		return ErrAuth
	}
	return nil
}

// Checkout implements Server Routine 1: authenticate and hand out the
// current parameters. A stopped server still answers (with Done set) so
// devices learn to stand down.
func (s *Server) Checkout(ctx context.Context, deviceID, token string) (*CheckoutResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.authenticate(deviceID, token); err != nil {
		return nil, err
	}
	return &CheckoutResponse{
		Params:  linalg.Copy(s.w.Data()),
		Version: s.t,
		Done:    s.stoppedLocked(),
	}, nil
}

// Checkin implements Server Routine 2: authenticate, accumulate the
// device's counters, and apply the SGD update w ← w − η(t)·ĝ.
func (s *Server) Checkin(ctx context.Context, deviceID, token string, req *CheckinRequest) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.authenticate(deviceID, token); err != nil {
		return err
	}
	if s.stoppedLocked() {
		return ErrStopped
	}
	classes, dim := s.cfg.Model.Shape()
	if len(req.Grad) != classes*dim {
		return fmt.Errorf("gradient length %d, want %d: %w",
			len(req.Grad), classes*dim, ErrBadCheckin)
	}
	if len(req.LabelCounts) != classes {
		return fmt.Errorf("label counts length %d, want %d: %w",
			len(req.LabelCounts), classes, ErrBadCheckin)
	}
	if req.NumSamples < 0 {
		return fmt.Errorf("negative sample count: %w", ErrBadCheckin)
	}

	st := s.devices[deviceID]
	st.Samples += req.NumSamples
	st.Errors += req.ErrCount
	for k, c := range req.LabelCounts {
		st.LabelCounts[k] += c
		s.totalNky[k] += c
	}
	st.Checkins++
	st.StalenessSum += s.t - req.Version
	s.totalNs += req.NumSamples
	s.totalNe += req.ErrCount

	g, err := linalg.NewMatrixFrom(classes, dim, req.Grad)
	if err != nil {
		return fmt.Errorf("%v: %w", err, ErrBadCheckin)
	}
	s.t++
	s.cfg.Updater.Update(s.w, g, s.t)
	if s.cfg.OnCheckin != nil {
		s.cfg.OnCheckin(ctx, deviceID, s.t, req)
	}
	return nil
}

// stoppedLocked evaluates the Algorithm 2 stopping criteria under the lock.
func (s *Server) stoppedLocked() bool {
	if s.stopped {
		return true
	}
	if s.cfg.Tmax > 0 && s.t >= s.cfg.Tmax {
		s.stopped = true
		return true
	}
	if s.cfg.TargetError > 0 && s.totalNs >= s.cfg.MinSamplesForStop {
		if est := float64(s.totalNe) / float64(s.totalNs); est <= s.cfg.TargetError {
			s.stopped = true
			return true
		}
	}
	return false
}

// Stopped reports whether the stopping criteria have been met.
func (s *Server) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stoppedLocked()
}

// Stop forces the task to end (administrative shutdown).
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
}

// ModelShape returns the task's (classes, dim) parameter shape — what a
// compatible device model must match.
func (s *Server) ModelShape() (classes, dim int) {
	return s.cfg.Model.Shape()
}

// Iteration returns the server iteration counter t.
func (s *Server) Iteration() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t
}

// Params returns a snapshot copy of the current parameter matrix.
func (s *Server) Params() *linalg.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Clone()
}

// ErrEstimate returns the running error estimate ΣN_e/ΣN_s of Eq. (14).
// The second return is false until any samples have been reported.
func (s *Server) ErrEstimate() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.totalNs == 0 {
		return 0, false
	}
	return float64(s.totalNe) / float64(s.totalNs), true
}

// PriorEstimate returns the running class-prior estimate P̂(y=k) of
// Eq. (14). The second return is false until any samples have been
// reported.
func (s *Server) PriorEstimate() ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.totalNs == 0 {
		return nil, false
	}
	out := make([]float64, len(s.totalNky))
	for k, c := range s.totalNky {
		out[k] = float64(c) / float64(s.totalNs)
	}
	return out, true
}

// DeviceStats returns a copy of the per-device counters, or false if the
// device is unknown.
func (s *Server) DeviceStats(deviceID string) (DeviceStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.devices[deviceID]
	if !ok {
		return DeviceStats{}, false
	}
	cp := *st
	cp.LabelCounts = append([]int(nil), st.LabelCounts...)
	return cp, true
}
