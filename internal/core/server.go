package core

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// Default checkin-batching parameters (see ServerConfig).
const (
	DefaultCheckinBatchSize  = 32
	defaultQueueDepthFactor  = 4
	minDefaultCheckinQueue   = 64
	maxCheckinQueueHardLimit = 1 << 20
)

// ServerConfig configures a Crowd-ML server (Algorithm 2 inputs).
type ServerConfig struct {
	// Model defines the classifier (C, h, l of Eq. 2). Required.
	Model model.Model
	// Updater applies the parameter update of Eq. (3); required.
	// The paper's default is SGD with η(t) = c/√t.
	Updater optimizer.Updater
	// Tmax is the maximum number of iterations (checkins); 0 means
	// unbounded.
	Tmax int
	// TargetError is the desired overall error ρ; the server stops when
	// the running estimate ΣN_e/ΣN_s drops to ρ or below. 0 disables.
	TargetError float64
	// MinSamplesForStop is the minimum ΣN_s before the ρ criterion is
	// evaluated, so a couple of lucky early checkins cannot stop the task.
	// Defaults to 10× the model's class count when zero.
	MinSamplesForStop int
	// InitParams optionally seeds the parameter matrix ("Init: randomized
	// w" in Algorithm 2). Nil starts from zero, which is a valid (and
	// deterministic) initialization for the convex models in this repo.
	InitParams *linalg.Matrix
	// AuthFallback, if non-nil, is consulted when a device presents
	// credentials this server does not recognize: it receives the device
	// ID and token and returns nil to vouch for them. On success the
	// credential is provisioned locally (cached), so the fallback runs
	// once per unknown device, not once per request. This is how a
	// follower replica serves authenticated checkouts for devices that
	// registered on the leader — credentials are deliberately never part
	// of replicated state (see ServerState), so the replica verifies them
	// against the leader instead. A non-nil error keeps the original
	// ErrAuth; the fallback's own failure is never surfaced to the device
	// (it must not learn whether the fallback was even attempted).
	AuthFallback func(ctx context.Context, deviceID, token string) error
	// OnCheckin, if non-nil, is invoked after every successfully applied
	// checkin with the request context, the device ID, the resulting
	// iteration number, and the sanitized request (safe to log: it only
	// ever contains sanitized data).
	//
	// Concurrency contract: OnCheckin does NOT run under the server's
	// parameter lock. The batch leader that applied the checkin invokes it
	// after releasing the critical section, sequentially and in iteration
	// order, and the originating Checkin call does not return until its
	// hook has run. A slow hook therefore back-pressures the write path —
	// subsequent checkins queue until the hook returns — but never blocks
	// checkouts or statistics reads, and never extends the parameter-lock
	// hold itself.
	OnCheckin func(ctx context.Context, deviceID string, iteration int, req *CheckinRequest)
	// OnBatchCommit, if non-nil, is invoked by the batch leader once per
	// applied batch — after every applied checkin's OnCheckin hook has
	// run and BEFORE any of the batch's Checkin calls return — with n,
	// the number of checkins the batch applied (n ≥ 1; batches that
	// applied nothing skip the hook). This is the group-commit point: a
	// sink that must make a batch's OnCheckin effects durable before the
	// devices see their acknowledgments (the hub's fsync SyncPolicy) pays
	// its cost once per batch here instead of once per checkin. Like
	// OnCheckin it runs outside the parameter lock, on the single active
	// leader, so it back-pressures later checkins but never blocks
	// checkouts or statistics reads.
	OnBatchCommit func(n int)
	// CheckinBatchSize is the maximum number of queued checkins one batch
	// leader applies per acquisition of the parameter lock. Larger batches
	// amortize lock traffic and snapshot publication under load; a batch
	// of 1 (the uncontended case) behaves exactly like the unbatched
	// server. Defaults to DefaultCheckinBatchSize; values < 1 use the
	// default.
	CheckinBatchSize int
	// CheckinQueueDepth bounds the pending-checkin queue. When the queue
	// is full, Checkin blocks (backpressure) until space frees or its
	// context is cancelled. Defaults to 4× CheckinBatchSize (at least 64).
	CheckinQueueDepth int
	// CheckinFlushInterval is how long a batch leader lingers to collect
	// more queued checkins when its batch is not yet full, trading a
	// little latency for better amortization under bursty load. The
	// default of 0 applies whatever is queued immediately — deltas never
	// wait on a timer, because every pending checkin has a caller ready to
	// become the next leader.
	CheckinFlushInterval time.Duration
	// Metrics, if non-nil, receives operational telemetry from the
	// device-facing hot paths (see NewServerMetrics for the series).
	// Recording is lock-free atomic adds on pre-bound handles; nil
	// disables telemetry at the cost of one branch per request.
	Metrics *ServerMetrics
	// DeltaHistory is how many recently published parameter snapshots
	// the server retains to answer delta checkouts (ParamDelta; the
	// binary wire's ?since=N). The ring holds pointers to snapshots
	// published anyway, so the cost is retained memory, never extra
	// copies. A base older than the ring falls back to a full checkout.
	// Defaults to DefaultDeltaHistory; values < 1 use the default.
	DeltaHistory int
}

// DeviceStats are the server's per-device progress counters from
// Algorithm 2: N^m_s, N^m_e and N^{k,m}_y.
type DeviceStats struct {
	// Samples is N^m_s, the total (unperturbed) sample count.
	Samples int
	// Errors is N^m_e, the accumulated sanitized misclassification count.
	Errors int
	// LabelCounts is N^{k,m}_y per class, accumulated sanitized counts.
	LabelCounts []int
	// Checkins counts completed checkins from this device.
	Checkins int
	// StalenessSum accumulates (t_apply − t_checkout) over checkins, for
	// latency analysis (Section IV-B3).
	StalenessSum int
}

// paramSnapshot is the immutable copy-on-write view served to checkouts:
// the flattened parameters and the iteration they were captured at. A new
// snapshot is published after every applied batch; readers load it with a
// single atomic pointer read and never contend with writers.
type paramSnapshot struct {
	params  []float64 // immutable after publication
	version int
}

// Server is the Crowd-ML server of Algorithm 2. It is safe for concurrent
// use by many devices and built for read-mostly traffic (Section IV-B1:
// devices do the heavy lifting, the server's update is O(C·D)):
//
//   - Checkouts and statistics reads are lock-free. Parameters are served
//     from an immutable snapshot behind an atomic pointer, and the crowd
//     totals are atomic counters, so a million-device portal polling for
//     parameters never serializes on the update lock.
//   - Device credentials and per-device counters live in a hash-striped
//     registry (16 shards), so authentication scales with cores.
//   - Checkins are applied in batches: callers enqueue their sanitized
//     delta into a bounded queue and one caller — the batch leader —
//     drains up to CheckinBatchSize deltas and applies them under a
//     single acquisition of the parameter lock, preserving Algorithm 2
//     semantics exactly (each delta still gets its own iteration number,
//     η(t) step, staleness accounting and ρ-stop evaluation). Checkin
//     remains synchronous: it returns once its delta has been applied and
//     its OnCheckin hook has run.
type Server struct {
	cfg ServerConfig

	// snap is the published checkout snapshot (copy-on-write).
	snap atomic.Pointer[paramSnapshot]

	// wMu is the parameter/apply lock: it guards w and serializes batch
	// application, snapshot publication, and state import/export. The
	// read paths never take it.
	wMu sync.Mutex
	w   *linalg.Matrix

	// Learning-state counters, written only while wMu is held, read
	// lock-free by the stats endpoints.
	t        atomic.Int64 // iteration counter (completed checkins)
	stopped  atomic.Bool
	totalNs  atomic.Int64
	totalNe  atomic.Int64
	totalNky []atomic.Int64

	devices *deviceRegistry

	// ring retains the last cfg.DeltaHistory published snapshots (by
	// pointer) so ParamDelta can diff against a client's base iteration.
	// ringMu is leaf-level: taken alone by readers, after wMu by the
	// publication path, never the other way around.
	ringMu sync.Mutex
	ring   []*paramSnapshot

	// queue and leaderSem implement the batched applier: pending checkins
	// wait in queue; whoever holds the single leaderSem slot drains and
	// applies them (see batch.go).
	queue     chan *pendingCheckin
	leaderSem chan struct{}
}

// NewServer constructs a server. It returns an error if the config is
// incomplete or the initial parameters have the wrong shape.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: ServerConfig.Model is required")
	}
	if cfg.Updater == nil {
		return nil, fmt.Errorf("core: ServerConfig.Updater is required")
	}
	classes, _ := cfg.Model.Shape()
	if cfg.MinSamplesForStop == 0 {
		cfg.MinSamplesForStop = 10 * classes
	}
	if cfg.CheckinBatchSize < 1 {
		cfg.CheckinBatchSize = DefaultCheckinBatchSize
	}
	if cfg.CheckinQueueDepth < 1 {
		cfg.CheckinQueueDepth = defaultQueueDepthFactor * cfg.CheckinBatchSize
		if cfg.CheckinQueueDepth < minDefaultCheckinQueue {
			cfg.CheckinQueueDepth = minDefaultCheckinQueue
		}
	}
	if cfg.CheckinQueueDepth > maxCheckinQueueHardLimit {
		cfg.CheckinQueueDepth = maxCheckinQueueHardLimit
	}
	if cfg.DeltaHistory < 1 {
		cfg.DeltaHistory = DefaultDeltaHistory
	}
	w := model.NewParams(cfg.Model)
	if cfg.InitParams != nil {
		if err := w.CopyFrom(cfg.InitParams); err != nil {
			return nil, fmt.Errorf("core: init params: %w", err)
		}
	}
	s := &Server{
		cfg:       cfg,
		w:         w,
		totalNky:  make([]atomic.Int64, classes),
		devices:   newDeviceRegistry(),
		queue:     make(chan *pendingCheckin, cfg.CheckinQueueDepth),
		leaderSem: make(chan struct{}, 1),
	}
	s.publishSnapshotLocked() // initial snapshot at iteration 0
	return s, nil
}

// publishSnapshotLocked captures w into a fresh immutable snapshot and
// swaps it in. Callers must hold wMu (NewServer is exempt: the server is
// not yet shared). Because t only advances under wMu, published versions
// are monotonically non-decreasing.
func (s *Server) publishSnapshotLocked() {
	snap := &paramSnapshot{
		params:  linalg.Copy(s.w.Data()),
		version: int(s.t.Load()),
	}
	s.snap.Store(snap)
	s.recordSnapshotLocked(snap)
}

// refreshSnapshot returns the current snapshot, republishing it first
// when it trails the iteration counter and the parameter lock is free.
// Publication is lazy — batch application never copies the parameters;
// the first reader after a write burst does, and subsequent readers share
// that snapshot. When a batch holds the lock mid-apply, the reader serves
// the previous snapshot instead of blocking: bounded staleness a delayed
// checkout would produce anyway, and the echoed Version keeps the
// staleness accounting exact.
func (s *Server) refreshSnapshot() *paramSnapshot {
	snap := s.snap.Load()
	if snap.version == int(s.t.Load()) {
		return snap
	}
	if s.wMu.TryLock() {
		s.publishSnapshotLocked()
		s.wMu.Unlock()
	}
	return s.snap.Load()
}

// RegisterDevice enrolls a device and returns its authentication token
// (the Web-portal "join task" step of Section V-A). Registering an already
// known device rotates its token.
func (s *Server) RegisterDevice(ctx context.Context, deviceID string) (token string, err error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return "", fmt.Errorf("core: token generation: %w", err)
	}
	token = hex.EncodeToString(buf)
	classes, _ := s.cfg.Model.Shape()
	s.devices.register(deviceID, token, classes)
	return token, nil
}

// authenticate verifies a device's credentials, falling back to
// cfg.AuthFallback for devices this server does not know. A vouched-for
// credential is cached in the local registry, so the fallback's cost
// (for a replica, one round trip to the leader) is paid once per device,
// and the lock-free fast path is untouched for every later request.
func (s *Server) authenticate(ctx context.Context, deviceID, token string) error {
	err := s.devices.authenticate(deviceID, token)
	if err == nil || s.cfg.AuthFallback == nil {
		return err
	}
	// Empty tokens never authenticate locally (an unprovisioned restored
	// entry has an empty stored token) and must not be laundered through
	// the fallback either.
	if deviceID == "" || token == "" {
		return err
	}
	if s.cfg.AuthFallback(ctx, deviceID, token) != nil {
		return err // the device only ever learns ErrAuth
	}
	classes, _ := s.cfg.Model.Shape()
	s.devices.register(deviceID, token, classes)
	return nil
}

// Checkout implements Server Routine 1: authenticate and hand out the
// current parameters. It is lock-free — authentication takes one shard
// read lock and the parameters come from the immutable snapshot — so
// checkout throughput scales with cores instead of serializing behind
// concurrent checkins. A stopped server still answers (with Done set) so
// devices learn to stand down.
func (s *Server) Checkout(ctx context.Context, deviceID, token string) (*CheckoutResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var start time.Time
	if s.cfg.Metrics != nil {
		start = time.Now()
	}
	if err := s.authenticate(ctx, deviceID, token); err != nil {
		s.cfg.Metrics.observeCheckout(start, err)
		return nil, err
	}
	snap := s.refreshSnapshot()
	s.cfg.Metrics.observeCheckout(start, nil)
	return &CheckoutResponse{
		Params:  linalg.Copy(snap.params), // callers own the returned slice
		Version: snap.version,
		Done:    s.evalStopped(),
	}, nil
}

// Checkin implements Server Routine 2: authenticate, accumulate the
// device's counters, and apply the SGD update w ← w − η(t)·ĝ. The update
// is applied through the batched applier (see the Server doc comment);
// the call returns once the delta has been applied — so callers may
// immediately reuse req's slices — or with the context's error if the
// bounded queue stays full past cancellation.
func (s *Server) Checkin(ctx context.Context, deviceID, token string, req *CheckinRequest) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var start time.Time
	if s.cfg.Metrics != nil {
		start = time.Now()
	}
	err := s.checkin(ctx, deviceID, token, req)
	s.cfg.Metrics.observeCheckin(start, err)
	return err
}

// checkin is Checkin's classification-free body; the wrapper times it
// and feeds the outcome to the telemetry layer.
func (s *Server) checkin(ctx context.Context, deviceID, token string, req *CheckinRequest) error {
	if err := s.authenticate(ctx, deviceID, token); err != nil {
		return err
	}
	if s.evalStopped() {
		return ErrStopped
	}
	classes, dim := s.cfg.Model.Shape()
	if len(req.Grad) != classes*dim {
		return fmt.Errorf("gradient length %d, want %d: %w",
			len(req.Grad), classes*dim, ErrBadCheckin)
	}
	for _, v := range req.Grad {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// A non-finite value would poison w for every later device (and
			// a NaN cannot even be journaled — encoding/json rejects it), so
			// one malformed checkin must be rejected here, not applied.
			return fmt.Errorf("non-finite gradient value: %w", ErrBadCheckin)
		}
	}
	if len(req.LabelCounts) != classes {
		return fmt.Errorf("label counts length %d, want %d: %w",
			len(req.LabelCounts), classes, ErrBadCheckin)
	}
	if req.NumSamples < 0 {
		return fmt.Errorf("negative sample count: %w", ErrBadCheckin)
	}
	g, err := linalg.NewMatrixFrom(classes, dim, req.Grad)
	if err != nil {
		return fmt.Errorf("%v: %w", err, ErrBadCheckin)
	}
	return s.submit(ctx, &pendingCheckin{
		ctx:      ctx,
		deviceID: deviceID,
		req:      req,
		grad:     g,
	})
}

// evalStopped evaluates the Algorithm 2 stopping criteria from the atomic
// counters. Once a criterion trips the decision is latched, matching the
// locked implementation's stickiness (the ρ estimate may drift back above
// the target later; a stopped task stays stopped). Batch leaders call
// this while holding wMu, which makes their view authoritative; lock-free
// callers may observe the transition one batch late, never early enough
// to matter (counters are updated errors-before-samples, so a torn read
// can only overestimate the error rate and delay the ρ stop).
func (s *Server) evalStopped() bool {
	if s.stopped.Load() {
		return true
	}
	if s.cfg.Tmax > 0 && int(s.t.Load()) >= s.cfg.Tmax {
		s.stopped.Store(true)
		return true
	}
	if s.cfg.TargetError > 0 {
		ns := s.totalNs.Load()
		if ns >= int64(s.cfg.MinSamplesForStop) {
			if est := float64(s.totalNe.Load()) / float64(ns); est <= s.cfg.TargetError {
				s.stopped.Store(true)
				return true
			}
		}
	}
	return false
}

// Stopped reports whether the stopping criteria have been met.
func (s *Server) Stopped() bool {
	return s.evalStopped()
}

// Stop forces the task to end (administrative shutdown).
func (s *Server) Stop() {
	s.stopped.Store(true)
}

// ModelShape returns the task's (classes, dim) parameter shape — what a
// compatible device model must match.
func (s *Server) ModelShape() (classes, dim int) {
	return s.cfg.Model.Shape()
}

// Iteration returns the server iteration counter t.
func (s *Server) Iteration() int {
	return int(s.t.Load())
}

// SnapshotVersion returns the iteration of the currently published
// checkout snapshot. Publication is lazy, so it can trail Iteration until
// the next checkout (or while a batch is mid-apply), but it never
// decreases.
func (s *Server) SnapshotVersion() int {
	return s.snap.Load().version
}

// Params returns a snapshot copy of the current parameter matrix.
func (s *Server) Params() *linalg.Matrix {
	snap := s.refreshSnapshot()
	classes, dim := s.cfg.Model.Shape()
	m, err := linalg.NewMatrixFrom(classes, dim, linalg.Copy(snap.params))
	if err != nil {
		// The snapshot is always published with the model's shape.
		panic(err)
	}
	return m
}

// ErrEstimate returns the running error estimate ΣN_e/ΣN_s of Eq. (14).
// The second return is false until any samples have been reported.
func (s *Server) ErrEstimate() (float64, bool) {
	ns := s.totalNs.Load()
	if ns == 0 {
		return 0, false
	}
	return float64(s.totalNe.Load()) / float64(ns), true
}

// PriorEstimate returns the running class-prior estimate P̂(y=k) of
// Eq. (14). The second return is false until any samples have been
// reported.
func (s *Server) PriorEstimate() ([]float64, bool) {
	ns := s.totalNs.Load()
	if ns == 0 {
		return nil, false
	}
	out := make([]float64, len(s.totalNky))
	for k := range s.totalNky {
		out[k] = float64(s.totalNky[k].Load()) / float64(ns)
	}
	return out, true
}

// DeviceStats returns a copy of the per-device counters, or false if the
// device is unknown.
func (s *Server) DeviceStats(deviceID string) (DeviceStats, bool) {
	return s.devices.statsCopy(deviceID)
}
