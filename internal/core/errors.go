package core

import "errors"

var (
	// ErrAuth is returned when a device's credentials are rejected
	// (Algorithm 2 authenticates every checkout and checkin).
	ErrAuth = errors.New("crowdml: authentication failed")

	// ErrStopped is returned when the server's stopping criteria
	// (t ≥ Tmax or error estimate ≤ ρ) have been met.
	ErrStopped = errors.New("crowdml: learning task has stopped")

	// ErrBadCheckin is returned when a checkin payload is malformed
	// (wrong gradient length or label-count arity).
	ErrBadCheckin = errors.New("crowdml: malformed checkin")

	// ErrBufferFull is returned by Device.AddSample when the secure local
	// buffer has reached its maximum size B and collection is paused
	// (Device Routine 1: "stop collection to prevent resource outage").
	ErrBufferFull = errors.New("crowdml: device buffer full")

	// ErrCheckinAborted is returned to checkins waiting in an apply batch
	// whose leader panicked (a user-supplied Updater or OnCheckin hook
	// misbehaving). The panic itself propagates out of the leader's own
	// Checkin call; waiters get this error instead of hanging, and the
	// server remains usable.
	ErrCheckinAborted = errors.New("crowdml: checkin aborted by a panic in the batch apply")
)
