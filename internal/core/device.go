package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
)

// DeviceConfig configures a Crowd-ML device (Algorithm 1 inputs).
type DeviceConfig struct {
	// ID identifies the device to the server. Required.
	ID string
	// Token is the authentication token from Server.RegisterDevice.
	Token string
	// Model must match the server's model. Required.
	Model model.Model
	// Transport connects the device to the server. Required.
	Transport Transport
	// Minibatch is b, the number of samples that triggers a checkout
	// (Device Routine 1). Must be ≥ 1; defaults to 1.
	Minibatch int
	// MaxBuffer is B, the secure local buffer cap; sample collection
	// pauses at this size to prevent resource outage. Defaults to 8×b.
	MaxBuffer int
	// Lambda is the regularization weight λ of Eq. (2).
	Lambda float64
	// Budget sets the local differential-privacy levels (Device Routine 3).
	// The zero value disables all perturbation, the "ε⁻¹ = 0" setting.
	Budget privacy.Budget
	// HoldoutFraction, if positive, sets aside this fraction of each
	// minibatch as device-local test data (Remark 2): only those samples
	// feed the misclassification counter, and their gradients are excluded
	// from the average. Note the server-side error estimate ΣN_e/ΣN_s is
	// then scaled down by roughly this fraction, since N_s still counts
	// every sample.
	HoldoutFraction float64
	// Seed seeds the device's private noise/holdout randomness. Devices
	// with equal seeds produce identical noise streams; give every device
	// a distinct seed.
	Seed uint64
	// SecureNoise switches the sanitization noise to a cryptographically
	// secure source (crypto/rand). Production deployments should set this:
	// the DP guarantee assumes unpredictable noise. Seed is ignored for
	// noise generation when set (holdout selection also becomes
	// non-deterministic).
	SecureNoise bool
}

// Device is the device side of Crowd-ML (Algorithm 1). It is not safe for
// concurrent use: a physical device processes its own sensor stream
// sequentially, and simulations give each virtual device its own instance.
type Device struct {
	cfg DeviceConfig
	rng *rng.RNG

	buffer []model.Sample
	// dropped counts samples discarded because the buffer was full.
	dropped int
	// checkins counts successful flushes.
	checkins int
	// done latches once the server reports the task has stopped.
	done bool
}

// NewDevice constructs a device, validating the configuration.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("core: DeviceConfig.ID is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: DeviceConfig.Model is required")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("core: DeviceConfig.Transport is required")
	}
	if cfg.Minibatch < 1 {
		cfg.Minibatch = 1
	}
	if cfg.MaxBuffer < cfg.Minibatch {
		cfg.MaxBuffer = 8 * cfg.Minibatch
	}
	if cfg.HoldoutFraction < 0 || cfg.HoldoutFraction >= 1 {
		return nil, fmt.Errorf("core: HoldoutFraction %v outside [0,1)", cfg.HoldoutFraction)
	}
	noise := rng.New(cfg.Seed ^ 0xc2b2ae3d27d4eb4f)
	if cfg.SecureNoise {
		noise = rng.NewSecure()
	}
	return &Device{
		cfg:    cfg,
		rng:    noise,
		buffer: make([]model.Sample, 0, cfg.Minibatch),
	}, nil
}

// Done reports whether the server has told this device the task is over.
func (d *Device) Done() bool { return d.done }

// Buffered returns the current number of buffered samples (n_s).
func (d *Device) Buffered() int { return len(d.buffer) }

// Dropped returns the number of samples discarded due to a full buffer.
func (d *Device) Dropped() int { return d.dropped }

// Checkins returns the number of successful checkins so far.
func (d *Device) Checkins() int { return d.checkins }

// SampleSource yields a device's local sample stream. io.EOF signals a
// clean end of the stream. activity.Generator satisfies this interface.
type SampleSource interface {
	Next() (model.Sample, error)
}

// Run drives the device from a sample source until the source is
// exhausted (io.EOF), the server stops the task, the optional max sample
// count is reached, or ctx is cancelled. It returns the number of
// samples consumed from the source; consumed samples not yet confirmed
// by the server remain buffered (see Buffered and Checkins). Transient
// transport failures are non-critical (paper Remark 1) and do not abort
// the run: the affected samples stay buffered and are retried on
// subsequent steps. If the buffer reaches its cap B and cannot be
// drained (the transport is persistently failing), Run returns
// ErrBufferFull rather than spinning or discarding samples — the buffer
// is retained, so the caller can back off and call Run again. A failure
// to flush the trailing partial minibatch is likewise reported, with the
// buffer retained. A cancelled context aborts with ctx.Err(); a stopped
// task returns nil with the device's Done latched.
func (d *Device) Run(ctx context.Context, src SampleSource, max int) (sent int, err error) {
	if d.done {
		// Already stood down: consume nothing.
		return 0, nil
	}
	for max <= 0 || sent < max {
		if err := ctx.Err(); err != nil {
			return sent, err
		}
		// Drain a full buffer before pulling from the source, so no
		// sample is ever discarded by AddSample's cap check.
		if len(d.buffer) >= d.cfg.MaxBuffer {
			switch ferr := d.Flush(ctx); {
			case errors.Is(ferr, ErrStopped):
				return sent, nil
			case ferr != nil:
				if ctx.Err() != nil {
					return sent, ctx.Err()
				}
				// Full buffer and a failing transport: no progress is
				// possible, so hand control back instead of busy-looping.
				// Both the cause and ErrBufferFull stay errors.Is-able.
				return sent, fmt.Errorf("core: buffer at cap and flush failing: %w (%w)", ferr, ErrBufferFull)
			}
		}
		s, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return sent, fmt.Errorf("core: sample source: %w", err)
		}
		err = d.AddSample(ctx, s)
		// On every path below except ErrBufferFull the sample was
		// consumed and buffered (or flushed), so it counts toward sent.
		switch {
		case errors.Is(err, ErrStopped):
			return sent + 1, nil
		case errors.Is(err, ErrBufferFull):
			// Unreachable given the pre-drain above, but don't spin if it
			// ever happens.
			return sent, err
		case err != nil && ctx.Err() != nil:
			return sent + 1, ctx.Err()
		}
		// Other transport errors: sample is buffered, retried later.
		sent++
	}
	// Flush the trailing partial minibatch; a failure here would
	// otherwise go unretried, so surface it (the buffer is retained).
	if err := d.Flush(ctx); err != nil && !errors.Is(err, ErrStopped) {
		if ctx.Err() != nil {
			return sent, ctx.Err()
		}
		return sent, fmt.Errorf("core: final flush: %w", err)
	}
	return sent, nil
}

// AddSample implements Device Routine 1: buffer the sample and, when the
// minibatch threshold b is reached, attempt a checkout+checkin round trip.
//
// Per the paper's Remark 1, communication failures are non-critical: the
// sample stays buffered and the flush is retried on the next AddSample.
// The returned error reports such a failure (so callers can log or back
// off) but the device remains usable. ErrBufferFull means the sample was
// discarded because the buffer hit its cap B.
func (d *Device) AddSample(ctx context.Context, s model.Sample) error {
	if d.done {
		return ErrStopped
	}
	if len(d.buffer) >= d.cfg.MaxBuffer {
		d.dropped++
		return ErrBufferFull
	}
	d.buffer = append(d.buffer, s)
	if len(d.buffer) >= d.cfg.Minibatch {
		return d.Flush(ctx)
	}
	return nil
}

// Flush implements Device Routines 2 and 3: check out the current
// parameters, compute per-sample predictions and the averaged regularized
// gradient, sanitize everything with the local privacy mechanisms, and
// check the results in. On any communication failure the buffer is
// retained for a later retry.
func (d *Device) Flush(ctx context.Context) error {
	if len(d.buffer) == 0 {
		return nil
	}
	co, err := d.cfg.Transport.Checkout(ctx, d.cfg.ID, d.cfg.Token)
	if errors.Is(err, ErrStopped) {
		// The transport relayed that the task is over (e.g. a closed or
		// stopped task over HTTP): stand down like a Done checkout.
		d.done = true
		return ErrStopped
	}
	if err != nil {
		return fmt.Errorf("checkout: %w", err)
	}
	if co.Done {
		d.done = true
		return ErrStopped
	}
	classes, dim := d.cfg.Model.Shape()
	w, err := linalg.NewMatrixFrom(classes, dim, co.Params)
	if err != nil {
		return fmt.Errorf("checkout params: %w", err)
	}

	// Device Routine 2: predictions, counters, gradient. With a holdout
	// fraction (Remark 2), the misclassification counter is computed only
	// from the held-out samples, whose gradients are excluded from the
	// average; the server's error estimate then reflects generalization
	// rather than training error. Without holdout, every sample feeds
	// both the counter and the gradient, exactly as Algorithm 1 reads.
	ns := len(d.buffer)
	ne := 0
	nky := make([]int, classes)
	holdout := d.cfg.HoldoutFraction > 0
	training := d.buffer
	if holdout {
		training = make([]model.Sample, 0, ns)
	}
	for _, s := range d.buffer {
		nky[s.Y]++
		heldOut := holdout && d.rng.Float64() < d.cfg.HoldoutFraction
		if !holdout || heldOut {
			if d.cfg.Model.Misclassified(w, s) {
				ne++
			}
		}
		if holdout && !heldOut {
			training = append(training, s)
		}
	}
	g := optimizer.AverageGradient(d.cfg.Model, w, training, d.cfg.Lambda)
	if g == nil {
		// Every sample was held out; send a zero gradient so the counters
		// still reach the server.
		g = model.NewParams(d.cfg.Model)
	}

	// Device Routine 3: sanitize with the local mechanisms.
	privacy.PerturbGradient(g, len(training), d.cfg.Model.GradientSensitivity(),
		d.cfg.Budget.Gradient, d.rng)
	req := &CheckinRequest{
		Grad:        g.Data(),
		NumSamples:  ns,
		ErrCount:    privacy.SanitizeCount(ne, d.cfg.Budget.ErrCount, d.rng),
		LabelCounts: privacy.SanitizeCounts(nky, d.cfg.Budget.LabelCount, d.rng),
		Version:     co.Version,
	}
	if err := d.cfg.Transport.Checkin(ctx, d.cfg.ID, d.cfg.Token, req); err != nil {
		if errors.Is(err, ErrStopped) {
			d.done = true
			return ErrStopped
		}
		return fmt.Errorf("checkin: %w", err)
	}

	// Reset n_s, n_e, n^k_y (end of Device Routine 2).
	d.buffer = d.buffer[:0]
	d.checkins++
	return nil
}
