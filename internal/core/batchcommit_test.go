package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// TestOnBatchCommitOrdering: the group-commit hook runs once per applied
// batch, after the batch's OnCheckin hooks and before any Checkin call
// returns — the ordering a durability sink's fsync depends on.
func TestOnBatchCommitOrdering(t *testing.T) {
	ctx := context.Background()
	var hooks, commits, committedCheckins atomic.Int64
	var orderErr atomic.Value
	cfg := ServerConfig{
		Model:   model.NewLogisticRegression(2, 2),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
		OnCheckin: func(ctx context.Context, deviceID string, iteration int, req *CheckinRequest) {
			hooks.Add(1)
		},
		OnBatchCommit: func(n int) {
			if hooks.Load() < commits.Load()+int64(n) {
				orderErr.Store("OnBatchCommit ran before its batch's OnCheckin hooks")
			}
			commits.Add(1)
			committedCheckins.Add(int64(n))
		},
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		req := &CheckinRequest{Grad: []float64{1, 0, 0, 1}, NumSamples: 1, LabelCounts: []int{1, 0}}
		if err := s.Checkin(ctx, "d1", token, req); err != nil {
			t.Fatal(err)
		}
		// Synchronous contract: by the time Checkin returns, its batch has
		// committed.
		if committedCheckins.Load() < int64(i+1) {
			t.Fatalf("checkin %d returned before its batch commit (%d committed)",
				i+1, committedCheckins.Load())
		}
	}
	if msg := orderErr.Load(); msg != nil {
		t.Error(msg)
	}
	if commits.Load() != 4 {
		t.Errorf("%d batch commits for 4 sequential checkins, want 4", commits.Load())
	}
}

// TestOnBatchCommitCoversConcurrentBatch: under concurrency the commit
// count can shrink below the checkin count (that is the amortization),
// but the committed-checkin total must cover every acknowledged success.
func TestOnBatchCommitCoversConcurrentBatch(t *testing.T) {
	ctx := context.Background()
	var commits, committed atomic.Int64
	cfg := ServerConfig{
		Model:            model.NewLogisticRegression(2, 2),
		Updater:          &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
		CheckinBatchSize: 8,
		OnBatchCommit: func(n int) {
			commits.Add(1)
			committed.Add(int64(n))
		},
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.RegisterDevice(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	var wg sync.WaitGroup
	var acked atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &CheckinRequest{Grad: []float64{1, 0, 0, 1}, NumSamples: 1, LabelCounts: []int{1, 0}}
			if err := s.Checkin(ctx, "d1", token, req); err == nil {
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	if committed.Load() != acked.Load() {
		t.Errorf("batch commits covered %d checkins, %d were acknowledged", committed.Load(), acked.Load())
	}
	if commits.Load() > acked.Load() {
		t.Errorf("%d commits for %d checkins — more commits than checkins", commits.Load(), acked.Load())
	}
}
