package core

import (
	"context"
	"errors"
	"io"
	"testing"

	"github.com/crowdml/crowdml/internal/model"
)

// sliceSource yields a fixed set of samples then io.EOF.
type sliceSource struct {
	samples []model.Sample
	i       int
}

func (s *sliceSource) Next() (model.Sample, error) {
	if s.i >= len(s.samples) {
		return model.Sample{}, io.EOF
	}
	s.i++
	return s.samples[s.i-1], nil
}

func runSource(n int) *sliceSource {
	src := &sliceSource{}
	for i := 0; i < n; i++ {
		src.samples = append(src.samples, sampleFor(i%2))
	}
	return src
}

func TestRunDrainsSourceAndFlushesTail(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	srv := newTestServer(t, ServerConfig{Model: m})
	token := register(t, srv, "d1")
	d, err := NewDevice(DeviceConfig{
		ID: "d1", Token: token, Model: m, Minibatch: 4,
		Transport: serverTransport{srv},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 samples at b=4: two full minibatches plus a flushed tail of 2.
	sent, err := d.Run(context.Background(), runSource(10), 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sent != 10 {
		t.Errorf("sent = %d, want 10", sent)
	}
	if st, _ := srv.DeviceStats("d1"); st.Samples != 10 {
		t.Errorf("server saw %d samples, want 10 (tail not flushed?)", st.Samples)
	}
	if srv.Iteration() != 3 {
		t.Errorf("iterations = %d, want 3", srv.Iteration())
	}
}

func TestRunHonorsMax(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	srv := newTestServer(t, ServerConfig{Model: m})
	token := register(t, srv, "d1")
	d, _ := NewDevice(DeviceConfig{
		ID: "d1", Token: token, Model: m, Minibatch: 1,
		Transport: serverTransport{srv},
	})
	sent, err := d.Run(context.Background(), runSource(100), 7)
	if err != nil || sent != 7 {
		t.Errorf("Run = (%d, %v), want (7, nil)", sent, err)
	}
}

func TestRunStopsOnCancelledContext(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	srv := newTestServer(t, ServerConfig{Model: m})
	token := register(t, srv, "d1")
	d, _ := NewDevice(DeviceConfig{
		ID: "d1", Token: token, Model: m, Minibatch: 1,
		Transport: serverTransport{srv},
	})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Run(cctx, runSource(10), 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Run error = %v, want context.Canceled", err)
	}
}

func TestRunReturnsCleanlyWhenTaskStops(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	srv := newTestServer(t, ServerConfig{Model: m, Tmax: 2})
	token := register(t, srv, "d1")
	d, _ := NewDevice(DeviceConfig{
		ID: "d1", Token: token, Model: m, Minibatch: 1,
		Transport: serverTransport{srv},
	})
	sent, err := d.Run(context.Background(), runSource(50), 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !d.Done() {
		t.Error("device should latch Done when the server stops the task")
	}
	if sent >= 50 {
		t.Errorf("sent = %d, expected early stop before the source drained", sent)
	}
}

// downTransport fails every call, simulating a persistent outage.
type downTransport struct{ calls int }

var errDown = errors.New("network down")

func (d *downTransport) Checkout(context.Context, string, string) (*CheckoutResponse, error) {
	d.calls++
	return nil, errDown
}

func (d *downTransport) Checkin(context.Context, string, string, *CheckinRequest) error {
	d.calls++
	return errDown
}

// TestRunReturnsBufferFullOnDeadTransport: with the transport down and
// the buffer at its cap, Run must hand control back (retaining the
// buffer) instead of busy-looping through the rest of the source.
func TestRunReturnsBufferFullOnDeadTransport(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	tr := &downTransport{}
	d, err := NewDevice(DeviceConfig{
		ID: "d1", Token: "t", Model: m, Minibatch: 2, MaxBuffer: 4,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent, err := d.Run(context.Background(), runSource(100), 0)
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("Run = (%d, %v), want ErrBufferFull", sent, err)
	}
	if d.Buffered() != 4 {
		t.Errorf("buffered = %d, want the full cap of 4 retained", d.Buffered())
	}
	if d.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0 — Run must pre-drain, not discard", d.Dropped())
	}
	if tr.calls > 20 {
		t.Errorf("transport called %d times — Run kept spinning", tr.calls)
	}
}

// TestRunSurfacesTrailingFlushFailure: a trailing partial minibatch that
// cannot be checked in must be reported, not silently counted as
// contributed.
func TestRunSurfacesTrailingFlushFailure(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	tr := &downTransport{}
	d, err := NewDevice(DeviceConfig{
		ID: "d1", Token: "t", Model: m, Minibatch: 5, MaxBuffer: 100,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 samples < minibatch: nothing flushes until the trailing flush,
	// which fails on the dead transport.
	sent, err := d.Run(context.Background(), runSource(3), 0)
	if err == nil || errors.Is(err, ErrBufferFull) {
		t.Fatalf("Run = (%d, %v), want a final-flush error", sent, err)
	}
	if d.Buffered() != 3 {
		t.Errorf("buffered = %d, want 3 retained for retry", d.Buffered())
	}
}

func TestRunOnDoneDeviceConsumesNothing(t *testing.T) {
	m := model.NewLogisticRegression(2, 3)
	srv := newTestServer(t, ServerConfig{Model: m, Tmax: 1})
	token := register(t, srv, "d1")
	d, _ := NewDevice(DeviceConfig{
		ID: "d1", Token: token, Model: m, Minibatch: 1,
		Transport: serverTransport{srv},
	})
	if _, err := d.Run(context.Background(), runSource(10), 0); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("Tmax=1 should have stopped the task")
	}
	src := runSource(10)
	sent, err := d.Run(context.Background(), src, 0)
	if sent != 0 || err != nil {
		t.Errorf("Run on done device = (%d, %v), want (0, nil)", sent, err)
	}
	if src.i != 0 {
		t.Errorf("done device consumed %d samples from the source", src.i)
	}
}

func TestServerMethodsRejectCancelledContext(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	token := register(t, srv, "d1")
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.RegisterDevice(cctx, "d2"); !errors.Is(err, context.Canceled) {
		t.Errorf("RegisterDevice = %v, want context.Canceled", err)
	}
	if _, err := srv.Checkout(cctx, "d1", token); !errors.Is(err, context.Canceled) {
		t.Errorf("Checkout = %v, want context.Canceled", err)
	}
	if err := srv.Checkin(cctx, "d1", token, validCheckin(0)); !errors.Is(err, context.Canceled) {
		t.Errorf("Checkin = %v, want context.Canceled", err)
	}
}
