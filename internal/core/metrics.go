package core

import (
	"errors"
	"time"

	"github.com/crowdml/crowdml/internal/telemetry"
)

// ServerMetrics holds the pre-bound telemetry handles for one server's
// device-facing hot paths. Handles are resolved once at construction —
// the per-request cost is atomic adds on already-bound series, never a
// registry lookup — and every field tolerates being nil, so a nil
// *ServerMetrics (telemetry disabled) costs the hot path exactly one
// predictable branch.
//
// Metric names (all carry a task label):
//
//	crowdml_checkouts_total            counter    successful checkouts
//	crowdml_checkout_seconds           histogram  checkout latency
//	crowdml_checkins_applied_total     counter    checkins applied to w
//	crowdml_checkin_seconds            histogram  checkin latency (incl. queueing)
//	crowdml_checkins_rejected_total    counter    + reason: auth | bad_request | stopped | aborted
//	crowdml_checkin_batch_size         histogram  deltas applied per parameter-lock acquisition
type ServerMetrics struct {
	checkouts       *telemetry.Counter
	checkoutSeconds *telemetry.Histogram
	checkinsApplied *telemetry.Counter
	checkinSeconds  *telemetry.Histogram
	batchSize       *telemetry.Histogram

	rejectedAuth    *telemetry.Counter
	rejectedBad     *telemetry.Counter
	rejectedStopped *telemetry.Counter
	rejectedAborted *telemetry.Counter
}

// NewServerMetrics binds the core-layer metric series for the given
// task in reg. A nil registry yields nil (telemetry disabled), which
// every recording site accepts.
func NewServerMetrics(reg *telemetry.Registry, task string) *ServerMetrics {
	if reg == nil {
		return nil
	}
	t := telemetry.L("task", task)
	rejected := func(reason string) *telemetry.Counter {
		return reg.Counter("crowdml_checkins_rejected_total",
			"Checkins rejected before application, by reason.",
			t, telemetry.L("reason", reason))
	}
	return &ServerMetrics{
		checkouts: reg.Counter("crowdml_checkouts_total",
			"Successful parameter checkouts.", t),
		checkoutSeconds: reg.Histogram("crowdml_checkout_seconds",
			"Checkout latency in seconds.", telemetry.DurationBuckets, t),
		checkinsApplied: reg.Counter("crowdml_checkins_applied_total",
			"Checkins whose gradient was applied to the parameters.", t),
		checkinSeconds: reg.Histogram("crowdml_checkin_seconds",
			"Checkin latency in seconds, including queue wait and group commit.",
			telemetry.DurationBuckets, t),
		batchSize: reg.Histogram("crowdml_checkin_batch_size",
			"Checkin deltas applied per parameter-lock acquisition.",
			telemetry.BatchBuckets, t),
		rejectedAuth:    rejected("auth"),
		rejectedBad:     rejected("bad_request"),
		rejectedStopped: rejected("stopped"),
		rejectedAborted: rejected("aborted"),
	}
}

// observeCheckout records one Checkout outcome. Context-cancellation
// errors are counted nowhere: the device gave up, the server did no
// classifiable work.
func (m *ServerMetrics) observeCheckout(start time.Time, err error) {
	if m == nil {
		return
	}
	switch {
	case err == nil:
		m.checkouts.Inc()
		m.checkoutSeconds.ObserveSince(start)
	case errors.Is(err, ErrAuth):
		m.rejectedAuth.Inc()
	}
}

// observeCheckin records one Checkin outcome.
func (m *ServerMetrics) observeCheckin(start time.Time, err error) {
	if m == nil {
		return
	}
	switch {
	case err == nil:
		m.checkinsApplied.Inc()
		m.checkinSeconds.ObserveSince(start)
	case errors.Is(err, ErrAuth):
		m.rejectedAuth.Inc()
	case errors.Is(err, ErrBadCheckin):
		m.rejectedBad.Inc()
	case errors.Is(err, ErrStopped):
		m.rejectedStopped.Inc()
	case errors.Is(err, ErrCheckinAborted):
		m.rejectedAborted.Inc()
	}
}

// observeBatch records the size of one applied batch.
func (m *ServerMetrics) observeBatch(n int) {
	if m == nil {
		return
	}
	m.batchSize.Observe(float64(n))
}
