package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

// ctx is the background context shared by the package's tests.
var ctx = context.Background()

func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = model.NewLogisticRegression(3, 2)
	}
	if cfg.Updater == nil {
		cfg.Updater = &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}}
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func register(t *testing.T, s *Server, id string) string {
	t.Helper()
	token, err := s.RegisterDevice(context.Background(), id)
	if err != nil {
		t.Fatalf("RegisterDevice: %v", err)
	}
	return token
}

func validCheckin(version int) *CheckinRequest {
	return &CheckinRequest{
		Grad:        make([]float64, 3*2),
		NumSamples:  1,
		ErrCount:    1,
		LabelCounts: []int{1, 0, 0},
		Version:     version,
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("expected error for missing model")
	}
	if _, err := NewServer(ServerConfig{Model: model.NewLogisticRegression(2, 2)}); err == nil {
		t.Error("expected error for missing updater")
	}
	bad := ServerConfig{
		Model:      model.NewLogisticRegression(2, 2),
		Updater:    &optimizer.SGD{Schedule: optimizer.Constant{C: 1}},
		InitParams: linalg.NewMatrix(5, 5),
	}
	if _, err := NewServer(bad); err == nil {
		t.Error("expected error for wrong-shape init params")
	}
}

func TestAuthRequired(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	if _, err := s.Checkout(ctx, "ghost", "nope"); !errors.Is(err, ErrAuth) {
		t.Errorf("unregistered checkout error = %v, want ErrAuth", err)
	}
	token := register(t, s, "d1")
	if _, err := s.Checkout(ctx, "d1", "wrong"); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong-token checkout error = %v, want ErrAuth", err)
	}
	if _, err := s.Checkout(ctx, "d1", token); err != nil {
		t.Errorf("valid checkout failed: %v", err)
	}
	if err := s.Checkin(ctx, "d1", "wrong", validCheckin(0)); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong-token checkin error = %v, want ErrAuth", err)
	}
}

func TestTokenRotation(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	old := register(t, s, "d1")
	renew := register(t, s, "d1")
	if old == renew {
		t.Error("re-registration should rotate the token")
	}
	if _, err := s.Checkout(ctx, "d1", old); !errors.Is(err, ErrAuth) {
		t.Error("old token should be rejected after rotation")
	}
	if _, err := s.Checkout(ctx, "d1", renew); err != nil {
		t.Errorf("new token rejected: %v", err)
	}
}

func TestCheckinAppliesUpdate(t *testing.T) {
	s := newTestServer(t, ServerConfig{
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 1}},
	})
	token := register(t, s, "d1")
	req := validCheckin(0)
	req.Grad[0] = 2 // w[0] should move by -η·2 = -2
	if err := s.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	w := s.Params()
	if w.Data()[0] != -2 {
		t.Errorf("w[0] = %v, want -2", w.Data()[0])
	}
	if s.Iteration() != 1 {
		t.Errorf("iteration = %d, want 1", s.Iteration())
	}
}

func TestCheckinValidation(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	tests := []struct {
		name string
		req  *CheckinRequest
	}{
		{name: "short gradient", req: &CheckinRequest{Grad: make([]float64, 3), LabelCounts: []int{0, 0, 0}}},
		{name: "wrong label arity", req: &CheckinRequest{Grad: make([]float64, 6), LabelCounts: []int{0}}},
		{name: "negative samples", req: &CheckinRequest{Grad: make([]float64, 6), LabelCounts: []int{0, 0, 0}, NumSamples: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.Checkin(ctx, "d1", token, tt.req); !errors.Is(err, ErrBadCheckin) {
				t.Errorf("error = %v, want ErrBadCheckin", err)
			}
		})
	}
}

func TestStoppingTmax(t *testing.T) {
	s := newTestServer(t, ServerConfig{Tmax: 2})
	token := register(t, s, "d1")
	for i := 0; i < 2; i++ {
		if err := s.Checkin(ctx, "d1", token, validCheckin(i)); err != nil {
			t.Fatalf("checkin %d: %v", i, err)
		}
	}
	if !s.Stopped() {
		t.Error("server should stop at Tmax")
	}
	if err := s.Checkin(ctx, "d1", token, validCheckin(2)); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop checkin error = %v, want ErrStopped", err)
	}
	co, err := s.Checkout(ctx, "d1", token)
	if err != nil {
		t.Fatalf("post-stop checkout should answer: %v", err)
	}
	if !co.Done {
		t.Error("post-stop checkout should set Done")
	}
}

func TestStoppingTargetError(t *testing.T) {
	s := newTestServer(t, ServerConfig{TargetError: 0.1, MinSamplesForStop: 10})
	token := register(t, s, "d1")
	// 10 perfect samples → error estimate 0 ≤ 0.1 → stop.
	req := &CheckinRequest{
		Grad:        make([]float64, 6),
		NumSamples:  10,
		ErrCount:    0,
		LabelCounts: []int{10, 0, 0},
	}
	if err := s.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	if !s.Stopped() {
		t.Error("server should stop when error estimate reaches target")
	}
}

func TestStoppingRespectsMinSamples(t *testing.T) {
	s := newTestServer(t, ServerConfig{TargetError: 0.5, MinSamplesForStop: 100})
	token := register(t, s, "d1")
	req := &CheckinRequest{
		Grad: make([]float64, 6), NumSamples: 5, LabelCounts: []int{5, 0, 0},
	}
	if err := s.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	if s.Stopped() {
		t.Error("server stopped before MinSamplesForStop samples")
	}
}

func TestEstimates(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	if _, ok := s.ErrEstimate(); ok {
		t.Error("ErrEstimate should be unavailable before any checkin")
	}
	if _, ok := s.PriorEstimate(); ok {
		t.Error("PriorEstimate should be unavailable before any checkin")
	}
	req := &CheckinRequest{
		Grad: make([]float64, 6), NumSamples: 10, ErrCount: 3,
		LabelCounts: []int{6, 3, 1},
	}
	if err := s.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	est, ok := s.ErrEstimate()
	if !ok || math.Abs(est-0.3) > 1e-12 {
		t.Errorf("ErrEstimate = %v/%v, want 0.3", est, ok)
	}
	prior, ok := s.PriorEstimate()
	if !ok || !linalg.Equal(prior, []float64{0.6, 0.3, 0.1}, 1e-12) {
		t.Errorf("PriorEstimate = %v", prior)
	}
}

func TestDeviceStatsTracking(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	if _, ok := s.DeviceStats("unknown"); ok {
		t.Error("unknown device should not have stats")
	}
	// First checkin with version 0 (no staleness), second stale by 1.
	if err := s.Checkin(ctx, "d1", token, validCheckin(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkin(ctx, "d1", token, validCheckin(0)); err != nil {
		t.Fatal(err)
	}
	st, ok := s.DeviceStats("d1")
	if !ok {
		t.Fatal("missing device stats")
	}
	if st.Checkins != 2 || st.Samples != 2 || st.Errors != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.StalenessSum != 1 {
		t.Errorf("StalenessSum = %d, want 1 (second checkin was 1 behind)", st.StalenessSum)
	}
	// Returned slice must be a copy.
	st.LabelCounts[0] = 99
	st2, _ := s.DeviceStats("d1")
	if st2.LabelCounts[0] == 99 {
		t.Error("DeviceStats leaked internal slice")
	}
}

func TestInitParams(t *testing.T) {
	init := linalg.NewMatrix(3, 2)
	init.Set(0, 0, 7)
	s := newTestServer(t, ServerConfig{InitParams: init})
	if got := s.Params().At(0, 0); got != 7 {
		t.Errorf("init param = %v, want 7", got)
	}
	// Server must have copied, not aliased.
	init.Set(0, 0, 1)
	if got := s.Params().At(0, 0); got != 7 {
		t.Error("server aliased caller's init matrix")
	}
}

func TestConcurrentCheckins(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	const devices = 16
	const perDevice = 50
	tokens := make([]string, devices)
	for i := range tokens {
		tokens[i] = register(t, s, deviceName(i))
	}
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perDevice; j++ {
				co, err := s.Checkout(ctx, deviceName(i), tokens[i])
				if err != nil {
					t.Errorf("checkout: %v", err)
					return
				}
				if err := s.Checkin(ctx, deviceName(i), tokens[i], validCheckin(co.Version)); err != nil {
					t.Errorf("checkin: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := s.Iteration(); got != devices*perDevice {
		t.Errorf("iteration = %d, want %d", got, devices*perDevice)
	}
}

func deviceName(i int) string {
	return "device-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestStopAdministrative(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	token := register(t, s, "d1")
	s.Stop()
	if err := s.Checkin(ctx, "d1", token, validCheckin(0)); !errors.Is(err, ErrStopped) {
		t.Errorf("checkin after Stop = %v, want ErrStopped", err)
	}
}

func TestOnCheckinObserver(t *testing.T) {
	var got []int
	s := newTestServer(t, ServerConfig{
		OnCheckin: func(_ context.Context, id string, iter int, req *CheckinRequest) {
			if id != "d1" {
				t.Errorf("observer saw device %q", id)
			}
			if req == nil || len(req.Grad) != 6 {
				t.Error("observer got malformed request")
			}
			got = append(got, iter)
		},
	})
	token := register(t, s, "d1")
	for i := 0; i < 3; i++ {
		if err := s.Checkin(ctx, "d1", token, validCheckin(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("observer iterations = %v, want [1 2 3]", got)
	}
}

func TestOnCheckinNotCalledOnRejection(t *testing.T) {
	calls := 0
	s := newTestServer(t, ServerConfig{
		OnCheckin: func(context.Context, string, int, *CheckinRequest) { calls++ },
	})
	token := register(t, s, "d1")
	bad := &CheckinRequest{Grad: []float64{1}, LabelCounts: []int{0, 0, 0}}
	if err := s.Checkin(ctx, "d1", token, bad); err == nil {
		t.Fatal("expected rejection")
	}
	if calls != 0 {
		t.Errorf("observer fired %d times on a rejected checkin", calls)
	}
}
