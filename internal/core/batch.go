package core

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/crowdml/crowdml/internal/linalg"
)

// pendingCheckin is one validated, authenticated checkin on its way
// through the batched applier. done is allocated (buffered, capacity 1)
// only when the checkin takes the queued slow path; a fast-path checkin
// is applied directly by its own goroutine and never needs it.
type pendingCheckin struct {
	ctx      context.Context
	deviceID string
	req      *CheckinRequest
	grad     *linalg.Matrix
	done     chan error

	// iteration is the t assigned at apply time, for the OnCheckin hook.
	iteration int

	// abandoned is set when this item's own Checkin call is unwinding
	// from a leader panic while the item is still queued: its caller has
	// already observed a failure, so a later leader must not apply the
	// delta behind its back (the device will retry the whole checkin).
	abandoned atomic.Bool
}

// submit runs p through leader-based group commit and blocks until it has
// been applied (or rejected by the stopping rule).
//
// Fast path: when no batch leader is active, the caller becomes one
// immediately and applies its own delta — plus anything already queued —
// without touching the queue. Uncontended checkins therefore cost one
// semaphore acquire on top of the raw update.
//
// Slow path: with a leader active, the caller enqueues into the bounded
// queue (blocking for backpressure if it is full) and then either waits
// for a leader to apply its item or becomes the next leader itself.
//
// Invariant: an item removed from the queue has its done channel
// signalled before the removing leader releases leaderSem. So a caller
// holding leadership whose own item is not done can rely on that item
// still being in the queue.
func (s *Server) submit(ctx context.Context, p *pendingCheckin) error {
	select {
	case s.leaderSem <- struct{}{}:
		// Release via defer: a panic in a user-supplied Updater or hook
		// must not wedge the applier (the old per-checkin mutex was
		// likewise defer-released).
		return func() error {
			defer func() { <-s.leaderSem }()
			return s.leadFast(p)
		}()
	default:
	}

	p.done = make(chan error, 1)
	select {
	case s.queue <- p:
	default:
		// Queue full: apply backpressure, bailing out if the caller's
		// context dies first.
		select {
		case s.queue <- p:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for {
		select {
		case err := <-p.done:
			return err
		case s.leaderSem <- struct{}{}:
			err, applied := func() (error, bool) {
				defer func() { <-s.leaderSem }()
				// A panic while leading someone else's batch unwinds out
				// of this Checkin call even though p may still be queued;
				// mark p abandoned (before leadership is released — defers
				// run LIFO) so no later leader applies it after its caller
				// already saw the failure.
				defer func() {
					if r := recover(); r != nil {
						p.abandoned.Store(true)
						panic(r)
					}
				}()
				return s.lead(p)
			}()
			if applied {
				return err
			}
			// p was drained and signalled by a previous leader; the next
			// loop iteration collects the buffered result.
		}
	}
}

// leadFast applies own (first) plus any queued backlog as one batch.
// Caller holds leaderSem.
func (s *Server) leadFast(own *pendingCheckin) error {
	batch := make([]*pendingCheckin, 0, s.cfg.CheckinBatchSize)
	batch = append(batch, own)
	batch = s.drainInto(batch)
	return s.applyBatch(batch)[0]
}

// lead runs the caller as batch leader until its own item has been
// applied or the queue is empty (meaning a previous leader already
// handled it — see the invariant on submit). Returns (result, true) when
// own's result was observed. Caller holds leaderSem.
func (s *Server) lead(own *pendingCheckin) (error, bool) {
	for {
		select {
		case err := <-own.done:
			return err, true
		default:
		}
		batch := s.drainInto(make([]*pendingCheckin, 0, s.cfg.CheckinBatchSize))
		if len(batch) == 0 {
			return nil, false
		}
		s.applyBatch(batch)
	}
}

// drainInto collects pending checkins into batch, up to CheckinBatchSize
// total, without blocking. With a positive CheckinFlushInterval and a
// non-full batch it lingers up to that long for more arrivals, trading
// latency for amortization — but only when the queue actually yielded
// something this call: an uncontended fast-path leader whose batch holds
// just its own item has nothing to amortize and must not tax every
// checkin with the flush interval on an idle server.
func (s *Server) drainInto(batch []*pendingCheckin) []*pendingCheckin {
	maxBatch := s.cfg.CheckinBatchSize
	drainedFrom := len(batch)
	for len(batch) < maxBatch {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if s.cfg.CheckinFlushInterval > 0 && len(batch) > drainedFrom && len(batch) < maxBatch {
		timer := time.NewTimer(s.cfg.CheckinFlushInterval)
		defer timer.Stop()
		for len(batch) < maxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			case <-timer.C:
				return batch
			}
		}
	}
	return batch
}

// applyBatch applies a group of checkins under one acquisition of the
// parameter lock, then — outside the critical section — runs the
// OnCheckin hooks in iteration order. The caller delivers the returned
// per-item results to any waiters. Checkout snapshots are republished
// lazily by the next reader (see refreshSnapshot), so applying a batch
// never copies the parameter matrix.
//
// Algorithm 2 semantics are preserved delta by delta: each checkin gets
// its own iteration number t, its own η(t) update step, its own staleness
// measurement against the pre-update counter, and its own evaluation of
// the stopping rule (a checkin later in the batch observes the stop
// tripped by an earlier one and is rejected, exactly as if it had lost a
// per-checkin lock race).
// applyBatch also delivers each queued waiter's result on its done
// channel (fast-path leaders have no channel and read the return value
// directly); delivery is guaranteed even when a callback panics, so
// waiters never hang on a dead leader. The hook invariant is likewise
// unconditional: every applied (hence acknowledged-as-success) checkin
// gets its OnCheckin call even when the Updater panicked later in the
// batch — a write-ahead journal hook that missed an acknowledged
// iteration would leave an unrecoverable gap in the log.
func (s *Server) applyBatch(batch []*pendingCheckin) []error {
	s.cfg.Metrics.observeBatch(len(batch))
	results := make([]error, len(batch))
	applied := 0 // items whose apply step completed; their result is authoritative
	hooked := 0  // items whose OnCheckin hook has run
	delivered := false
	defer func() {
		if delivered {
			return
		}
		// Unwinding from a panic in the Updater or a hook: no waiter may
		// be stranded, and no waiter may be told its applied delta failed
		// (a retry would double-apply the gradient). Items the critical
		// section completed get their real result; the rest get
		// ErrCheckinAborted. The panic itself keeps propagating out of
		// the leader's Checkin call.
		//
		// Before delivering, run the hook for every APPLIED item it has
		// not yet seen: those checkins are about to be acknowledged as
		// successes, and the hook is what makes them durable (the hub's
		// write-ahead journal) — skipping it would leave acknowledged
		// iterations missing from the journal, an unrecoverable replay
		// gap. Each call is recover-guarded; a hook panic here is dropped
		// (the original panic is already propagating).
		if s.cfg.OnCheckin != nil {
			for i, p := range batch {
				if i >= applied || results[i] != nil || i < hooked {
					continue
				}
				func() {
					defer func() { _ = recover() }()
					s.cfg.OnCheckin(p.ctx, p.deviceID, p.iteration, p.req)
				}()
			}
		}
		// The group-commit hook gets its call too: the applied items are
		// about to be acknowledged, and a durability sink relying on
		// OnBatchCommit (fsync) must cover them first. Recover-guarded —
		// the original panic is already propagating.
		if s.cfg.OnBatchCommit != nil {
			if n := countApplied(results, applied); n > 0 {
				func() {
					defer func() { _ = recover() }()
					s.cfg.OnBatchCommit(n)
				}()
			}
		}
		for i, p := range batch {
			if p.done == nil {
				continue
			}
			if i < applied {
				p.done <- results[i]
			} else {
				p.done <- ErrCheckinAborted
			}
		}
	}()
	s.wMu.Lock()
	func() {
		defer s.wMu.Unlock()
		s.applyBatchLocked(batch, results, &applied)
	}()

	// Journaling and other hooks run outside the critical section so a
	// slow sink never extends the lock hold. The single active leader
	// invokes them sequentially in iteration order, so an order-sensitive
	// sink (e.g. store.Journal) still sees monotonically increasing
	// iterations. Each hook is isolated: one panicking hook must not
	// silently skip the remaining items' hooks (their checkins ARE
	// applied, and an audit sink is entitled to a record per applied
	// checkin), so every hook still runs, the waiters get their real
	// results, and the first captured panic then resumes out of the
	// leader's own Checkin call — the same caller that observed a hook
	// panic under the old per-checkin lock.
	var hookPanic any
	if s.cfg.OnCheckin != nil {
		for i, p := range batch {
			hooked = i + 1
			if results[i] != nil {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil && hookPanic == nil {
						hookPanic = r
					}
				}()
				s.cfg.OnCheckin(p.ctx, p.deviceID, p.iteration, p.req)
			}()
		}
	}
	// Group commit: one OnBatchCommit per applied batch, after every
	// per-item hook and before any waiter is released — the point where
	// a durability sink fsyncs once for the whole batch so each of the
	// acknowledgments below stands on stable storage.
	if s.cfg.OnBatchCommit != nil {
		if n := countApplied(results, applied); n > 0 {
			func() {
				defer func() {
					if r := recover(); r != nil && hookPanic == nil {
						hookPanic = r
					}
				}()
				s.cfg.OnBatchCommit(n)
			}()
		}
	}
	delivered = true
	for i, p := range batch {
		if p.done != nil {
			p.done <- results[i]
		}
	}
	if hookPanic != nil {
		panic(hookPanic)
	}
	return results
}

// countApplied counts the items whose delta was actually applied (their
// apply step completed with a nil result) — the n an OnBatchCommit call
// reports. Items rejected by the stopping rule or aborted keep n honest.
func countApplied(results []error, applied int) int {
	n := 0
	for i := 0; i < applied && i < len(results); i++ {
		if results[i] == nil {
			n++
		}
	}
	return n
}

// applyBatchLocked is the parameter-lock critical section of applyBatch.
// It advances *applied past each item whose outcome is settled, so the
// panic-recovery path in applyBatch can tell applied deltas apart from
// aborted ones.
func (s *Server) applyBatchLocked(batch []*pendingCheckin, results []error, applied *int) {
	for i, p := range batch {
		if p.abandoned.Load() {
			// Its caller already unwound from an earlier leader panic and
			// reported failure; applying now would double-count a retry.
			results[i] = ErrCheckinAborted
			*applied = i + 1
			continue
		}
		if s.evalStopped() {
			results[i] = ErrStopped
			*applied = i + 1
			continue
		}
		staleness := int(s.t.Load()) - p.req.Version

		// The Updater runs before anything is committed for this item: if
		// it panics, the item's iteration and counters were never taken,
		// so the ErrCheckinAborted its waiter receives is honest and a
		// device retry cannot double-count. (w itself may hold a partial
		// update — unavoidable with a panicking updater, and exactly the
		// exposure the old per-checkin lock had.) t only advances under
		// wMu, so Load+Store is single-writer safe.
		t := int(s.t.Load()) + 1
		s.cfg.Updater.Update(s.w, p.grad, t)
		s.t.Store(int64(t))

		// Crowd totals: errors and label counts strictly before samples,
		// so a concurrent lock-free ΣN_e/ΣN_s read can only overestimate
		// the error rate (see evalStopped).
		s.totalNe.Add(int64(p.req.ErrCount))
		for k, c := range p.req.LabelCounts {
			s.totalNky[k].Add(int64(c))
		}
		s.totalNs.Add(int64(p.req.NumSamples))

		s.devices.applyCheckinStats(p.deviceID, p.req, staleness)

		p.iteration = t
		*applied = i + 1
	}
}
