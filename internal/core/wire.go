// Package core implements the Crowd-ML framework itself: the device-side
// Algorithm 1 (sample buffering, minibatch gradient computation, local
// sanitization, check-in) and the server-side Algorithm 2 (authenticated
// checkout/checkin, asynchronous SGD update, per-device progress counters,
// stopping criteria). See Section III of the paper.
package core

import "context"

// CheckoutResponse carries the current model parameters from the server to
// a device (Server Routine 1 / workflow step 3).
type CheckoutResponse struct {
	// Params is the flattened C×D parameter matrix, row-major.
	Params []float64 `json:"params"`
	// Version is the server iteration t at which the parameters were read.
	// Devices echo it on check-in so staleness can be measured.
	Version int `json:"version"`
	// Done reports that the server's stopping criteria are met; the device
	// should stop collecting.
	Done bool `json:"done"`
}

// CheckinRequest carries a device's sanitized contribution to the server
// (Device Routine 2/3 output, Server Routine 2 input): the perturbed
// averaged gradient ĝ, the raw sample count n_s, the perturbed
// misclassification count n̂_e and the perturbed label counts n̂^k_y.
type CheckinRequest struct {
	// Grad is the flattened, sanitized averaged gradient ĝ.
	Grad []float64 `json:"grad"`
	// NumSamples is n_s, the number of samples in the minibatch. Per the
	// paper this is transmitted unperturbed.
	NumSamples int `json:"numSamples"`
	// ErrCount is n̂_e, the sanitized misclassification count.
	ErrCount int `json:"errCount"`
	// LabelCounts is n̂^k_y for k = 1..C, sanitized.
	LabelCounts []int `json:"labelCounts"`
	// Version echoes the checkout Version used to compute the gradient.
	Version int `json:"version"`
}

// Transport is the device's view of the communication channel to the
// server. Implementations: transport.Loopback (in-process) and
// transport.HTTPClient (the networked prototype).
type Transport interface {
	// Checkout requests the current parameters (workflow steps 2–3).
	Checkout(ctx context.Context, deviceID, token string) (*CheckoutResponse, error)
	// Checkin submits a sanitized gradient and counters (workflow step 4).
	Checkin(ctx context.Context, deviceID, token string, req *CheckinRequest) error
}
