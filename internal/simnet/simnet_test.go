package simnet

import (
	"testing"

	"github.com/crowdml/crowdml/internal/rng"
)

func TestNoDelay(t *testing.T) {
	r := rng.New(1)
	var d NoDelay
	for i := 0; i < 100; i++ {
		if d.Draw(r) != 0 {
			t.Fatal("NoDelay must draw 0")
		}
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}

func TestUniformRange(t *testing.T) {
	r := rng.New(2)
	d := Uniform{Max: 10}
	seenHigh := false
	for i := 0; i < 10000; i++ {
		v := d.Draw(r)
		if v < 0 || v >= 10 {
			t.Fatalf("Uniform draw out of range: %v", v)
		}
		if v > 5 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Error("uniform delays never exceeded half the range")
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}

func TestUniformZeroMax(t *testing.T) {
	r := rng.New(3)
	d := Uniform{Max: 0}
	if d.Draw(r) != 0 {
		t.Error("Max=0 should draw 0")
	}
	neg := Uniform{Max: -5}
	if neg.Draw(r) != 0 {
		t.Error("negative Max should draw 0")
	}
}

func TestUniformMean(t *testing.T) {
	r := rng.New(4)
	d := Uniform{Max: 100}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += d.Draw(r)
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Errorf("uniform mean = %v, want ~50", mean)
	}
}

func TestFixed(t *testing.T) {
	r := rng.New(5)
	d := Fixed{Value: 7}
	if d.Draw(r) != 7 {
		t.Error("Fixed should return its value")
	}
	if (Fixed{Value: -1}).Draw(r) != 0 {
		t.Error("negative Fixed should clamp to 0")
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}
