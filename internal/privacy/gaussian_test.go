package privacy

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestGaussianSigmaFormula(t *testing.T) {
	// σ = √(2 ln(1.25/δ))·s2/ε
	s2, eps, delta := 0.4, Eps(0.5), 1e-5
	want := math.Sqrt(2*math.Log(1.25/delta)) * s2 / 0.5
	if got := GaussianSigma(s2, eps, delta); math.Abs(got-want) > 1e-12 {
		t.Errorf("GaussianSigma = %v, want %v", got, want)
	}
}

func TestGaussianSigmaDisabled(t *testing.T) {
	if GaussianSigma(1, 0, 1e-5) != 0 {
		t.Error("disabled eps should give σ=0")
	}
	if GaussianSigma(1, 1, 0) != 0 {
		t.Error("zero delta should give σ=0")
	}
}

func TestPerturbGradientGaussianDisabled(t *testing.T) {
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{1, 2})
	PerturbGradientGaussian(g, 10, 4, 0, 1e-5, rng.New(1))
	if !linalg.Equal(g.Data(), []float64{1, 2}, 0) {
		t.Error("disabled Gaussian mechanism changed data")
	}
}

func TestPerturbGradientGaussianVariance(t *testing.T) {
	const (
		dims  = 50000
		b     = 10
		sens  = 4.0
		delta = 1e-5
	)
	eps := Eps(0.5)
	g := linalg.NewMatrix(1, dims)
	PerturbGradientGaussian(g, b, sens, eps, delta, rng.New(3))
	sigma := GaussianSigma(sens/float64(b), eps, delta)
	gotVar := linalg.Variance(g.Data())
	if math.Abs(gotVar-sigma*sigma) > 0.05*sigma*sigma {
		t.Errorf("noise variance = %v, want ~%v", gotVar, sigma*sigma)
	}
}

// The Gaussian mechanism's lighter tails: for the same ε the Gaussian
// noise has heavier requirements on δ but thinner tails than Laplace —
// check that extreme outliers are rarer than under the Laplace mechanism
// with matched variance.
func TestGaussianTailsThinnerThanLaplace(t *testing.T) {
	r := rng.New(5)
	const n = 200000
	sigma := 1.0
	lapScale := sigma / math.Sqrt2 // Laplace with variance 2·scale² = σ²
	extremeG, extremeL := 0, 0
	threshold := 4 * sigma
	for i := 0; i < n; i++ {
		if math.Abs(r.Normal(0, sigma)) > threshold {
			extremeG++
		}
		if math.Abs(r.Laplace(lapScale)) > threshold {
			extremeL++
		}
	}
	if extremeG >= extremeL {
		t.Errorf("Gaussian extremes (%d) should be rarer than Laplace (%d)",
			extremeG, extremeL)
	}
}
