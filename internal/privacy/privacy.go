// Package privacy implements Crowd-ML's differential-privacy mechanisms
// (Section III-C and Appendix C of the paper):
//
//   - Eq. (10): Laplace perturbation of minibatch-averaged gradients, the
//     local mechanism giving ε_g-DP per Theorem 1;
//   - Eqs. (11)–(12): discrete-Laplace perturbation of the misclassification
//     count n_e and the label counts n^k_y, giving ε_e- and ε_yk-DP per
//     Theorem 2;
//   - Eqs. (15)–(16): the centralized baseline's feature Laplace perturbation
//     and exponential-mechanism label flipping (Theorem 3), implemented so
//     that the comparison experiments of Figs. 5/8 can be reproduced;
//   - budget accounting ε = ε_g + ε_e + C·ε_yk (Appendix B, Remark 1).
//
// Privacy levels follow the paper's plotting convention: they are specified
// as ε (larger = less private), and a zero Eps means "privacy disabled"
// (the ε → ∞ limit), matching the figures' "ε⁻¹ = 0" annotation.
package privacy

import (
	"math"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

// Eps is a differential-privacy level ε. The zero value disables the
// mechanism (no noise), corresponding to ε⁻¹ = 0 in the paper's figures.
// Negative values are invalid.
type Eps float64

// Enabled reports whether the mechanism should add noise.
func (e Eps) Enabled() bool { return e > 0 }

// Inv returns ε⁻¹ (the paper's x-axis convention), 0 when disabled.
func (e Eps) Inv() float64 {
	if e <= 0 {
		return 0
	}
	return 1 / float64(e)
}

// FromInv converts the paper's ε⁻¹ parametrization to an Eps.
// FromInv(0) disables privacy; FromInv(0.1) is ε = 10.
func FromInv(inv float64) Eps {
	if inv <= 0 {
		return 0
	}
	return Eps(1 / inv)
}

// Budget is the per-device privacy budget split across the three quantities
// a device transmits. Per Appendix B Remark 1, ε_e and ε_yk can be made very
// small (they only feed server-side progress monitoring), so the effective
// budget is dominated by Gradient.
type Budget struct {
	// Gradient is ε_g for the averaged-gradient Laplace mechanism (Eq. 10).
	Gradient Eps
	// ErrCount is ε_e for the misclassification count (Eq. 11).
	ErrCount Eps
	// LabelCount is ε_yk for each per-class label count (Eq. 12).
	LabelCount Eps
}

// Total returns the composed privacy level ε = ε_g + ε_e + C·ε_yk for a
// C-class task. Disabled components contribute zero; if any component is
// disabled the total is only meaningful for the enabled ones (a disabled
// gradient mechanism means the device offers no DP at all, and Total
// returns 0 to signal that).
func (b Budget) Total(classes int) Eps {
	if !b.Gradient.Enabled() {
		return 0
	}
	total := float64(b.Gradient)
	if b.ErrCount.Enabled() {
		total += float64(b.ErrCount)
	}
	if b.LabelCount.Enabled() {
		total += float64(classes) * float64(b.LabelCount)
	}
	return Eps(total)
}

// PerturbGradient applies the Eq. (10) mechanism in place: it adds i.i.d.
// Laplace noise of scale sensitivity/(b·ε) to every element of the averaged
// gradient g̃, where sensitivity is the model's single-sample bound
// (4 for logistic regression) and b is the minibatch size. No-op when eps
// is disabled.
func PerturbGradient(g *linalg.Matrix, batch int, sensitivity float64, eps Eps, r *rng.RNG) {
	if !eps.Enabled() {
		return
	}
	if batch < 1 {
		batch = 1
	}
	scale := sensitivity / (float64(batch) * float64(eps))
	data := g.Data()
	for i := range data {
		data[i] += r.Laplace(scale)
	}
}

// GradientNoiseVariance returns E‖z‖² for the Eq. (10) mechanism over a
// D-dimensional-per-class, C-class gradient: 2·D·C·(S/(bε))², which for the
// logistic-regression S=4 reduces to the paper's 32·D/(bε)² per class
// (Eq. 13). Returns 0 when disabled.
func GradientNoiseVariance(dims int, batch int, sensitivity float64, eps Eps) float64 {
	if !eps.Enabled() {
		return 0
	}
	scale := sensitivity / (float64(batch) * float64(eps))
	return 2 * float64(dims) * scale * scale
}

// SanitizeCount applies the discrete-Laplace mechanism of Eqs. (11)–(12):
// it returns n + z with P(z) ∝ exp(−(ε/2)|z|), z ∈ ℤ. The result may be
// negative (Appendix B Remark 2 — harmless for the server's running
// estimates). No-op when eps is disabled.
func SanitizeCount(n int, eps Eps, r *rng.RNG) int {
	if !eps.Enabled() {
		return n
	}
	return n + r.DiscreteLaplace(2/float64(eps))
}

// SanitizeCounts applies SanitizeCount to every element of counts,
// returning a fresh slice.
func SanitizeCounts(counts []int, eps Eps, r *rng.RNG) []int {
	out := make([]int, len(counts))
	for i, n := range counts {
		out[i] = SanitizeCount(n, eps, r)
	}
	return out
}

// CountNoiseVariance returns the variance 2p/(1−p)² with p = e^{−ε/2} of
// the discrete Laplace noise (Appendix B Remark 2), 0 when disabled.
func CountNoiseVariance(eps Eps) float64 {
	if !eps.Enabled() {
		return 0
	}
	p := math.Exp(-float64(eps) / 2)
	return 2 * p / ((1 - p) * (1 - p))
}

// PerturbFeatures applies the centralized baseline's Eq. (15) mechanism in
// place: x_i += Laplace(2/ε) for every feature element. The feature
// transmission has sensitivity 2 under ‖x‖₁ ≤ 1 (Theorem 3). No-op when
// disabled.
func PerturbFeatures(x []float64, eps Eps, r *rng.RNG) {
	if !eps.Enabled() {
		return
	}
	scale := 2 / float64(eps)
	for i := range x {
		x[i] += r.Laplace(scale)
	}
}

// PerturbLabel applies the centralized baseline's Eq. (16) exponential
// mechanism: it samples ŷ with P(ŷ|y) ∝ exp((ε/2)·I[ŷ=y]) over the C
// classes. Returns y unchanged when disabled.
func PerturbLabel(y, classes int, eps Eps, r *rng.RNG) int {
	if !eps.Enabled() {
		return y
	}
	// Weight e^{ε/2} on the true label, 1 elsewhere. Sample directly:
	// with probability w/(w + C − 1) keep y, else uniform among others.
	w := math.Exp(float64(eps) / 2)
	keep := w / (w + float64(classes-1))
	if r.Float64() < keep {
		return y
	}
	other := r.Intn(classes - 1)
	if other >= y {
		other++
	}
	return other
}

// LabelKeepProbability returns P(ŷ = y) under Eq. (16), useful for the
// analysis tests and for documenting how destructive the centralized
// mechanism is at a given ε.
func LabelKeepProbability(classes int, eps Eps) float64 {
	if !eps.Enabled() {
		return 1
	}
	w := math.Exp(float64(eps) / 2)
	return w / (w + float64(classes-1))
}
