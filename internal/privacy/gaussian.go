package privacy

import (
	"math"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

// The paper's footnote 1: "As a variant, (ε, δ)-differential privacy can be
// achieved by adding Gaussian noise." This file implements that variant —
// the classical Gaussian mechanism with σ = √(2·ln(1.25/δ))·S₂/ε, where S₂
// is the L2 sensitivity of the released quantity (Dwork & Roth 2014,
// Theorem A.1; requires ε < 1 strictly, and is commonly applied for ε ≤ 1).
//
// For the minibatch-averaged gradient the L2 sensitivity is bounded by the
// L1 sensitivity S/b (‖·‖₂ ≤ ‖·‖₁), so callers can reuse the model's
// GradientSensitivity.

// GaussianSigma returns the noise standard deviation of the (ε, δ)
// mechanism for a function with L2 sensitivity s2. It returns 0 when the
// mechanism is disabled (eps ≤ 0 or delta ≤ 0).
func GaussianSigma(s2 float64, eps Eps, delta float64) float64 {
	if !eps.Enabled() || delta <= 0 {
		return 0
	}
	return math.Sqrt(2*math.Log(1.25/delta)) * s2 / float64(eps)
}

// PerturbGradientGaussian applies the (ε, δ) Gaussian mechanism in place:
// it adds i.i.d. N(0, σ²) noise with σ = √(2 ln(1.25/δ))·(sensitivity/b)/ε
// to every element of the averaged gradient. No-op when eps or delta is
// disabled.
func PerturbGradientGaussian(g *linalg.Matrix, batch int, sensitivity float64, eps Eps, delta float64, r *rng.RNG) {
	if batch < 1 {
		batch = 1
	}
	sigma := GaussianSigma(sensitivity/float64(batch), eps, delta)
	if sigma == 0 {
		return
	}
	data := g.Data()
	for i := range data {
		data[i] += r.Normal(0, sigma)
	}
}
