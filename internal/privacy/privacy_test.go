package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestEpsConversions(t *testing.T) {
	tests := []struct {
		name    string
		inv     float64
		enabled bool
		eps     float64
	}{
		{name: "disabled", inv: 0, enabled: false, eps: 0},
		{name: "paper fig5", inv: 0.1, enabled: true, eps: 10},
		{name: "high privacy", inv: 10, enabled: true, eps: 0.1},
		{name: "negative treated as disabled", inv: -1, enabled: false, eps: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := FromInv(tt.inv)
			if e.Enabled() != tt.enabled {
				t.Errorf("Enabled = %v, want %v", e.Enabled(), tt.enabled)
			}
			if math.Abs(float64(e)-tt.eps) > 1e-12 {
				t.Errorf("eps = %v, want %v", float64(e), tt.eps)
			}
		})
	}
	if got := Eps(4).Inv(); got != 0.25 {
		t.Errorf("Inv = %v, want 0.25", got)
	}
	if got := Eps(0).Inv(); got != 0 {
		t.Errorf("Inv of disabled = %v, want 0", got)
	}
}

func TestBudgetTotal(t *testing.T) {
	tests := []struct {
		name    string
		b       Budget
		classes int
		want    float64
	}{
		{
			name:    "all enabled",
			b:       Budget{Gradient: 1, ErrCount: 0.1, LabelCount: 0.01},
			classes: 10,
			want:    1 + 0.1 + 10*0.01,
		},
		{
			name:    "gradient only",
			b:       Budget{Gradient: 2},
			classes: 5,
			want:    2,
		},
		{
			name:    "disabled gradient disables total",
			b:       Budget{ErrCount: 1, LabelCount: 1},
			classes: 3,
			want:    0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.Total(tt.classes); math.Abs(float64(got)-tt.want) > 1e-12 {
				t.Errorf("Total = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPerturbGradientDisabledIsNoop(t *testing.T) {
	g, _ := linalg.NewMatrixFrom(1, 3, []float64{1, 2, 3})
	PerturbGradient(g, 10, 4, 0, rng.New(1))
	if !linalg.Equal(g.Data(), []float64{1, 2, 3}, 0) {
		t.Errorf("disabled mechanism changed data: %v", g.Data())
	}
}

func TestPerturbGradientNoiseScale(t *testing.T) {
	// Empirical variance of added noise must match 2*(S/(bε))² per element.
	const (
		dims = 20000
		b    = 20
		sens = 4.0
	)
	eps := Eps(10)
	g := linalg.NewMatrix(1, dims)
	r := rng.New(99)
	PerturbGradient(g, b, sens, eps, r)
	scale := sens / (float64(b) * float64(eps))
	wantVar := 2 * scale * scale
	gotVar := linalg.Variance(g.Data())
	if math.Abs(gotVar-wantVar) > 0.1*wantVar {
		t.Errorf("noise variance = %v, want ~%v", gotVar, wantVar)
	}
	if math.Abs(linalg.Mean(g.Data())) > 3*scale/math.Sqrt(dims)*3 {
		t.Errorf("noise mean = %v, want ~0", linalg.Mean(g.Data()))
	}
}

func TestGradientNoiseVarianceMatchesEq13(t *testing.T) {
	// Eq. (13): E‖z‖² = 32 D / (b ε_g)² for logistic regression (S=4).
	const (
		d    = 50
		b    = 10
		sens = 4.0
	)
	eps := Eps(10)
	got := GradientNoiseVariance(d, b, sens, eps)
	want := 32 * float64(d) / math.Pow(float64(b)*float64(eps), 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GradientNoiseVariance = %v, want %v", got, want)
	}
	if GradientNoiseVariance(d, b, sens, 0) != 0 {
		t.Error("disabled variance should be 0")
	}
}

func TestGradientNoiseVarianceEmpirical(t *testing.T) {
	// The mechanism's measured E‖z‖² must match the analytic Eq. (13) value.
	const (
		dims   = 50
		b      = 5
		sens   = 4.0
		trials = 20000
	)
	eps := Eps(2)
	r := rng.New(7)
	var sum float64
	for i := 0; i < trials; i++ {
		g := linalg.NewMatrix(1, dims)
		PerturbGradient(g, b, sens, eps, r)
		sum += linalg.Norm2Sq(g.Data())
	}
	got := sum / trials
	want := GradientNoiseVariance(dims, b, sens, eps)
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("empirical E||z||^2 = %v, want ~%v", got, want)
	}
}

func TestSanitizeCountDisabled(t *testing.T) {
	if got := SanitizeCount(7, 0, rng.New(1)); got != 7 {
		t.Errorf("disabled SanitizeCount = %d, want 7", got)
	}
}

func TestSanitizeCountUnbiased(t *testing.T) {
	r := rng.New(11)
	eps := Eps(1)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(SanitizeCount(5, eps, r))
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("sanitized count mean = %v, want ~5", mean)
	}
}

func TestSanitizeCountVariance(t *testing.T) {
	r := rng.New(13)
	eps := Eps(2)
	want := CountNoiseVariance(eps)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(SanitizeCount(0, eps, r))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	got := sumSq/n - mean*mean
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("count noise variance = %v, want ~%v", got, want)
	}
}

func TestSanitizeCounts(t *testing.T) {
	r := rng.New(17)
	in := []int{1, 2, 3}
	out := SanitizeCounts(in, 0, r)
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("disabled SanitizeCounts changed element %d", i)
		}
	}
	out2 := SanitizeCounts(in, 1, r)
	if len(out2) != 3 {
		t.Fatalf("wrong length %d", len(out2))
	}
	if &out2[0] == &in[0] {
		t.Error("SanitizeCounts must return a fresh slice")
	}
}

func TestPerturbFeaturesDisabled(t *testing.T) {
	x := []float64{0.5, -0.5}
	PerturbFeatures(x, 0, rng.New(1))
	if !linalg.Equal(x, []float64{0.5, -0.5}, 0) {
		t.Error("disabled PerturbFeatures changed data")
	}
}

func TestPerturbFeaturesScale(t *testing.T) {
	// Eq. (15): noise scale 2/ε per element, variance 8/ε².
	eps := Eps(4)
	x := make([]float64, 50000)
	PerturbFeatures(x, eps, rng.New(19))
	wantVar := 8 / float64(eps*eps)
	gotVar := linalg.Variance(x)
	if math.Abs(gotVar-wantVar) > 0.05*wantVar {
		t.Errorf("feature noise variance = %v, want ~%v (8/eps^2)", gotVar, wantVar)
	}
}

func TestPerturbLabelKeepProbability(t *testing.T) {
	// Eq. (16): P(keep) = e^{ε/2} / (e^{ε/2} + C − 1).
	const classes = 10
	eps := Eps(10)
	want := LabelKeepProbability(classes, eps)
	r := rng.New(23)
	const n = 200000
	kept := 0
	for i := 0; i < n; i++ {
		if PerturbLabel(3, classes, eps, r) == 3 {
			kept++
		}
	}
	got := float64(kept) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("keep fraction = %v, want ~%v", got, want)
	}
}

func TestPerturbLabelFlipsUniformly(t *testing.T) {
	const classes = 4
	eps := Eps(0.1) // near-uniform output
	r := rng.New(29)
	counts := make([]int, classes)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[PerturbLabel(0, classes, eps, r)]++
	}
	// Non-true labels must be equally likely among themselves.
	for k := 2; k < classes; k++ {
		ratio := float64(counts[k]) / float64(counts[1])
		if math.Abs(ratio-1) > 0.05 {
			t.Errorf("flip distribution skewed: counts=%v", counts)
		}
	}
}

func TestPerturbLabelDisabled(t *testing.T) {
	if got := PerturbLabel(2, 5, 0, rng.New(1)); got != 2 {
		t.Errorf("disabled PerturbLabel = %d, want 2", got)
	}
	if got := LabelKeepProbability(5, 0); got != 1 {
		t.Errorf("disabled keep probability = %v, want 1", got)
	}
}

// Property: perturbed labels are always valid class indices.
func TestPerturbLabelRangeProperty(t *testing.T) {
	r := rng.New(31)
	f := func(ySeed, cSeed uint8, epsRaw float64) bool {
		classes := 2 + int(cSeed%20)
		y := int(ySeed) % classes
		eps := Eps(math.Abs(math.Mod(epsRaw, 20)))
		got := PerturbLabel(y, classes, eps, r)
		return got >= 0 && got < classes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
