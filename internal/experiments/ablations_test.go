package experiments

import "testing"

func TestAblationMinibatchMonotone(t *testing.T) {
	fig, err := AblationMinibatch(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 5 {
		t.Fatalf("%d curves, want 5", len(fig.Curves))
	}
	b1 := findCurve(t, fig, "b=1")
	b50 := findCurve(t, fig, "b=50")
	// The Eq. (13) trade-off: more averaging, less noise, lower error.
	if b50.Final() >= b1.Final() {
		t.Errorf("b=50 (%v) should beat b=1 (%v)", b50.Final(), b1.Final())
	}
}

func TestAblationScheduleVariantsAllLearn(t *testing.T) {
	fig, err := AblationSchedule(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 5 {
		t.Fatalf("%d curves, want 5", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		// Every variant must do substantially better than chance (0.9).
		if c.Final() > 0.5 {
			t.Errorf("schedule %q failed to learn: final %v", c.Name, c.Final())
		}
	}
}

func TestAblationProjectionCurves(t *testing.T) {
	fig, err := AblationProjection(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 4 {
		t.Fatalf("%d curves, want 4", len(fig.Curves))
	}
	none := findCurve(t, fig, "no projection")
	generous := findCurve(t, fig, "R=50")
	// A generous ball barely binds: must track the unprojected run.
	if diff := generous.Final() - none.Final(); diff > 0.1 || diff < -0.1 {
		t.Errorf("R=50 (%v) should track no projection (%v)",
			generous.Final(), none.Final())
	}
}

func TestAblationStaleDropHasCurves(t *testing.T) {
	fig, err := AblationStale(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(fig.Curves))
	}
	apply := findCurve(t, fig, "apply all")
	if apply.Final() > 0.5 {
		t.Errorf("apply-stale failed to learn under delay: %v", apply.Final())
	}
}

func TestAblationGaussianBothLearn(t *testing.T) {
	fig, err := AblationGaussian(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	lap := findCurve(t, fig, "laplace")
	gau := findCurve(t, fig, "gaussian")
	// At the tiny test scale only ~180 noisy updates happen; both
	// mechanisms must still be clearly better than chance (0.9).
	if lap.Final() > 0.8 {
		t.Errorf("laplace variant did not learn: %v", lap.Final())
	}
	// The Gaussian mechanism at ε=10, δ=1e-5 has larger σ than the Laplace
	// scale here, but must still beat chance clearly.
	if gau.Final() > 0.85 {
		t.Errorf("gaussian variant near chance: %v", gau.Final())
	}
}

func TestAblationsRegistry(t *testing.T) {
	want := []string{
		"ablation-minibatch", "ablation-schedule", "ablation-projection",
		"ablation-stale", "ablation-gaussian",
	}
	for _, id := range want {
		if Ablations[id] == nil {
			t.Errorf("missing %s", id)
		}
	}
	want = append(want, "ablation-poisoning")
	if len(Ablations) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Ablations), len(want))
	}
}

func TestAblationPoisoningClipWins(t *testing.T) {
	fig, err := AblationPoisoning(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(fig.Curves))
	}
	sgd := findCurve(t, fig, "sgd")
	clip := findCurve(t, fig, "sgd+clip")
	if clip.Final() >= sgd.Final() {
		t.Errorf("clip (%v) should beat plain SGD (%v) under poisoning",
			clip.Final(), sgd.Final())
	}
	if clip.Final() > 0.3 {
		t.Errorf("clipped updater should stay usable: %v", clip.Final())
	}
}

func TestAblationsRegistryHasPoisoning(t *testing.T) {
	if Ablations["ablation-poisoning"] == nil {
		t.Error("missing ablation-poisoning")
	}
}
