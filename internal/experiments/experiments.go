// Package experiments regenerates every figure of the paper's evaluation
// (Section V and Appendix D). Each FigN function reproduces the
// corresponding figure's curves; Render prints them as an aligned text
// table (the repository's substitute for Matplotlib plots).
//
// All experiments accept a Scale factor so the full paper-scale runs
// (M = 1000 devices, 60000/50000 training samples, 10 trials) can be shrunk
// proportionally for quick runs, tests, and benchmarks. Shapes — who wins,
// by roughly what factor, where the crossovers fall — are preserved across
// scales; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/sim"
)

// DefaultRate is the tuned c in η(t) = c/√t for the L1-normalized synthetic
// datasets (the paper selects c per task from averaged trials; this value
// was calibrated the same way — see EXPERIMENTS.md).
const DefaultRate = 50.0

// Config controls the size and statistical strength of an experiment run.
type Config struct {
	// Scale shrinks the paper-scale setup proportionally: device count,
	// training-set and test-set sizes all multiply by Scale. 1.0 is the
	// paper's size; values in (0, 1) give faster approximate runs.
	// Defaults to 1.0.
	Scale float64
	// Trials is the number of randomized trials averaged per curve
	// (paper: 10). Defaults to 1.
	Trials int
	// Seed is the base random seed.
	Seed uint64
	// EvalPoints is the number of test-error measurements per curve.
	// Defaults to 50.
	EvalPoints int
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Trials < 1 {
		c.Trials = 1
	}
	if c.EvalPoints < 1 {
		c.EvalPoints = 50
	}
	return c
}

// scaleInt scales n by the factor with a floor.
func scaleInt(n int, scale float64, minimum int) int {
	v := int(float64(n) * scale)
	if v < minimum {
		return minimum
	}
	return v
}

// Figure is the rendered result of one experiment: a set of named curves
// over a shared x axis meaning "iteration (= number of samples used)".
type Figure struct {
	// ID is the paper's figure number, e.g. "fig4".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Curves are the plotted series.
	Curves []metrics.Series
	// Notes records setup details worth keeping next to the numbers.
	Notes []string
}

// digitTask builds the MNIST-like task at the configured scale.
func digitTask(cfg Config) (*dataset.Dataset, model.Model, error) {
	ds, err := dataset.MNISTLike(
		scaleInt(60000, cfg.Scale, 1000),
		scaleInt(10000, cfg.Scale, 500),
		cfg.Seed,
	)
	if err != nil {
		return nil, nil, err
	}
	return ds, model.NewLogisticRegression(ds.Classes, ds.Dim), nil
}

// objectTask builds the CIFAR-like task at the configured scale.
func objectTask(cfg Config) (*dataset.Dataset, model.Model, error) {
	ds, err := dataset.CIFARLike(
		scaleInt(50000, cfg.Scale, 1000),
		scaleInt(10000, cfg.Scale, 500),
		cfg.Seed,
	)
	if err != nil {
		return nil, nil, err
	}
	return ds, model.NewLogisticRegression(ds.Classes, ds.Dim), nil
}

// crowdCurve averages Trials runs of a crowd configuration.
func crowdCurve(cfg Config, base sim.CrowdConfig, name string) (metrics.Series, error) {
	trials := make([]metrics.Series, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		c := base
		c.Seed = cfg.Seed + uint64(i)*1_000_003
		res, err := sim.RunCrowd(c)
		if err != nil {
			return metrics.Series{}, err
		}
		trials[i] = res.Curve
	}
	avg, err := metrics.AverageSeries(trials)
	if err != nil {
		return metrics.Series{}, err
	}
	avg.Name = name
	return avg, nil
}

// comparisonSetup bundles what Figs. 4–9 share: a dataset, a model, and the
// scaled device count.
type comparisonSetup struct {
	ds      *dataset.Dataset
	m       model.Model
	devices int
	eval    int // eval-subset size
}

func newComparisonSetup(cfg Config, digits bool) (*comparisonSetup, error) {
	var (
		ds  *dataset.Dataset
		m   model.Model
		err error
	)
	if digits {
		ds, m, err = digitTask(cfg)
	} else {
		ds, m, err = objectTask(cfg)
	}
	if err != nil {
		return nil, err
	}
	return &comparisonSetup{
		ds:      ds,
		m:       m,
		devices: scaleInt(1000, cfg.Scale, 20),
		eval:    2000,
	}, nil
}

func (s *comparisonSetup) crowdBase(cfg Config, passes int) sim.CrowdConfig {
	total := passes * len(s.ds.Train)
	return sim.CrowdConfig{
		Model: s.m, Train: s.ds.Train, Test: s.ds.Test,
		Devices:    s.devices,
		Schedule:   optimizer.InvSqrt{C: DefaultRate},
		Passes:     passes,
		EvalEvery:  total / cfg.EvalPoints,
		EvalSubset: s.eval,
	}
}

func (f *Figure) addNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}
