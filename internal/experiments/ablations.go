package experiments

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/attack"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/sim"
	"github.com/crowdml/crowdml/internal/simnet"
)

// The ablation studies of DESIGN.md §5: each isolates one design choice of
// the framework on the digit task and reports the same error-vs-iteration
// curves as the paper figures.

// AblationMinibatch sweeps the minibatch size b under the Fig. 5 privacy
// level — the noise/latency trade-off of Eq. (13) in isolation.
func AblationMinibatch(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-minibatch",
		Title:  "Minibatch size vs gradient-noise mitigation (ε⁻¹=0.1)",
		XLabel: "Iteration", YLabel: "Test error",
	}
	fig.addNote("noise scale per Eq. (10) is 4/(ε·b): doubling b halves the injected noise")
	const passes = 3
	for _, b := range []int{1, 5, 10, 20, 50} {
		base := setup.crowdBase(cfg, passes)
		base.Minibatch = b
		base.Budget = privacy.Budget{Gradient: privacy.FromInv(Fig5Inv)}
		curve, err := crowdCurve(cfg, base, fmt.Sprintf("b=%d", b))
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// AblationSchedule compares the paper's c/√t schedule against a constant
// rate, the strongly-convex c/t rate, and the AdaGrad updater of Remark 3.
func AblationSchedule(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-schedule",
		Title:  "Learning-rate schedules and adaptive updaters (Remark 3)",
		XLabel: "Iteration", YLabel: "Test error",
	}
	const passes = 2
	variants := []struct {
		name   string
		mutate func(*sim.CrowdConfig)
	}{
		{name: "c/sqrt(t)", mutate: func(c *sim.CrowdConfig) {
			c.Schedule = optimizer.InvSqrt{C: DefaultRate}
		}},
		{name: "constant", mutate: func(c *sim.CrowdConfig) {
			c.Schedule = optimizer.Constant{C: 5}
		}},
		{name: "c/t", mutate: func(c *sim.CrowdConfig) {
			c.Schedule = optimizer.InvT{C: 200}
		}},
		{name: "adagrad", mutate: func(c *sim.CrowdConfig) {
			c.Schedule = optimizer.InvSqrt{C: 1} // ignored by custom updater
			c.Updater = &optimizer.AdaGrad{Eta: 0.3}
		}},
		{name: "momentum", mutate: func(c *sim.CrowdConfig) {
			c.Schedule = optimizer.InvSqrt{C: DefaultRate}
			c.Updater = &optimizer.Momentum{Schedule: optimizer.InvSqrt{C: DefaultRate}, Beta: 0.9}
		}},
	}
	for _, v := range variants {
		base := setup.crowdBase(cfg, passes)
		v.mutate(&base)
		curve, err := crowdCurve(cfg, base, v.name)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// AblationProjection toggles the Π_W ball projection of Eq. (3).
func AblationProjection(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-projection",
		Title:  "Projection radius R of Π_W (Eq. 3)",
		XLabel: "Iteration", YLabel: "Test error",
	}
	const passes = 2
	for _, radius := range []float64{0, 2, 10, 50} {
		base := setup.crowdBase(cfg, passes)
		base.Radius = radius
		name := fmt.Sprintf("R=%g", radius)
		if radius == 0 {
			name = "no projection"
		}
		curve, err := crowdCurve(cfg, base, name)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// AblationStale compares applying stale gradients (the paper's behaviour)
// against dropping them at the server under heavy delay.
func AblationStale(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-stale",
		Title:  "Apply vs drop stale gradients under 100Δ delays",
		XLabel: "Iteration", YLabel: "Test error",
	}
	const passes = 3
	for _, drop := range []int{0, 10, 100} {
		base := setup.crowdBase(cfg, passes)
		base.Delay = simnet.Uniform{Max: 100}
		base.StaleDropThreshold = drop
		name := "apply all"
		if drop > 0 {
			name = fmt.Sprintf("drop staleness>%d", drop)
		}
		curve, err := crowdCurve(cfg, base, name)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// AblationGaussian compares the Laplace mechanism of Eq. (10) with the
// (ε, δ) Gaussian variant of footnote 1 at matched ε.
func AblationGaussian(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-gaussian",
		Title:  "Laplace (ε) vs Gaussian (ε, δ=1e-5) gradient mechanisms",
		XLabel: "Iteration", YLabel: "Test error",
	}
	fig.addNote("both at ε=10, b=20; Gaussian noise derived from the L2 sensitivity bound")
	const passes = 3
	lap := setup.crowdBase(cfg, passes)
	lap.Minibatch = 20
	lap.Budget = privacy.Budget{Gradient: privacy.FromInv(Fig5Inv)}
	lapCurve, err := crowdCurve(cfg, lap, "laplace")
	if err != nil {
		return nil, err
	}
	gau := setup.crowdBase(cfg, passes)
	gau.Minibatch = 20
	gau.GaussianBudget = sim.GaussianBudget{Eps: privacy.FromInv(Fig5Inv), Delta: 1e-5}
	gauCurve, err := crowdCurve(cfg, gau, "gaussian")
	if err != nil {
		return nil, err
	}
	fig.Curves = append(fig.Curves, lapCurve, gauCurve)
	return fig, nil
}

// Ablations maps ablation IDs to their runners (kept separate from All so
// `crowdml-bench -fig all` remains exactly the paper's figures).
var Ablations = map[string]func(Config) (*Figure, error){
	"ablation-minibatch":  AblationMinibatch,
	"ablation-schedule":   AblationSchedule,
	"ablation-projection": AblationProjection,
	"ablation-stale":      AblationStale,
	"ablation-gaussian":   AblationGaussian,
	"ablation-poisoning":  AblationPoisoning,
}

// AblationPoisoning quantifies Remark 3 + server-side hardening: the same
// poisoned crowd (10% malignant devices sending huge gradients) under plain
// SGD, AdaGrad, and the sensitivity-aware clip wrapper.
func AblationPoisoning(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-poisoning",
		Title:  "Malignant devices (10%, huge gradients): updater robustness",
		XLabel: "trial", YLabel: "Final test error",
	}
	fig.addNote("honest averaged gradients have ‖g̃‖₁ ≤ 2, so clip(4) never touches them")
	rounds := 2 * len(setup.ds.Train)
	variants := []struct {
		name string
		mk   func() optimizer.Updater
	}{
		{name: "sgd", mk: func() optimizer.Updater {
			return &optimizer.SGD{Schedule: optimizer.InvSqrt{C: DefaultRate}}
		}},
		{name: "adagrad", mk: func() optimizer.Updater {
			return &optimizer.AdaGrad{Eta: 0.5}
		}},
		{name: "sgd+clip", mk: func() optimizer.Updater {
			return &optimizer.Clip{
				Inner:    &optimizer.SGD{Schedule: optimizer.InvSqrt{C: DefaultRate}},
				MaxNorm1: 4,
			}
		}},
	}
	for _, v := range variants {
		series := metrics.Series{Name: v.name}
		for trial := 0; trial < cfg.Trials; trial++ {
			res, err := attack.RunPoisoning(attack.PoisonConfig{
				Model: setup.m, Train: setup.ds.Train, Test: setup.ds.Test,
				Devices: setup.devices, MaliciousFrac: 0.1,
				Strategy: attack.PoisonLargeGradient, Magnitude: 100,
				Updater: v.mk(),
				Rounds:  rounds,
				Seed:    cfg.Seed + uint64(trial)*1_000_003,
			})
			if err != nil {
				return nil, err
			}
			series.Append(float64(trial+1), res.TestError)
		}
		fig.Curves = append(fig.Curves, series)
	}
	return fig, nil
}
