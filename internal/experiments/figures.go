package experiments

import (
	"context"
	"fmt"

	"github.com/crowdml/crowdml/internal/activity"
	"github.com/crowdml/crowdml/internal/baseline"
	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/sim"
	"github.com/crowdml/crowdml/internal/simnet"
)

// Fig3Rates is the learning-rate sweep of Fig. 3. The paper sweeps
// c ∈ {1e-6, 1e-4, 1e-2, 1} over raw accelerometer-FFT magnitudes; our
// features are L1-normalized (per the privacy precondition), which shifts
// the useful c range upward by the feature norm — the sweep spans the same
// four decades.
var Fig3Rates = []float64{0.1, 1, 10, 100}

// Fig3 reproduces the activity-recognition experiment in a "real
// environment": 7 devices running the full Algorithm 1/2 stack over the
// loopback transport, 3-class logistic regression, b = 1, λ = 0, no
// privacy, time-averaged error over the first 300 samples for each
// learning rate.
func Fig3(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	const (
		devices      = 7
		totalSamples = 300
	)
	fig := &Figure{
		ID:     "fig3",
		Title:  "Time-averaged error across all devices for activity recognition",
		XLabel: "Iteration", YLabel: "Prediction error",
	}
	fig.addNote("%d devices, 3-class logistic regression, b=1, λ=0, ε⁻¹=0", devices)

	for _, c := range Fig3Rates {
		trials := make([]metrics.Series, cfg.Trials)
		for trial := 0; trial < cfg.Trials; trial++ {
			curve, err := runFig3Trial(c, devices, totalSamples,
				cfg.Seed+uint64(trial)*7919)
			if err != nil {
				return nil, err
			}
			trials[trial] = curve
		}
		avg, err := metrics.AverageSeries(trials)
		if err != nil {
			return nil, err
		}
		avg.Name = fmt.Sprintf("c=%g", c)
		fig.Curves = append(fig.Curves, avg)
	}
	return fig, nil
}

// runFig3Trial runs one pass of the real-framework activity experiment and
// returns the running server-side error estimate Êrr(t) of Eq. (14) — the
// same time-averaged misclassification error Fig. 3 plots.
func runFig3Trial(rate float64, devices, totalSamples int, seed uint64) (metrics.Series, error) {
	m := model.NewLogisticRegression(activity.NumClasses, activity.FeatureDim)
	srv, err := core.NewServer(core.ServerConfig{
		Model:   m,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: rate}},
	})
	if err != nil {
		return metrics.Series{}, err
	}
	gens := make([]*activity.Generator, devices)
	devs := make([]*core.Device, devices)
	ctx := context.Background()
	for i := range devs {
		token, err := srv.RegisterDevice(ctx, fmt.Sprintf("phone-%d", i))
		if err != nil {
			return metrics.Series{}, err
		}
		gens[i] = activity.NewGenerator(seed + uint64(i)*104729)
		devs[i], err = core.NewDevice(core.DeviceConfig{
			ID:        fmt.Sprintf("phone-%d", i),
			Token:     token,
			Model:     m,
			Transport: serverLoopback{srv},
			Minibatch: 1,
			Seed:      seed + uint64(i)*15485863,
		})
		if err != nil {
			return metrics.Series{}, err
		}
	}
	curve := metrics.Series{Name: fmt.Sprintf("c=%g", rate)}
	for n := 1; n <= totalSamples; n++ {
		dev := (n - 1) % devices // devices sample at equal rates
		s, err := gens[dev].Next()
		if err != nil {
			return metrics.Series{}, err
		}
		if err := devs[dev].AddSample(ctx, s); err != nil {
			return metrics.Series{}, err
		}
		if est, ok := srv.ErrEstimate(); ok {
			curve.Append(float64(n), est)
		}
	}
	return curve, nil
}

// serverLoopback avoids importing package transport (which would create an
// import cycle through the experiments used in its docs); it is identical
// to transport.Loopback.
type serverLoopback struct{ s *core.Server }

func (t serverLoopback) Checkout(ctx context.Context, id, token string) (*core.CheckoutResponse, error) {
	return t.s.Checkout(ctx, id, token)
}

func (t serverLoopback) Checkin(ctx context.Context, id, token string, req *core.CheckinRequest) error {
	return t.s.Checkin(ctx, id, token, req)
}

// comparisonNoPrivacy implements Figs. 4 and 7: centralized batch vs
// Crowd-ML vs decentralized, no privacy, no delay, one pass.
func comparisonNoPrivacy(cfg Config, digits bool, id, title string) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, digits)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Iterations", YLabel: "Test error",
	}
	fig.addNote("M=%d devices, %d train / %d test, ε⁻¹=0, τ=0, b=1",
		setup.devices, len(setup.ds.Train), len(setup.ds.Test))

	crowd, err := crowdCurve(cfg, setup.crowdBase(cfg, 1), "Crowd-ML (SGD)")
	if err != nil {
		return nil, err
	}

	dec, err := decentralCurve(cfg, setup, 1)
	if err != nil {
		return nil, err
	}

	batchErr, err := baseline.RunBatch(baseline.BatchConfig{
		Model: setup.m, Train: setup.ds.Train, Test: setup.ds.Test, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fig.Curves = append(fig.Curves,
		dec,
		crowd,
		metrics.ConstantSeries("Central (batch)", crowd.X, batchErr),
	)
	return fig, nil
}

func decentralCurve(cfg Config, setup *comparisonSetup, passes int) (metrics.Series, error) {
	total := passes * len(setup.ds.Train)
	trials := make([]metrics.Series, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		c, err := sim.RunDecentral(sim.DecentralConfig{
			Model: setup.m, Train: setup.ds.Train, Test: setup.ds.Test,
			Devices:     setup.devices,
			Schedule:    optimizer.InvSqrt{C: DefaultRate},
			Passes:      passes,
			EvalEvery:   total / cfg.EvalPoints,
			EvalDevices: 20,
			EvalSubset:  500,
			Seed:        cfg.Seed + uint64(i)*1_000_003,
		})
		if err != nil {
			return metrics.Series{}, err
		}
		trials[i] = c
	}
	avg, err := metrics.AverageSeries(trials)
	if err != nil {
		return metrics.Series{}, err
	}
	avg.Name = "Decentral (SGD)"
	return avg, nil
}

// Fig4 reproduces the no-privacy, no-delay comparison on the digit task.
func Fig4(cfg Config) (*Figure, error) {
	return comparisonNoPrivacy(cfg, true, "fig4",
		"Centralized vs crowd vs decentralized, digit recognition")
}

// Fig7 is Fig. 4 on the object-recognition task (Appendix D).
func Fig7(cfg Config) (*Figure, error) {
	return comparisonNoPrivacy(cfg, false, "fig7",
		"Centralized vs crowd vs decentralized, object recognition")
}

// Fig5Inv is the privacy level ε⁻¹ = 0.1 (ε = 10) of Figs. 5/8.
const Fig5Inv = 0.1

// comparisonWithPrivacy implements Figs. 5 and 8: at ε⁻¹ = 0.1, centralized
// SGD with input perturbation vs Crowd-ML with gradient perturbation, for
// b ∈ {1, 10, 20}, plus the perturbed centralized batch reference.
func comparisonWithPrivacy(cfg Config, digits bool, id, title string) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, digits)
	if err != nil {
		return nil, err
	}
	eps := privacy.FromInv(Fig5Inv)
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Iteration", YLabel: "Test error",
	}
	fig.addNote("M=%d devices, ε⁻¹=%g, τ=0, 5 passes", setup.devices, Fig5Inv)

	const passes = 5
	total := passes * len(setup.ds.Train)
	for _, b := range []int{1, 10, 20} {
		central, err := centralSGDCurve(cfg, setup, b, eps, passes, total)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, central)
	}
	for _, b := range []int{1, 10, 20} {
		base := setup.crowdBase(cfg, passes)
		base.Minibatch = b
		base.Budget = privacy.Budget{Gradient: eps}
		crowd, err := crowdCurve(cfg, base, fmt.Sprintf("Crowd-ML (SGD,b=%d)", b))
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, crowd)
	}
	batchErr, err := baseline.RunBatch(baseline.BatchConfig{
		Model: setup.m, Train: setup.ds.Train, Test: setup.ds.Test,
		Perturbation: baseline.SplitEvenly(eps), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fig.Curves = append(fig.Curves,
		metrics.ConstantSeries("Central (batch)", fig.Curves[0].X, batchErr))
	return fig, nil
}

func centralSGDCurve(cfg Config, setup *comparisonSetup, b int, eps privacy.Eps, passes, total int) (metrics.Series, error) {
	trials := make([]metrics.Series, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		c, err := baseline.RunSGD(baseline.SGDConfig{
			Model: setup.m, Train: setup.ds.Train, Test: setup.ds.Test,
			Perturbation: baseline.SplitEvenly(eps),
			Minibatch:    b,
			Schedule:     optimizer.InvSqrt{C: DefaultRate},
			Passes:       passes,
			EvalEvery:    total / cfg.EvalPoints,
			EvalSubset:   setup.eval,
			Seed:         cfg.Seed + uint64(i)*1_000_003,
		})
		if err != nil {
			return metrics.Series{}, err
		}
		trials[i] = c
	}
	avg, err := metrics.AverageSeries(trials)
	if err != nil {
		return metrics.Series{}, err
	}
	avg.Name = fmt.Sprintf("Central (SGD,b=%d)", b)
	return avg, nil
}

// Fig5 reproduces the privacy comparison on the digit task.
func Fig5(cfg Config) (*Figure, error) {
	return comparisonWithPrivacy(cfg, true, "fig5",
		"Centralized vs crowd with privacy (ε⁻¹=0.1), digit recognition")
}

// Fig8 is Fig. 5 on the object-recognition task (Appendix D).
func Fig8(cfg Config) (*Figure, error) {
	return comparisonWithPrivacy(cfg, false, "fig8",
		"Centralized vs crowd with privacy (ε⁻¹=0.1), object recognition")
}

// Fig6Delays is the delay sweep of Figs. 6/9, in Δ units.
var Fig6Delays = []float64{1, 10, 100, 1000}

// comparisonWithDelay implements Figs. 6 and 9: Crowd-ML at ε⁻¹ = 0.1 with
// b ∈ {1, 20} under maximum per-leg delays of {1, 10, 100, 1000}Δ, plus the
// perturbed centralized batch reference.
func comparisonWithDelay(cfg Config, digits bool, id, title string) (*Figure, error) {
	cfg = cfg.normalized()
	setup, err := newComparisonSetup(cfg, digits)
	if err != nil {
		return nil, err
	}
	eps := privacy.FromInv(Fig5Inv)
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Iteration", YLabel: "Test error",
	}
	fig.addNote("M=%d devices, ε⁻¹=%g, delays uniform in [0,τ] per leg, 5 passes",
		setup.devices, Fig5Inv)

	const passes = 5
	for _, b := range []int{1, 20} {
		for _, tau := range Fig6Delays {
			base := setup.crowdBase(cfg, passes)
			base.Minibatch = b
			base.Budget = privacy.Budget{Gradient: eps}
			base.Delay = simnet.Uniform{Max: tau}
			crowd, err := crowdCurve(cfg, base,
				fmt.Sprintf("Crowd-ML (b=%d,%gΔ)", b, tau))
			if err != nil {
				return nil, err
			}
			fig.Curves = append(fig.Curves, crowd)
		}
	}
	batchErr, err := baseline.RunBatch(baseline.BatchConfig{
		Model: setup.m, Train: setup.ds.Train, Test: setup.ds.Test,
		Perturbation: baseline.SplitEvenly(eps), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fig.Curves = append(fig.Curves,
		metrics.ConstantSeries("Central (batch)", fig.Curves[0].X, batchErr))
	return fig, nil
}

// Fig6 reproduces the delay study on the digit task.
func Fig6(cfg Config) (*Figure, error) {
	return comparisonWithDelay(cfg, true, "fig6",
		"Impact of delays on Crowd-ML with privacy (ε⁻¹=0.1), digit recognition")
}

// Fig9 is Fig. 6 on the object-recognition task (Appendix D).
func Fig9(cfg Config) (*Figure, error) {
	return comparisonWithDelay(cfg, false, "fig9",
		"Impact of delays on Crowd-ML with privacy (ε⁻¹=0.1), object recognition")
}

// All maps figure IDs to their runners.
var All = map[string]func(Config) (*Figure, error){
	"fig3": Fig3,
	"fig4": Fig4,
	"fig5": Fig5,
	"fig6": Fig6,
	"fig7": Fig7,
	"fig8": Fig8,
	"fig9": Fig9,
}
