package experiments

import (
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/metrics"
)

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID: "figX", XLabel: "Iteration",
		Curves: []metrics.Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.25, 0.125}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{0.9, 0.8}},
		},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, fig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "Iteration,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,0.5,0.9" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Shorter curve leaves the last cell empty.
	if !strings.HasSuffix(lines[3], ",") {
		t.Errorf("row 3 should end with empty cell: %q", lines[3])
	}
}

func TestWriteCSVEmptyFigure(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, &Figure{ID: "e", XLabel: "x"}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "x" {
		t.Errorf("empty figure CSV = %q", sb.String())
	}
}
