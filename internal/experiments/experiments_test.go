package experiments

import (
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/metrics"
)

// quickCfg is the smallest config that still shows the paper's shapes.
func quickCfg() Config {
	return Config{Scale: 0.02, Trials: 1, Seed: 5, EvalPoints: 10}
}

func findCurve(t *testing.T, fig *Figure, name string) metrics.Series {
	t.Helper()
	for _, c := range fig.Curves {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("figure %s has no curve %q (have %v)", fig.ID, name, curveNames(fig))
	return metrics.Series{}
}

func curveNames(fig *Figure) []string {
	out := make([]string, len(fig.Curves))
	for i, c := range fig.Curves {
		out[i] = c.Name
	}
	return out
}

func TestFig3ShapesAndConvergence(t *testing.T) {
	fig, err := Fig3(Config{Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != len(Fig3Rates) {
		t.Fatalf("%d curves, want %d", len(fig.Curves), len(Fig3Rates))
	}
	// The well-tuned rates must converge to a low time-averaged error
	// within 300 samples (paper: converged after ~50 samples).
	best := findCurve(t, fig, "c=10")
	if best.Final() > 0.35 {
		t.Errorf("c=10 final online error = %v, want < 0.35", best.Final())
	}
	for _, c := range fig.Curves {
		if c.Len() == 0 {
			t.Errorf("curve %s is empty", c.Name)
		}
	}
}

func TestFig4Ordering(t *testing.T) {
	fig, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	crowd := findCurve(t, fig, "Crowd-ML (SGD)")
	dec := findCurve(t, fig, "Decentral (SGD)")
	batch := findCurve(t, fig, "Central (batch)")
	// Paper's shape: crowd ≈ batch ≪ decentralized.
	if crowd.Final() > batch.Final()+0.1 {
		t.Errorf("crowd %v should track central batch %v", crowd.Final(), batch.Final())
	}
	if dec.Final() < crowd.Final()+0.1 {
		t.Errorf("decentralized %v should be well above crowd %v",
			dec.Final(), crowd.Final())
	}
}

func TestFig5Ordering(t *testing.T) {
	fig, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 7 {
		t.Fatalf("%d curves, want 7", len(fig.Curves))
	}
	crowd1 := findCurve(t, fig, "Crowd-ML (SGD,b=1)")
	crowd20 := findCurve(t, fig, "Crowd-ML (SGD,b=20)")
	central20 := findCurve(t, fig, "Central (SGD,b=20)")
	batch := findCurve(t, fig, "Central (batch)")
	// Minibatching mitigates gradient noise (Eq. 13)...
	if crowd20.Final() >= crowd1.Final() {
		t.Errorf("b=20 (%v) should beat b=1 (%v)", crowd20.Final(), crowd1.Final())
	}
	// ...and beats both centralized baselines.
	if crowd20.Final() >= batch.Final() {
		t.Errorf("crowd b=20 (%v) should beat perturbed central batch (%v)",
			crowd20.Final(), batch.Final())
	}
	// Central SGD on perturbed inputs sits near chance regardless of b.
	if central20.Final() < 0.5 {
		t.Errorf("central SGD b=20 (%v) should be near chance", central20.Final())
	}
}

func TestFig6DelayTolerance(t *testing.T) {
	fig, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 9 { // 2 b-values × 4 delays + batch reference
		t.Fatalf("%d curves, want 9", len(fig.Curves))
	}
	b20small := findCurve(t, fig, "Crowd-ML (b=20,1Δ)")
	b20big := findCurve(t, fig, "Crowd-ML (b=20,1000Δ)")
	// Fig. 6: with b=20, even 1000Δ delays barely move the error.
	if b20big.Final() > b20small.Final()+0.15 {
		t.Errorf("b=20 delay tolerance violated: 1Δ %v vs 1000Δ %v",
			b20small.Final(), b20big.Final())
	}
}

func TestFig7HarderThanFig4(t *testing.T) {
	cfg := quickCfg()
	f4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c4 := findCurve(t, f4, "Crowd-ML (SGD)")
	c7 := findCurve(t, f7, "Crowd-ML (SGD)")
	// Appendix D: same shapes, larger error on the object task.
	if c7.Final() <= c4.Final() {
		t.Errorf("object task (%v) should be harder than digit task (%v)",
			c7.Final(), c4.Final())
	}
}

func TestAllRegistryComplete(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if All[id] == nil {
			t.Errorf("missing %s in registry", id)
		}
	}
	if len(All) != 7 {
		t.Errorf("registry has %d entries, want 7", len(All))
	}
}

func TestRender(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "test", XLabel: "Iteration", YLabel: "Error",
		Notes: []string{"note-1"},
		Curves: []metrics.Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Name: "b", X: []float64{1}, Y: []float64{0.9}},
		},
	}
	var sb strings.Builder
	if err := Render(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figX", "note-1", "0.2500", "0.9000", "final:", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
	empty := &Figure{ID: "e", Title: "empty"}
	sb.Reset()
	if err := Render(&sb, empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no curves") {
		t.Error("empty figure should render a placeholder")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Trials != 1 || c.EvalPoints != 50 {
		t.Errorf("normalized zero config = %+v", c)
	}
	if got := scaleInt(1000, 0.001, 20); got != 20 {
		t.Errorf("scaleInt floor = %d, want 20", got)
	}
	if got := scaleInt(1000, 0.5, 20); got != 500 {
		t.Errorf("scaleInt = %d, want 500", got)
	}
}
