package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the figure as an aligned text table: one row per x grid
// point, one column per curve — the textual equivalent of the paper's
// plots.
func Render(w io.Writer, fig *Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", fig.ID, fig.Title); err != nil {
		return err
	}
	for _, n := range fig.Notes {
		if _, err := fmt.Fprintf(w, "   %s\n", n); err != nil {
			return err
		}
	}
	if len(fig.Curves) == 0 {
		_, err := fmt.Fprintln(w, "   (no curves)")
		return err
	}

	// Header.
	cols := make([]string, 0, len(fig.Curves)+1)
	cols = append(cols, fig.XLabel)
	for _, c := range fig.Curves {
		cols = append(cols, c.Name)
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = max(len(c), 10)
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(cols); err != nil {
		return err
	}

	// Rows follow the x grid of the longest curve; shorter curves (e.g.
	// sparse reference lines) are sampled by index where available.
	longest := 0
	for i, c := range fig.Curves {
		if c.Len() > fig.Curves[longest].Len() {
			longest = i
		}
	}
	grid := fig.Curves[longest].X
	for row, x := range grid {
		cells := make([]string, 0, len(cols))
		cells = append(cells, fmt.Sprintf("%.0f", x))
		for _, c := range fig.Curves {
			if row < c.Len() {
				cells = append(cells, fmt.Sprintf("%.4f", c.Y[row]))
			} else {
				cells = append(cells, "-")
			}
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}

	// Summary line: final error per curve.
	if _, err := fmt.Fprintf(w, "   final:"); err != nil {
		return err
	}
	for _, c := range fig.Curves {
		if _, err := fmt.Fprintf(w, "  %s=%.4f", c.Name, c.Final()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
