package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the figure's curves as CSV: a header row with the x label
// and curve names, then one row per x grid point. Shorter curves leave
// trailing cells empty. The output plots directly in any spreadsheet or
// gnuplot/matplotlib pipeline, replacing the paper's Matplotlib figures.
func WriteCSV(w io.Writer, fig *Figure) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(fig.Curves)+1)
	header = append(header, fig.XLabel)
	for _, c := range fig.Curves {
		header = append(header, c.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	longest := 0
	for _, c := range fig.Curves {
		if c.Len() > longest {
			longest = c.Len()
		}
	}
	row := make([]string, len(header))
	for i := 0; i < longest; i++ {
		for j := range row {
			row[j] = ""
		}
		for k, c := range fig.Curves {
			if i < c.Len() {
				if row[0] == "" {
					row[0] = strconv.FormatFloat(c.X[i], 'f', -1, 64)
				}
				row[k+1] = strconv.FormatFloat(c.Y[i], 'g', 6, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv flush: %w", err)
	}
	return nil
}
