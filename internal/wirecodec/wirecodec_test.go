package wirecodec

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

func TestFullRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, compress := range []bool{false, true} {
		for _, n := range []int{0, 1, 7, 500, 4096} {
			params := randVec(r, n)
			b := AppendFull(nil, params, 42, true, compress)
			fr, err := Decode(b)
			if err != nil {
				t.Fatalf("n=%d compress=%v: %v", n, compress, err)
			}
			if fr.Kind != KindFull || fr.Version != 42 || !fr.Done || fr.Since != -1 || fr.Dims != n {
				t.Fatalf("n=%d: bad header %+v", n, fr)
			}
			for i := range params {
				if math.Float64bits(fr.Values[i]) != math.Float64bits(params[i]) {
					t.Fatalf("n=%d: value %d: %v != %v", n, i, fr.Values[i], params[i])
				}
			}
		}
	}
}

func TestSparseDeltaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	base := randVec(r, 500)
	cur := append([]float64(nil), base...)
	var indices []uint32
	var values []float64
	for _, i := range []int{0, 17, 123, 499} {
		cur[i] = r.NormFloat64()
		indices = append(indices, uint32(i))
		values = append(values, cur[i])
	}
	for _, compress := range []bool{false, true} {
		b := AppendCheckout(nil, cur, 9, false, 5, indices, values, compress)
		fr, err := Decode(b)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if fr.Kind != KindDelta || !fr.Sparse || fr.Version != 9 || fr.Since != 5 || fr.Done {
			t.Fatalf("bad header %+v", fr)
		}
		got, err := ApplyDelta(base, fr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cur {
			if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
				t.Fatalf("applied value %d: %v != %v", i, got[i], cur[i])
			}
		}
	}
}

func TestEmptySparseDelta(t *testing.T) {
	base := []float64{1, 2, 3}
	b := AppendCheckout(nil, base, 7, true, 7, nil, nil, false)
	fr, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Sparse || len(fr.Indices) != 0 || fr.Since != 7 || !fr.Done {
		t.Fatalf("bad frame %+v", fr)
	}
	got, err := ApplyDelta(base, fr)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] == &base[0] {
		t.Fatal("ApplyDelta aliased its base")
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("value %d changed", i)
		}
	}
}

// TestDenseDeltaChosen pins the size rule: when ≥ 2/3 of the
// coordinates changed, 12-byte sparse pairs lose to an 8-byte dense
// re-send and the encoder must switch forms (keeping the since echo).
func TestDenseDeltaChosen(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cur := randVec(r, 30)
	indices := make([]uint32, 25)
	values := make([]float64, 25)
	for i := range indices {
		indices[i] = uint32(i)
		values[i] = cur[i]
	}
	b := AppendCheckout(nil, cur, 3, false, 1, indices, values, false)
	fr, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != KindDelta || fr.Sparse {
		t.Fatalf("want dense delta, got %+v", fr)
	}
	if fr.Since != 1 {
		t.Fatalf("dense delta lost the since echo: %+v", fr)
	}
	got, err := ApplyDelta(nil, fr) // dense deltas need no base
	if err != nil {
		t.Fatal(err)
	}
	for i := range cur {
		if got[i] != cur[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], cur[i])
		}
	}
}

func TestCheckinRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	grad := randVec(r, 120)
	labels := []int{3, 0, 9}
	for _, compress := range []bool{false, true} {
		b := AppendCheckin(nil, grad, 11, 5, 2, labels, compress)
		fr, err := Decode(b)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if fr.Kind != KindCheckin || fr.Version != 11 || fr.NumSamples != 5 || fr.ErrCount != 2 {
			t.Fatalf("bad frame %+v", fr)
		}
		if len(fr.LabelCounts) != 3 || fr.LabelCounts[0] != 3 || fr.LabelCounts[2] != 9 {
			t.Fatalf("bad label counts %v", fr.LabelCounts)
		}
		for i := range grad {
			if math.Float64bits(fr.Values[i]) != math.Float64bits(grad[i]) {
				t.Fatalf("grad value %d mismatch", i)
			}
		}
	}
}

// TestTruncationDetected chops a valid frame at every possible length;
// no prefix may decode successfully (the CRC trailer covers it all).
func TestTruncationDetected(t *testing.T) {
	b := AppendFull(nil, []float64{1.5, -2.25, 3}, 8, false, false)
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(b))
		}
	}
}

// TestCorruptionDetected flips one bit in every byte of a valid frame;
// every corruption must fail (almost always at the CRC check).
func TestCorruptionDetected(t *testing.T) {
	orig := AppendCheckin(nil, []float64{1, 2, 3, 4}, 2, 1, 0, []int{1, 0}, false)
	for i := range orig {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x40
		if _, err := Decode(b); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := AppendFull(nil, []float64{1}, 0, false, false)
	reencode := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		// Re-stamp the CRC so the mutation reaches the semantic checks.
		return finishFrame(b[:len(b)-crcLen], 0, false)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   reencode(func(b []byte) { b[0] = 'X' }),
		"bad version": reencode(func(b []byte) { b[4] = 99 }),
		"bad kind":    reencode(func(b []byte) { b[5] = 42 }),
		"full with since": reencode(func(b []byte) {
			b[16] = 3 // since 3 on a full frame
		}),
		"count mismatch": reencode(func(b []byte) { b[28] = 7 }),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestSparseIndexOutOfRange(t *testing.T) {
	b := AppendCheckout(nil, []float64{1, 2, 3}, 4, false, 2, []uint32{5}, []float64{9}, false)
	if _, err := Decode(b); err == nil {
		t.Fatal("out-of-range sparse index decoded successfully")
	}
}

func TestAppendExtendsDst(t *testing.T) {
	prefix := []byte("prefix")
	b := AppendFull(prefix, []float64{1, 2}, 1, false, false)
	if string(b[:6]) != "prefix" {
		t.Fatal("AppendFull clobbered dst")
	}
	if _, err := Decode(b[6:]); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionWins verifies a compressible payload actually shrinks
// on the wire and still round-trips exactly.
func TestCompressionWins(t *testing.T) {
	params := make([]float64, 1000) // all zero: maximally compressible
	raw := AppendFull(nil, params, 1, false, false)
	comp := AppendFull(nil, params, 1, false, true)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed frame %d bytes >= raw %d", len(comp), len(raw))
	}
	fr, err := Decode(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Values) != 1000 {
		t.Fatalf("got %d values", len(fr.Values))
	}
}
