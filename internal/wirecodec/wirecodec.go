// Package wirecodec implements the compact binary wire format the
// device hot path negotiates as an alternative to JSON (see
// docs/WIRE.md). Every message is one self-delimiting frame:
//
//	offset  size  field
//	0       4     magic "CMW1"
//	4       1     codec version (1)
//	5       1     kind (full=1, delta=2, checkin=3)
//	6       2     flags (uint16 LE: compressed, done, sparse)
//	8       8     version (int64 LE): the model iteration the frame
//	              describes; for checkin frames, the echoed checkout
//	              Version the gradient was computed against
//	16      8     since (int64 LE): the delta base iteration; -1 when
//	              the frame is not a delta
//	24      4     dims (uint32 LE): the full vector length
//	28      4     count (uint32 LE): payload element count — dims for
//	              full frames, sparse-pair count for sparse deltas,
//	              label-class count for checkins
//	32      —     payload (flate-compressed when the flag is set)
//	last 4        CRC32-IEEE (uint32 LE) over everything before it
//
// Payloads are little-endian float64s: a full frame carries dims
// values; a sparse delta carries count (uint32 index, float64 value)
// pairs holding the NEW absolute values at the changed coordinates
// (absolute, not differences, so applying a delta reproduces the
// server's vector bit for bit); a dense delta carries dims values like
// a full frame but keeps the since echo; a checkin frame carries the
// dims gradient values, then NumSamples and ErrCount as int64s, then
// count int64 label counts.
//
// The package is dependency-free (stdlib only) and allocation-aware:
// encoders append to caller-supplied buffers, so a pooled []byte makes
// encoding zero-allocation on the hot path.
package wirecodec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Frame kinds.
const (
	// KindFull is a complete parameter vector at one iteration.
	KindFull = 1
	// KindDelta is a change set against the base iteration in since:
	// sparse (index, value) pairs, or a dense re-send of every value.
	KindDelta = 2
	// KindCheckin is a device's sanitized gradient contribution.
	KindCheckin = 3
)

// Frame flags.
const (
	// FlagCompressed marks a flate-compressed payload.
	FlagCompressed = 1 << 0
	// FlagDone mirrors CheckoutResponse.Done: the task has stopped.
	FlagDone = 1 << 1
	// FlagSparse marks a delta payload of (index, value) pairs instead
	// of a dense value re-send.
	FlagSparse = 1 << 2
)

const (
	magic     = "CMW1"
	codecVer  = 1
	headerLen = 32
	crcLen    = 4

	// MaxPayload bounds the decoded payload size (the HTTP layer limits
	// request bodies identically), so a forged count field cannot make
	// Decode allocate unbounded memory.
	MaxPayload = 64 << 20

	// compressMin is the smallest payload worth running through flate;
	// below it the frame is sent raw even when compression was asked for.
	compressMin = 64
)

// ErrFrame is wrapped by every Decode failure, so transports can map
// any malformed frame to one protocol error (HTTP 400).
var ErrFrame = errors.New("wirecodec: malformed frame")

// Frame is one decoded message. Slices never alias the input buffer, so
// callers may pool and reuse the raw bytes immediately after Decode.
type Frame struct {
	// Kind is KindFull, KindDelta or KindCheckin.
	Kind byte
	// Done mirrors FlagDone.
	Done bool
	// Sparse mirrors FlagSparse (meaningful for KindDelta only).
	Sparse bool
	// Version is the frame's model iteration (for checkins: the echoed
	// checkout Version).
	Version int
	// Since is the delta base iteration; -1 for non-delta frames.
	Since int
	// Dims is the full vector length.
	Dims int
	// Values holds the payload float64s: the full vector (KindFull,
	// dense KindDelta), the new values at the changed coordinates
	// (sparse KindDelta), or the gradient (KindCheckin).
	Values []float64
	// Indices are the changed coordinates of a sparse delta, each < Dims.
	Indices []uint32
	// NumSamples, ErrCount and LabelCounts carry the checkin counters
	// (KindCheckin only).
	NumSamples  int
	ErrCount    int
	LabelCounts []int
}

// scratch pools raw-payload staging buffers for the compressing encoders.
var scratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// flateWriters pools flate writers (their allocation dwarfs everything
// else on a compressed encode).
var flateWriters = sync.Pool{}

func appendHeader(dst []byte, kind byte, flags uint16, version, since int64, dims, count uint32) []byte {
	dst = append(dst, magic...)
	dst = append(dst, codecVer, kind)
	dst = binary.LittleEndian.AppendUint16(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(version))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(since))
	dst = binary.LittleEndian.AppendUint32(dst, dims)
	dst = binary.LittleEndian.AppendUint32(dst, count)
	return dst
}

// appendPayload appends raw, flate-compressing when compress is set and
// the compressed form is actually smaller; it reports whether it was.
func appendPayload(dst, raw []byte, compress bool) ([]byte, bool) {
	if !compress || len(raw) < compressMin {
		return append(dst, raw...), false
	}
	var buf bytes.Buffer
	buf.Grow(len(raw))
	fw, _ := flateWriters.Get().(*flate.Writer)
	if fw == nil {
		fw, _ = flate.NewWriter(&buf, flate.BestSpeed)
	} else {
		fw.Reset(&buf)
	}
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	flateWriters.Put(fw)
	if werr != nil || cerr != nil || buf.Len() >= len(raw) {
		return append(dst, raw...), false
	}
	return append(dst, buf.Bytes()...), true
}

// finishFrame stamps the compressed flag (encoders only learn whether
// compression won after the payload is in place) and appends the CRC
// trailer over the frame built at dst[start:].
func finishFrame(dst []byte, start int, compressed bool) []byte {
	if compressed {
		flags := binary.LittleEndian.Uint16(dst[start+6:])
		binary.LittleEndian.PutUint16(dst[start+6:], flags|FlagCompressed)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

func appendFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendFull appends a full-vector frame to dst and returns the
// extended buffer.
func AppendFull(dst []byte, params []float64, version int, done, compress bool) []byte {
	start := len(dst)
	var flags uint16
	if done {
		flags |= FlagDone
	}
	n := uint32(len(params))
	dst = appendHeader(dst, KindFull, flags, int64(version), -1, n, n)
	raw := (*scratch.Get().(*[]byte))[:0]
	raw = appendFloats(raw, params)
	dst, compressed := appendPayload(dst, raw, compress)
	scratch.Put(&raw)
	return finishFrame(dst, start, compressed)
}

// AppendCheckout appends the negotiated checkout frame: a full frame
// when since < 0 (no usable delta base), otherwise the smaller of the
// sparse and dense delta forms. indices/values list the coordinates
// that changed between iteration since and version, carrying the NEW
// absolute values; params is the complete current vector the dense
// form falls back to.
func AppendCheckout(dst []byte, params []float64, version int, done bool, since int, indices []uint32, values []float64, compress bool) []byte {
	if since < 0 {
		return AppendFull(dst, params, version, done, compress)
	}
	start := len(dst)
	var flags uint16
	if done {
		flags |= FlagDone
	}
	n := uint32(len(params))
	raw := (*scratch.Get().(*[]byte))[:0]
	if sparseBytes := 12 * len(indices); sparseBytes < 8*len(params) {
		flags |= FlagSparse
		dst = appendHeader(dst, KindDelta, flags, int64(version), int64(since), n, uint32(len(indices)))
		for i, idx := range indices {
			raw = binary.LittleEndian.AppendUint32(raw, idx)
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(values[i]))
		}
	} else {
		dst = appendHeader(dst, KindDelta, flags, int64(version), int64(since), n, n)
		raw = appendFloats(raw, params)
	}
	dst, compressed := appendPayload(dst, raw, compress)
	scratch.Put(&raw)
	return finishFrame(dst, start, compressed)
}

// AppendCheckin appends a device checkin frame: the sanitized gradient,
// the echoed checkout version, and the paper's counters.
func AppendCheckin(dst []byte, grad []float64, version, numSamples, errCount int, labelCounts []int, compress bool) []byte {
	start := len(dst)
	dst = appendHeader(dst, KindCheckin, 0, int64(version), -1,
		uint32(len(grad)), uint32(len(labelCounts)))
	raw := (*scratch.Get().(*[]byte))[:0]
	raw = appendFloats(raw, grad)
	raw = binary.LittleEndian.AppendUint64(raw, uint64(int64(numSamples)))
	raw = binary.LittleEndian.AppendUint64(raw, uint64(int64(errCount)))
	for _, c := range labelCounts {
		raw = binary.LittleEndian.AppendUint64(raw, uint64(int64(c)))
	}
	dst, compressed := appendPayload(dst, raw, compress)
	scratch.Put(&raw)
	return finishFrame(dst, start, compressed)
}

// Decode parses and validates one frame. Every failure wraps ErrFrame:
// a short buffer, a CRC mismatch (truncation or corruption), an unknown
// magic/version/kind, a count field inconsistent with the payload, or a
// sparse index out of range. The returned Frame owns its slices; b may
// be reused immediately.
func Decode(b []byte) (*Frame, error) {
	if len(b) < headerLen+crcLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a frame", ErrFrame, len(b))
	}
	body := b[:len(b)-crcLen]
	if got, want := binary.LittleEndian.Uint32(b[len(b)-crcLen:]), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (frame truncated or corrupted)", ErrFrame)
	}
	if string(b[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFrame)
	}
	if b[4] != codecVer {
		return nil, fmt.Errorf("%w: unsupported codec version %d", ErrFrame, b[4])
	}
	flags := binary.LittleEndian.Uint16(b[6:])
	fr := &Frame{
		Kind:    b[5],
		Done:    flags&FlagDone != 0,
		Sparse:  flags&FlagSparse != 0,
		Version: int(int64(binary.LittleEndian.Uint64(b[8:]))),
		Since:   int(int64(binary.LittleEndian.Uint64(b[16:]))),
		Dims:    int(binary.LittleEndian.Uint32(b[24:])),
	}
	count := int(binary.LittleEndian.Uint32(b[28:]))
	if fr.Version < 0 || fr.Since < -1 {
		return nil, fmt.Errorf("%w: negative version/since", ErrFrame)
	}

	// Work out the expected raw payload size per kind BEFORE touching the
	// payload, so a forged header cannot trigger an oversized allocation.
	var expect int
	switch fr.Kind {
	case KindFull:
		if count != fr.Dims {
			return nil, fmt.Errorf("%w: full frame count %d != dims %d", ErrFrame, count, fr.Dims)
		}
		if fr.Since != -1 {
			return nil, fmt.Errorf("%w: full frame carries a since", ErrFrame)
		}
		expect = 8 * count
	case KindDelta:
		if fr.Since < 0 {
			return nil, fmt.Errorf("%w: delta frame without a since", ErrFrame)
		}
		if fr.Since > fr.Version {
			return nil, fmt.Errorf("%w: delta since %d ahead of version %d", ErrFrame, fr.Since, fr.Version)
		}
		if fr.Sparse {
			if count > fr.Dims {
				return nil, fmt.Errorf("%w: sparse delta with %d pairs for %d dims", ErrFrame, count, fr.Dims)
			}
			expect = 12 * count
		} else {
			if count != fr.Dims {
				return nil, fmt.Errorf("%w: dense delta count %d != dims %d", ErrFrame, count, fr.Dims)
			}
			expect = 8 * count
		}
	case KindCheckin:
		expect = 8*fr.Dims + 16 + 8*count
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrFrame, fr.Kind)
	}
	if fr.Dims < 0 || count < 0 || expect < 0 || expect > MaxPayload {
		return nil, fmt.Errorf("%w: implausible payload size", ErrFrame)
	}

	payload := body[headerLen:]
	if flags&FlagCompressed != 0 {
		out := make([]byte, expect)
		zr := flate.NewReader(bytes.NewReader(payload))
		if _, err := io.ReadFull(zr, out); err != nil {
			return nil, fmt.Errorf("%w: flate payload: %v", ErrFrame, err)
		}
		var tail [1]byte
		if n, err := zr.Read(tail[:]); n != 0 || err != io.EOF {
			return nil, fmt.Errorf("%w: trailing compressed data", ErrFrame)
		}
		payload = out
	} else if len(payload) != expect {
		return nil, fmt.Errorf("%w: payload %d bytes, want %d", ErrFrame, len(payload), expect)
	}

	switch fr.Kind {
	case KindFull:
		fr.Values = decodeFloats(payload, count)
	case KindDelta:
		if fr.Sparse {
			fr.Indices = make([]uint32, count)
			fr.Values = make([]float64, count)
			for i := 0; i < count; i++ {
				idx := binary.LittleEndian.Uint32(payload[12*i:])
				if int(idx) >= fr.Dims {
					return nil, fmt.Errorf("%w: sparse index %d out of range [0,%d)", ErrFrame, idx, fr.Dims)
				}
				fr.Indices[i] = idx
				fr.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[12*i+4:]))
			}
		} else {
			fr.Values = decodeFloats(payload, count)
		}
	case KindCheckin:
		fr.Values = decodeFloats(payload, fr.Dims)
		off := 8 * fr.Dims
		fr.NumSamples = int(int64(binary.LittleEndian.Uint64(payload[off:])))
		fr.ErrCount = int(int64(binary.LittleEndian.Uint64(payload[off+8:])))
		fr.LabelCounts = make([]int, count)
		for i := 0; i < count; i++ {
			fr.LabelCounts[i] = int(int64(binary.LittleEndian.Uint64(payload[off+16+8*i:])))
		}
	}
	return fr, nil
}

func decodeFloats(payload []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out
}

// ApplyDelta reconstructs the full vector a delta frame describes:
// sparse deltas copy base and overwrite the changed coordinates (the
// result is bit-identical to the server's snapshot at fr.Version);
// dense deltas carry every value already and ignore base. The returned
// slice is freshly allocated (or the frame's own for dense deltas) —
// never an alias of base.
func ApplyDelta(base []float64, fr *Frame) ([]float64, error) {
	if fr.Kind != KindDelta {
		return nil, fmt.Errorf("%w: ApplyDelta on kind %d", ErrFrame, fr.Kind)
	}
	if !fr.Sparse {
		return fr.Values, nil
	}
	if len(base) != fr.Dims {
		return nil, fmt.Errorf("%w: delta base has %d dims, frame %d", ErrFrame, len(base), fr.Dims)
	}
	out := make([]float64, len(base))
	copy(out, base)
	for i, idx := range fr.Indices {
		out[idx] = fr.Values[i]
	}
	return out, nil
}
