package wirecodec

import (
	"math"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at Decode. The invariants: no
// panic, no unvalidated success (a decoded frame must satisfy the
// documented field constraints), and every valid encoder output decodes
// back (seeded below, mutated by the fuzzer).
func FuzzDecodeFrame(f *testing.F) {
	params := []float64{1.5, -2.25, 0, math.Pi, 1e-300}
	f.Add(AppendFull(nil, params, 7, true, false))
	f.Add(AppendFull(nil, params, 7, false, true))
	f.Add(AppendCheckout(nil, params, 9, false, 4, []uint32{1, 3}, []float64{8, -8}, false))
	f.Add(AppendCheckout(nil, params, 9, false, 4, []uint32{0, 1, 2, 3, 4}, params, true))
	f.Add(AppendCheckout(nil, params, 9, true, 9, nil, nil, false))
	f.Add(AppendCheckin(nil, params, 3, 2, 1, []int{1, 0, 1}, false))
	f.Add(AppendCheckin(nil, params, 3, 2, 1, []int{1, 0, 1}, true))
	f.Add([]byte(magic))
	f.Add(make([]byte, headerLen+crcLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Decode(b)
		if err != nil {
			return
		}
		if fr.Version < 0 || fr.Dims < 0 {
			t.Fatalf("negative version/dims decoded: %+v", fr)
		}
		switch fr.Kind {
		case KindFull:
			if len(fr.Values) != fr.Dims || fr.Since != -1 {
				t.Fatalf("inconsistent full frame: %+v", fr)
			}
		case KindDelta:
			if fr.Since < 0 || fr.Since > fr.Version {
				t.Fatalf("inconsistent delta since: %+v", fr)
			}
			if fr.Sparse {
				if len(fr.Indices) != len(fr.Values) || len(fr.Indices) > fr.Dims {
					t.Fatalf("inconsistent sparse delta: %+v", fr)
				}
				for _, idx := range fr.Indices {
					if int(idx) >= fr.Dims {
						t.Fatalf("sparse index %d out of range: %+v", idx, fr)
					}
				}
				base := make([]float64, fr.Dims)
				if _, err := ApplyDelta(base, fr); err != nil {
					t.Fatalf("ApplyDelta rejected a decoded frame: %v", err)
				}
			} else if len(fr.Values) != fr.Dims {
				t.Fatalf("inconsistent dense delta: %+v", fr)
			}
		case KindCheckin:
			if len(fr.Values) != fr.Dims {
				t.Fatalf("inconsistent checkin gradient: %+v", fr)
			}
		default:
			t.Fatalf("unknown kind decoded: %+v", fr)
		}
	})
}
