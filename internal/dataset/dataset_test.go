package dataset

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestGenerateMixtureShapeAndNormalization(t *testing.T) {
	ds, err := GenerateMixture(MixtureConfig{
		Name: "t", Classes: 4, Dim: 8, TrainSize: 100, TestSize: 40,
		MeanScale: 1, NoiseScale: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 100 || len(ds.Test) != 40 {
		t.Fatalf("sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	for _, s := range ds.Train {
		if len(s.X) != 8 {
			t.Fatalf("dim %d", len(s.X))
		}
		if s.Y < 0 || s.Y >= 4 {
			t.Fatalf("label %d", s.Y)
		}
		if n := linalg.Norm1(s.X); math.Abs(n-1) > 1e-9 {
			t.Fatalf("‖x‖₁ = %v, want 1", n)
		}
	}
}

func TestGenerateMixtureBalancedClasses(t *testing.T) {
	ds, err := GenerateMixture(MixtureConfig{
		Classes: 5, Dim: 3, TrainSize: 1000, TestSize: 0,
		MeanScale: 1, NoiseScale: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 5)
	for _, s := range ds.Train {
		counts[s.Y]++
	}
	for k, c := range counts {
		if c != 200 {
			t.Errorf("class %d count %d, want 200", k, c)
		}
	}
}

func TestGenerateMixtureDeterministic(t *testing.T) {
	cfg := MixtureConfig{Classes: 3, Dim: 4, TrainSize: 10, TestSize: 5,
		MeanScale: 1, NoiseScale: 1, Seed: 7}
	a, _ := GenerateMixture(cfg)
	b, _ := GenerateMixture(cfg)
	for i := range a.Train {
		if a.Train[i].Y != b.Train[i].Y || !linalg.Equal(a.Train[i].X, b.Train[i].X, 0) {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestGenerateMixtureValidation(t *testing.T) {
	bad := []MixtureConfig{
		{Classes: 1, Dim: 2, TrainSize: 10, MeanScale: 1, NoiseScale: 1},
		{Classes: 2, Dim: 0, TrainSize: 10, MeanScale: 1, NoiseScale: 1},
		{Classes: 2, Dim: 2, TrainSize: 0, MeanScale: 1, NoiseScale: 1},
		{Classes: 2, Dim: 2, TrainSize: 10, MeanScale: 0, NoiseScale: 1},
		{Classes: 2, Dim: 2, TrainSize: 10, MeanScale: 1, NoiseScale: -1},
	}
	for i, cfg := range bad {
		if _, err := GenerateMixture(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestMNISTLikeDefaults(t *testing.T) {
	ds, err := MNISTLike(500, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 10 || ds.Dim != 50 {
		t.Errorf("shape C=%d D=%d, want 10/50", ds.Classes, ds.Dim)
	}
	if len(ds.Train) != 500 || len(ds.Test) != 100 {
		t.Errorf("sizes %d/%d", len(ds.Train), len(ds.Test))
	}
}

func TestCIFARLikeShape(t *testing.T) {
	ds, err := CIFARLike(200, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 10 || ds.Dim != 100 {
		t.Errorf("shape C=%d D=%d, want 10/100", ds.Classes, ds.Dim)
	}
}

// trainBatch runs a few epochs of full-batch gradient descent — enough to
// approximate the asymptotic error for calibration checks.
func trainBatch(ds *Dataset, epochs int, rate float64) *linalg.Matrix {
	m := model.NewLogisticRegression(ds.Classes, ds.Dim)
	w := model.NewParams(m)
	g := model.NewParams(m)
	for e := 0; e < epochs; e++ {
		g.Zero()
		for _, s := range ds.Train {
			m.AddGradient(w, g, s)
		}
		g.Scale(1 / float64(len(ds.Train)))
		w.AddScaled(-rate, g)
	}
	return w
}

func testError(ds *Dataset, w *linalg.Matrix) float64 {
	m := model.NewLogisticRegression(ds.Classes, ds.Dim)
	errs := 0
	for _, s := range ds.Test {
		if m.Misclassified(w, s) {
			errs++
		}
	}
	return float64(errs) / float64(len(ds.Test))
}

// Calibration: the MNIST-like task must land near the paper's ~0.1
// asymptotic error and the CIFAR-like task near ~0.3, preserving the
// "harder dataset, same curve shapes" relationship of Appendix D.
func TestDatasetDifficultyCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	mn, err := MNISTLike(6000, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	wm := trainBatch(mn, 150, 40)
	em := testError(mn, wm)
	if em < 0.03 || em > 0.20 {
		t.Errorf("mnist-like batch error = %v, want ~0.1 (0.03–0.20)", em)
	}
	cf, err := CIFARLike(6000, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	wc := trainBatch(cf, 150, 40)
	ec := testError(cf, wc)
	if ec < 0.18 || ec > 0.45 {
		t.Errorf("cifar-like batch error = %v, want ~0.3 (0.18–0.45)", ec)
	}
	if ec <= em {
		t.Errorf("cifar-like (%v) must be harder than mnist-like (%v)", ec, em)
	}
}

func TestAssignCoversAllSamples(t *testing.T) {
	ds, _ := GenerateMixture(MixtureConfig{
		Classes: 2, Dim: 2, TrainSize: 103, TestSize: 0,
		MeanScale: 1, NoiseScale: 1, Seed: 4,
	})
	shards := Assign(ds.Train, 10, rng.New(1))
	if len(shards) != 10 {
		t.Fatalf("%d shards", len(shards))
	}
	total := 0
	for _, sh := range shards {
		total += len(sh)
		if len(sh) < 10 || len(sh) > 11 {
			t.Errorf("shard size %d outside [10,11]", len(sh))
		}
	}
	if total != 103 {
		t.Errorf("assigned %d samples, want 103", total)
	}
	if Assign(ds.Train, 0, rng.New(1)) != nil {
		t.Error("m=0 should return nil")
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	ds, _ := GenerateMixture(MixtureConfig{
		Classes: 2, Dim: 2, TrainSize: 50, TestSize: 0,
		MeanScale: 1, NoiseScale: 1, Seed: 5,
	})
	out := Shuffled(ds.Train, rng.New(9))
	if len(out) != 50 {
		t.Fatal("length changed")
	}
	// Same label multiset.
	var a, b [2]int
	for i := range out {
		a[ds.Train[i].Y]++
		b[out[i].Y]++
	}
	if a != b {
		t.Error("shuffle changed label counts")
	}
}
