// Package dataset provides the evaluation datasets of Section V in
// synthetic form. The paper uses MNIST (PCA→50 dims) and CNN features of
// CIFAR-10 (PCA→100 dims); this repository has no network access, so both
// are replaced by Gaussian-mixture look-alikes with matched shape: same
// class count, same dimensionality, same L1 normalization (the ‖x‖₁ ≤ 1
// precondition of the privacy analysis), and within-class variance tuned
// so multiclass logistic regression reaches approximately the paper's
// asymptotic test errors (~0.1 for the digit task, ~0.3 for the object
// task). See DESIGN.md §3 for the substitution rationale.
package dataset

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/rng"
)

// Dataset is a labeled train/test split.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Classes is the number of target classes C.
	Classes int
	// Dim is the feature dimensionality D.
	Dim int
	// Train and Test are the sample sets.
	Train, Test []model.Sample
}

// MixtureConfig parameterizes the Gaussian-mixture generator.
type MixtureConfig struct {
	// Name labels the resulting dataset.
	Name string
	// Classes (C ≥ 2) and Dim (D ≥ 1) fix the task shape.
	Classes, Dim int
	// TrainSize and TestSize are sample counts.
	TrainSize, TestSize int
	// MeanScale is the per-coordinate standard deviation used to draw the
	// C class means.
	MeanScale float64
	// NoiseScale is the per-coordinate within-class standard deviation;
	// the NoiseScale/MeanScale ratio controls task difficulty.
	NoiseScale float64
	// Seed makes generation deterministic.
	Seed uint64
}

// GenerateMixture draws class means m_k ~ N(0, MeanScale²·I) and samples
// x = m_y + NoiseScale·N(0, I), with balanced classes and L1-normalized
// features.
func GenerateMixture(cfg MixtureConfig) (*Dataset, error) {
	if cfg.Classes < 2 || cfg.Dim < 1 {
		return nil, fmt.Errorf("dataset: invalid shape C=%d D=%d", cfg.Classes, cfg.Dim)
	}
	if cfg.TrainSize < 1 || cfg.TestSize < 0 {
		return nil, fmt.Errorf("dataset: invalid sizes train=%d test=%d",
			cfg.TrainSize, cfg.TestSize)
	}
	if cfg.MeanScale <= 0 || cfg.NoiseScale < 0 {
		return nil, fmt.Errorf("dataset: invalid scales mean=%v noise=%v",
			cfg.MeanScale, cfg.NoiseScale)
	}
	r := rng.New(cfg.Seed)
	means := make([][]float64, cfg.Classes)
	for k := range means {
		mk := make([]float64, cfg.Dim)
		for j := range mk {
			mk[j] = r.Normal(0, cfg.MeanScale)
		}
		means[k] = mk
	}
	draw := func(n int) []model.Sample {
		out := make([]model.Sample, n)
		for i := range out {
			y := i % cfg.Classes // balanced
			x := make([]float64, cfg.Dim)
			for j := range x {
				x[j] = means[y][j] + r.Normal(0, cfg.NoiseScale)
			}
			linalg.NormalizeL1(x)
			out[i] = model.Sample{X: x, Y: y}
		}
		r.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	return &Dataset{
		Name:    cfg.Name,
		Classes: cfg.Classes,
		Dim:     cfg.Dim,
		Train:   draw(cfg.TrainSize),
		Test:    draw(cfg.TestSize),
	}, nil
}

// MNISTLike mirrors the paper's MNIST setup: 10 classes, 50 PCA dims,
// 60000/10000 train/test, difficulty tuned for ~0.1 asymptotic logistic-
// regression error. Pass smaller sizes to scale the experiment down
// (0 selects the paper's sizes).
func MNISTLike(trainSize, testSize int, seed uint64) (*Dataset, error) {
	if trainSize == 0 {
		trainSize = 60000
	}
	if testSize == 0 {
		testSize = 10000
	}
	return GenerateMixture(MixtureConfig{
		Name:       "mnist-like",
		Classes:    10,
		Dim:        50,
		TrainSize:  trainSize,
		TestSize:   testSize,
		MeanScale:  1.0,
		NoiseScale: 2.2,
		Seed:       seed,
	})
}

// CIFARLike mirrors the paper's CIFAR-10-through-CNN-features setup:
// 10 classes, 100 PCA dims, 50000/10000 train/test, tuned for ~0.3
// asymptotic error (the harder task of Appendix D). Zero sizes select the
// paper's sizes.
func CIFARLike(trainSize, testSize int, seed uint64) (*Dataset, error) {
	if trainSize == 0 {
		trainSize = 50000
	}
	if testSize == 0 {
		testSize = 10000
	}
	return GenerateMixture(MixtureConfig{
		Name:       "cifar-like",
		Classes:    10,
		Dim:        100,
		TrainSize:  trainSize,
		TestSize:   testSize,
		MeanScale:  1.0,
		NoiseScale: 4.5,
		Seed:       seed,
	})
}

// Assign deals the samples round-robin to m shards after a seeded shuffle —
// the per-device sample assignment of Section V-C ("assignment of samples
// … randomized"; with M=1000 each device holds 60 training samples on
// average). The input slice is not modified.
func Assign(samples []model.Sample, m int, r *rng.RNG) [][]model.Sample {
	if m < 1 {
		return nil
	}
	shuffled := make([]model.Sample, len(samples))
	copy(shuffled, samples)
	r.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	shards := make([][]model.Sample, m)
	per := (len(samples) + m - 1) / m
	for i := range shards {
		shards[i] = make([]model.Sample, 0, per)
	}
	for i, s := range shuffled {
		shards[i%m] = append(shards[i%m], s)
	}
	return shards
}

// Shuffled returns a seeded-shuffled copy of the samples.
func Shuffled(samples []model.Sample, r *rng.RNG) []model.Sample {
	out := make([]model.Sample, len(samples))
	copy(out, samples)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
