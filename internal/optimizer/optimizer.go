// Package optimizer implements the stochastic-gradient machinery of
// Crowd-ML: the projected SGD update of Eq. (3), the c/√t learning-rate
// schedule of Eq. (5) plus the adaptive alternatives of Remark 3, and the
// minibatch gradient averaging of Eq. (6).
package optimizer

import (
	"fmt"
	"math"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
)

// Schedule maps the server iteration counter t (1-based) to a learning rate
// η(t).
type Schedule interface {
	// Rate returns η(t) for t ≥ 1.
	Rate(t int) float64
	// Name identifies the schedule in experiment output.
	Name() string
}

// InvSqrt is the paper's default schedule η(t) = c/√t (Eq. 5).
type InvSqrt struct {
	// C is the constant hyperparameter c.
	C float64
}

var _ Schedule = InvSqrt{}

// Rate implements Schedule.
func (s InvSqrt) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	return s.C / math.Sqrt(float64(t))
}

// Name implements Schedule.
func (s InvSqrt) Name() string { return fmt.Sprintf("c/sqrt(t), c=%g", s.C) }

// Constant is a fixed learning rate, useful as an ablation baseline.
type Constant struct {
	// C is the fixed rate.
	C float64
}

var _ Schedule = Constant{}

// Rate implements Schedule.
func (s Constant) Rate(int) float64 { return s.C }

// Name implements Schedule.
func (s Constant) Name() string { return fmt.Sprintf("constant %g", s.C) }

// InvT is the η(t) = c/t schedule appropriate for strongly convex risks
// (the O(1/t) optimal rate discussed in Section IV-A).
type InvT struct {
	// C is the constant hyperparameter.
	C float64
}

var _ Schedule = InvT{}

// Rate implements Schedule.
func (s InvT) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	return s.C / float64(t)
}

// Name implements Schedule.
func (s InvT) Name() string { return fmt.Sprintf("c/t, c=%g", s.C) }

// Updater applies one server-side parameter update from a (sanitized)
// gradient: the w ← Π_W[w − η(t)·ĝ] step of Eq. (3) and Algorithm 2.
type Updater interface {
	// Update applies gradient g at iteration t (1-based) to w in place.
	Update(w, g *linalg.Matrix, t int)
	// Name identifies the updater.
	Name() string
}

// StateExporter is optionally implemented by Updaters that carry internal
// state beyond the parameter vector — AdaGrad's per-coordinate squared
// accumulators, Momentum's velocity. The server persists the exported
// vector inside its checkpoints (core.ServerState.UpdaterState) and hands
// it back on restore, so recovery replays land on bit-exact parameters
// for stateful updaters too, not only for pure-(w, ĝ, t) rules like the
// paper's SGD schedules.
//
// The payload is a flat float64 vector: every shipped updater's state is
// one coordinate-shaped slice, the values round-trip bit-exactly through
// the checkpoint's JSON encoding (Go prints the shortest representation
// that parses back to the same float64), and a richer updater can pack
// multiple slices into one vector.
type StateExporter interface {
	// ExportState returns a copy of the updater's internal state, or nil
	// when it currently has none (never run, or just reset). The caller
	// owns the returned slice.
	ExportState() []float64
	// ImportState replaces the updater's internal state with a copy of
	// state; nil or empty resets it. Implementations cannot validate the
	// length against the task shape here (they learn it from the first
	// gradient); a mismatched import surfaces on the next Update.
	ImportState(state []float64) error
}

// SGD is the plain projected-SGD updater of Eq. (3).
type SGD struct {
	// Schedule provides η(t). Required.
	Schedule Schedule
	// Radius is the projection-ball radius R of Π_W. Non-positive disables
	// projection (W = R^d).
	Radius float64
}

var _ Updater = (*SGD)(nil)

// Update implements Updater.
func (u *SGD) Update(w, g *linalg.Matrix, t int) {
	eta := u.Schedule.Rate(t)
	// w -= eta * g, then project.
	linalg.Axpy(-eta, g.Data(), w.Data())
	linalg.ProjectBall(w.Data(), u.Radius)
}

// Name implements Updater.
func (u *SGD) Name() string { return "sgd(" + u.Schedule.Name() + ")" }

// AdaGrad is the adaptive per-coordinate updater referenced in Remark 3
// (Duchi et al. 2010): η_i(t) = Eta / (ε₀ + √Σ g_i²). It is robust to the
// large gradients that outlying or malignant devices can inject.
type AdaGrad struct {
	// Eta is the base learning rate.
	Eta float64
	// Epsilon is the damping constant ε₀ (defaults to 1e-8 if zero).
	Epsilon float64
	// Radius is the projection-ball radius (non-positive disables).
	Radius float64

	accum []float64 // running Σ g_i², lazily sized
}

var _ Updater = (*AdaGrad)(nil)

// Update implements Updater.
func (u *AdaGrad) Update(w, g *linalg.Matrix, t int) {
	data := g.Data()
	if u.accum == nil {
		u.accum = make([]float64, len(data))
	}
	if len(u.accum) != len(data) {
		// Only an ImportState payload of the wrong shape can get here (the
		// server validates every gradient's length before Update runs).
		panic(fmt.Sprintf("optimizer: adagrad state has %d coordinates, gradient has %d",
			len(u.accum), len(data)))
	}
	eps := u.Epsilon
	if eps == 0 {
		eps = 1e-8
	}
	wd := w.Data()
	for i, gi := range data {
		u.accum[i] += gi * gi
		wd[i] -= u.Eta / (eps + math.Sqrt(u.accum[i])) * gi
	}
	linalg.ProjectBall(wd, u.Radius)
}

// Name implements Updater.
func (u *AdaGrad) Name() string { return fmt.Sprintf("adagrad(eta=%g)", u.Eta) }

// Reset clears the accumulated squared gradients so the updater can be
// reused across trials.
func (u *AdaGrad) Reset() { u.accum = nil }

var _ StateExporter = (*AdaGrad)(nil)

// ExportState implements StateExporter: a copy of the Σ g_i² accumulators.
func (u *AdaGrad) ExportState() []float64 {
	if u.accum == nil {
		return nil
	}
	return append([]float64(nil), u.accum...)
}

// ImportState implements StateExporter.
func (u *AdaGrad) ImportState(state []float64) error {
	if len(state) == 0 {
		u.accum = nil
		return nil
	}
	u.accum = append([]float64(nil), state...)
	return nil
}

// AverageGradient computes the Eq. (6) minibatch gradient
// g̃ = (1/n)·Σ ∇l(h(xᵢ;w), yᵢ) + λ·w into a fresh matrix, exactly as Device
// Routine 2 prescribes. It returns nil if the batch is empty.
func AverageGradient(m model.Model, w *linalg.Matrix, batch []model.Sample, lambda float64) *linalg.Matrix {
	if len(batch) == 0 {
		return nil
	}
	g := model.NewParams(m)
	for _, s := range batch {
		m.AddGradient(w, g, s)
	}
	g.Scale(1 / float64(len(batch)))
	if lambda != 0 {
		// Regularization enters once per minibatch, per Device Routine 2.
		if err := g.AddScaled(lambda, w); err != nil {
			// Shapes are established by NewParams; mismatch is impossible.
			panic(err)
		}
	}
	return g
}

// Momentum is the heavy-ball updater: v ← β·v − η(t)·g, w ← Π_W[w + v].
// Like AdaGrad it is a server-side drop-in that leaves the devices and the
// privacy guarantees untouched (Remark 3).
type Momentum struct {
	// Schedule provides η(t). Required.
	Schedule Schedule
	// Beta is the momentum coefficient β ∈ [0, 1).
	Beta float64
	// Radius is the projection-ball radius (non-positive disables).
	Radius float64

	velocity []float64 // lazily sized
}

var _ Updater = (*Momentum)(nil)

// Update implements Updater.
func (u *Momentum) Update(w, g *linalg.Matrix, t int) {
	data := g.Data()
	if u.velocity == nil {
		u.velocity = make([]float64, len(data))
	}
	if len(u.velocity) != len(data) {
		panic(fmt.Sprintf("optimizer: momentum state has %d coordinates, gradient has %d",
			len(u.velocity), len(data)))
	}
	eta := u.Schedule.Rate(t)
	wd := w.Data()
	for i, gi := range data {
		u.velocity[i] = u.Beta*u.velocity[i] - eta*gi
		wd[i] += u.velocity[i]
	}
	linalg.ProjectBall(wd, u.Radius)
}

// Name implements Updater.
func (u *Momentum) Name() string {
	return fmt.Sprintf("momentum(beta=%g, %s)", u.Beta, u.Schedule.Name())
}

// Reset clears the velocity so the updater can be reused across trials.
func (u *Momentum) Reset() { u.velocity = nil }

var _ StateExporter = (*Momentum)(nil)

// ExportState implements StateExporter: a copy of the velocity vector.
func (u *Momentum) ExportState() []float64 {
	if u.velocity == nil {
		return nil
	}
	return append([]float64(nil), u.velocity...)
}

// ImportState implements StateExporter.
func (u *Momentum) ImportState(state []float64) error {
	if len(state) == 0 {
		u.velocity = nil
		return nil
	}
	u.velocity = append([]float64(nil), state...)
	return nil
}

// Clip wraps an Updater and rescales any incoming gradient whose L1 norm
// exceeds MaxNorm1 down to that bound before applying it. The server knows
// every honest device's averaged gradient satisfies ‖g̃‖₁ ≤ S(f)/1 plus
// bounded sanitization noise (Appendix A), so a generous clip leaves honest
// traffic untouched while capping the damage a malignant device can do
// with one checkin — a server-side hardening composable with the Remark 3
// adaptive updaters, and one that never touches the privacy analysis
// (clipping is post-processing of already-sanitized data).
type Clip struct {
	// Inner is the wrapped updater. Required.
	Inner Updater
	// MaxNorm1 is the L1 bound; non-positive disables clipping.
	MaxNorm1 float64
}

var _ Updater = (*Clip)(nil)

// Update implements Updater.
func (u *Clip) Update(w, g *linalg.Matrix, t int) {
	if u.MaxNorm1 > 0 {
		if n := g.Norm1(); n > u.MaxNorm1 {
			g.Scale(u.MaxNorm1 / n)
		}
	}
	u.Inner.Update(w, g, t)
}

// Name implements Updater.
func (u *Clip) Name() string {
	return fmt.Sprintf("clip(L1<=%g, %s)", u.MaxNorm1, u.Inner.Name())
}

var _ StateExporter = (*Clip)(nil)

// ExportState implements StateExporter by delegating to the wrapped
// updater (Clip itself is stateless); nil when Inner carries no state.
func (u *Clip) ExportState() []float64 {
	if se, ok := u.Inner.(StateExporter); ok {
		return se.ExportState()
	}
	return nil
}

// ImportState implements StateExporter by delegating to the wrapped
// updater. State for a stateless Inner is silently dropped — the
// checkpoint was written under a different updater configuration, and
// the operator's new configuration wins.
func (u *Clip) ImportState(state []float64) error {
	if se, ok := u.Inner.(StateExporter); ok {
		return se.ImportState(state)
	}
	return nil
}
