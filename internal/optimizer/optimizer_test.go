package optimizer

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestInvSqrtSchedule(t *testing.T) {
	s := InvSqrt{C: 2}
	tests := []struct {
		t    int
		want float64
	}{
		{t: 1, want: 2},
		{t: 4, want: 1},
		{t: 100, want: 0.2},
		{t: 0, want: 2}, // clamped to t=1
	}
	for _, tt := range tests {
		if got := s.Rate(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Rate(%d) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if s.Name() == "" {
		t.Error("empty schedule name")
	}
}

func TestConstantAndInvT(t *testing.T) {
	c := Constant{C: 0.5}
	if c.Rate(1) != 0.5 || c.Rate(1000) != 0.5 {
		t.Error("Constant schedule must not vary")
	}
	it := InvT{C: 3}
	if got := it.Rate(3); math.Abs(got-1) > 1e-12 {
		t.Errorf("InvT.Rate(3) = %v, want 1", got)
	}
	if it.Rate(0) != 3 {
		t.Errorf("InvT.Rate(0) should clamp to t=1")
	}
	if c.Name() == "" || it.Name() == "" {
		t.Error("empty names")
	}
}

func TestSGDUpdate(t *testing.T) {
	u := &SGD{Schedule: Constant{C: 0.1}}
	w, _ := linalg.NewMatrixFrom(1, 2, []float64{1, 1})
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{2, -2})
	u.Update(w, g, 1)
	if !linalg.Equal(w.Data(), []float64{0.8, 1.2}, 1e-12) {
		t.Errorf("after update w = %v", w.Data())
	}
}

func TestSGDProjection(t *testing.T) {
	u := &SGD{Schedule: Constant{C: 1}, Radius: 1}
	w := linalg.NewMatrix(1, 2)
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{-3, -4}) // pushes w to (3,4)
	u.Update(w, g, 1)
	if n := linalg.Norm2(w.Data()); math.Abs(n-1) > 1e-9 {
		t.Errorf("projected norm = %v, want 1", n)
	}
	if u.Name() == "" {
		t.Error("empty updater name")
	}
}

func TestAdaGradShrinksSteps(t *testing.T) {
	u := &AdaGrad{Eta: 1}
	w := linalg.NewMatrix(1, 1)
	g, _ := linalg.NewMatrixFrom(1, 1, []float64{1})
	u.Update(w, g, 1)
	first := -w.At(0, 0) // step size of first update
	before := w.At(0, 0)
	u.Update(w, g, 2)
	second := before - w.At(0, 0)
	if second >= first {
		t.Errorf("AdaGrad step grew: first %v, second %v", first, second)
	}
	u.Reset()
	w2 := linalg.NewMatrix(1, 1)
	u.Update(w2, g, 1)
	if math.Abs(-w2.At(0, 0)-first) > 1e-12 {
		t.Error("Reset did not restore initial behaviour")
	}
	if u.Name() == "" {
		t.Error("empty name")
	}
}

func TestAdaGradProjection(t *testing.T) {
	u := &AdaGrad{Eta: 100, Radius: 0.5}
	w := linalg.NewMatrix(1, 2)
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{-1, -1})
	u.Update(w, g, 1)
	if n := linalg.Norm2(w.Data()); n > 0.5+1e-9 {
		t.Errorf("AdaGrad ignored projection: norm %v", n)
	}
}

func TestAverageGradientEmptyBatch(t *testing.T) {
	m := model.NewLogisticRegression(2, 2)
	if g := AverageGradient(m, model.NewParams(m), nil, 0); g != nil {
		t.Error("empty batch should yield nil gradient")
	}
}

func TestAverageGradientMatchesManual(t *testing.T) {
	m := model.NewLogisticRegression(3, 4)
	r := rng.New(1)
	w := model.NewParams(m)
	for i := range w.Data() {
		w.Data()[i] = r.Uniform(-1, 1)
	}
	batch := make([]model.Sample, 5)
	for i := range batch {
		x := make([]float64, 4)
		for j := range x {
			x[j] = r.Uniform(-1, 1)
		}
		linalg.NormalizeL1(x)
		batch[i] = model.Sample{X: x, Y: r.Intn(3)}
	}
	lambda := 0.01
	got := AverageGradient(m, w, batch, lambda)

	want := model.NewParams(m)
	for _, s := range batch {
		m.AddGradient(w, want, s)
	}
	want.Scale(1.0 / 5)
	want.AddScaled(lambda, w)
	if !linalg.Equal(got.Data(), want.Data(), 1e-12) {
		t.Error("AverageGradient mismatch with manual computation")
	}
}

func TestAverageGradientLambdaZeroOmitsRegularizer(t *testing.T) {
	m := model.NewLogisticRegression(2, 2)
	w := model.NewParams(m)
	w.Set(0, 0, 100) // would dominate via λw if λ were applied
	s := model.Sample{X: []float64{0, 1}, Y: 0}
	g := AverageGradient(m, w, []model.Sample{s}, 0)
	// Gradient w.r.t. column 0 must be 0 since x[0] = 0.
	if g.At(0, 0) != 0 {
		t.Errorf("λ=0 gradient contains regularizer: %v", g.At(0, 0))
	}
}

// SGD with the paper's c/√t schedule must drive a convex quadratic to its
// minimum — the basic convergence sanity check behind all experiments.
func TestSGDConvergesOnQuadratic(t *testing.T) {
	u := &SGD{Schedule: InvSqrt{C: 0.5}}
	w, _ := linalg.NewMatrixFrom(1, 1, []float64{5})
	target := 2.0
	for step := 1; step <= 5000; step++ {
		g, _ := linalg.NewMatrixFrom(1, 1, []float64{w.At(0, 0) - target})
		u.Update(w, g, step)
	}
	if math.Abs(w.At(0, 0)-target) > 0.05 {
		t.Errorf("SGD converged to %v, want %v", w.At(0, 0), target)
	}
}

func TestMomentumAcceleratesAndResets(t *testing.T) {
	u := &Momentum{Schedule: Constant{C: 0.1}, Beta: 0.9}
	w := linalg.NewMatrix(1, 1)
	g, _ := linalg.NewMatrixFrom(1, 1, []float64{1})
	u.Update(w, g, 1)
	first := -w.At(0, 0)
	before := w.At(0, 0)
	u.Update(w, g, 2)
	second := before - w.At(0, 0)
	if second <= first {
		t.Errorf("momentum should accelerate: first %v, second %v", first, second)
	}
	u.Reset()
	w2 := linalg.NewMatrix(1, 1)
	u.Update(w2, g, 1)
	if -w2.At(0, 0) != first {
		t.Error("Reset did not clear velocity")
	}
	if u.Name() == "" {
		t.Error("empty name")
	}
}

func TestMomentumProjection(t *testing.T) {
	u := &Momentum{Schedule: Constant{C: 10}, Beta: 0, Radius: 1}
	w := linalg.NewMatrix(1, 2)
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{-1, -1})
	u.Update(w, g, 1)
	if n := linalg.Norm2(w.Data()); n > 1+1e-9 {
		t.Errorf("projection ignored: norm %v", n)
	}
}

func TestMomentumConvergesOnQuadratic(t *testing.T) {
	u := &Momentum{Schedule: Constant{C: 0.05}, Beta: 0.8}
	w, _ := linalg.NewMatrixFrom(1, 1, []float64{5})
	for step := 1; step <= 3000; step++ {
		g, _ := linalg.NewMatrixFrom(1, 1, []float64{w.At(0, 0) - 2})
		u.Update(w, g, step)
	}
	if math.Abs(w.At(0, 0)-2) > 0.05 {
		t.Errorf("momentum converged to %v, want 2", w.At(0, 0))
	}
}

func TestClipBoundsGradient(t *testing.T) {
	inner := &SGD{Schedule: Constant{C: 1}}
	u := &Clip{Inner: inner, MaxNorm1: 2}
	w := linalg.NewMatrix(1, 2)
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{30, -10}) // L1 = 40
	u.Update(w, g, 1)
	// Applied gradient is scaled to L1 = 2: w = -(1.5, -0.5).
	if !linalg.Equal(w.Data(), []float64{-1.5, 0.5}, 1e-12) {
		t.Errorf("clipped update w = %v", w.Data())
	}
	if u.Name() == "" {
		t.Error("empty name")
	}
}

func TestClipPassesSmallGradients(t *testing.T) {
	u := &Clip{Inner: &SGD{Schedule: Constant{C: 1}}, MaxNorm1: 10}
	w := linalg.NewMatrix(1, 2)
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{1, -1})
	u.Update(w, g, 1)
	if !linalg.Equal(w.Data(), []float64{-1, 1}, 1e-12) {
		t.Errorf("small gradient modified: %v", w.Data())
	}
}

func TestClipDisabled(t *testing.T) {
	u := &Clip{Inner: &SGD{Schedule: Constant{C: 1}}, MaxNorm1: 0}
	w := linalg.NewMatrix(1, 1)
	g, _ := linalg.NewMatrixFrom(1, 1, []float64{100})
	u.Update(w, g, 1)
	if w.At(0, 0) != -100 {
		t.Errorf("disabled clip altered gradient: %v", w.At(0, 0))
	}
}

// TestStateExporterRoundTrip: AdaGrad and Momentum must export a COPY of
// their internal state and restore it bit-exactly, so a restored updater
// continues the trajectory the crashed one was on.
func TestStateExporterRoundTrip(t *testing.T) {
	newW := func() *linalg.Matrix {
		w, _ := linalg.NewMatrixFrom(1, 3, []float64{0.1, 0.2, 0.3})
		return w
	}
	newG := func(vals ...float64) *linalg.Matrix {
		g, _ := linalg.NewMatrixFrom(1, 3, vals)
		return g
	}
	for name, mk := range map[string]func() Updater{
		"AdaGrad":  func() Updater { return &AdaGrad{Eta: 0.5} },
		"Momentum": func() Updater { return &Momentum{Schedule: Constant{C: 0.5}, Beta: 0.9} },
		"Clip":     func() Updater { return &Clip{Inner: &AdaGrad{Eta: 0.5}, MaxNorm1: 100} },
	} {
		t.Run(name, func(t *testing.T) {
			orig, restored := mk(), mk()
			se := orig.(StateExporter)
			if got := se.ExportState(); got != nil {
				t.Fatalf("fresh updater exported %v, want nil", got)
			}
			wOrig := newW()
			orig.Update(wOrig, newG(0.5, -0.25, 1), 1)
			state := se.ExportState()
			if len(state) != 3 {
				t.Fatalf("exported %d coordinates, want 3", len(state))
			}
			// The "crash" point: remember w after step 1, hand the exported
			// state to a fresh updater, and run the same step 2 on both.
			wRestored := newW()
			copy(wRestored.Data(), wOrig.Data())
			if err := restored.(StateExporter).ImportState(state); err != nil {
				t.Fatal(err)
			}
			snapshot := append([]float64(nil), state...)
			orig.Update(wOrig, newG(-1, 0.125, 0.75), 2)
			restored.Update(wRestored, newG(-1, 0.125, 0.75), 2)
			// The export was a copy: step 2 on the live updater must not
			// have reached back into it.
			if !slicesEqual(state, snapshot) {
				t.Fatal("ExportState returned a live alias, not a copy")
			}
			// Bit-exact continuation: identical parameters AND identical
			// internal state after the post-restore step.
			if !slicesEqual(wRestored.Data(), wOrig.Data()) {
				t.Errorf("restored trajectory w = %v, want %v", wRestored.Data(), wOrig.Data())
			}
			got := restored.(StateExporter).ExportState()
			want := se.ExportState()
			if !slicesEqual(got, want) {
				t.Errorf("restored state after step 2 = %v, want %v", got, want)
			}
		})
	}
}

// TestStateExporterImportReset: nil/empty imports reset the state.
func TestStateExporterImportReset(t *testing.T) {
	u := &AdaGrad{Eta: 0.5}
	w, _ := linalg.NewMatrixFrom(1, 2, []float64{0, 0})
	g, _ := linalg.NewMatrixFrom(1, 2, []float64{1, 1})
	u.Update(w, g, 1)
	if u.ExportState() == nil {
		t.Fatal("state expected after an update")
	}
	if err := u.ImportState(nil); err != nil {
		t.Fatal(err)
	}
	if u.ExportState() != nil {
		t.Error("nil import must reset the accumulators")
	}
}

func slicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
