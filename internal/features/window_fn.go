package features

import "math"

// Window functions for spectral preprocessing. The paper's pipeline uses a
// rectangular (no-op) window over 3.2 s frames; tapered windows reduce
// spectral leakage when activity signatures sit between FFT bins, at the
// cost of main-lobe width. They are provided as drop-in preprocessing for
// applications tuning the tradeoff.

// WindowFunc computes the n-point window coefficients.
type WindowFunc func(n int) []float64

// Rectangular returns the all-ones window (the paper's default).
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Hann returns the raised-cosine Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns the Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies the signal elementwise by the window coefficients
// into a fresh slice. Lengths must match; mismatches return nil.
func ApplyWindow(signal, window []float64) []float64 {
	if len(signal) != len(window) {
		return nil
	}
	out := make([]float64, len(signal))
	for i := range signal {
		out[i] = signal[i] * window[i]
	}
	return out
}

// Spectrogram computes magnitude spectra over sliding windows of the
// signal: frame size must be a power of two; each frame is tapered by the
// window function before the FFT. The result is one spectrum per frame.
func Spectrogram(signal []float64, frame, stride int, win WindowFunc) ([][]float64, error) {
	frames := SlidingWindows(signal, frame, stride)
	if frames == nil {
		return nil, nil
	}
	coeffs := win(frame)
	out := make([][]float64, len(frames))
	for i, f := range frames {
		mag, err := MagnitudeSpectrum(ApplyWindow(f, coeffs))
		if err != nil {
			return nil, err
		}
		out[i] = mag
	}
	return out, nil
}
