package features

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
)

func TestRectangular(t *testing.T) {
	w := Rectangular(4)
	if !linalg.Equal(w, []float64{1, 1, 1, 1}, 0) {
		t.Errorf("Rectangular = %v", w)
	}
}

func TestHannProperties(t *testing.T) {
	w := Hann(64)
	if w[0] > 1e-12 || w[63] > 1e-12 {
		t.Errorf("Hann endpoints should be 0: %v, %v", w[0], w[63])
	}
	// Symmetric with peak ~1 in the middle.
	for i := 0; i < 32; i++ {
		if math.Abs(w[i]-w[63-i]) > 1e-12 {
			t.Fatalf("Hann not symmetric at %d", i)
		}
	}
	mid := w[31]
	if mid < 0.99 {
		t.Errorf("Hann midpoint = %v, want ~1", mid)
	}
	if got := Hann(1); got[0] != 1 {
		t.Errorf("Hann(1) = %v", got)
	}
}

func TestHammingProperties(t *testing.T) {
	w := Hamming(64)
	if math.Abs(w[0]-0.08) > 1e-9 {
		t.Errorf("Hamming endpoint = %v, want 0.08", w[0])
	}
	for _, v := range w {
		if v < 0.07 || v > 1 {
			t.Fatalf("Hamming value out of range: %v", v)
		}
	}
	if got := Hamming(1); got[0] != 1 {
		t.Errorf("Hamming(1) = %v", got)
	}
}

func TestApplyWindow(t *testing.T) {
	out := ApplyWindow([]float64{2, 4}, []float64{0.5, 0.25})
	if !linalg.Equal(out, []float64{1, 1}, 1e-12) {
		t.Errorf("ApplyWindow = %v", out)
	}
	if ApplyWindow([]float64{1}, []float64{1, 2}) != nil {
		t.Error("length mismatch should return nil")
	}
}

func TestSpectrogramShapeAndTone(t *testing.T) {
	// 5 Hz tone at 64 samples/sec, 256-sample signal, 64-sample frames.
	signal := make([]float64, 256)
	for i := range signal {
		signal[i] = math.Sin(2 * math.Pi * 5 * float64(i) / 64)
	}
	spec, err := Spectrogram(signal, 64, 32, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 7 { // (256-64)/32 + 1
		t.Fatalf("%d frames, want 7", len(spec))
	}
	for _, frame := range spec {
		if len(frame) != 64 {
			t.Fatalf("frame length %d", len(frame))
		}
		if got := linalg.ArgMax(frame[:32]); got != 5 {
			t.Errorf("dominant bin %d, want 5", got)
		}
	}
}

func TestSpectrogramEdgeCases(t *testing.T) {
	spec, err := Spectrogram([]float64{1, 2}, 64, 32, Hann)
	if err != nil || spec != nil {
		t.Errorf("short signal: spec=%v err=%v, want nil/nil", spec, err)
	}
	// Non-power-of-two frame errors out.
	if _, err := Spectrogram(make([]float64, 100), 10, 5, Rectangular); err == nil {
		t.Error("non-power-of-two frame should error")
	}
}
