// Package features implements the on-device preprocessing pipeline of
// Section V-B: sliding windows over sensor streams, radix-2 FFT with
// magnitude binning (the "64-bin FFT of the acceleration magnitudes"),
// PCA dimensionality reduction, and L1 normalization (the precondition
// ‖x‖₁ ≤ 1 of the privacy analysis).
package features

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of the complex sequence (re, im). The length must be a power
// of two; it returns an error otherwise.
func FFT(re, im []float64) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("features: FFT re/im lengths differ: %d vs %d", n, len(im))
	}
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("features: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := -2 * math.Pi / float64(size)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			curRe, curIm := 1.0, 0.0
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j], im[j] = re[i]-tRe, im[i]-tIm
				re[i], im[i] = re[i]+tRe, im[i]+tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT in place (same length constraints as FFT).
func IFFT(re, im []float64) error {
	for i := range im {
		im[i] = -im[i]
	}
	if err := FFT(re, im); err != nil {
		return err
	}
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] = -im[i] / n
	}
	return nil
}

// MagnitudeSpectrum returns the length-n magnitude spectrum |FFT(signal)|
// of a real signal whose length must be a power of two. Element k is the
// magnitude of frequency bin k; the paper's activity pipeline uses the
// 64-bin spectrum of 64-sample windows.
func MagnitudeSpectrum(signal []float64) ([]float64, error) {
	n := len(signal)
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, signal)
	if err := FFT(re, im); err != nil {
		return nil, err
	}
	mag := make([]float64, n)
	for i := range mag {
		mag[i] = math.Hypot(re[i], im[i])
	}
	return mag, nil
}

// Windows splits signal into consecutive non-overlapping windows of the
// given size, discarding a trailing partial window. Each returned slice
// aliases the input.
func Windows(signal []float64, size int) [][]float64 {
	if size <= 0 {
		return nil
	}
	n := len(signal) / size
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, signal[i*size:(i+1)*size])
	}
	return out
}

// SlidingWindows returns overlapping windows of the given size advancing
// by stride samples. Each returned slice aliases the input.
func SlidingWindows(signal []float64, size, stride int) [][]float64 {
	if size <= 0 || stride <= 0 || len(signal) < size {
		return nil
	}
	var out [][]float64
	for start := 0; start+size <= len(signal); start += stride {
		out = append(out, signal[start:start+size])
	}
	return out
}

// Magnitude3 computes the per-sample acceleration magnitude
// |a| = √(ax² + ay² + az²) of a tri-axial stream (Section V-B).
// All three slices must have equal length.
func Magnitude3(ax, ay, az []float64) ([]float64, error) {
	if len(ax) != len(ay) || len(ax) != len(az) {
		return nil, fmt.Errorf("features: axis lengths differ: %d/%d/%d",
			len(ax), len(ay), len(az))
	}
	out := make([]float64, len(ax))
	for i := range out {
		out[i] = math.Sqrt(ax[i]*ax[i] + ay[i]*ay[i] + az[i]*az[i])
	}
	return out, nil
}
