package features

import (
	"fmt"
	"math"
	"sort"

	"github.com/crowdml/crowdml/internal/linalg"
)

// PCA is a fitted principal-component projection: it maps D-dimensional
// inputs onto the top-K principal directions of the training data, the
// preprocessing the paper applies to MNIST (→50 dims) and CIFAR features
// (→100 dims).
type PCA struct {
	mean       []float64
	components *linalg.Matrix // K×D, rows are principal directions
	eigvals    []float64      // descending
}

// FitPCA computes a K-component PCA of the rows via covariance
// eigendecomposition (cyclic Jacobi). It returns an error if there are no
// rows or k exceeds the dimensionality.
func FitPCA(rows [][]float64, k int) (*PCA, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("features: PCA of empty data")
	}
	d := len(rows[0])
	if k < 1 || k > d {
		return nil, fmt.Errorf("features: PCA components %d outside [1, %d]", k, d)
	}
	cov := linalg.Covariance(rows)
	vals, vecs := jacobiEigen(cov)
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	comps := linalg.NewMatrix(k, d)
	eig := make([]float64, k)
	for r := 0; r < k; r++ {
		col := idx[r]
		eig[r] = vals[col]
		for j := 0; j < d; j++ {
			comps.Set(r, j, vecs.At(j, col)) // eigenvectors are columns of vecs
		}
	}
	return &PCA{mean: linalg.ColumnMeans(rows), components: comps, eigvals: eig}, nil
}

// Components returns the number of retained components.
func (p *PCA) Components() int { return p.components.Rows() }

// EigenValues returns the retained eigenvalues in descending order
// (a copy).
func (p *PCA) EigenValues() []float64 { return linalg.Copy(p.eigvals) }

// Component returns a copy of the i-th principal direction.
func (p *PCA) Component(i int) []float64 { return linalg.Copy(p.components.Row(i)) }

// Transform projects x onto the principal components, returning a
// K-dimensional vector.
func (p *PCA) Transform(x []float64) ([]float64, error) {
	if len(x) != len(p.mean) {
		return nil, fmt.Errorf("features: PCA transform of dim %d, want %d",
			len(x), len(p.mean))
	}
	centered := make([]float64, len(x))
	linalg.Sub(x, p.mean, centered)
	out := make([]float64, p.components.Rows())
	p.components.MulVec(centered, out)
	return out, nil
}

// TransformAll projects every row, returning fresh K-dimensional vectors.
func (p *PCA) TransformAll(rows [][]float64) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		t, err := p.Transform(r)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// jacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi
// method, returning eigenvalues and the orthogonal eigenvector matrix
// (eigenvectors in columns).
func jacobiEigen(a *linalg.Matrix) ([]float64, *linalg.Matrix) {
	n := a.Rows()
	m := a.Clone()
	v := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v
}
