package features

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of a constant signal concentrates everything in bin 0.
	re := []float64{1, 1, 1, 1}
	im := make([]float64, 4)
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 0, 0, 0}
	if !linalg.Equal(re, want, 1e-12) || linalg.Norm1(im) > 1e-12 {
		t.Errorf("FFT(const) = %v + %vi", re, im)
	}
}

func TestFFTSinglePureTone(t *testing.T) {
	// cos(2π·k·n/N) has spectrum peaks at bins k and N−k.
	const n, k = 64, 5
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = math.Cos(2 * math.Pi * k * float64(i) / n)
	}
	mag, err := MagnitudeSpectrum(signal)
	if err != nil {
		t.Fatal(err)
	}
	if got := linalg.ArgMax(mag[:n/2]); got != k {
		t.Errorf("dominant bin = %d, want %d", got, k)
	}
	if math.Abs(mag[k]-float64(n)/2) > 1e-9 {
		t.Errorf("peak magnitude = %v, want %v", mag[k], float64(n)/2)
	}
}

func TestFFTErrors(t *testing.T) {
	if err := FFT(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
	if err := FFT(make([]float64, 4), make([]float64, 2)); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if err := FFT(nil, nil); err != nil {
		t.Errorf("empty FFT should be a no-op, got %v", err)
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	r := rng.New(1)
	re := make([]float64, 32)
	im := make([]float64, 32)
	orig := make([]float64, 32)
	for i := range re {
		re[i] = r.Uniform(-1, 1)
		orig[i] = re[i]
	}
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(re, im); err != nil {
		t.Fatal(err)
	}
	if !linalg.Equal(re, orig, 1e-9) {
		t.Error("IFFT(FFT(x)) != x")
	}
	if linalg.Norm1(im) > 1e-9 {
		t.Error("imaginary residue after round trip")
	}
}

// Property (Parseval): Σ|x|² = (1/N)Σ|X|² for random real signals.
func TestFFTParsevalProperty(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint32) bool {
		local := rng.New(uint64(seed))
		n := 1 << (1 + local.Intn(7)) // 2..128
		signal := make([]float64, n)
		for i := range signal {
			signal[i] = local.Uniform(-2, 2)
		}
		timeEnergy := linalg.Norm2Sq(signal)
		mag, err := MagnitudeSpectrum(signal)
		if err != nil {
			return false
		}
		freqEnergy := linalg.Norm2Sq(mag) / float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestWindows(t *testing.T) {
	sig := []float64{1, 2, 3, 4, 5, 6, 7}
	w := Windows(sig, 3)
	if len(w) != 2 {
		t.Fatalf("got %d windows, want 2", len(w))
	}
	if !linalg.Equal(w[1], []float64{4, 5, 6}, 0) {
		t.Errorf("window 1 = %v", w[1])
	}
	if Windows(sig, 0) != nil {
		t.Error("size 0 should return nil")
	}
}

func TestSlidingWindows(t *testing.T) {
	sig := []float64{1, 2, 3, 4, 5}
	w := SlidingWindows(sig, 3, 1)
	if len(w) != 3 {
		t.Fatalf("got %d windows, want 3", len(w))
	}
	if !linalg.Equal(w[2], []float64{3, 4, 5}, 0) {
		t.Errorf("window 2 = %v", w[2])
	}
	if SlidingWindows(sig, 6, 1) != nil {
		t.Error("window larger than signal should return nil")
	}
	if SlidingWindows(sig, 2, 0) != nil {
		t.Error("stride 0 should return nil")
	}
}

func TestMagnitude3(t *testing.T) {
	mag, err := Magnitude3([]float64{3}, []float64{4}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if mag[0] != 5 {
		t.Errorf("magnitude = %v, want 5", mag[0])
	}
	if _, err := Magnitude3([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched axes")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data varying strongly along (1,1)/√2 and weakly orthogonally.
	r := rng.New(3)
	rows := make([][]float64, 2000)
	for i := range rows {
		a := r.Normal(0, 3)
		b := r.Normal(0, 0.1)
		rows[i] = []float64{a/math.Sqrt2 - b/math.Sqrt2, a/math.Sqrt2 + b/math.Sqrt2}
	}
	pca, err := FitPCA(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := pca.Component(0)
	// Direction is defined up to sign.
	dot := math.Abs(dir[0]*1/math.Sqrt2 + dir[1]*1/math.Sqrt2)
	if dot < 0.99 {
		t.Errorf("principal direction %v not aligned with (1,1)/√2 (|cos|=%v)", dir, dot)
	}
	if vals := pca.EigenValues(); math.Abs(vals[0]-9) > 0.5 {
		t.Errorf("top eigenvalue = %v, want ~9", vals[0])
	}
}

func TestPCAOrthonormalComponents(t *testing.T) {
	r := rng.New(4)
	rows := make([][]float64, 500)
	for i := range rows {
		row := make([]float64, 6)
		for j := range row {
			row[j] = r.Uniform(-1, 1) * float64(j+1)
		}
		rows[i] = row
	}
	pca, err := FitPCA(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ci := pca.Component(i)
		if math.Abs(linalg.Norm2(ci)-1) > 1e-8 {
			t.Errorf("component %d not unit norm: %v", i, linalg.Norm2(ci))
		}
		for j := i + 1; j < 4; j++ {
			if d := math.Abs(linalg.Dot(ci, pca.Component(j))); d > 1e-8 {
				t.Errorf("components %d,%d not orthogonal: %v", i, j, d)
			}
		}
	}
}

func TestPCATransformReducesDimension(t *testing.T) {
	r := rng.New(5)
	rows := make([][]float64, 100)
	for i := range rows {
		row := make([]float64, 10)
		for j := range row {
			row[j] = r.Gaussian()
		}
		rows[i] = row
	}
	pca, err := FitPCA(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pca.TransformAll(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 || len(out[0]) != 3 {
		t.Errorf("transformed shape %dx%d, want 100x3", len(out), len(out[0]))
	}
	if pca.Components() != 3 {
		t.Errorf("Components = %d", pca.Components())
	}
	if _, err := pca.Transform(make([]float64, 7)); err == nil {
		t.Error("expected dimension error")
	}
}

func TestPCAEigenvaluesDescending(t *testing.T) {
	r := rng.New(6)
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{r.Normal(0, 5), r.Normal(0, 2), r.Normal(0, 1)}
	}
	pca, err := FitPCA(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals := pca.EigenValues()
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Errorf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 3); err == nil {
		t.Error("expected error for k > d")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 0); err == nil {
		t.Error("expected error for k = 0")
	}
}
