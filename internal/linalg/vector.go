// Package linalg provides the small dense linear-algebra kernel used by the
// Crowd-ML framework: vectors, row-major matrices, norms, and the softmax /
// log-sum-exp primitives required by multiclass logistic regression.
//
// Everything is implemented on plain []float64 so the hot path (per-sample
// gradient computation on a device) allocates nothing.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible sizes.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of a and b.
// It panics if the lengths differ; dimension agreement is a programming
// invariant in this codebase, established at model construction time.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes dst += alpha * x elementwise.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d != %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise.
func Add(a, b, dst []float64) {
	if len(a) != len(b) || len(a) != len(dst) {
		panic("linalg: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(a, b, dst []float64) {
	if len(a) != len(b) || len(a) != len(dst) {
		panic("linalg: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into a freshly allocated slice.
func Copy(src []float64) []float64 {
	dst := make([]float64, len(src))
	copy(dst, src)
	return dst
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Norm2Sq(x))
}

// Norm2Sq returns the squared Euclidean norm of x.
func Norm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element of x.
// Ties resolve to the smallest index. It returns -1 for an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// NormalizeL1 scales x in place so that its L1 norm is 1.
// A zero vector is left unchanged. The paper requires ‖x‖₁ ≤ 1 for the
// sensitivity bound of Theorem 1; this enforces equality for non-zero inputs.
func NormalizeL1(x []float64) {
	n := Norm1(x)
	if n == 0 {
		return
	}
	Scale(1/n, x)
}

// ProjectBall scales w in place onto the Euclidean ball of radius r:
// Π_W(w) = min(1, r/‖w‖₂)·w, the projection used in the SGD update Eq. (3).
// Radius r must be positive; r ≤ 0 disables projection (W = R^d).
func ProjectBall(w []float64, r float64) {
	if r <= 0 {
		return
	}
	n := Norm2(w)
	if n > r {
		Scale(r/n, w)
	}
}

// Equal reports whether a and b agree elementwise within tol.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
