package linalg

import "fmt"

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
//
// Crowd-ML stores the multiclass parameter block W = [w_1 … w_C] as a C×D
// Matrix so that a device can read one class row without copying.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom wraps data (row-major, length rows*cols) without copying.
func NewMatrixFrom(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("linalg: data length %d != %d*%d: %w",
			len(data), rows, cols, ErrDimensionMismatch)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the underlying row-major storage (shared, not copied).
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies the contents of src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("linalg: CopyFrom %dx%d into %dx%d: %w",
			src.rows, src.cols, m.rows, m.cols, ErrDimensionMismatch)
	}
	copy(m.data, src.data)
	return nil
}

// MulVec computes dst = M·x where x has length Cols and dst has length Rows.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec shapes %dx%d · %d -> %d",
			m.rows, m.cols, len(x), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// AddScaled computes m += alpha * other elementwise. Shapes must match.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) error {
	if m.rows != other.rows || m.cols != other.cols {
		return ErrDimensionMismatch
	}
	Axpy(alpha, other.data, m.data)
	return nil
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float64) { Scale(alpha, m.data) }

// Zero resets all elements to zero.
func (m *Matrix) Zero() { Zero(m.data) }

// Norm2 returns the Frobenius norm of the matrix.
func (m *Matrix) Norm2() float64 { return Norm2(m.data) }

// Norm1 returns the entrywise L1 norm (sum of absolute values).
func (m *Matrix) Norm1() float64 { return Norm1(m.data) }
