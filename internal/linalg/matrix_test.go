package linalg

import (
	"errors"
	"math"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row must share storage with the matrix")
	}
}

func TestNewMatrixFrom(t *testing.T) {
	m, err := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewMatrixFrom: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewMatrixFrom(2, 2, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("expected ErrDimensionMismatch, got %v", err)
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestMatrixCopyFrom(t *testing.T) {
	m := NewMatrix(2, 2)
	src := NewMatrix(2, 2)
	src.Set(1, 1, 4)
	if err := m.CopyFrom(src); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if m.At(1, 1) != 4 {
		t.Error("CopyFrom did not copy")
	}
	bad := NewMatrix(1, 2)
	if err := m.CopyFrom(bad); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("expected ErrDimensionMismatch, got %v", err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 1, -1})
	x := []float64{1, 2, 3}
	dst := make([]float64, 2)
	m.MulVec(x, dst)
	if !Equal(dst, []float64{7, -1}, 1e-12) {
		t.Errorf("MulVec = %v, want [7 -1]", dst)
	}
}

func TestAddScaledAndNorms(t *testing.T) {
	m, _ := NewMatrixFrom(1, 2, []float64{3, -4})
	o, _ := NewMatrixFrom(1, 2, []float64{1, 1})
	if err := m.AddScaled(2, o); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	if !Equal(m.Data(), []float64{5, -2}, 0) {
		t.Errorf("AddScaled = %v", m.Data())
	}
	if err := m.AddScaled(1, NewMatrix(2, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("expected ErrDimensionMismatch, got %v", err)
	}
	m2, _ := NewMatrixFrom(1, 2, []float64{3, -4})
	if m2.Norm2() != 5 {
		t.Errorf("Norm2 = %v, want 5", m2.Norm2())
	}
	if m2.Norm1() != 7 {
		t.Errorf("Norm1 = %v, want 7", m2.Norm1())
	}
	m2.Scale(2)
	if !Equal(m2.Data(), []float64{6, -8}, 0) {
		t.Errorf("Scale = %v", m2.Data())
	}
	m2.Zero()
	if !Equal(m2.Data(), []float64{0, 0}, 0) {
		t.Errorf("Zero = %v", m2.Data())
	}
}

func TestCovariance(t *testing.T) {
	// Two perfectly correlated dimensions.
	rows := [][]float64{{1, 2}, {3, 6}, {5, 10}}
	cov := Covariance(rows)
	// var(x) = mean of (x-3)^2 over {1,3,5} = (4+0+4)/3
	wantVar := 8.0 / 3
	if math.Abs(cov.At(0, 0)-wantVar) > 1e-12 {
		t.Errorf("cov[0][0] = %v, want %v", cov.At(0, 0), wantVar)
	}
	if math.Abs(cov.At(0, 1)-2*wantVar) > 1e-12 {
		t.Errorf("cov[0][1] = %v, want %v", cov.At(0, 1), 2*wantVar)
	}
	if math.Abs(cov.At(0, 1)-cov.At(1, 0)) > 1e-12 {
		t.Error("covariance must be symmetric")
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single element should be 0")
	}
	if got := Variance([]float64{1, 3}); got != 1 {
		t.Errorf("Variance = %v, want 1", got)
	}
	mu := ColumnMeans([][]float64{{1, 2}, {3, 4}})
	if !Equal(mu, []float64{2, 3}, 1e-12) {
		t.Errorf("ColumnMeans = %v", mu)
	}
	if ColumnMeans(nil) != nil {
		t.Error("ColumnMeans(nil) should be nil")
	}
}
