package linalg

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// elements.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// ColumnMeans returns the per-column mean of the n×d sample matrix rows.
func ColumnMeans(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	d := len(rows[0])
	mu := make([]float64, d)
	for _, r := range rows {
		Axpy(1, r, mu)
	}
	Scale(1/float64(len(rows)), mu)
	return mu
}

// Covariance returns the d×d sample covariance matrix of rows (population
// normalization, 1/n), with the column means subtracted.
func Covariance(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	d := len(rows[0])
	mu := ColumnMeans(rows)
	cov := NewMatrix(d, d)
	centered := make([]float64, d)
	for _, r := range rows {
		Sub(r, mu, centered)
		for i := 0; i < d; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			row := cov.Row(i)
			for j := 0; j < d; j++ {
				row[j] += ci * centered[j]
			}
		}
	}
	cov.Scale(1 / float64(len(rows)))
	return cov
}
