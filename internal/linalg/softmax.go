package linalg

import "math"

// LogSumExp returns log(Σ_i exp(x_i)) computed stably by factoring out the
// maximum element. It returns -Inf for an empty slice.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of scores into dst (which may alias scores).
// The computation is shifted by the max score for numerical stability.
func Softmax(scores, dst []float64) {
	if len(scores) != len(dst) {
		panic("linalg: Softmax length mismatch")
	}
	if len(scores) == 0 {
		return
	}
	m := scores[0]
	for _, v := range scores[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range scores {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		// Degenerate input (all -Inf): fall back to uniform.
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}
